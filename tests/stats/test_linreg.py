"""OLS and forward stepwise selection."""

import numpy as np
import pytest

from repro.errors import RegressionError
from repro.stats.linreg import fit_ols, forward_stepwise


@pytest.fixture()
def linear_data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(500, 3))
    y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5 + rng.normal(0, 0.1, 500)
    return x, y


class TestOls:
    def test_recovers_coefficients(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        assert model.coefficients[0] == pytest.approx(2.0, abs=0.02)
        assert model.coefficients[1] == pytest.approx(-1.0, abs=0.02)
        assert model.coefficients[2] == pytest.approx(0.0, abs=0.02)
        assert model.intercept == pytest.approx(0.5, abs=0.02)

    def test_r_square_near_one_for_clean_data(self, linear_data):
        x, y = linear_data
        assert fit_ols(x, y).r_square > 0.99

    def test_r_square_zero_for_noise(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 2))
        y = rng.normal(size=500)
        assert fit_ols(x, y).r_square < 0.05

    def test_multiple_r_is_sqrt(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        assert model.multiple_r == pytest.approx(np.sqrt(model.r_square))

    def test_adjusted_below_r_square(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        assert model.adjusted_r_square <= model.r_square

    def test_standard_error_matches_noise(self, linear_data):
        x, y = linear_data
        assert fit_ols(x, y).standard_error == pytest.approx(0.1, abs=0.02)

    def test_predict_single_row(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        pred = model.predict(np.array([1.0, 0.0, 0.0]))
        assert pred == pytest.approx(2.5, abs=0.05)

    def test_predict_shape_checked(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        with pytest.raises(RegressionError):
            model.predict(np.ones((3, 5)))

    def test_no_intercept(self):
        x = np.arange(10.0)[:, None]
        y = 3.0 * x[:, 0]
        model = fit_ols(x, y, intercept=False)
        assert model.intercept == 0.0
        assert model.coefficients[0] == pytest.approx(3.0)

    def test_no_intercept_r_square_uses_uncentered_tss(self):
        # A perfect through-origin fit must score R² = 1, which only
        # holds when TSS is taken about zero, not about the mean.
        x = np.arange(1.0, 11.0)[:, None]
        y = 3.0 * x[:, 0]
        model = fit_ols(x, y, intercept=False)
        assert model.r_square == pytest.approx(1.0)

    def test_no_intercept_r_square_stays_in_unit_interval(self):
        # Against centered TSS this fit scores R² < 0 (the zero-slope
        # model beats it about the mean); against the correct uncentered
        # TSS it lands in [0, 1].
        x = np.array([[1.0], [2.0], [3.0], [4.0]])
        y = np.array([10.0, 9.5, 10.5, 10.0])  # flat, far from origin
        model = fit_ols(x, y, intercept=False)
        rss = float(((y - model.predict(x)) ** 2).sum())
        centered = float(((y - y.mean()) ** 2).sum())
        assert 1.0 - rss / centered < 0.0  # the old formula went negative
        assert 0.0 <= model.r_square <= 1.0

    def test_intercept_r_square_pinned(self, linear_data):
        # The intercept=True path must stay byte-identical: same
        # centered-TSS formula, bit for bit.
        x, y = linear_data
        model = fit_ols(x, y)
        residuals = y - model.predict(x)
        rss = float(residuals @ residuals)
        tss = float(((y - y.mean()) ** 2).sum())
        assert model.r_square == 1.0 - rss / tss

    def test_needs_more_rows_than_params(self):
        with pytest.raises(RegressionError):
            fit_ols(np.ones((3, 3)), np.ones(3))

    def test_rejects_nonfinite(self):
        x = np.ones((10, 1)) * np.arange(10)[:, None]
        y = np.arange(10.0)
        y[3] = np.nan
        with pytest.raises(RegressionError):
            fit_ols(x, y)

    def test_rejects_misaligned(self):
        with pytest.raises(RegressionError):
            fit_ols(np.ones((10, 2)), np.ones(9))


class TestStepwise:
    def test_picks_informative_features_in_order(self, linear_data):
        x, y = linear_data
        result = forward_stepwise(x, y)
        # Strongest predictor (|b|=2) enters first, then the second.
        assert result.selected[0] == 0
        assert result.selected[1] == 1

    def test_excludes_pure_noise_feature(self, linear_data):
        x, y = linear_data
        result = forward_stepwise(x, y, alpha_enter=0.001)
        assert 2 not in result.selected

    def test_f_values_recorded(self, linear_data):
        x, y = linear_data
        result = forward_stepwise(x, y)
        assert len(result.f_to_enter) == len(result.selected)
        assert all(f > 0 for f in result.f_to_enter)

    def test_max_features_cap(self, linear_data):
        x, y = linear_data
        result = forward_stepwise(x, y, max_features=1)
        assert len(result.selected) == 1

    def test_selected_names(self, linear_data):
        x, y = linear_data
        result = forward_stepwise(x, y, max_features=2)
        names = result.selected_names(["a", "b", "c"])
        assert names == ["a", "b"]

    def test_model_refit_on_selection(self, linear_data):
        x, y = linear_data
        result = forward_stepwise(x, y)
        assert result.model.n_features == len(result.selected)
        assert result.model.r_square > 0.99

    def test_no_signal_raises(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 2))
        y = rng.normal(size=200)
        with pytest.raises(RegressionError):
            forward_stepwise(x, y, alpha_enter=1e-9)
