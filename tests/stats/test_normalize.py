"""Z-score normalisation."""

import numpy as np
import pytest

from repro.errors import RegressionError
from repro.stats.normalize import ZScoreNormalizer


def test_zero_mean_unit_std():
    rng = np.random.default_rng(0)
    data = rng.normal(50.0, 7.0, size=(1000, 3))
    z = ZScoreNormalizer().fit_transform(data)
    assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
    assert np.allclose(z.std(axis=0), 1.0, atol=1e-12)


def test_roundtrip():
    rng = np.random.default_rng(1)
    data = rng.normal(10, 3, size=(100, 4))
    norm = ZScoreNormalizer().fit(data)
    assert np.allclose(norm.inverse_transform(norm.transform(data)), data)


def test_transform_new_data_uses_stored_stats():
    train = np.array([[0.0], [10.0]])
    norm = ZScoreNormalizer().fit(train)
    out = norm.transform(np.array([[5.0]]))
    assert out[0, 0] == pytest.approx(0.0)


def test_one_dimensional_input():
    data = np.array([1.0, 2.0, 3.0])
    norm = ZScoreNormalizer().fit(data)
    z = norm.transform(data)
    assert z.shape == (3,)
    assert z[1] == pytest.approx(0.0)


def test_constant_column_maps_to_zero():
    data = np.column_stack([np.ones(10), np.arange(10.0)])
    z = ZScoreNormalizer().fit_transform(data)
    assert np.all(z[:, 0] == 0.0)
    assert z[:, 1].std() == pytest.approx(1.0)


def test_requires_fit_before_transform():
    with pytest.raises(RegressionError):
        ZScoreNormalizer().transform(np.ones((3, 2)))


def test_requires_two_rows():
    with pytest.raises(RegressionError):
        ZScoreNormalizer().fit(np.ones((1, 2)))


def test_column_count_checked():
    norm = ZScoreNormalizer().fit(np.ones((5, 2)) * np.arange(5)[:, None])
    with pytest.raises(RegressionError):
        norm.transform(np.ones((3, 4)))
