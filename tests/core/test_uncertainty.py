"""Score uncertainty quantification."""

import pytest

from repro.core.uncertainty import score_distribution
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dist():
    from repro.hardware import XEON_E5462

    return score_distribution(XEON_E5462, n_repeats=4)


def test_repeats_counted(dist):
    assert len(dist.scores) == 4
    assert len(dist.results) == 4


def test_scores_differ_across_streams(dist):
    assert len(set(dist.scores)) > 1


def test_spread_is_small(dist):
    """The method is stable: measurement noise moves the score < 2 %."""
    assert dist.relative_spread < 0.02


def test_mean_matches_single_run(dist):
    from repro import XEON_E5462, evaluate_server

    single = evaluate_server(XEON_E5462).score
    assert dist.mean == pytest.approx(single, rel=0.02)


def test_interval_contains_all_scores(dist):
    lo, hi = dist.interval(k=3.0)
    assert all(lo <= s <= hi for s in dist.scores)


def test_deterministic(dist):
    from repro.hardware import XEON_E5462

    again = score_distribution(XEON_E5462, n_repeats=4)
    assert again.scores == dist.scores


def test_requires_two_repeats():
    from repro.hardware import XEON_E5462

    with pytest.raises(ConfigurationError):
        score_distribution(XEON_E5462, n_repeats=1)
