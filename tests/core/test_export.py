"""Exhibit data export."""

import csv
import json

import pytest

from repro.core.export import export_exhibits


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    out = tmp_path_factory.mktemp("exhibits")
    paths = export_exhibits(out, regression=True)
    return out, paths


EXPECTED_FILES = {
    "table1_specs.csv",
    "table2_normalized.csv",
    "table4_e5462.csv",
    "table5_opteron.csv",
    "table6_4870.csv",
    "fig1_2_specpower.csv",
    "fig3_e5462.csv",
    "fig4_opteron.csv",
    "fig5_ns.json",
    "fig6_nbs.json",
    "fig7_pq.json",
    "fig8_9_npb.csv",
    "fig10_11_ep.csv",
    "rankings.json",
    "table7_8_regression.json",
    "fig12_13_verification.csv",
}


def test_every_exhibit_file_written(exported):
    out, paths = exported
    assert {p.name for p in paths} == EXPECTED_FILES


def test_evaluation_csv_parses(exported):
    out, _ = exported
    with (out / "table4_e5462.csv").open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 10
    assert rows[0]["program"] == "Idle"
    assert float(rows[-1]["watts"]) > 200


def test_rankings_json_structure(exported):
    out, _ = exported
    data = json.loads((out / "rankings.json").read_text())
    assert set(data) == {"Xeon-E5462", "Opteron-8347", "Xeon-4870"}
    for scores in data.values():
        assert set(scores) == {
            "ours_mean_ppw",
            "green500_ppw",
            "specpower_ssj_ops_per_watt",
        }


def test_regression_json_has_verification(exported):
    out, _ = exported
    data = json.loads((out / "table7_8_regression.json").read_text())
    assert 0.8 < data["r_square"] < 1.0
    assert "npb_B_r_squared" in data
    assert set(data["coefficients"]) == {
        "working_core_num",
        "instruction_num",
        "l2_cache_hit",
        "l3_cache_hit",
        "memory_read_times",
        "memory_write_times",
    }


def test_verification_csv_has_both_classes(exported):
    out, _ = exported
    with (out / "fig12_13_verification.csv").open() as fh:
        rows = list(csv.DictReader(fh))
    classes = {row["npb_class"] for row in rows}
    assert classes == {"B", "C"}
    assert len(rows) == 164  # 82 bars per class


def test_export_is_deterministic(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    export_exhibits(a)
    export_exhibits(b)
    for path_a in sorted(a.iterdir()):
        path_b = b / path_a.name
        assert path_a.read_text() == path_b.read_text(), path_a.name


def test_cannot_run_rows_marked(exported):
    out, _ = exported
    content = (out / "fig3_e5462.csv").read_text()
    assert "cannot_run" in content  # CG class C on the 8 GB server
