"""State grids: the 5-state matrix over (P-state x cores x memory)."""

import pytest

from repro.core.evaluation import evaluate_server
from repro.core.grid import (
    StateGrid,
    evaluate_grid,
    evaluation_digest,
    grid_to_dict,
)
from repro.core.states import core_levels
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.specs import get_server
from repro.hardware.zoo import get_zoo_server


class TestStateGridAxes:
    def test_builtin_defaults_are_the_paper_matrix(self):
        server = get_server("Xeon-E5462")
        grid = StateGrid(server)
        assert grid.pstates == (0,)
        assert grid.core_counts == core_levels(server)
        assert grid.states_per_cell == 10
        assert grid.n_states == 10

    def test_zoo_defaults_span_the_full_ladder(self):
        server = get_zoo_server("Xeon-E5-2658")
        grid = StateGrid(server)
        assert grid.pstates == tuple(range(server.n_pstates))
        assert grid.n_cells == server.n_pstates
        assert grid.n_states == grid.n_cells * grid.states_per_cell

    def test_explicit_axes(self):
        server = get_zoo_server("Xeon-E5-2658")
        grid = StateGrid(
            server,
            pstates=(0, 2),
            core_counts=(1, 16),
            memory_fractions=(0.5,),
        )
        assert grid.n_cells == 2
        assert grid.states_per_cell == 1 + 2 + 2

    def test_duplicate_pstates_rejected(self):
        with pytest.raises(ConfigurationError):
            StateGrid(get_zoo_server("Xeon-E5-2658"), pstates=(0, 0))

    def test_pstate_off_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            StateGrid(get_server("Xeon-E5462"), pstates=(0, 1))

    def test_bad_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            StateGrid(get_server("Xeon-E5462"), core_counts=(999,))

    def test_bad_memory_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            StateGrid(get_server("Xeon-E5462"), memory_fractions=(1.5,))
        with pytest.raises(ConfigurationError):
            StateGrid(get_server("Xeon-E5462"), memory_fractions=())


class TestDegenerateGridIsThePaper:
    """One P-state, default axes == evaluate_server, bit for bit."""

    @pytest.mark.parametrize(
        "name", ["Xeon-E5462", "Opteron-8347", "Xeon-4870"]
    )
    def test_single_cell_matches_evaluate_server(self, name):
        server = get_server(name)
        grid_result = evaluate_grid(StateGrid(server), seed=0)
        direct = evaluate_server(server, Simulator(server, seed=0))
        assert grid_result.n_states == 10
        [cell] = grid_result.cells
        assert cell.digest == evaluation_digest(direct)


class TestEvaluateGrid:
    @pytest.fixture(scope="class")
    def k20(self):
        server = get_zoo_server("Tesla-K20-Node")
        return server, evaluate_grid(StateGrid(server), seed=0)

    def test_one_cell_per_pstate(self, k20):
        server, result = k20
        assert [c.pstate for c in result.cells] == list(
            range(server.n_pstates)
        )

    def test_frequency_falls_down_the_ladder(self, k20):
        _, result = k20
        freqs = [c.frequency_mhz for c in result.cells]
        assert freqs == sorted(freqs, reverse=True)
        assert result.cells[0].frequency_ratio == 1.0

    def test_cells_are_distinct_operating_points(self, k20):
        _, result = k20
        digests = {c.digest for c in result.cells}
        assert len(digests) == len(result.cells)

    def test_cell_lookup(self, k20):
        _, result = k20
        assert result.cell(1).pstate == 1
        with pytest.raises(ConfigurationError):
            result.cell(99)

    def test_best_cell_has_top_score(self, k20):
        _, result = k20
        assert result.best_cell.score == max(c.score for c in result.cells)

    def test_seed_determinism(self, k20):
        server, result = k20
        again = evaluate_grid(StateGrid(server), seed=0)
        assert again.digest == result.digest

    def test_engines_agree_on_the_grid(self):
        server = get_zoo_server("Atom-C2750")
        grid = StateGrid(server, pstates=(0, 1))
        serial = evaluate_grid(grid, seed=0, engine="serial")
        batch = evaluate_grid(grid, seed=0, engine="batch")
        assert serial.digest == batch.digest


class TestGridDocument:
    def test_schema(self):
        server = get_zoo_server("Atom-C2750")
        result = evaluate_grid(StateGrid(server, pstates=(0, 1)), seed=0)
        doc = grid_to_dict(result)
        assert doc["kind"] == "grid_evaluation"
        assert doc["schema_version"] == 1
        assert doc["server"] == "Atom-C2750"
        assert doc["axes"]["pstates"] == [0, 1]
        assert doc["digest"] == result.digest
        assert len(doc["cells"]) == 2
        for cell_doc, cell in zip(doc["cells"], result.cells):
            assert cell_doc["digest"] == cell.digest
            assert cell_doc["evaluation"]["kind"] == "evaluation"
