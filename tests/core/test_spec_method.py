"""The SPECpower comparison method."""

import pytest

from repro.core.spec_method import specpower_score


@pytest.fixture(scope="module")
def spec_e5462():
    from repro.hardware import XEON_E5462

    return specpower_score(XEON_E5462)


class TestStructure:
    def test_fourteen_levels(self, spec_e5462):
        # Cal1-3, 100%..10%, ActiveIdle.
        assert len(spec_e5462.levels) == 14

    def test_ten_measured_levels(self, spec_e5462):
        assert len(spec_e5462.measured_levels) == 10

    def test_active_idle_present(self, spec_e5462):
        assert spec_e5462.active_idle.load == 0.0


class TestPaperScores:
    @pytest.mark.parametrize(
        "server_name, paper_score",
        [
            ("Xeon-E5462", 247.0),
            ("Opteron-8347", 22.2),
            ("Xeon-4870", 139.0),
        ],
    )
    def test_overall_score(self, server_name, paper_score):
        from repro.hardware import get_server

        result = specpower_score(get_server(server_name))
        assert result.overall_ssj_ops_per_watt == pytest.approx(
            paper_score, rel=0.08
        )

    def test_spec_ranking_section_vc3(self):
        """SPECpower ranks: E5462 > 4870 > Opteron."""
        from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462

        scores = {
            s.name: specpower_score(s).overall_ssj_ops_per_watt
            for s in (XEON_E5462, OPTERON_8347, XEON_4870)
        }
        assert scores["Xeon-E5462"] > scores["Xeon-4870"] > scores["Opteron-8347"]


class TestFigures1And2:
    def test_memory_stays_below_14_percent(self, spec_e5462, e5462):
        """Fig. 1 on the Xeon-E5462."""
        for level in spec_e5462.levels:
            assert level.memory_mb / e5462.memory_mb < 0.14

    def test_cpu_usage_tracks_load(self, spec_e5462):
        """Fig. 2: utilisation declines with the load level."""
        measured = spec_e5462.measured_levels
        utils = [lv.cpu_util for lv in measured]
        loads = [lv.load for lv in measured]
        assert utils == loads

    def test_power_declines_with_load(self, spec_e5462):
        watts = [lv.watts for lv in spec_e5462.measured_levels]
        assert watts[0] > watts[-1]
        assert spec_e5462.active_idle.watts < watts[-1] + 30
