"""Energy-to-solution analysis."""

import pytest

from repro.core.energy import energy_scaling
from repro.errors import ConfigurationError


class TestEpFig11:
    def test_ep_energy_decreases(self, e5462):
        scaling = energy_scaling(e5462, "ep", "C")
        energies = [p.energy_kj for p in scaling.points]
        assert energies == sorted(energies, reverse=True)
        assert scaling.parallelism_saves_energy()

    def test_optimal_is_full_machine_for_ep(self, e5462):
        scaling = energy_scaling(e5462, "ep", "C")
        assert scaling.optimal.nprocs == e5462.total_cores

    def test_saving_magnitude(self, e5462):
        scaling = energy_scaling(e5462, "ep", "C")
        assert scaling.max_saving > 0.5  # ~3x on this machine


class TestGeneralisation:
    @pytest.mark.parametrize("program", ["lu", "mg", "bt"])
    def test_claim_holds_beyond_ep(self, e5462, program):
        """The Fig.-11 conclusion generalises to other NPB programs on
        the simulated machines."""
        scaling = energy_scaling(e5462, program, "C")
        assert scaling.parallelism_saves_energy()

    def test_respects_proc_rules(self, x4870):
        scaling = energy_scaling(x4870, "bt", "B")
        assert [p.nprocs for p in scaling.points] == [1, 4, 9, 16, 25, 36]

    def test_skips_oom_counts(self, e5462):
        with pytest.raises(ConfigurationError):
            energy_scaling(e5462, "cg", "C")  # cannot run at all

    def test_explicit_counts_validated(self, e5462):
        from repro.errors import InvalidProcessCountError

        with pytest.raises(InvalidProcessCountError):
            energy_scaling(e5462, "bt", "A", counts=(2,))

    def test_serial_property(self, e5462):
        scaling = energy_scaling(e5462, "ep", "A", counts=(1, 2, 4))
        assert scaling.serial.nprocs == 1
