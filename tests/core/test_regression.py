"""Regression model mechanics (fast paths; full-scale bands live in
tests/integration/test_regression_bands.py)."""

import numpy as np
import pytest

from repro.core.regression import (
    RegressionDataset,
    collect_hpcc_training,
    train_power_model,
    verification_runs,
    verify_on_npb,
)
from repro.engine import Simulator
from repro.errors import RegressionError
from repro.hardware.pmu import REGRESSION_FEATURES


@pytest.fixture(scope="module")
def small_training():
    """A reduced sweep on the 4-core server — fast but real."""
    from repro.hardware import XEON_E5462

    return collect_hpcc_training(XEON_E5462)


@pytest.fixture(scope="module")
def small_model(small_training):
    return train_power_model(small_training, server_name="Xeon-E5462")


class TestDataset:
    def test_six_feature_columns(self, small_training):
        assert small_training.features.shape[1] == len(REGRESSION_FEATURES)

    def test_labels_cover_all_components(self, small_training):
        programs = {label.split(".")[0] for label in small_training.labels}
        assert programs == {
            "hpcc_hpl",
            "hpcc_dgemm",
            "hpcc_stream",
            "hpcc_ptrans",
            "hpcc_randomaccess",
            "hpcc_fft",
            "hpcc_beff",
        }

    def test_observation_count(self, small_training):
        # 7 components x 4 counts x (duration/10) samples.
        per_count = sum(
            int(c.duration_s // 10)
            for c in __import__(
                "repro.workloads.hpcc", fromlist=["HPCC_COMPONENTS"]
            ).HPCC_COMPONENTS
        )
        assert small_training.n_observations == per_count * 4

    def test_shape_validation(self):
        with pytest.raises(RegressionError):
            RegressionDataset(
                features=np.ones((5, 4)), power=np.ones(5), labels=("a",) * 5
            )
        with pytest.raises(RegressionError):
            RegressionDataset(
                features=np.ones((5, 6)), power=np.ones(4), labels=("a",) * 5
            )


class TestModel:
    def test_training_fit_strong(self, small_model):
        assert small_model.r_square > 0.8

    def test_intercept_collapses_after_normalisation(self, small_model):
        """Table VIII: C = 2.37e-14."""
        assert abs(small_model.intercept) < 1e-10

    def test_coefficients_full_length(self, small_model):
        assert small_model.coefficients_full().shape == (6,)

    def test_predict_watts_inverts_normalisation(self, small_model, small_training):
        predicted = small_model.predict_watts(small_training.features[:50])
        assert predicted.mean() == pytest.approx(
            small_training.power[:50].mean(), rel=0.1
        )

    def test_no_stepwise_option(self, small_training):
        model = train_power_model(small_training, use_stepwise=False)
        assert model.selected == (0, 1, 2, 3, 4, 5)
        assert model.stepwise is None

    def test_stepwise_enters_instructions_early(self, small_model):
        """The paper: cores and instructions are the influential indices."""
        assert small_model.stepwise is not None
        first_two = set(small_model.selected[:2])
        assert 1 in first_two or 0 in first_two


class TestVerificationRuns:
    def test_lexicographic_order(self, x4870):
        labels = [w.label for w in verification_runs(x4870, "B")]
        assert labels == sorted(labels)

    def test_ep_covers_all_counts(self, x4870):
        labels = [w.label for w in verification_runs(x4870, "B")]
        ep_labels = [l for l in labels if l.startswith("ep.")]
        assert len(ep_labels) == 40

    def test_fig12_run_count(self, x4870):
        """bt/sp: 6 square counts, cg/ft/is/lu/mg: 6 powers of two,
        ep: 40 -> 82 bars, matching Fig. 12's x-axis."""
        assert len(verification_runs(x4870, "B")) == 82

    def test_small_server_fewer_runs(self, e5462):
        labels = [w.label for w in verification_runs(e5462, "B")]
        assert len([l for l in labels if l.startswith("ep.")]) == 4


class TestVerification:
    def test_small_server_verification(self, small_model, e5462):
        result = verify_on_npb(e5462, small_model, "B", Simulator(e5462))
        assert result.npb_class == "B"
        assert len(result.labels) == len(result.measured)
        assert result.difference.shape == result.measured.shape

    def test_memory_gated_runs_skipped(self, small_model, e5462):
        """CG class C cannot run on the 8 GB server; the sweep skips it
        instead of failing (the paper's figure holes)."""
        result = verify_on_npb(e5462, small_model, "C", Simulator(e5462))
        assert not any(l.startswith("cg.") for l in result.labels)

    def test_per_program_rms_keys(self, small_model, e5462):
        result = verify_on_npb(e5462, small_model, "B", Simulator(e5462))
        assert set(result.per_program_rms()) <= {
            "bt",
            "cg",
            "ep",
            "ft",
            "is",
            "lu",
            "mg",
            "sp",
        }
