"""Power breakdown analysis."""

import pytest

from repro.core.breakdown import breakdown
from repro.demand import ResourceDemand
from repro.errors import ConfigurationError
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


class TestStructure:
    def test_components_sum_to_total(self, e5462):
        b = breakdown(e5462, HplWorkload(HplConfig(4, 0.95)))
        assert b.total_watts == pytest.approx(
            b.idle_watts + sum(b.components.values())
        )

    def test_idle_point(self, e5462):
        b = breakdown(e5462, ResourceDemand.idle())
        assert b.components == {}
        assert b.total_watts == pytest.approx(134.3727)
        with pytest.raises(ConfigurationError):
            b.dominant_component()

    def test_fractions_sum_to_one(self, e5462):
        b = breakdown(e5462, NpbWorkload("ep", "C", 4))
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_total_matches_calibrated_model(self, e5462):
        """Breakdown total equals the model's pre-noise power."""
        from repro.engine import Simulator

        b = breakdown(e5462, HplWorkload(HplConfig(4, 0.95)))
        run = Simulator(e5462).run(HplWorkload(HplConfig(4, 0.95)))
        assert b.total_watts == pytest.approx(
            run.average_power_watts(), rel=0.01
        )

    def test_format_renders(self, e5462):
        text = breakdown(e5462, NpbWorkload("ep", "C", 4)).format()
        assert "idle" in text
        assert "total" in text


class TestPaperClaims:
    def test_idle_dominates_every_state(self, any_server):
        """The paper's servers burn most of their power at idle — the
        reason load states matter for a fair score."""
        b = breakdown(any_server, NpbWorkload("ep", "C", 1))
        assert b.fractions()["idle"] > 0.5

    def test_intensity_separates_hpl_from_ep(self, e5462):
        hpl = breakdown(e5462, HplWorkload(HplConfig(4, 0.95)))
        ep = breakdown(e5462, NpbWorkload("ep", "C", 4))
        assert (
            hpl.components["core_intensity"]
            > 3 * ep.components["core_intensity"]
        )

    def test_memory_term_is_small(self, e5462):
        """Fig. 5's finding: memory traffic contributes little power."""
        b = breakdown(e5462, HplWorkload(HplConfig(4, 0.95)))
        assert b.components["mem_dyn"] < 0.1 * b.dynamic_watts

    def test_comm_invisible_to_regression_is_nonzero_for_sp(self, x4870):
        b = breakdown(x4870, NpbWorkload("sp", "C", 36))
        assert b.components["comm"] > 0
