"""The canonical figure sweeps."""

import pytest

from repro.core import sweeps
from repro.engine import Simulator


@pytest.fixture(scope="module")
def sim(e5462_mod):
    return Simulator(e5462_mod)


@pytest.fixture(scope="module")
def e5462_mod():
    from repro.hardware import XEON_E5462

    return XEON_E5462


class TestSpecpowerSweep:
    def test_thirteen_levels(self, sim):
        rows = sweeps.specpower_usage_sweep(sim)
        assert len(rows) == 13

    def test_columns(self, sim):
        name, mem, cpu, watts = sweeps.specpower_usage_sweep(sim)[0]
        assert name == "Cal1"
        assert 0 < mem < 14
        assert cpu == 100.0
        assert watts > 100


class TestMixedPowerSweep:
    def test_labels_follow_paper(self, sim):
        labels = [p.label for p in sweeps.mixed_power_sweep(sim, (4, 1))]
        assert labels[0] == "SPECPower.4"
        assert "HPL.4" in labels
        assert "ep.C.4" in labels
        assert "ep.C.1" in labels

    def test_proc_rules_respected(self, sim):
        labels = [p.label for p in sweeps.mixed_power_sweep(sim, (2,))]
        assert "bt.C.2" not in labels  # square rule
        assert "lu.C.2" in labels

    def test_unrunnable_marked_not_dropped(self, sim):
        points = sweeps.mixed_power_sweep(sim, (1,), include_specpower=False)
        cg = next(p for p in points if p.label == "cg.C.1")
        assert not cg.runnable

    def test_specpower_optional(self, sim):
        points = sweeps.mixed_power_sweep(sim, (1,), include_specpower=False)
        assert not any(p.label.startswith("SPEC") for p in points)


class TestHplSweeps:
    def test_ns_sweep_shape(self, sim):
        table = sweeps.hpl_ns_sweep(sim, (1, 4), (0.2, 0.8))
        assert set(table) == {1, 4}
        assert len(table[1]) == 2

    def test_nb_sweep_shape(self, sim):
        table = sweeps.hpl_nb_sweep(sim, (4,), (100, 200))
        assert len(table[4]) == 2

    def test_pq_sweep_shape(self, sim):
        table = sweeps.hpl_pq_sweep(sim, ((2, 2),), (200,))
        assert list(table) == [(2, 2)]


class TestNpbClassSweep:
    def test_power_and_memory_quantities(self, sim):
        power = sweeps.npb_class_sweep(sim, (1,), ("A",), "power")
        memory = sweeps.npb_class_sweep(sim, (1,), ("A",), "memory")
        assert power["ep.1"][0] < memory["lu.1"][0]  # watts vs MB scales

    def test_bad_quantity(self, sim):
        with pytest.raises(ValueError):
            sweeps.npb_class_sweep(sim, (1,), ("A",), "voltage")

    def test_oom_is_none(self, sim):
        table = sweeps.npb_class_sweep(sim, (1,), ("C",), "power")
        assert table["cg.1"][0] is None


class TestEpProfile:
    def test_defaults_to_one_half_full(self, sim, e5462_mod):
        rows = sweeps.ep_profile(sim)
        assert [r[0] for r in rows] == [1, 2, 4]

    def test_row_contents(self, sim):
        n, t, watts, ppw, energy = sweeps.ep_profile(sim, (4,))[0]
        assert n == 4
        assert watts == pytest.approx(174.0, rel=0.05)
        assert energy == pytest.approx(watts / 1000 * t, rel=0.01)
