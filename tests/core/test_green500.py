"""The Green500 comparison method."""

import pytest

from repro.core.green500 import green500_score


class TestPaperValues:
    @pytest.mark.parametrize(
        "server_name, paper_ppw",
        [
            ("Xeon-E5462", 0.158),
            ("Opteron-8347", 0.0618),
            ("Xeon-4870", 0.307),
        ],
    )
    def test_ppw(self, server_name, paper_ppw):
        from repro.hardware import get_server

        result = green500_score(get_server(server_name))
        # The Opteron-8347's published anchors are internally noisy (a
        # single EP core adds 81 W where eight add 165 W), so its fit
        # carries the largest residual of the three machines.
        tolerance = 0.08 if server_name == "Opteron-8347" else 0.06
        assert result.ppw == pytest.approx(paper_ppw, rel=tolerance)

    def test_rmax_is_full_machine_hpl(self, x4870):
        result = green500_score(x4870)
        assert result.rmax_gflops == pytest.approx(344.0, rel=0.01)

    def test_green500_ranking_section_vc3(self):
        """Green500 ranks: 4870 > E5462 > Opteron."""
        from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462

        scores = {
            s.name: green500_score(s).ppw
            for s in (XEON_E5462, OPTERON_8347, XEON_4870)
        }
        assert scores["Xeon-4870"] > scores["Xeon-E5462"] > scores["Opteron-8347"]


def test_server_mismatch_rejected(e5462, x4870):
    from repro.engine import Simulator
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        green500_score(e5462, Simulator(x4870))
