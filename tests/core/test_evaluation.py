"""The proposed evaluation method (Tables IV-VI)."""

import pytest

from repro.core.evaluation import evaluate_server, rank_servers
from repro.engine import Simulator
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def result_e5462(e5462_module):
    return evaluate_server(e5462_module)


@pytest.fixture(scope="module")
def e5462_module():
    from repro.hardware import XEON_E5462

    return XEON_E5462


class TestStructure:
    def test_ten_rows(self, result_e5462):
        assert len(result_e5462.rows) == 10

    def test_idle_row_has_zero_ppw(self, result_e5462):
        idle = result_e5462.row("Idle")
        assert idle.ppw == 0.0
        assert idle.gflops == 0.0

    def test_row_lookup(self, result_e5462):
        assert result_e5462.row("ep.C.4").label == "ep.C.4"
        with pytest.raises(ConfigurationError):
            result_e5462.row("nope")

    def test_score_is_mean_ppw(self, result_e5462):
        expected = sum(r.ppw for r in result_e5462.rows) / 10
        assert result_e5462.score == pytest.approx(expected)


class TestTableIV:
    """Paper Table IV, within the calibration tolerance."""

    def test_idle_watts(self, result_e5462):
        assert result_e5462.row("Idle").watts == pytest.approx(134.37, abs=1.0)

    @pytest.mark.parametrize(
        "label, paper_watts",
        [
            ("ep.C.1", 145.4889),
            ("ep.C.2", 156.9150),
            ("ep.C.4", 174.0141),
            ("HPL P1 Mh", 168.4366),
            ("HPL P4 Mh", 231.3697),
            ("HPL P1 Mf", 168.1937),
            ("HPL P4 Mf", 235.3179),
        ],
    )
    def test_power_column(self, result_e5462, label, paper_watts):
        assert result_e5462.row(label).watts == pytest.approx(
            paper_watts, rel=0.08
        )

    @pytest.mark.parametrize(
        "label, paper_gflops",
        [
            ("ep.C.4", 0.1237),
            ("HPL P4 Mh", 36.1),
            ("HPL P4 Mf", 37.2),
        ],
    )
    def test_performance_column(self, result_e5462, label, paper_gflops):
        assert result_e5462.row(label).gflops == pytest.approx(
            paper_gflops, rel=0.01
        )

    def test_average_power(self, result_e5462):
        assert result_e5462.average_watts == pytest.approx(182.29, rel=0.03)

    def test_average_performance(self, result_e5462):
        assert result_e5462.average_gflops == pytest.approx(13.5, rel=0.03)

    def test_score(self, result_e5462):
        """Paper prints 0.6390 for this server but that is the PPW *sum*;
        the consistent sum/10 value is 0.0639 (see EXPERIMENTS.md)."""
        assert result_e5462.score == pytest.approx(0.0639, rel=0.03)

    def test_power_monotone_in_cores_for_each_program(self, result_e5462):
        assert (
            result_e5462.row("ep.C.1").watts
            < result_e5462.row("ep.C.2").watts
            < result_e5462.row("ep.C.4").watts
        )
        assert (
            result_e5462.row("HPL P1 Mf").watts
            < result_e5462.row("HPL P2 Mf").watts
            < result_e5462.row("HPL P4 Mf").watts
        )

    def test_ep_is_low_power_envelope(self, result_e5462):
        """Finding (2)/(4): at equal cores EP draws the least power."""
        assert (
            result_e5462.row("ep.C.4").watts
            < result_e5462.row("HPL P4 Mh").watts
        )


class TestValidation:
    def test_simulator_server_must_match(self, e5462_module):
        from repro.hardware import XEON_4870

        with pytest.raises(ConfigurationError):
            evaluate_server(e5462_module, Simulator(XEON_4870))

    def test_rank_servers_orders_by_score(self, result_e5462):
        from repro.hardware import OPTERON_8347

        other = evaluate_server(OPTERON_8347)
        ranked = rank_servers([other, result_e5462])
        assert ranked[0].score >= ranked[1].score

    def test_rank_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_servers([])


class TestPartialEvaluation:
    """Graceful degradation: dead states flag coverage, never abort."""

    @pytest.fixture(scope="class")
    def partial(self, e5462_module):
        from repro.fleet import FaultInjection, FleetBackend, RetryPolicy

        backend = FleetBackend(
            workers=1,
            strict=False,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fault=FaultInjection("HPL P4", fail_attempts=99),
        )
        return evaluate_server(
            e5462_module, backend=backend, allow_partial=True
        )

    def test_complete_result_has_full_coverage(self, result_e5462):
        assert result_e5462.complete
        assert result_e5462.coverage == 1.0
        assert result_e5462.missing == ()

    def test_dead_states_land_in_missing(self, partial):
        assert not partial.complete
        assert partial.missing == ("HPL P4 Mh", "HPL P4 Mf")
        assert partial.coverage == pytest.approx(0.8)
        assert len(partial.rows) == 8

    def test_surviving_rows_are_bit_identical(self, partial, result_e5462):
        full = {r.label: r for r in result_e5462.rows}
        for row in partial.rows:
            assert row == full[row.label]

    def test_partial_score_covers_only_survivors(self, partial):
        import numpy as np

        expected = float(np.mean([r.ppw for r in partial.rows]))
        assert partial.score == pytest.approx(expected)

    def test_every_state_failing_raises(self, e5462_module):
        from repro.fleet import FaultInjection, FleetBackend, RetryPolicy

        backend = FleetBackend(
            workers=1,
            strict=False,
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
            fault=FaultInjection("", fail_attempts=99),  # matches all
        )
        with pytest.raises(ConfigurationError):
            evaluate_server(
                e5462_module, backend=backend, allow_partial=True
            )

    def test_without_allow_partial_failures_still_raise(self, e5462_module):
        from repro.errors import SimulationError
        from repro.fleet import FaultInjection, FleetBackend, RetryPolicy

        backend = FleetBackend(
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fault=FaultInjection("HPL P4", fail_attempts=99),
        )
        with pytest.raises(SimulationError):
            evaluate_server(e5462_module, backend=backend)
