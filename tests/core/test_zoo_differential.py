"""Builtin digest identity: the zoo must not move a single bit.

The tentpole contract: attaching DVFS, core types, and the state grid to
the hardware layer leaves the three Table-I builtins *digest-identical*
to their pre-zoo output — the pinned hex constants below were produced
by the commit immediately before the zoo existed — under every execution
path (serial simulator, vectorized batch engine, fleet process pool).
"""

import tempfile
from pathlib import Path

import pytest

from repro.core.evaluation import evaluate_server
from repro.core.grid import evaluation_digest
from repro.engine.simulator import Simulator
from repro.fleet import FleetBackend, ResultCache
from repro.hardware.specs import get_server
from repro.hardware.zoo import get_zoo_server
from repro.io import server_to_dict

#: sha256(canonical_json(evaluation_to_dict(...))) at seed 0, pre-zoo.
PINNED_DIGESTS = {
    "Xeon-E5462":
        "55ba52dd9d44d7b9b265171694c87b45de258134ae4d74d4629173fbc08a574f",
    "Opteron-8347":
        "7058a9100285bda561a8ab225f6bafd8d3f373e14cc1519aa5c241d59e433785",
    "Xeon-4870":
        "5554c6e6a8b9584313236c04a400a80742e7f9d721f3a4ed0d8d9795825a6f00",
}


@pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
class TestBuiltinDigestIdentity:
    def test_serial(self, name):
        server = get_server(name)
        result = evaluate_server(
            server, Simulator(server, seed=0), engine="serial"
        )
        assert evaluation_digest(result) == PINNED_DIGESTS[name]

    def test_batch(self, name):
        server = get_server(name)
        result = evaluate_server(
            server, Simulator(server, seed=0), engine="batch"
        )
        assert evaluation_digest(result) == PINNED_DIGESTS[name]

    def test_fleet(self, name):
        server = get_server(name)
        with tempfile.TemporaryDirectory() as tmp:
            backend = FleetBackend(
                workers=2, cache=ResultCache(Path(tmp) / "cache")
            )
            result = evaluate_server(
                server, Simulator(server, seed=0), backend=backend
            )
        assert evaluation_digest(result) == PINNED_DIGESTS[name]


class TestBuiltinDocumentFormat:
    """Builtin spec documents carry no zoo keys — cache keys and digests
    derived from them stay byte-identical to the historical format."""

    @pytest.mark.parametrize("name", sorted(PINNED_DIGESTS))
    def test_no_zoo_fields_emitted(self, name):
        doc = server_to_dict(get_server(name))
        assert "pstate" not in doc
        assert "core_type" not in doc["processor"]
        assert "dvfs" not in doc["processor"]


class TestZooFleetEquivalence:
    """Fleet workers rebuild zoo simulators from the spec alone."""

    def test_fleet_matches_local_on_a_heterogeneous_server(self):
        server = get_zoo_server("Tesla-K20-Node").at_pstate(1)
        local = evaluate_server(server, Simulator(server, seed=0))
        with tempfile.TemporaryDirectory() as tmp:
            backend = FleetBackend(
                workers=2, cache=ResultCache(Path(tmp) / "cache")
            )
            fleet_result = evaluate_server(
                server, Simulator(server, seed=0), backend=backend
            )
        assert evaluation_digest(fleet_result) == evaluation_digest(local)

    def test_pstates_are_distinct_cache_identities(self):
        server = get_zoo_server("Atom-C2750")
        docs = {
            str(server_to_dict(server.at_pstate(p)))
            for p in range(server.n_pstates)
        }
        assert len(docs) == server.n_pstates
