"""Table rendering."""

import numpy as np
import pytest

from repro.core.evaluation import EvaluationResult, EvaluationRow
from repro.core.regression import VerificationResult
from repro.core.report import (
    format_evaluation_table,
    format_verification,
)


@pytest.fixture()
def eval_result():
    rows = (
        EvaluationRow("Idle", 0.0, 134.37, 600.0, 120.0),
        EvaluationRow("ep.C.4", 0.1237, 174.01, 664.0, 35.0),
        EvaluationRow("HPL P4 Mf", 37.2, 235.32, 7800.0, 520.0),
    )
    return EvaluationResult(server="Xeon-E5462", rows=rows)


def test_evaluation_table_contains_rows(eval_result):
    text = format_evaluation_table(eval_result)
    assert "Xeon-E5462" in text
    assert "ep.C.4" in text
    assert "HPL P4 Mf" in text
    assert "(GFlops/Watt)/10" in text


def test_evaluation_table_values_formatted(eval_result):
    text = format_evaluation_table(eval_result)
    assert "235.3200" in text
    assert "0.1581" in text  # 37.2 / 235.32


def test_verification_format():
    result = VerificationResult(
        server="Xeon-4870",
        npb_class="B",
        labels=("bt.B.1", "bt.B.4"),
        measured=np.array([1.0, 2.0]),
        predicted=np.array([0.5, 2.5]),
    )
    text = format_verification(result)
    assert "bt.B.1" in text
    assert "R^2" in text


def test_verification_truncation():
    result = VerificationResult(
        server="S",
        npb_class="B",
        labels=tuple(f"ep.B.{i}" for i in range(1, 11)),
        measured=np.arange(10.0),
        predicted=np.arange(10.0) + 0.1,
    )
    text = format_verification(result, limit=3)
    assert "more rows" in text


def test_regression_summary_format(e5462):
    from repro.core.regression import collect_hpcc_training, train_power_model
    from repro.core.report import format_coefficients, format_regression_summary

    model = train_power_model(
        collect_hpcc_training(e5462), server_name="Xeon-E5462"
    )
    summary = format_regression_summary(model)
    assert "R Square" in summary
    assert "Observation" in summary
    coeff = format_coefficients(model)
    assert "b2[instruction_num]" in coeff
    assert "C=" in coeff
