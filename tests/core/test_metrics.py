"""The paper's formulas (Eqs. 1, 6-8)."""

import numpy as np
import pytest

from repro.core.metrics import ppw, r_squared, rss, tss
from repro.errors import ConfigurationError


class TestPpw:
    def test_paper_value(self):
        """Table VI: Xeon-4870 HPL P40 Mf."""
        assert ppw(344.0, 1119.6) == pytest.approx(0.307, abs=0.001)

    def test_idle_ppw_zero(self):
        assert ppw(0.0, 134.37) == 0.0

    def test_rejects_zero_power(self):
        with pytest.raises(ConfigurationError):
            ppw(1.0, 0.0)

    def test_rejects_negative_performance(self):
        with pytest.raises(ConfigurationError):
            ppw(-1.0, 100.0)


class TestFitFormulas:
    def test_perfect_fit(self):
        x = np.array([1.0, 2.0, 3.0])
        assert r_squared(x, x) == pytest.approx(1.0)
        assert rss(x, x) == 0.0

    def test_mean_prediction_gives_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        mean = np.full(3, 2.0)
        assert r_squared(x, mean) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        bad = np.array([3.0, 2.0, 1.0])
        assert r_squared(x, bad) < 0

    def test_rss_definition(self):
        measured = np.array([1.0, 2.0])
        regression = np.array([1.5, 1.0])
        assert rss(measured, regression) == pytest.approx(0.25 + 1.0)

    def test_tss_definition(self):
        x = np.array([1.0, 3.0])
        assert tss(x) == pytest.approx(2.0)

    def test_identity_r2_equals_one_minus_ratio(self):
        rng = np.random.default_rng(0)
        measured = rng.normal(size=50)
        regression = measured + rng.normal(0, 0.3, size=50)
        expected = 1 - rss(measured, regression) / tss(measured)
        assert r_squared(measured, regression) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            rss(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tss(np.array([]))

    def test_constant_measured_rejected(self):
        with pytest.raises(ConfigurationError):
            r_squared(np.ones(5), np.ones(5))
