"""The Table III state matrix."""

import pytest

from repro.core.states import core_levels, evaluation_states
from repro.errors import ConfigurationError


def test_ten_rows(any_server):
    assert len(evaluation_states(any_server)) == 10


def test_first_row_is_idle(e5462):
    states = evaluation_states(e5462)
    assert states[0].label == "Idle"
    assert states[0].is_idle
    assert states[0].core_level == 0.0


def test_core_levels_per_server(e5462, opteron, x4870):
    assert core_levels(e5462) == (1, 2, 4)
    assert core_levels(opteron) == (1, 8, 16)
    assert core_levels(x4870) == (1, 20, 40)


def test_table_iv_row_labels(e5462):
    labels = [s.label for s in evaluation_states(e5462)]
    assert labels == [
        "Idle",
        "ep.C.1",
        "ep.C.2",
        "ep.C.4",
        "HPL P1 Mh",
        "HPL P2 Mh",
        "HPL P4 Mh",
        "HPL P1 Mf",
        "HPL P2 Mf",
        "HPL P4 Mf",
    ]


def test_table_vi_row_labels(x4870):
    labels = [s.label for s in evaluation_states(x4870)]
    assert "ep.C.20" in labels
    assert "HPL P40 Mf" in labels


def test_memory_levels(e5462):
    states = evaluation_states(e5462)
    mh = [s for s in states if "Mh" in s.label]
    mf = [s for s in states if "Mf" in s.label]
    assert all(s.memory_level == 0.5 for s in mh)
    assert all(s.memory_level > 0.9 for s in mf)


def test_ep_rows_use_c_scale(e5462):
    states = evaluation_states(e5462)
    ep_rows = [s for s in states if s.label.startswith("ep.")]
    assert len(ep_rows) == 3
    for s in ep_rows:
        assert ".C." in s.label


def test_workloads_bind(any_server):
    for state in evaluation_states(any_server):
        if not state.is_idle:
            demand = state.workload.bind(any_server)
            assert demand.nprocs >= 1
