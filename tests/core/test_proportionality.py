"""Energy-proportionality analysis."""

import pytest

from repro.core.proportionality import proportionality_report
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def reports():
    from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462

    return {
        s.name: proportionality_report(s)
        for s in (XEON_E5462, OPTERON_8347, XEON_4870)
    }


def test_no_paper_server_is_proportional(reports):
    """All three machines idle above half their peak — the observation
    that makes the method's idle state decisive."""
    for report in reports.values():
        assert report.idle_fraction > 0.5


def test_dynamic_range_complements_idle_fraction(reports):
    for report in reports.values():
        assert report.dynamic_range == pytest.approx(
            1.0 - report.idle_fraction
        )


def test_power_curve_monotone_in_load(reports):
    for report in reports.values():
        watts = list(report.watts_at_load)
        assert watts == sorted(watts)


def test_deviation_positive_for_unproportional_servers(reports):
    """Power sits above the ideal proportional line at every load."""
    for report in reports.values():
        assert report.mean_linear_deviation > 0.05


def test_dynamic_ranges_cluster_in_the_2008_2011_band(reports):
    """All three machines have the ~0.4-0.5 dynamic range typical of the
    pre-energy-proportional server generations Ryckbosch et al. survey."""
    for report in reports.values():
        assert 0.35 <= report.dynamic_range <= 0.55


def test_load_validation(reports):
    from repro.hardware import XEON_E5462

    with pytest.raises(ConfigurationError):
        proportionality_report(XEON_E5462, loads=(0.0, 0.5))
    with pytest.raises(ConfigurationError):
        proportionality_report(XEON_E5462, loads=())
