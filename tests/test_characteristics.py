"""Program trait registry."""

import pytest

from repro.characteristics import TRAITS, get_traits
from repro.errors import ConfigurationError


def test_all_npb_programs_have_traits():
    for name in ("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"):
        assert name in TRAITS


def test_all_hpcc_components_have_traits():
    for name in (
        "hpcc_dgemm",
        "hpcc_stream",
        "hpcc_ptrans",
        "hpcc_randomaccess",
        "hpcc_fft",
        "hpcc_beff",
    ):
        assert name in TRAITS


def test_lookup_case_insensitive():
    assert get_traits("EP") is TRAITS["ep"]


def test_hpcc_hpl_aliases_to_hpl():
    assert get_traits("hpcc_hpl") is TRAITS["hpl"]


def test_unknown_program_raises():
    with pytest.raises(ConfigurationError):
        get_traits("nosuch")


def test_hpl_is_the_compute_extreme():
    hpl = get_traits("hpl")
    assert hpl.ipc == 1.0
    assert hpl.fp_intensity == 1.0


def test_ep_is_the_low_power_extreme():
    """EP: CPU-bound but almost no memory traffic or communication."""
    ep = get_traits("ep")
    assert ep.cpu_util == 1.0
    assert ep.mem_intensity <= 0.05
    assert ep.comm_intensity == 0.0


def test_sp_has_most_npb_communication():
    """Section VI-C: SP has the most communication of the suite."""
    sp = get_traits("sp")
    for other in ("bt", "cg", "ep", "ft", "is", "lu", "mg"):
        assert sp.comm_intensity >= get_traits(other).comm_intensity


def test_stream_is_the_bandwidth_extreme():
    assert get_traits("hpcc_stream").mem_intensity == 1.0


def test_beff_is_the_communication_extreme():
    assert get_traits("hpcc_beff").comm_intensity == 1.0


def test_randomaccess_has_worst_locality():
    ra = get_traits("hpcc_randomaccess")
    for other in TRAITS.values():
        assert ra.l1_locality <= other.l1_locality


def test_is_has_negligible_fp():
    assert get_traits("is").fp_intensity <= 0.05


def test_all_traits_within_unit_interval():
    for traits in TRAITS.values():
        for attr in (
            "ipc",
            "fp_intensity",
            "mem_intensity",
            "comm_intensity",
            "l1_locality",
            "l2_locality",
            "l3_locality",
            "read_fraction",
            "cpu_util",
        ):
            assert 0.0 <= getattr(traits, attr) <= 1.0
