"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestServers:
    def test_lists_all_builtins(self, capsys):
        code, out, _ = run_cli(capsys, "servers")
        assert code == 0
        for name in ("Xeon-E5462", "Opteron-8347", "Xeon-4870"):
            assert name in out


class TestEvaluate:
    def test_prints_table(self, capsys):
        code, out, _ = run_cli(capsys, "evaluate", "Xeon-E5462")
        assert code == 0
        assert "HPL P4 Mf" in out
        assert "(GFlops/Watt)/10" in out

    def test_json_export(self, capsys, tmp_path):
        path = tmp_path / "result.json"
        code, out, _ = run_cli(capsys, "evaluate", "Xeon-E5462", "--json", str(path))
        assert code == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "evaluation"
        assert len(data["rows"]) == 10

    def test_unknown_server_is_an_error(self, capsys):
        code, _out, err = run_cli(capsys, "evaluate", "Cray-1")
        assert code == 2
        assert "unknown server" in err


class TestOtherMethods:
    def test_green500(self, capsys):
        code, out, _ = run_cli(capsys, "green500", "Xeon-4870")
        assert code == 0
        assert "GFLOPS/W" in out
        assert "344" in out

    def test_specpower(self, capsys):
        code, out, _ = run_cli(capsys, "specpower", "Xeon-E5462")
        assert code == 0
        assert "ssj_ops/W" in out
        assert "ActiveIdle" in out


class TestRegression:
    def test_runs_on_small_server(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        code, out, _ = run_cli(
            capsys,
            "regression",
            "--server",
            "Xeon-E5462",
            "--classes",
            "B",
            "--save-model",
            str(model_path),
        )
        assert code == 0
        assert "R Square" in out
        assert "NPB class B" in out
        data = json.loads(model_path.read_text())
        assert data["kind"] == "power_regression_model"


class TestFigure:
    @pytest.mark.parametrize("name", ["fig1", "fig2", "fig5", "fig10", "fig11"])
    def test_renders(self, capsys, name):
        code, out, _ = run_cli(capsys, "figure", name)
        assert code == 0
        assert name.replace("fig", "Fig. ") in out

    def test_fig3_on_small_server(self, capsys):
        code, out, _ = run_cli(capsys, "figure", "fig3", "--server", "Xeon-E5462")
        assert code == 0
        assert "HPL.4" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestAnalysisCommands:
    def test_breakdown_npb(self, capsys):
        code, out, _ = run_cli(capsys, "breakdown", "Xeon-E5462", "ep.C.4")
        assert code == 0
        assert "idle" in out and "total" in out

    def test_breakdown_hpl_shorthand(self, capsys):
        code, out, _ = run_cli(capsys, "breakdown", "Xeon-E5462", "hpl")
        assert code == 0
        assert "core_intensity" in out

    def test_breakdown_bad_spec(self, capsys):
        code, _out, err = run_cli(capsys, "breakdown", "Xeon-E5462", "nonsense")
        assert code == 2
        assert "workload" in err

    def test_energy(self, capsys):
        code, out, _ = run_cli(capsys, "energy", "Xeon-E5462", "ep")
        assert code == 0
        assert "energy-optimal" in out

    def test_uncertainty(self, capsys):
        code, out, _ = run_cli(
            capsys, "uncertainty", "Xeon-E5462", "--repeats", "2"
        )
        assert code == 0
        assert "spread" in out


class TestCompare:
    def test_compare_report(self, capsys):
        code, out, _ = run_cli(capsys, "compare")
        assert code == 0
        assert "Evaluation tables" in out
        assert "Green500" in out
        assert "SPECpower" in out
        assert "paper" in out and "measured" in out
        # Regression section only with the flag.
        assert "Tables VII-VIII" not in out

    def test_compare_json_export(self, capsys, tmp_path):
        path = tmp_path / "compare.json"
        code, out, _ = run_cli(capsys, "compare", "--json", str(path))
        assert code == 0
        assert "saved:" in out
        data = json.loads(path.read_text())
        assert data["kind"] == "comparison"
        assert data["entries"]
        entry = data["entries"][0]
        assert {"section", "label", "paper", "measured", "delta_pct"} <= set(
            entry
        )
        sections = {e["section"] for e in data["entries"]}
        assert any(s.startswith("evaluation/") for s in sections)
        assert any(s == "green500" for s in sections)


class TestRankingsJson:
    def test_rankings_json_export(self, capsys, tmp_path):
        path = tmp_path / "rankings.json"
        code, out, _ = run_cli(capsys, "rankings", "--json", str(path))
        assert code == 0
        assert "saved:" in out
        data = json.loads(path.read_text())
        assert data["kind"] == "rankings"
        assert set(data["orderings"]) == {
            "ours (mean PPW)",
            "Green500",
            "SPECpower",
        }
        assert len(data["rows"]) == 3


class TestFleet:
    def test_init_run_status_report_flow(self, capsys, tmp_path):
        spec_path = tmp_path / "campaign.json"
        cache_dir = tmp_path / "cache"
        events = tmp_path / "events.jsonl"
        out_path = tmp_path / "results.json"

        code, out, _ = run_cli(capsys, "fleet", "init", str(spec_path))
        assert code == 0
        assert "demo-e5462" in out
        assert json.loads(spec_path.read_text())["kind"] == "fleet_campaign"

        run_args = (
            "fleet", "run", str(spec_path),
            "--workers", "2",
            "--cache-dir", str(cache_dir),
            "--events", str(events),
            "--out", str(out_path),
        )
        code, out, _ = run_cli(capsys, *run_args)
        assert code == 0
        assert "ep.C.4" in out
        assert "speedup" in out
        data = json.loads(out_path.read_text())
        assert data["kind"] == "fleet_results"
        assert len(data["rows"]) == 5
        assert data["failures"] == []
        assert data["report"]["n_cache_hits"] == 0

        # Warm re-run: every job must come from the cache.
        code, out, _ = run_cli(capsys, *run_args)
        assert code == 0
        assert "cache" in out
        data = json.loads(out_path.read_text())
        assert data["report"]["n_cache_hits"] == 5
        assert all(row["cached"] for row in data["rows"])

        code, out, _ = run_cli(capsys, "fleet", "status", str(events))
        assert code == 0
        assert "finished" in out
        assert "5/5 jobs done" in out

        code, out, _ = run_cli(capsys, "fleet", "report", str(events))
        assert code == 0
        assert "cache hits 5 (100%)" in out

    def test_init_matrix_campaign(self, capsys, tmp_path):
        spec_path = tmp_path / "matrix.json"
        code, out, _ = run_cli(
            capsys, "fleet", "init", str(spec_path), "--matrix", "--seed", "7"
        )
        assert code == 0
        data = json.loads(spec_path.read_text())
        assert data["evaluation_matrix"] is True
        assert data["seed"] == 7

    def test_serial_flag_runs_inline(self, capsys, tmp_path):
        spec_path = tmp_path / "campaign.json"
        run_cli(capsys, "fleet", "init", str(spec_path))
        code, out, _ = run_cli(
            capsys,
            "fleet", "run", str(spec_path),
            "--serial", "--cache-dir", "", "--events", "",
        )
        assert code == 0
        assert "1 worker(s)" in out

    def test_status_without_events_is_an_error(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "fleet", "status", str(tmp_path / "missing.jsonl")
        )
        assert code == 2
        assert "no campaign events" in err


class TestSpecFile:
    def test_green500_from_spec_file(self, capsys, tmp_path):
        import dataclasses

        from repro import io as repro_io
        from repro.hardware import XEON_E5462

        custom = dataclasses.replace(XEON_E5462, name="FileServer")
        path = repro_io.save_json(
            repro_io.server_to_dict(custom), tmp_path / "server.json"
        )
        code, out, _ = run_cli(capsys, "green500", str(path))
        assert code == 0
        assert "FileServer" in out

    def test_bad_spec_file_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "something_else", "schema_version": 1}')
        code, _out, err = run_cli(capsys, "green500", str(path))
        assert code == 2


class TestRegressionFigures:
    def test_fig12_renders(self, capsys):
        code, out, _ = run_cli(capsys, "figure", "fig12")
        assert code == 0
        assert "R^2" in out
        assert "ep.B.40" in out

    def test_fig13_renders(self, capsys):
        code, out, _ = run_cli(capsys, "figure", "fig13")
        assert code == 0
        assert "sp" in out


class TestExport:
    def test_export_writes_files(self, capsys, tmp_path):
        out = tmp_path / "exhibits"
        code, stdout, _ = run_cli(capsys, "export", str(out))
        assert code == 0
        assert (out / "table4_e5462.csv").exists()
        assert "rankings.json" in stdout


class TestChaos:
    def test_list_scenarios(self, capsys):
        code, out, _ = run_cli(capsys, "chaos", "--list")
        assert code == 0
        for name in ("meter-dropout", "fleet-hang", "cache-bitflip",
                     "campaign-resume", "partial-matrix"):
            assert name in out

    def test_single_scenario_runs_green(self, capsys, tmp_path):
        path = tmp_path / "chaos.json"
        code, out, _ = run_cli(
            capsys, "chaos", "--scenario", "meter-guard",
            "--json", str(path),
        )
        assert code == 0
        assert "recovered" in out
        data = json.loads(path.read_text())
        assert data["kind"] == "chaos_report"
        assert data["ok"] is True
        assert data["verdicts"][0]["name"] == "meter-guard"

    def test_unknown_scenario_is_an_error(self, capsys):
        code, _out, err = run_cli(capsys, "chaos", "--scenario", "nope")
        assert code == 2
        assert "unknown scenario" in err


class TestJsonParity:
    """Every study command exports the numbers it printed (--json)."""

    def test_regression_json_export(self, capsys, tmp_path):
        path = tmp_path / "study.json"
        code, out, _ = run_cli(
            capsys, "regression", "--server", "Xeon-E5462",
            "--classes", "B", "--json", str(path),
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "regression_study"
        assert data["server"] == "Xeon-E5462"
        assert sorted(data) == [
            "coefficients", "features", "intercept", "kind",
            "schema_version", "seed", "selected", "server", "summary",
            "verification",
        ]
        assert data["summary"]["observations"] == 604
        assert len(data["coefficients"]) == 6
        (series,) = data["verification"]
        assert series["npb_class"] == "B"
        assert len(series["measured"]) == len(series["labels"])
        # The JSON carries the same R^2 the table printed.
        assert f"{series['r_squared']:.3f}" in out

    def test_breakdown_json_export(self, capsys, tmp_path):
        path = tmp_path / "brk.json"
        code, _out, _ = run_cli(
            capsys, "breakdown", "Xeon-E5462", "ep.C.4",
            "--json", str(path),
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "power_breakdown"
        assert sorted(data) == [
            "components", "dynamic_watts", "fractions", "idle_watts",
            "kind", "program", "schema_version", "server", "total_watts",
        ]
        assert data["total_watts"] == pytest.approx(
            data["idle_watts"] + data["dynamic_watts"]
        )
        assert sum(data["fractions"].values()) == pytest.approx(1.0)

    def test_chaos_json_schema_is_pinned(self, capsys, tmp_path):
        path = tmp_path / "chaos.json"
        code, _out, _ = run_cli(
            capsys, "chaos", "--scenario", "meter-guard",
            "--seed", "1", "--json", str(path),
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert sorted(data) == [
            "kind", "ok", "schema_version", "seed", "verdicts", "wall_s",
        ]
        assert data["kind"] == "chaos_report"
        assert data["schema_version"] == 1
        assert sorted(data["verdicts"][0]) == [
            "detail", "layer", "name", "outcome", "wall_s",
        ]

    def test_fleet_report_json_export(self, capsys, tmp_path):
        spec_path = tmp_path / "campaign.json"
        events = tmp_path / "events.jsonl"
        run_cli(capsys, "fleet", "init", str(spec_path))
        code, _out, _ = run_cli(
            capsys, "fleet", "run", str(spec_path),
            "--serial", "--cache-dir", "", "--events", str(events),
        )
        assert code == 0
        path = tmp_path / "report.json"
        code, out, _ = run_cli(
            capsys, "fleet", "report", str(events), "--json", str(path),
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["kind"] == "fleet_report"
        assert data["n_jobs"] == 5
        assert data["n_failed"] == 0


class TestModel:
    def test_train_predict_registry_validate_flow(self, capsys, tmp_path):
        registry = str(tmp_path / "models")
        code, out, _ = run_cli(
            capsys, "model", "train", "--server", "Xeon-E5462",
            "--registry", registry,
        )
        assert code == 0
        assert "published: xeon-e5462 v1" in out
        assert "model digest: " in out

        code, out, _ = run_cli(capsys, "model", "registry", "--registry", registry)
        assert code == 0
        assert "xeon-e5462" in out and "v000001" in out

        p1, p2 = tmp_path / "p1.json", tmp_path / "p2.json"
        for path in (p1, p2):
            code, out, _ = run_cli(
                capsys, "model", "predict", "--registry", registry,
                "--server", "Xeon-E5462", "--from-npb", "B",
                "--json", str(path),
            )
            assert code == 0
            assert "predictions digest: " in out
        assert p1.read_bytes() == p2.read_bytes()
        data = json.loads(p1.read_text())
        assert data["kind"] == "model_predictions"
        assert data["digest"] in out

        code, out, _ = run_cli(
            capsys, "model", "validate", "--server", "Xeon-E5462",
            "--registry", registry, "--name", "xeon-e5462",
            "--folds", "3", "--classes", "B",
        )
        assert code == 0
        assert "verdict: PASS" in out

        code, out, _ = run_cli(
            capsys, "model", "registry", "--registry", registry, "--verify"
        )
        assert code == 0
        assert "ok" in out

    def test_predict_from_feature_file(self, capsys, tmp_path):
        from repro.engine import Simulator
        from repro.hardware import XEON_E5462
        from repro.model import collect_feature_batch

        registry = str(tmp_path / "models")
        code, _out, _ = run_cli(
            capsys, "model", "train", "--server", "Xeon-E5462",
            "--registry", registry,
        )
        assert code == 0
        batch = collect_feature_batch(
            XEON_E5462, "B", Simulator(XEON_E5462, seed=0)
        )
        features = tmp_path / "batch.json"
        features.write_text(json.dumps(batch.to_dict()))
        code, out, _ = run_cli(
            capsys, "model", "predict", "--registry", registry,
            "--server", "Xeon-E5462", "--features", str(features),
        )
        assert code == 0
        assert "fitting R^2 vs measured" in out

    def test_predict_needs_exactly_one_source(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "model", "predict", "--registry", str(tmp_path),
        )
        assert code == 2
        assert "exactly one" in err

    def test_predict_missing_model_is_an_error(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "model", "predict", "--registry", str(tmp_path),
            "--name", "ghost", "--from-npb", "B",
        )
        assert code == 2
        assert "no model named" in err

    def test_registry_empty_listing(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "model", "registry", "--registry", str(tmp_path)
        )
        assert code == 0
        assert "no artifacts" in out

    def test_verify_flags_corruption(self, capsys, tmp_path):
        registry = str(tmp_path / "models")
        code, _out, _ = run_cli(
            capsys, "model", "train", "--server", "Xeon-E5462",
            "--registry", registry,
        )
        assert code == 0
        artifact = tmp_path / "models" / "xeon-e5462" / "v000001.json"
        artifact.write_text(artifact.read_text().replace("6", "7"))
        code, out, _ = run_cli(
            capsys, "model", "registry", "--registry", registry, "--verify"
        )
        assert code == 1
        assert "CORRUPT" in out

    def test_validate_out_of_band_exits_one(self, capsys, tmp_path, monkeypatch):
        from repro.model import validate as validate_module

        monkeypatch.setitem(
            validate_module.R2_BANDS, "train", (0.99, 1.0)
        )
        code, out, _ = run_cli(
            capsys, "model", "validate", "--server", "Xeon-E5462",
            "--folds", "3", "--classes", "B",
            "--registry", str(tmp_path / "models"),
        )
        assert code == 1
        assert "OUT OF BAND" in out
        assert "verdict: FAIL" in out


class TestZoo:
    def test_list_shows_the_full_registry(self, capsys):
        code, out, _ = run_cli(capsys, "zoo", "list")
        assert code == 0
        assert out.count("GFLOPS peak") >= 8
        for name in ("Tesla-K20-Node", "Xeon-Phi-5110P", "Atom-C2750"):
            assert name in out

    def test_show_renders_the_pstate_ladder(self, capsys):
        code, out, _ = run_cli(capsys, "zoo", "show", "Tesla-K20-Node")
        assert code == 0
        assert "gpu-simd" in out
        assert "P0" in out and "P2" in out
        assert "alpha-power law" in out

    def test_show_unknown_server(self, capsys):
        code, _out, err = run_cli(capsys, "zoo", "show", "Cray-1")
        assert code == 2
        assert "unknown zoo server" in err

    def test_evaluate_one_pstate(self, capsys, tmp_path):
        path = tmp_path / "eval.json"
        code, out, _ = run_cli(
            capsys, "zoo", "evaluate", "Atom-C2750",
            "--pstate", "1", "--json", str(path),
        )
        assert code == 0
        assert "at P1" in out
        data = json.loads(path.read_text())
        assert data["kind"] == "evaluation"
        assert len(data["rows"]) == 10

    def test_evaluate_full_grid(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        code, out, _ = run_cli(
            capsys, "zoo", "evaluate", "Tesla-K20-Node", "--json", str(path),
        )
        assert code == 0
        assert "P-states" in out
        data = json.loads(path.read_text())
        assert data["kind"] == "grid_evaluation"
        assert len(data["cells"]) == 3

    def test_matrix_digest_pin_round_trip(self, capsys, tmp_path):
        pins = tmp_path / "pins.json"
        code, out, _ = run_cli(
            capsys, "zoo", "matrix", "--server", "Atom-C2750",
            "--update-digests", str(pins),
        )
        assert code == 0
        assert "pinned 1 grid digests" in out
        code, out, _ = run_cli(
            capsys, "zoo", "matrix", "--server", "Atom-C2750",
            "--digests", str(pins),
        )
        assert code == 0
        assert "0 failure(s)" in out

    def test_matrix_catches_a_digest_regression(self, capsys, tmp_path):
        pins = tmp_path / "pins.json"
        code, *_ = run_cli(
            capsys, "zoo", "matrix", "--server", "Atom-C2750",
            "--update-digests", str(pins),
        )
        assert code == 0
        data = json.loads(pins.read_text())
        data["servers"]["Atom-C2750"] = "0" * 64
        pins.write_text(json.dumps(data))
        code, _out, err = run_cli(
            capsys, "zoo", "matrix", "--server", "Atom-C2750",
            "--digests", str(pins),
        )
        assert code == 1
        assert "FAIL" in err

    def test_checked_in_pins_match(self, capsys):
        """The committed nightly pin file is in sync with the code."""
        from pathlib import Path

        pins = (
            Path(__file__).parents[1] / "benchmarks" / "zoo-grid-digests.json"
        )
        code, out, _ = run_cli(
            capsys, "zoo", "matrix", "--digests", str(pins),
        )
        assert code == 0
        assert "0 failure(s)" in out
