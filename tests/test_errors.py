"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(errors.ConfigurationError, ValueError)


def test_invalid_process_count_payload():
    exc = errors.InvalidProcessCountError("bt", 3, "a square number")
    assert exc.program == "bt"
    assert exc.nprocs == 3
    assert "bt" in str(exc)
    assert "3" in str(exc)
    assert isinstance(exc, errors.WorkloadError)
    assert isinstance(exc, ValueError)


def test_insufficient_memory_payload():
    exc = errors.InsufficientMemoryError("cg.C.1", 8400.0, 7592.0)
    assert exc.required_mb == 8400.0
    assert exc.available_mb == 7592.0
    assert "cg.C.1" in str(exc)


def test_catch_all_via_base():
    with pytest.raises(errors.ReproError):
        raise errors.MeterError("over range")
