"""SPECpower workload model (Figs. 1-2 behaviour)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.specpower import (
    SpecPowerLevel,
    SpecPowerWorkload,
    full_run_levels,
    ssj_peak_ops,
)


class TestLevels:
    def test_sequence_structure(self):
        levels = full_run_levels()
        assert [lv.name for lv in levels[:3]] == ["Cal1", "Cal2", "Cal3"]
        assert levels[3].name == "100%"
        assert levels[-1].name == "10%"
        assert len(levels) == 13

    def test_loads_descend(self):
        loads = [lv.load for lv in full_run_levels()[3:]]
        assert loads == sorted(loads, reverse=True)

    def test_level_validation(self):
        with pytest.raises(ConfigurationError):
            SpecPowerLevel("bad", 1.5)


class TestCpuUsageTracksLoad:
    """Fig. 2: per-core CPU usage declines with workload level."""

    def test_util_equals_load(self, e5462):
        for load in (1.0, 0.5, 0.1):
            d = SpecPowerWorkload(SpecPowerLevel("x", load)).bind(e5462)
            assert d.cpu_util == pytest.approx(load)

    def test_uses_all_cores(self, any_server):
        d = SpecPowerWorkload(SpecPowerLevel("100%", 1.0)).bind(any_server)
        assert d.nprocs == any_server.total_cores


class TestMemoryStaysLow:
    """Fig. 1: memory usage below 14 % and nearly flat across loads."""

    def test_under_14_percent_with_os(self, e5462):
        from repro.hardware.memory import OS_BASELINE_MB

        for load in (1.0, 0.5, 0.1):
            d = SpecPowerWorkload(SpecPowerLevel("x", load)).bind(e5462)
            usage = (d.memory_mb + OS_BASELINE_MB) / e5462.memory_mb
            assert usage < 0.14

    def test_nearly_flat(self, e5462):
        full = SpecPowerWorkload(SpecPowerLevel("x", 1.0)).bind(e5462)
        idle = SpecPowerWorkload(SpecPowerLevel("x", 0.0)).bind(e5462)
        assert full.memory_mb - idle.memory_mb < 0.02 * e5462.memory_mb


class TestThroughput:
    def test_anchored_peaks(self, e5462, opteron, x4870):
        assert ssj_peak_ops(e5462) == pytest.approx(80_000)
        assert ssj_peak_ops(opteron) == pytest.approx(20_000)
        assert ssj_peak_ops(x4870) == pytest.approx(200_000)

    def test_ops_proportional_to_load(self, e5462):
        full = SpecPowerWorkload(SpecPowerLevel("100%", 1.0))
        half = SpecPowerWorkload(SpecPowerLevel("50%", 0.5))
        assert half.ssj_ops(e5462) == pytest.approx(0.5 * full.ssj_ops(e5462))

    def test_custom_server_fallback(self):
        from repro.hardware.specs import MemorySpec, ProcessorSpec, ServerSpec

        custom = ServerSpec(
            name="Custom",
            processor=ProcessorSpec(
                model="G", frequency_mhz=2000, cores=8, flops_per_cycle=4
            ),
            chips=1,
            memory=MemorySpec(total_gb=16),
        )
        assert ssj_peak_ops(custom) == pytest.approx(2000 * 8 * 2.0)


def test_label(e5462):
    assert SpecPowerWorkload(SpecPowerLevel("50%", 0.5)).label == "SPECpower.50%"
