"""HPCC workload models (the regression training set)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.hpcc import HPCC_COMPONENTS, HpccWorkload


class TestComponents:
    def test_seven_components(self):
        assert len(HPCC_COMPONENTS) == 7
        names = [c.name for c in HPCC_COMPONENTS]
        assert names == [
            "hpl",
            "dgemm",
            "stream",
            "ptrans",
            "randomaccess",
            "fft",
            "beff",
        ]

    def test_lookup_by_name(self, x4870):
        wl = HpccWorkload("STREAM", 8)
        assert wl.component.name == "stream"

    def test_unknown_component(self):
        with pytest.raises(ConfigurationError):
            HpccWorkload("linpack2", 4)

    def test_rejects_nonpositive_nprocs(self):
        with pytest.raises(ConfigurationError):
            HpccWorkload("stream", 0)


class TestBinding:
    def test_label(self):
        assert HpccWorkload("fft", 16).label == "hpcc_fft.16"

    def test_stream_is_bandwidth_saturating(self, x4870):
        d = HpccWorkload("stream", 40).bind(x4870)
        assert d.mem_intensity == 1.0

    def test_beff_is_communication(self, x4870):
        d = HpccWorkload("beff", 40).bind(x4870)
        assert d.comm_intensity == 1.0

    def test_hpl_component_uses_hpl_traits(self, x4870):
        d = HpccWorkload("hpl", 40).bind(x4870)
        assert d.fp_intensity == 1.0
        assert d.gflops > 0

    def test_dgemm_near_peak(self, x4870):
        wl = HpccWorkload("dgemm", 40)
        assert wl.performance_gflops(x4870) == pytest.approx(
            0.92 * x4870.gflops_peak
        )

    def test_memory_kernels_report_no_flops(self, x4870):
        for name in ("stream", "ptrans", "randomaccess", "fft", "beff"):
            assert HpccWorkload(name, 4).performance_gflops(x4870) == 0.0

    def test_footprint_fits_usable(self, any_server):
        from repro.hardware.memory import MemorySubsystem

        usable = MemorySubsystem(any_server).usable_mb
        for component in HPCC_COMPONENTS:
            d = HpccWorkload(component, 1).bind(any_server)
            assert d.memory_mb <= usable

    def test_rejects_oversubscription(self, e5462):
        with pytest.raises(ConfigurationError):
            HpccWorkload("stream", 5).bind(e5462)

    def test_observation_budget(self, x4870):
        """Total per-10s samples across the full sweep lands near the
        paper's 6056 observations."""
        per_count = sum(int(c.duration_s // 10) for c in HPCC_COMPONENTS)
        total = per_count * x4870.total_cores
        assert 5500 <= total <= 6500
