"""NPB workload models: rules, footprints, durations."""

import pytest

from repro.errors import (
    ConfigurationError,
    InsufficientMemoryError,
    InvalidProcessCountError,
)
from repro.workloads.npb import (
    NPB_PROGRAMS,
    NpbClass,
    NpbWorkload,
    ProcRule,
    allowed_process_counts,
    get_npb_program,
)


class TestRegistry:
    def test_eight_programs(self):
        assert set(NPB_PROGRAMS) == {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}

    def test_lookup_case_insensitive(self):
        assert get_npb_program("EP").name == "ep"

    def test_unknown_program(self):
        with pytest.raises(ConfigurationError):
            get_npb_program("zz")


class TestProcRules:
    def test_bt_sp_square(self):
        for name in ("bt", "sp"):
            assert NPB_PROGRAMS[name].proc_rule is ProcRule.SQUARE

    def test_five_programs_power_of_two(self):
        for name in ("cg", "ft", "is", "lu", "mg"):
            assert NPB_PROGRAMS[name].proc_rule is ProcRule.POWER_OF_TWO

    def test_ep_any(self):
        assert NPB_PROGRAMS["ep"].proc_rule is ProcRule.ANY

    def test_square_counts_to_40(self):
        assert allowed_process_counts(ProcRule.SQUARE, 40) == [1, 4, 9, 16, 25, 36]

    def test_pow2_counts_to_40(self):
        assert allowed_process_counts(ProcRule.POWER_OF_TWO, 40) == [
            1,
            2,
            4,
            8,
            16,
            32,
        ]

    def test_any_counts(self):
        assert allowed_process_counts(ProcRule.ANY, 5) == [1, 2, 3, 4, 5]

    def test_table_ii_empty_cells(self):
        """The paper's Table II rows: e.g. 39 procs runs only HPL/EP."""
        runnable_at_39 = [
            name
            for name, prog in NPB_PROGRAMS.items()
            if prog.proc_rule.allows(39)
        ]
        assert runnable_at_39 == ["ep"]
        runnable_at_25 = sorted(
            name
            for name, prog in NPB_PROGRAMS.items()
            if prog.proc_rule.allows(25)
        )
        assert runnable_at_25 == ["bt", "ep", "sp"]

    def test_invalid_count_error(self, e5462):
        with pytest.raises(InvalidProcessCountError) as err:
            NpbWorkload("bt", "C", 2).bind(e5462)
        assert err.value.program == "bt"


class TestClasses:
    def test_parse(self):
        assert NpbClass.parse("c") is NpbClass.C
        assert NpbClass.parse(NpbClass.A) is NpbClass.A

    def test_parse_unknown(self):
        with pytest.raises(ConfigurationError):
            NpbClass.parse("F")

    def test_d_and_e_defined(self):
        assert NpbClass.parse("D") is NpbClass.D
        assert NpbClass.parse("e") is NpbClass.E


class TestFootprints:
    def test_ep_smallest_and_flat(self):
        """Fig. 8: EP has the minimal footprint with the slowest growth."""
        ep = NPB_PROGRAMS["ep"]
        for name, prog in NPB_PROGRAMS.items():
            if name == "ep":
                continue
            assert prog.footprint_mb[NpbClass.C] > ep.footprint_mb[NpbClass.C]
        growth = ep.footprint_mb[NpbClass.C] / ep.footprint_mb[NpbClass.A]
        assert growth == pytest.approx(1.0)

    def test_ft_largest_class_c_excluding_cg(self):
        """Fig. 8: FT has the largest footprint (CG.C is the paper's
        out-of-memory outlier, tracked separately)."""
        ft = NPB_PROGRAMS["ft"].footprint_mb[NpbClass.C]
        for name in ("bt", "ep", "is", "lu", "mg", "sp"):
            assert ft > NPB_PROGRAMS[name].footprint_mb[NpbClass.C]

    def test_ft_fastest_growth(self):
        """Fig. 8: FT's footprint grows fastest with scale.

        BT/SP/LU scale on the same grids as FT (within a percent of the
        same growth factor), so the discriminating comparison is against
        the kernels with sub-grid scaling.
        """
        def growth(name):
            prog = NPB_PROGRAMS[name]
            return prog.footprint_mb[NpbClass.C] / prog.footprint_mb[NpbClass.A]

        for name in ("ep", "mg", "is"):
            assert growth("ft") >= growth(name)
        assert growth("ft") == pytest.approx(growth("bt"), rel=0.05)

    def test_footprints_monotone_in_class(self):
        for prog in NPB_PROGRAMS.values():
            a = prog.footprint_mb[NpbClass.A]
            b = prog.footprint_mb[NpbClass.B]
            c = prog.footprint_mb[NpbClass.C]
            assert a <= b <= c

    def test_mpi_overhead(self):
        prog = NPB_PROGRAMS["bt"]
        assert prog.memory_mb(NpbClass.C, 4) > prog.memory_mb(NpbClass.C, 1)


class TestMemoryGate:
    def test_cg_c_fails_on_8gb(self, e5462):
        """Section IV-C: CG.C cannot run on the Xeon-E5462."""
        with pytest.raises(InsufficientMemoryError):
            NpbWorkload("cg", "C", 1).bind(e5462)

    def test_cg_c_runs_on_32gb(self, opteron):
        NpbWorkload("cg", "C", 16).bind(opteron)

    def test_cg_b_runs_on_8gb(self, e5462):
        NpbWorkload("cg", "B", 1).bind(e5462)

    def test_ft_c_runs_on_8gb(self, e5462):
        NpbWorkload("ft", "C", 1).bind(e5462)

    def test_class_d_excluded_from_small_servers(self, e5462, opteron):
        """Section III-C: D 'consume[s] excessive memory and [is] not
        intended for single servers' — every non-EP program exceeds the
        paper's 8 GB machine, and the heavyweight kernels exceed the
        32 GB one too."""
        for name in ("bt", "cg", "ft", "is", "lu", "mg", "sp"):
            with pytest.raises(InsufficientMemoryError):
                NpbWorkload(name, "D", 1).bind(e5462)
        for name in ("cg", "ft"):
            with pytest.raises(InsufficientMemoryError):
                NpbWorkload(name, "D", 1).bind(opteron)

    def test_class_e_exceeds_even_128gb(self, x4870):
        for name in ("bt", "cg", "ft", "is", "lu", "mg", "sp"):
            with pytest.raises(InsufficientMemoryError):
                NpbWorkload(name, "E", 1).bind(x4870)

    def test_ep_runs_at_any_class(self, e5462):
        """EP's footprint is scale-independent, so even class E binds."""
        demand = NpbWorkload("ep", "E", 4).bind(e5462)
        assert demand.duration_s > NpbWorkload("ep", "C", 4).bind(e5462).duration_s


class TestBinding:
    def test_label(self):
        assert NpbWorkload("lu", "C", 8).label == "lu.C.8"

    def test_ep_performance_uses_anchors(self, e5462):
        d = NpbWorkload("ep", "C", 4).bind(e5462)
        assert d.gflops == pytest.approx(0.1237)

    def test_ep_duration_from_pair_count(self, e5462):
        d = NpbWorkload("ep", "C", 1).bind(e5462)
        assert d.duration_s == pytest.approx((1 << 32) / 1e9 / 0.0319, rel=1e-3)

    def test_class_a_runs_short(self, e5462):
        """Section V-B1: class-A runs finish in seconds (LU.A.2 = 1.01 s)."""
        a = NpbWorkload("lu", "A", 2).bind(e5462)
        c = NpbWorkload("lu", "C", 2).bind(e5462)
        assert a.duration_s < 60
        assert c.duration_s > 3 * a.duration_s

    def test_speedup_reduces_duration(self, x4870):
        t1 = NpbWorkload("mg", "C", 1).bind(x4870).duration_s
        t16 = NpbWorkload("mg", "C", 16).bind(x4870).duration_s
        assert t16 < t1

    def test_rejects_nonpositive_nprocs(self):
        with pytest.raises(ConfigurationError):
            NpbWorkload("ep", "C", 0)

    def test_traits_flow_into_demand(self, e5462):
        d = NpbWorkload("is", "B", 4).bind(e5462)
        assert d.fp_intensity <= 0.05  # integer sort
        assert d.mem_intensity >= 0.5
