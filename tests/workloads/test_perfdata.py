"""Performance anchors and log-log interpolation."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.specs import (
    MemorySpec,
    ProcessorSpec,
    ServerSpec,
    XEON_4870,
    XEON_E5462,
    OPTERON_8347,
)
from repro.workloads.perfdata import (
    EP_PERF_ANCHORS,
    HPL_PERF_ANCHORS,
    ep_gops,
    hpl_gflops,
    interp_loglog,
)


class TestInterp:
    def test_exact_at_anchors(self):
        anchors = {1: 10.0, 4: 36.0}
        assert interp_loglog(anchors, 1) == pytest.approx(10.0)
        assert interp_loglog(anchors, 4) == pytest.approx(36.0)

    def test_power_law_between(self):
        # y = 5 * n^1.5 through (1, 5) and (4, 40).
        anchors = {1: 5.0, 4: 40.0}
        assert interp_loglog(anchors, 2) == pytest.approx(5 * 2**1.5)

    def test_extends_slope_beyond_range(self):
        anchors = {1: 1.0, 2: 2.0}  # slope 1 (linear)
        assert interp_loglog(anchors, 8) == pytest.approx(8.0)

    def test_monotone_for_monotone_anchors(self):
        anchors = HPL_PERF_ANCHORS["Xeon-4870"]["Mf"]
        values = [interp_loglog(anchors, n) for n in range(1, 41)]
        assert values == sorted(values)

    def test_single_anchor_linear(self):
        assert interp_loglog({4: 8.0}, 8) == pytest.approx(16.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            interp_loglog({}, 1)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            interp_loglog({1: 1.0}, 0)


class TestHplAnchors:
    @pytest.mark.parametrize(
        "server, n, key, expected",
        [
            (XEON_E5462, 4, 0.95, 37.2),
            (XEON_E5462, 2, 0.5, 20.2),
            (OPTERON_8347, 16, 0.95, 32.7),
            (XEON_4870, 40, 0.95, 344.0),
            (XEON_4870, 20, 0.5, 162.0),
        ],
    )
    def test_published_values_exact(self, server, n, key, expected):
        assert hpl_gflops(server, n, key) == pytest.approx(expected)

    def test_interpolated_counts_monotone(self):
        values = [hpl_gflops(XEON_4870, n, 0.95) for n in range(1, 41)]
        assert values == sorted(values)

    def test_never_exceeds_peak(self, any_server):
        for n in (1, any_server.half_cores(), any_server.total_cores):
            assert hpl_gflops(any_server, n, 0.95) <= any_server.gflops_peak

    def test_small_problem_penalty(self, e5462):
        small = hpl_gflops(e5462, 4, 0.1)
        large = hpl_gflops(e5462, 4, 0.95)
        assert small < large

    def test_custom_server_fallback(self):
        custom = ServerSpec(
            name="Custom",
            processor=ProcessorSpec(
                model="G", frequency_mhz=2000, cores=8, flops_per_cycle=4
            ),
            chips=2,
            memory=MemorySpec(total_gb=32),
            hpl_efficiency=0.8,
        )
        full = hpl_gflops(custom, 16, 0.95)
        assert full == pytest.approx(0.8 * custom.gflops_peak, rel=0.01)
        # Fewer cores keep slightly higher efficiency.
        one = hpl_gflops(custom, 1, 0.95)
        assert one / custom.gflops_per_core > 0.8

    def test_rejects_bad_fraction(self, e5462):
        with pytest.raises(ConfigurationError):
            hpl_gflops(e5462, 4, 0.0)


class TestEpAnchors:
    @pytest.mark.parametrize(
        "server, n, expected",
        [
            (XEON_E5462, 1, 0.0319),
            (XEON_E5462, 4, 0.1237),
            (OPTERON_8347, 8, 0.1394),
            (XEON_4870, 40, 0.759),
        ],
    )
    def test_published_values_exact(self, server, n, expected):
        assert ep_gops(server, n) == pytest.approx(expected)

    def test_all_forty_counts_defined(self, x4870):
        values = [ep_gops(x4870, n) for n in range(1, 41)]
        assert all(v > 0 for v in values)
        assert values == sorted(values)

    def test_custom_server_fallback_linear(self):
        custom = ServerSpec(
            name="Custom",
            processor=ProcessorSpec(
                model="G", frequency_mhz=2000, cores=8, flops_per_cycle=4
            ),
            chips=1,
            memory=MemorySpec(total_gb=16),
        )
        assert ep_gops(custom, 8) == pytest.approx(8 * ep_gops(custom, 1))

    def test_anchor_tables_cover_all_builtins(self):
        assert set(HPL_PERF_ANCHORS) == set(EP_PERF_ANCHORS)
        assert "Xeon-4870" in HPL_PERF_ANCHORS
