"""Workload base class and the idiosyncrasy factor."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import IDIOSYNCRASY_AMPLITUDE, power_idiosyncrasy


class TestIdiosyncrasy:
    def test_calibrated_programs_are_exactly_one(self):
        assert power_idiosyncrasy("ep.C") == 1.0
        assert power_idiosyncrasy("hpl") == 1.0
        assert power_idiosyncrasy("HPL P4 Mf") == 1.0
        assert power_idiosyncrasy("idle") == 1.0

    def test_deterministic(self):
        assert power_idiosyncrasy("bt.B") == power_idiosyncrasy("bt.B")

    def test_different_programs_differ(self):
        values = {
            power_idiosyncrasy(key)
            for key in ("bt.B", "cg.B", "ft.B", "mg.B", "is.B", "sp.B")
        }
        assert len(values) == 6

    def test_class_changes_the_draw(self):
        assert power_idiosyncrasy("bt.B") != power_idiosyncrasy("bt.C")

    def test_within_band(self):
        for key in ("bt.B", "cg.C", "hpcc_stream", "ft.A", "mg.W"):
            factor = power_idiosyncrasy(key)
            assert 1 - IDIOSYNCRASY_AMPLITUDE <= factor <= 1 + IDIOSYNCRASY_AMPLITUDE

    def test_custom_amplitude(self):
        wide = power_idiosyncrasy("bt.B", amplitude=0.6)
        narrow = power_idiosyncrasy("bt.B", amplitude=0.1)
        assert abs(wide - 1) == pytest.approx(6 * abs(narrow - 1))

    def test_amplitude_validation(self):
        with pytest.raises(ConfigurationError):
            power_idiosyncrasy("bt.B", amplitude=1.0)
        with pytest.raises(ConfigurationError):
            power_idiosyncrasy("bt.B", amplitude=-0.1)

    def test_nprocs_not_part_of_key(self):
        """bt.B.4 and bt.B.9 must share a factor — callers pass bt.B."""
        from repro.workloads.npb import NpbWorkload

        a = NpbWorkload("bt", "B", 4).power_factor()
        b = NpbWorkload("bt", "B", 9).power_factor()
        assert a == b


class TestWorkloadProtocol:
    def test_npb_power_factor_class_c_wider(self):
        from repro.workloads.npb import NpbWorkload

        b = NpbWorkload("mg", "B", 4).power_factor()
        c = NpbWorkload("mg", "C", 4).power_factor()
        # Class C uses a wider amplitude; with different hash draws the
        # factors differ, and neither is 1 (mg is not a calibration
        # program).
        assert b != 1.0
        assert c != 1.0
        assert b != c

    def test_hpl_and_ep_factors_are_one(self):
        from repro.workloads.hpl import HplConfig, HplWorkload
        from repro.workloads.npb import NpbWorkload

        assert HplWorkload(HplConfig(4)).power_factor() == 1.0
        assert NpbWorkload("ep", "C", 4).power_factor() == 1.0
