"""HPL workload model (Figs. 5-7 behaviour)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.hpl import (
    HplConfig,
    HplWorkload,
    best_grid,
    block_efficiency,
    grid_efficiency,
    hpl_performance,
)


class TestConfig:
    def test_defaults(self):
        cfg = HplConfig(nprocs=4)
        assert cfg.memory_fraction == 0.95
        assert cfg.nb == 200

    def test_grid_default_most_square(self):
        assert HplConfig(4).grid() == (2, 2)
        assert HplConfig(6).grid() == (2, 3)
        assert HplConfig(7).grid() == (1, 7)
        assert HplConfig(16).grid() == (4, 4)

    def test_explicit_grid(self):
        assert HplConfig(4, p=4, q=1).grid() == (4, 1)

    def test_grid_must_factor_nprocs(self):
        with pytest.raises(ConfigurationError):
            HplConfig(4, p=3, q=2)

    def test_grid_given_together(self):
        with pytest.raises(ConfigurationError):
            HplConfig(4, p=2)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            HplConfig(4, memory_fraction=1.5)

    def test_rejects_bad_nb(self):
        with pytest.raises(ConfigurationError):
            HplConfig(4, nb=0)


class TestBlockEfficiency:
    def test_large_nb_is_free(self):
        assert block_efficiency(200) == 1.0
        assert block_efficiency(150) == 1.0

    def test_nb_50_pays_the_fig6_penalty(self):
        assert block_efficiency(50) == pytest.approx(0.90)

    def test_monotone(self):
        values = [block_efficiency(nb) for nb in (50, 100, 150, 200)]
        assert values == sorted(values)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            block_efficiency(0)


class TestGridEfficiency:
    def test_best_grid_is_free(self):
        assert grid_efficiency(2, 2) == 1.0
        assert grid_efficiency(1, 7) == 1.0  # prime count: only grid

    def test_elongated_grid_small_penalty(self):
        eff = grid_efficiency(4, 1)
        assert 0.96 <= eff < 1.0

    def test_best_grid_factorisation(self):
        assert best_grid(12) == (3, 4)
        assert best_grid(1) == (1, 1)
        assert best_grid(36) == (6, 6)


class TestBinding:
    def test_paper_performance_values(self, e5462):
        d = HplWorkload(HplConfig(4, 0.95)).bind(e5462)
        assert d.gflops == pytest.approx(37.2)
        assert d.program == "HPL P4 Mf"

    def test_mh_label(self, e5462):
        assert HplWorkload(HplConfig(2, 0.5)).label == "HPL P2 Mh"

    def test_memory_tracks_fraction(self, e5462):
        mh = HplWorkload(HplConfig(4, 0.5)).bind(e5462)
        mf = HplWorkload(HplConfig(4, 0.95)).bind(e5462)
        assert mf.memory_mb > 1.8 * mh.memory_mb

    def test_duration_from_flop_count(self, e5462):
        d = HplWorkload(HplConfig(4, 0.95)).bind(e5462)
        n = round((d.memory_mb * 1024**2 / 8) ** 0.5)
        expected = (2 / 3 * n**3 + 2 * n**2) / (d.gflops * 1e9)
        assert d.duration_s == pytest.approx(expected, rel=1e-6)

    def test_more_cores_shorter_run(self, e5462):
        t1 = HplWorkload(HplConfig(1, 0.95)).bind(e5462).duration_s
        t4 = HplWorkload(HplConfig(4, 0.95)).bind(e5462).duration_s
        assert t4 < t1

    def test_small_nb_reduces_intensity(self, e5462):
        full = HplWorkload(HplConfig(4, 0.95, nb=200)).bind(e5462)
        small = HplWorkload(HplConfig(4, 0.95, nb=50)).bind(e5462)
        assert small.fp_intensity < full.fp_intensity
        assert small.gflops < full.gflops

    def test_rejects_oversubscription(self, e5462):
        with pytest.raises(ConfigurationError):
            HplWorkload(HplConfig(5)).bind(e5462)

    def test_hpl_performance_returns_n(self, e5462):
        gflops, n = hpl_performance(e5462, HplConfig(4, 0.5))
        assert gflops > 0
        assert 8 * n * n <= 0.51 * e5462.memory_mb * 1024**2
