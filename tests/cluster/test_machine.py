"""Cluster composition: geometry, serialisation, validation."""

import dataclasses

import pytest

from repro.cluster import (
    CLUSTER_KIND,
    CLUSTER_SCHEMA_VERSION,
    GIGABIT_TREE,
    ClusterSpec,
    InterconnectSpec,
    NodeGroup,
    cluster_from_dict,
    cluster_to_dict,
    demo_cluster,
    homogeneous_cluster,
)
from repro.errors import ConfigurationError
from repro.hardware.specs import get_server


class TestGeometry:
    def test_demo_cluster_shape(self):
        spec = demo_cluster(64)
        assert spec.name == "demo-64"
        assert spec.n_nodes == 64
        assert spec.n_racks == 4
        assert [g.count for g in spec.groups] == [48, 16]
        assert spec.groups[0].server.name == "Xeon-E5462"
        assert spec.groups[1].server.name == "Opteron-8347"

    def test_group_bounds_concatenate_in_declaration_order(self):
        spec = demo_cluster(64)
        assert spec.group_bounds() == [(0, 48), (48, 64)]
        assert spec.group_of_node(0) == 0
        assert spec.group_of_node(47) == 0
        assert spec.group_of_node(48) == 1
        assert spec.node_server(48).name == "Opteron-8347"

    def test_rack_of_node(self):
        spec = demo_cluster(64, nodes_per_rack=16)
        assert spec.rack_of_node(0) == 0
        assert spec.rack_of_node(15) == 0
        assert spec.rack_of_node(16) == 1
        assert spec.rack_of_node(63) == 3

    def test_partial_last_rack_counts(self):
        spec = homogeneous_cluster(get_server("Xeon-E5462"), 17)
        assert spec.n_racks == 2

    def test_node_id_out_of_range(self):
        spec = demo_cluster(8)
        with pytest.raises(ConfigurationError):
            spec.group_of_node(8)
        with pytest.raises(ConfigurationError):
            spec.rack_of_node(-1)

    def test_gflops_peak_sums_groups(self):
        spec = demo_cluster(8)
        expected = sum(g.count * g.server.gflops_peak for g in spec.groups)
        assert spec.gflops_peak == pytest.approx(expected)

    def test_homogeneous_default_name(self):
        spec = homogeneous_cluster(get_server("Xeon-E5462"), 4)
        assert spec.name == "xeon-e5462-x4"
        assert spec.interconnect == GIGABIT_TREE


class TestValidation:
    def test_empty_groups_rejected(self):
        with pytest.raises(ConfigurationError, match="node group"):
            ClusterSpec(name="x", groups=())

    def test_nonpositive_group_count_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            NodeGroup(get_server("Xeon-E5462"), 0)

    def test_nonpositive_rack_width_rejected(self):
        group = NodeGroup(get_server("Xeon-E5462"), 2)
        with pytest.raises(ConfigurationError, match="nodes_per_rack"):
            ClusterSpec(name="x", groups=(group,), nodes_per_rack=0)

    def test_negative_interconnect_power_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            InterconnectSpec(idle_watts_per_node=-1.0)

    def test_demo_cluster_minimum_size(self):
        with pytest.raises(ConfigurationError, match="at least 4"):
            demo_cluster(3)


class TestSerialisation:
    def test_round_trip_builtin_servers(self):
        spec = demo_cluster(64)
        data = cluster_to_dict(spec)
        assert data["kind"] == CLUSTER_KIND
        assert data["schema_version"] == CLUSTER_SCHEMA_VERSION
        # Builtin servers serialise by name, not embedded spec.
        assert data["groups"][0]["server"] == "Xeon-E5462"
        assert cluster_from_dict(data) == spec

    def test_round_trip_custom_server_embeds_spec(self):
        custom = dataclasses.replace(get_server("Xeon-E5462"), name="Custom-X")
        spec = homogeneous_cluster(custom, 2)
        data = cluster_to_dict(spec)
        assert isinstance(data["groups"][0]["server"], dict)
        assert cluster_from_dict(data) == spec

    def test_round_trip_custom_interconnect(self):
        ic = InterconnectSpec(
            name="fat-tree",
            idle_watts_per_node=4.0,
            active_watts_per_node=9.0,
            switch_watts_per_rack=120.0,
            absorb_node_comm=True,
        )
        spec = homogeneous_cluster(get_server("Xeon-E5462"), 4, interconnect=ic)
        assert cluster_from_dict(cluster_to_dict(spec)) == spec

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="expected"):
            cluster_from_dict({"kind": "fleet_campaign"})

    def test_future_schema_version_rejected(self):
        data = cluster_to_dict(demo_cluster(8))
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            cluster_from_dict(data)
