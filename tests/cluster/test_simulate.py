"""Machine-level simulation: rollups, events, knobs, report schema."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterJob,
    ClusterResult,
    InterconnectSpec,
    demo_cluster,
    format_report_document,
    homogeneous_cluster,
    simulate_cluster,
    synthetic_jobmix,
)
from repro.cluster.report import REPORT_KIND, TIMELINE_MAX_POINTS
from repro.demand import ResourceDemand
from repro.errors import ConfigurationError
from repro.fleet.backend import FleetBackend
from repro.fleet.events import EventLog, read_events
from repro.fleet.spec import workload_to_dict
from repro.hardware.specs import get_server


@pytest.fixture(scope="module")
def small_result():
    cluster = demo_cluster(8)
    return simulate_cluster(cluster, synthetic_jobmix(cluster, 6, seed=2))


def comm_job(comm_intensity, duration_s=30.0):
    demand = ResourceDemand(
        program="mpi-heavy",
        nprocs=4,
        duration_s=duration_s,
        gflops=10.0,
        memory_mb=512.0,
        comm_intensity=comm_intensity,
    )
    return ClusterJob(name="mpi-heavy", workload=workload_to_dict(demand))


class TestRollups:
    def test_energy_is_the_1hz_integral(self, small_result):
        r = small_result
        assert r.energy_kj == pytest.approx(float(r.watts.sum()) / 1e3)
        assert r.average_watts == pytest.approx(float(r.watts.mean()))
        assert r.peak_watts == pytest.approx(float(r.watts.max()))
        assert r.watts.size == r.makespan_s

    def test_power_never_drops_below_the_idle_baseline(self, small_result):
        assert float(small_result.watts.min()) >= small_result.idle_watts

    def test_utilisation_is_node_seconds_over_available(self, small_result):
        r = small_result
        expected = r.node_seconds / (r.n_nodes * r.makespan_s)
        assert r.utilisation == pytest.approx(expected)
        assert 0.0 < r.utilisation <= 1.0

    def test_ppw_is_gflop_per_joule(self, small_result):
        r = small_result
        expected = r.total_gflops_seconds / (r.energy_kj * 1e3)
        assert r.ppw == pytest.approx(expected)

    def test_row_lookup(self, small_result):
        assert small_result.row("job-000").name == "job-000"
        with pytest.raises(ConfigurationError, match="no cluster job"):
            small_result.row("job-999")

    def test_runs_are_deterministic(self, small_result):
        cluster = demo_cluster(8)
        again = simulate_cluster(cluster, synthetic_jobmix(cluster, 6, seed=2))
        assert again.rows_digest() == small_result.rows_digest()
        assert np.array_equal(again.watts, small_result.watts)

    def test_format_mentions_the_headline_numbers(self, small_result):
        text = small_result.format()
        assert "PPW" in text
        assert "makespan" in text
        assert "job-000" in text


class TestAbsorbNodeComm:
    def test_absorb_with_fleet_backend_is_an_error(self):
        cluster = homogeneous_cluster(
            get_server("Xeon-E5462"),
            2,
            interconnect=InterconnectSpec(absorb_node_comm=True),
        )
        with pytest.raises(ConfigurationError, match="absorb_node_comm"):
            simulate_cluster(
                cluster, [comm_job(0.5)], backend=FleetBackend(workers=1)
            )

    def test_absorb_lowers_node_watts_for_comm_heavy_jobs(self):
        server = get_server("Xeon-E5462")
        default = simulate_cluster(
            homogeneous_cluster(server, 2), [comm_job(0.8)]
        )
        absorbed = simulate_cluster(
            homogeneous_cluster(
                server,
                2,
                interconnect=InterconnectSpec(absorb_node_comm=True),
            ),
            [comm_job(0.8)],
        )
        assert absorbed.row("mpi-heavy").watts < default.row("mpi-heavy").watts

    def test_absorb_is_a_noop_for_non_communicating_jobs(self):
        server = get_server("Xeon-E5462")
        default = simulate_cluster(
            homogeneous_cluster(server, 2), [comm_job(0.0)]
        )
        absorbed = simulate_cluster(
            homogeneous_cluster(
                server,
                2,
                interconnect=InterconnectSpec(absorb_node_comm=True),
            ),
            [comm_job(0.0)],
        )
        assert absorbed.row("mpi-heavy").watts == pytest.approx(
            default.row("mpi-heavy").watts
        )
        assert np.array_equal(absorbed.watts, default.watts)


class TestEvents:
    def test_cluster_events_share_the_fleet_jsonl_schema(self, tmp_path):
        path = tmp_path / "events.jsonl"
        cluster = demo_cluster(8)
        with EventLog(path) as events:
            simulate_cluster(
                cluster, synthetic_jobmix(cluster, 4, seed=0), events=events
            )
        records = read_events(path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "cluster_start"
        assert kinds[-1] == "cluster_finish"
        assert kinds.count("cluster_job") == 4
        finish = records[-1]
        assert finish["jobs"] == 4
        assert finish["energy_kj"] > 0


class TestReportDocument:
    def test_schema_headline_fields(self, small_result):
        doc = small_result.to_dict()
        assert doc["kind"] == REPORT_KIND
        assert doc["schema_version"] == 1
        assert len(doc["rows"]) == len(small_result.rows)
        assert set(doc["rollups"]) == {
            "energy_kj",
            "average_watts",
            "peak_watts",
            "idle_watts",
            "utilisation",
            "ppw",
        }
        assert doc["rows_digest"] == small_result.rows_digest()

    def test_timeline_is_downsampled(self, small_result):
        long = ClusterResult(
            cluster="x",
            n_nodes=1,
            n_racks=1,
            seed=0,
            placement="compact",
            rows=(),
            times_s=np.arange(5000, dtype=float),
            watts=np.full(5000, 100.0),
            idle_watts=100.0,
            makespan_s=5000,
            node_seconds=0,
        )
        timeline = long.to_dict()["timeline"]
        assert timeline["samples"] == 5000
        assert len(timeline["watts"]) <= TIMELINE_MAX_POINTS
        assert timeline["stride_s"] == 10

    def test_format_report_document_round_trip(self, small_result):
        text = format_report_document(small_result.to_dict())
        assert "rows digest" in text
        assert small_result.cluster in text

    def test_format_report_document_rejects_other_kinds(self):
        with pytest.raises(ConfigurationError, match="expected"):
            format_report_document({"kind": "evaluation"})
        doc = {"kind": REPORT_KIND, "schema_version": 42}
        with pytest.raises(ConfigurationError, match="version"):
            format_report_document(doc)
