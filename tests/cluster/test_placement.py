"""Placement regression: Opteron-8347 EP.C power, Table IV shape.

The paper's Fig. 5 discussion: on the 4-socket Opteron, scattering EP
processes across sockets wakes more chips at low process counts, so
scatter draws more power than compact until the machine is full.  These
numbers are a regression pin for the chip-level placement model the
cluster layer inherits per node — they must not drift by more than
0.1 W.
"""

import pytest

from repro.engine import Simulator
from repro.hardware.specs import get_server
from repro.workloads.npb import NpbWorkload

EXPECTED = {
    "compact": {4: 394.8, 8: 438.2, 16: 511.2},
    "scatter": {4: 442.2, 8: 469.6, 16: 511.2},
}


@pytest.mark.parametrize("policy", sorted(EXPECTED))
@pytest.mark.parametrize("nprocs", sorted(EXPECTED["compact"]))
def test_opteron_ep_power_by_placement(policy, nprocs):
    simulator = Simulator(get_server("Opteron-8347"), placement_policy=policy)
    run = simulator.run(NpbWorkload("ep", "C", nprocs))
    assert run.average_power_watts(0.10) == pytest.approx(
        EXPECTED[policy][nprocs], abs=0.1
    )


def test_full_machine_power_is_placement_independent():
    # With every core active there is nothing left to scatter.
    assert EXPECTED["compact"][16] == EXPECTED["scatter"][16]
