"""The ``python -m repro cluster`` command group."""

import json

import pytest

from repro.cli import build_parser, main
from repro.cluster import PLACEMENT_POLICIES


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInitRunReport:
    def test_full_flow(self, capsys, tmp_path):
        campaign = tmp_path / "campaign.json"
        report = tmp_path / "report.json"
        events = tmp_path / "events.jsonl"

        code, out, _ = run_cli(
            capsys,
            "cluster", "init", str(campaign),
            "--nodes", "8", "--jobs", "4", "--seed", "3",
        )
        assert code == 0
        assert "8 nodes" in out
        data = json.loads(campaign.read_text())
        assert data["kind"] == "cluster_campaign"
        assert len(data["jobs"]) == 4

        code, out, _ = run_cli(
            capsys,
            "cluster", "run", str(campaign),
            "--placement", "scatter",
            "--json", str(report),
            "--events", str(events),
        )
        assert code == 0
        assert "makespan" in out
        assert "PPW" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "cluster_report"
        assert doc["schema_version"] == 1
        assert doc["placement"] == "scatter"
        assert len(doc["rows"]) == 4
        assert events.exists()

        code, out, _ = run_cli(capsys, "cluster", "report", str(report))
        assert code == 0
        assert "rows digest" in out
        assert doc["rows_digest"] in out

    def test_homogeneous_init(self, capsys, tmp_path):
        campaign = tmp_path / "campaign.json"
        code, out, _ = run_cli(
            capsys,
            "cluster", "init", str(campaign),
            "--nodes", "4", "--server", "Opteron-8347", "--jobs", "2",
        )
        assert code == 0
        data = json.loads(campaign.read_text())
        assert data["cluster"]["groups"] == [
            {"server": "Opteron-8347", "count": 4}
        ]

    def test_run_with_workers_matches_default(self, capsys, tmp_path):
        campaign = tmp_path / "campaign.json"
        run_cli(capsys, "cluster", "init", str(campaign),
                "--nodes", "4", "--jobs", "2")
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert run_cli(capsys, "cluster", "run", str(campaign),
                       "--json", str(a))[0] == 0
        assert run_cli(capsys, "cluster", "run", str(campaign),
                       "--workers", "2", "--json", str(b))[0] == 0
        doc_a = json.loads(a.read_text())
        doc_b = json.loads(b.read_text())
        assert doc_a["rows_digest"] == doc_b["rows_digest"]
        assert doc_a["rollups"] == doc_b["rollups"]


class TestArgumentSurface:
    def test_placement_choices_pin_the_policy_list(self):
        # The parser hardcodes the choices (the cluster layer must not be
        # imported at parser build time); keep them in sync.
        parser = build_parser()
        for policy in PLACEMENT_POLICIES:
            args = parser.parse_args(
                ["cluster", "run", "x.json", "--placement", policy]
            )
            assert args.placement == policy

    def test_unknown_placement_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "run", "x.json", "--placement", "spiral"]
            )


class TestErrors:
    def test_run_on_wrong_document_kind(self, capsys, tmp_path):
        path = tmp_path / "not-a-campaign.json"
        path.write_text('{"kind": "evaluation", "schema_version": 1}')
        code, _out, err = run_cli(capsys, "cluster", "run", str(path))
        assert code == 2
        assert "cluster_campaign" in err

    def test_report_on_wrong_document_kind(self, capsys, tmp_path):
        path = tmp_path / "not-a-report.json"
        path.write_text('{"kind": "evaluation", "schema_version": 1}')
        code, _out, err = run_cli(capsys, "cluster", "report", str(path))
        assert code == 2
        assert "cluster_report" in err

    def test_bad_worker_count(self, capsys, tmp_path):
        campaign = tmp_path / "campaign.json"
        run_cli(capsys, "cluster", "init", str(campaign),
                "--nodes", "4", "--jobs", "2")
        code, _out, err = run_cli(
            capsys, "cluster", "run", str(campaign), "--workers", "0"
        )
        assert code == 2
        assert "--workers" in err
