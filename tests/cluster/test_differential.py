"""Differential suite: a 1-node cluster reproduces ``evaluate_server``.

The ten evaluation states, run as single-node cluster jobs on a 1-node
machine, must produce rows *bit-identical* to
:func:`repro.core.evaluation.evaluate_server` — same trimmed-mean watts,
same GFLOPS, same memory, same durations — under every execution path
(serial simulator, vectorized batch engine, fleet process pool).
Digest equality is the whole claim: the cluster layer adds composition,
never new per-node physics.
"""

import pytest

from repro.cluster import (
    evaluation_jobmix,
    evaluation_rows_digest,
    homogeneous_cluster,
    simulate_cluster,
)
from repro.core.evaluation import evaluate_server
from repro.fleet.backend import FleetBackend
from repro.hardware.specs import get_server


@pytest.fixture(scope="module")
def xeon_digest():
    return evaluation_rows_digest(evaluate_server(get_server("Xeon-E5462")))


def one_node_result(server_name, **kwargs):
    server = get_server(server_name)
    cluster = homogeneous_cluster(server, 1)
    return simulate_cluster(
        cluster, evaluation_jobmix(server_name), **kwargs
    )


@pytest.mark.parametrize("engine", ["serial", "batch"])
def test_bit_identical_to_evaluate_server(engine, xeon_digest):
    result = one_node_result("Xeon-E5462", engine=engine)
    assert result.rows_digest() == xeon_digest


def test_bit_identical_under_fleet_backend(xeon_digest):
    result = one_node_result(
        "Xeon-E5462", backend=FleetBackend(workers=2)
    )
    assert result.rows_digest() == xeon_digest


def test_bit_identical_on_the_opteron():
    server = get_server("Opteron-8347")
    expected = evaluation_rows_digest(evaluate_server(server))
    assert one_node_result("Opteron-8347").rows_digest() == expected


def test_row_content_matches_not_just_the_digest(xeon_digest):
    evaluation = evaluate_server(get_server("Xeon-E5462"))
    result = one_node_result("Xeon-E5462")
    by_label = {r.label: r for r in result.rows}
    assert len(by_label) == len(evaluation.rows) == 10
    for row in evaluation.rows:
        cluster_row = by_label[row.label]
        assert cluster_row.watts == row.watts
        assert cluster_row.gflops == row.gflops
        assert cluster_row.memory_mb == row.memory_mb
        assert cluster_row.duration_s == row.duration_s
