"""Scheduler semantics: FCFS, backfill, placement, determinism."""

import pytest

from repro.cluster import (
    PLACEMENT_POLICIES,
    ClusterCampaign,
    ClusterJob,
    campaign_from_dict,
    campaign_to_dict,
    demo_cluster,
    evaluation_jobmix,
    homogeneous_cluster,
    schedule_jobs,
    synthetic_jobmix,
)
from repro.demand import ResourceDemand
from repro.errors import ConfigurationError
from repro.fleet.spec import workload_to_dict
from repro.hardware.specs import get_server


def demand_job(name, duration_s, n_nodes=1, submit_s=0.0, server=None):
    """A job with an exactly controlled runtime (custom demand)."""
    demand = ResourceDemand(
        program=name,
        nprocs=1,
        duration_s=duration_s,
        gflops=1.0,
        memory_mb=100.0,
    )
    return ClusterJob(
        name=name,
        workload=workload_to_dict(demand),
        n_nodes=n_nodes,
        submit_s=submit_s,
        server=server,
    )


def small_cluster(n_nodes=4, nodes_per_rack=2):
    return homogeneous_cluster(
        get_server("Xeon-E5462"), n_nodes, nodes_per_rack=nodes_per_rack
    )


class TestFcfs:
    def test_serial_jobs_queue_on_a_full_machine(self):
        cluster = small_cluster(2)
        jobs = [
            demand_job("a", 100.0, n_nodes=2),
            demand_job("b", 50.0, n_nodes=2),
        ]
        sched = schedule_jobs(cluster, jobs)
        assert sched.jobs[0].start_s == 0
        assert sched.jobs[0].end_s == 100
        assert sched.jobs[1].start_s == 100
        assert sched.makespan_s == 150
        assert sched.node_seconds == 2 * 100 + 2 * 50

    def test_submit_times_round_up_to_the_grid(self):
        cluster = small_cluster(2)
        sched = schedule_jobs(cluster, [demand_job("a", 10.0, submit_s=3.2)])
        assert sched.jobs[0].start_s == 4

    def test_jobs_start_in_parallel_when_nodes_allow(self):
        cluster = small_cluster(4)
        jobs = [demand_job(f"j{i}", 60.0, n_nodes=2) for i in range(2)]
        sched = schedule_jobs(cluster, jobs)
        assert all(sj.start_s == 0 for sj in sched.jobs)
        assert sched.makespan_s == 60


class TestBackfill:
    def test_short_job_backfills_around_a_wide_reservation(self):
        # A holds half the machine; B (whole machine) reserves the
        # shadow time t=100; C fits before it and backfills; D would
        # overrun the reservation and must wait behind B.
        cluster = small_cluster(4)
        jobs = [
            demand_job("a", 100.0, n_nodes=2),
            demand_job("b", 50.0, n_nodes=4),
            demand_job("c", 50.0, n_nodes=2),
            demand_job("d", 200.0, n_nodes=2),
        ]
        starts = {
            sj.job.name: sj.start_s for sj in schedule_jobs(cluster, jobs).jobs
        }
        assert starts["a"] == 0
        assert starts["c"] == 0  # backfilled
        assert starts["b"] == 100  # reservation honoured, not delayed
        assert starts["d"] == 150  # could not backfill past the shadow

    def test_other_group_jobs_backfill_freely(self):
        # The head waits on Xeon nodes; an Opteron job cannot delay it
        # and starts immediately.
        cluster = demo_cluster(8)  # 6 Xeon + 2 Opteron
        jobs = [
            demand_job("a", 100.0, n_nodes=6, server="Xeon-E5462"),
            demand_job("b", 50.0, n_nodes=6, server="Xeon-E5462"),
            demand_job("c", 500.0, n_nodes=2, server="Opteron-8347"),
        ]
        starts = {
            sj.job.name: sj.start_s for sj in schedule_jobs(cluster, jobs).jobs
        }
        assert starts["a"] == 0
        assert starts["c"] == 0
        assert starts["b"] == 100

    def test_unsubmitted_jobs_never_backfill(self):
        cluster = small_cluster(2)
        jobs = [
            demand_job("a", 100.0, n_nodes=2),
            demand_job("b", 50.0, n_nodes=2, submit_s=0.0),
            demand_job("late", 10.0, n_nodes=1, submit_s=99999.0),
        ]
        starts = {
            sj.job.name: sj.start_s for sj in schedule_jobs(cluster, jobs).jobs
        }
        assert starts["late"] == 99999


class TestPlacement:
    def test_compact_fills_lowest_ids(self):
        cluster = small_cluster(8, nodes_per_rack=2)
        sched = schedule_jobs(
            cluster, [demand_job("a", 10.0, n_nodes=4)], placement="compact"
        )
        assert sched.jobs[0].node_ids == (0, 1, 2, 3)

    def test_scatter_spreads_one_node_per_rack_first(self):
        cluster = small_cluster(8, nodes_per_rack=2)
        sched = schedule_jobs(
            cluster, [demand_job("a", 10.0, n_nodes=4)], placement="scatter"
        )
        assert sched.jobs[0].node_ids == (0, 2, 4, 6)

    def test_random_is_seeded_per_job(self):
        cluster = small_cluster(16)
        jobs = [demand_job("a", 10.0, n_nodes=4)]
        one = schedule_jobs(cluster, jobs, placement="random", seed=1)
        two = schedule_jobs(cluster, jobs, placement="random", seed=1)
        other = schedule_jobs(cluster, jobs, placement="random", seed=2)
        assert one.jobs[0].node_ids == two.jobs[0].node_ids
        assert one.jobs[0].node_ids != other.jobs[0].node_ids

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="placement"):
            schedule_jobs(small_cluster(), [demand_job("a", 1.0)], "spiral")


class TestPinningAndErrors:
    def test_server_pin_selects_the_matching_group(self):
        cluster = demo_cluster(8)
        sched = schedule_jobs(
            cluster, [demand_job("a", 10.0, server="Opteron-8347")]
        )
        assert sched.jobs[0].server == "Opteron-8347"
        assert sched.jobs[0].node_ids[0] >= 6

    def test_too_wide_job_rejected(self):
        with pytest.raises(ConfigurationError, match="large enough"):
            schedule_jobs(small_cluster(4), [demand_job("a", 1.0, n_nodes=5)])

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            schedule_jobs(small_cluster(), [])

    def test_job_validation(self):
        with pytest.raises(ConfigurationError, match="n_nodes"):
            demand_job("a", 1.0, n_nodes=0)
        with pytest.raises(ConfigurationError, match="'type'"):
            ClusterJob(name="a", workload={})


class TestDeterminism:
    @pytest.mark.parametrize("placement", PLACEMENT_POLICIES)
    def test_identical_inputs_identical_schedule(self, placement):
        cluster = demo_cluster(16)
        jobs = synthetic_jobmix(cluster, n_jobs=12, seed=5)
        one = schedule_jobs(cluster, jobs, placement=placement, seed=5)
        two = schedule_jobs(cluster, jobs, placement=placement, seed=5)
        assert one == two

    def test_jobmix_is_seeded(self):
        cluster = demo_cluster(16)
        assert synthetic_jobmix(cluster, 8, seed=1) == synthetic_jobmix(
            cluster, 8, seed=1
        )
        assert synthetic_jobmix(cluster, 8, seed=1) != synthetic_jobmix(
            cluster, 8, seed=2
        )

    def test_jobmix_widths_respect_group_size(self):
        cluster = demo_cluster(8)
        for job in synthetic_jobmix(cluster, 32, seed=0):
            assert 1 <= job.n_nodes <= 8


class TestEvaluationJobmix:
    def test_reproduces_the_ten_states(self):
        jobs = evaluation_jobmix("Xeon-E5462")
        assert len(jobs) == 10
        assert jobs[0].name == "Idle"
        assert jobs[0].workload["type"] == "idle"
        assert all(j.n_nodes == 1 and j.submit_s == 0.0 for j in jobs)


class TestCampaignSerialisation:
    def test_round_trip(self):
        cluster = demo_cluster(16)
        campaign = ClusterCampaign(
            name="mix",
            cluster=cluster,
            jobs=tuple(synthetic_jobmix(cluster, 6, seed=3)),
            seed=3,
            placement="scatter",
        )
        assert campaign_from_dict(campaign_to_dict(campaign)) == campaign

    def test_invalid_workload_rejected_at_load_time(self):
        cluster = demo_cluster(8)
        data = campaign_to_dict(
            ClusterCampaign(
                name="mix",
                cluster=cluster,
                jobs=tuple(synthetic_jobmix(cluster, 2, seed=0)),
            )
        )
        data["jobs"][0]["workload"] = {"type": "cuda-graph"}
        with pytest.raises(ConfigurationError):
            campaign_from_dict(data)

    def test_campaign_validates_placement(self):
        cluster = demo_cluster(8)
        with pytest.raises(ConfigurationError, match="placement"):
            ClusterCampaign(
                name="x",
                cluster=cluster,
                jobs=tuple(synthetic_jobmix(cluster, 2, seed=0)),
                placement="spiral",
            )
