"""The ResourceDemand contract."""

import pytest

from repro.demand import ResourceDemand
from repro.errors import ConfigurationError


def _demand(**overrides):
    base = dict(
        program="test.C.4",
        nprocs=4,
        duration_s=100.0,
        gflops=10.0,
        memory_mb=1000.0,
    )
    base.update(overrides)
    return ResourceDemand(**base)


def test_basic_construction():
    d = _demand()
    assert d.program == "test.C.4"
    assert not d.is_idle


def test_idle_factory():
    idle = ResourceDemand.idle()
    assert idle.is_idle
    assert idle.nprocs == 0
    assert idle.cpu_util == 0.0
    assert idle.gflops == 0.0


def test_idle_custom_duration():
    assert ResourceDemand.idle(duration_s=30.0).duration_s == 30.0


def test_rejects_negative_nprocs():
    with pytest.raises(ConfigurationError):
        _demand(nprocs=-1)


def test_rejects_zero_duration():
    with pytest.raises(ConfigurationError):
        _demand(duration_s=0.0)


def test_rejects_negative_gflops():
    with pytest.raises(ConfigurationError):
        _demand(gflops=-1.0)


def test_rejects_negative_memory():
    with pytest.raises(ConfigurationError):
        _demand(memory_mb=-1.0)


@pytest.mark.parametrize(
    "field",
    [
        "cpu_util",
        "ipc",
        "fp_intensity",
        "mem_intensity",
        "comm_intensity",
        "l1_locality",
        "l2_locality",
        "l3_locality",
        "read_fraction",
    ],
)
def test_unit_fields_rejected_above_one(field):
    with pytest.raises(ConfigurationError):
        _demand(**{field: 1.5})


@pytest.mark.parametrize("field", ["cpu_util", "ipc", "mem_intensity"])
def test_unit_fields_rejected_below_zero(field):
    with pytest.raises(ConfigurationError):
        _demand(**{field: -0.1})


def test_idle_must_have_zero_util():
    with pytest.raises(ConfigurationError):
        ResourceDemand(
            program="Idle",
            nprocs=0,
            duration_s=10.0,
            gflops=0.0,
            memory_mb=0.0,
            cpu_util=0.5,
        )


def test_with_replaces_and_validates():
    d = _demand()
    d2 = d.with_(nprocs=8)
    assert d2.nprocs == 8
    assert d.nprocs == 4
    with pytest.raises(ConfigurationError):
        d.with_(cpu_util=2.0)


def test_frozen():
    d = _demand()
    with pytest.raises(AttributeError):
        d.nprocs = 2
