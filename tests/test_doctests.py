"""Runs the usage examples embedded in docstrings.

The ``>>>`` examples double as documentation and as tests; this module
executes them so the docs cannot silently rot.
"""

import doctest

import pytest

import repro.core.green500
import repro.core.metrics
import repro.core.spec_method
import repro.kernels.ep
import repro.kernels.is_
import repro.kernels.nas_rng
import repro.kernels.random_access
import repro.kernels.stream
import repro.units
import repro.workloads.hpcc
import repro.workloads.hpl
import repro.workloads.npb.common
import repro.workloads.specpower

MODULES = [
    repro.units,
    repro.core.metrics,
    repro.core.green500,
    repro.core.spec_method,
    repro.kernels.nas_rng,
    repro.kernels.ep,
    repro.kernels.is_,
    repro.kernels.stream,
    repro.kernels.random_access,
    repro.workloads.hpl,
    repro.workloads.hpcc,
    repro.workloads.specpower,
    repro.workloads.npb.common,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
