"""Tracer: span nesting, decorator, JSONL roundtrip, tree rendering."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.tracing import Tracer, format_tree, load_jsonl


def shape(records):
    """The structurally deterministic part of a record list."""
    return [(r.index, r.name, r.depth, r.parent) for r in records]


class TestSpans:
    def test_nesting_sets_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        assert shape(tracer.records()) == [
            (0, "outer", 0, None),
            (1, "middle", 1, 0),
            (2, "inner", 2, 1),
            (3, "sibling", 1, 0),
        ]

    def test_records_are_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # "a" started first, so it owns index 0 even though "b" closed first.
        assert [r.name for r in tracer.records()] == ["a", "b"]

    def test_attrs_and_timing(self):
        tracer = Tracer()
        with tracer.span("work", program="ep.C.4", nprocs=4):
            pass
        (record,) = tracer.records()
        assert record.attrs == {"program": "ep.C.4", "nprocs": 4}
        assert record.duration_s >= 0.0
        assert record.start_s >= 0.0

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record.attrs["error"] == "ValueError"

    def test_open_spans_are_excluded(self):
        tracer = Tracer()
        with tracer.span("open"):
            assert tracer.records() == ()

    def test_clear_restarts(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.clear()
        assert tracer.records() == ()


class TestDecorator:
    def test_wrap_defaults_to_function_name(self):
        tracer = Tracer()

        @tracer.wrap()
        def simulate():
            return 42

        assert simulate() == 42
        (record,) = tracer.records()
        assert record.name.endswith("simulate")

    def test_wrap_with_explicit_name_and_attrs(self):
        tracer = Tracer()

        @tracer.wrap("sim.run", server="Xeon-E5462")
        def run():
            pass

        run()
        run()
        records = tracer.records()
        assert [r.name for r in records] == ["sim.run", "sim.run"]
        assert records[0].attrs == {"server": "Xeon-E5462"}


class TestExport:
    def test_jsonl_roundtrip_is_lossless(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", k="v"):
            with tracer.span("inner"):
                pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        loaded = load_jsonl(path)
        assert loaded == list(tracer.records())

    def test_export_shape_is_deterministic(self, tmp_path):
        def run_once():
            tracer = Tracer()
            with tracer.span("campaign", campaign="demo"):
                for i in range(3):
                    with tracer.span("job", index=i):
                        pass
            return tracer

        a = run_once().export_jsonl(tmp_path / "a.jsonl")
        b = run_once().export_jsonl(tmp_path / "b.jsonl")
        # Timing differs run to run, structure must not.
        assert shape(load_jsonl(a)) == shape(load_jsonl(b))
        assert [r.attrs for r in load_jsonl(a)] == [
            r.attrs for r in load_jsonl(b)
        ]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ConfigurationError):
            load_jsonl(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_jsonl(tmp_path / "absent.jsonl")


class TestFormatTree:
    def test_indents_by_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", program="ep.C.1"):
                pass
        tree = format_tree(tracer.records())
        lines = tree.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "program=ep.C.1" in lines[1]

    def test_empty_tracer_formats_to_placeholder(self):
        assert "no spans" in format_tree([])


class TestModuleHelpers:
    def test_disabled_span_is_noop(self):
        assert not obs.enabled()
        with obs.span("ignored", key="value"):
            pass
        assert obs.get_tracer().records() == ()

    def test_enabled_span_records(self):
        obs.enable()
        with obs.span("seen"):
            pass
        assert [r.name for r in obs.get_tracer().records()] == ["seen"]

    def test_capture_restores_previous_state(self):
        before_tracer = obs.get_tracer()
        assert not obs.enabled()
        with obs.capture() as tracer:
            assert obs.enabled()
            assert obs.get_tracer() is tracer
            with obs.span("inside"):
                pass
        assert not obs.enabled()
        assert obs.get_tracer() is before_tracer
        assert [r.name for r in tracer.records()] == ["inside"]
