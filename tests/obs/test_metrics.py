"""MetricsRegistry: instruments, snapshots, cross-process merging."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("fleet.cache.hit")
        registry.inc("fleet.cache.hit", 2.0)
        assert registry.counter("fleet.cache.hit").value == 3.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.inc("n", -1.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("fleet.workers", 2)
        registry.set_gauge("fleet.workers", 4)
        assert registry.gauge("fleet.workers").value == 4.0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("sim.run.seconds", value)
        hist = registry.histogram("sim.run.seconds")
        assert hist.count == 3
        assert hist.total == 6.0
        assert (hist.min, hist.max) == (1.0, 3.0)
        assert hist.mean == 2.0

    def test_empty_histogram_to_dict(self):
        assert Histogram().to_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ConfigurationError):
            registry.observe("x", 1.0)
        with pytest.raises(ConfigurationError):
            registry.set_gauge("x", 1.0)


class TestSnapshot:
    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b.count")
        registry.inc("a.count")
        registry.observe("z.seconds", 0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # no exotic types
        assert list(snapshot["counters"]) == ["a.count", "b.count"]

    def test_snapshot_deterministic_regardless_of_order(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.inc("a")
        first.inc("b", 2)
        second.inc("b", 2)
        second.inc("a")
        assert first.snapshot() == second.snapshot()

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestMerge:
    def test_counters_add_gauges_overwrite_histograms_combine(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("jobs", 2)
        parent.set_gauge("workers", 1)
        parent.observe("seconds", 1.0)
        worker.inc("jobs", 3)
        worker.set_gauge("workers", 4)
        worker.observe("seconds", 3.0)
        parent.merge(worker.snapshot())
        assert parent.counter("jobs").value == 5.0
        assert parent.gauge("workers").value == 4.0
        hist = parent.histogram("seconds")
        assert hist.count == 2
        assert hist.total == 4.0
        assert (hist.min, hist.max) == (1.0, 3.0)

    def test_merge_of_empty_snapshot_is_identity(self):
        registry = MetricsRegistry()
        registry.inc("a")
        before = registry.snapshot()
        registry.merge(MetricsRegistry().snapshot())
        assert registry.snapshot() == before

    def test_merge_across_real_processes(self):
        # Snapshots are plain dicts, so they cross process boundaries
        # unchanged — the exact path fleet workers use.
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snapshot in pool.map(_worker_snapshot, [1, 2]):
                parent.merge(snapshot)
        assert parent.counter("worker.jobs").value == 3.0  # 1 + 2
        assert parent.histogram("worker.seconds").count == 3


def _worker_snapshot(jobs: int) -> dict:
    registry = MetricsRegistry()
    for i in range(jobs):
        registry.inc("worker.jobs")
        registry.observe("worker.seconds", 0.1 * (i + 1))
    return registry.snapshot()


class TestActiveRegistry:
    def test_use_registry_swaps_and_restores(self):
        outer = obs.get_registry()
        inner = MetricsRegistry()
        with obs.use_registry(inner):
            assert obs.get_registry() is inner
            obs.enable()
            obs.inc("isolated")
        assert obs.get_registry() is outer
        assert inner.counter("isolated").value == 1.0
        assert "isolated" not in outer.snapshot()["counters"]

    def test_helpers_are_noops_when_disabled(self):
        obs.inc("ghost")
        obs.observe("ghost.seconds", 1.0)
        obs.set_gauge("ghost.gauge", 1.0)
        assert obs.get_registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_timed_records_span_count_and_seconds(self):
        obs.enable()
        with obs.timed("step", stage="trim"):
            pass
        registry = obs.get_registry()
        assert registry.counter("step.count").value == 1.0
        assert registry.histogram("step.seconds").count == 1
        assert [r.name for r in obs.get_tracer().records()] == ["step"]
