"""Bench harness: documents, schema, the calibrated regression gate."""

import copy
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import bench


@pytest.fixture(scope="module")
def quick_doc():
    """One cheap real bench run shared by the module's tests."""
    return bench.run_bench(quick=True, repeat=1, only=["sim.single"])


class TestRunBench:
    def test_document_is_schema_valid(self, quick_doc):
        bench.validate_bench_document(quick_doc)  # should not raise

    def test_document_is_json_serialisable(self, quick_doc):
        json.dumps(quick_doc)

    def test_scenario_carries_metrics_snapshot(self, quick_doc):
        (entry,) = quick_doc["scenarios"]
        assert entry["name"] == "sim.single"
        counters = entry["metrics"]["counters"]
        assert counters["sim.run.count"] == entry["iterations"]
        assert entry["metrics"]["histograms"]["sim.run.seconds"]["count"] == (
            entry["iterations"]
        )

    def test_throughput_consistent_with_wall_time(self, quick_doc):
        (entry,) = quick_doc["scenarios"]
        assert entry["throughput"] == pytest.approx(
            entry["operations"] / entry["wall_s"]
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            bench.run_bench(quick=True, repeat=1, only=["sim.nonexistent"])

    def test_bad_repeat_rejected(self):
        with pytest.raises(ConfigurationError):
            bench.run_bench(quick=True, repeat=0)

    def test_scenario_catalogue_is_stable(self):
        names = [s.name for s in bench.available_scenarios()]
        assert names[:3] == ["sim.single", "sim.hpl", "eval.matrix"]
        assert "fleet.w2.cold" in names and "fleet.w2.warm" in names
        assert len(names) == len(set(names))


class TestValidation:
    def test_rejects_wrong_kind(self, quick_doc):
        bad = {**quick_doc, "kind": "evaluation"}
        with pytest.raises(ConfigurationError, match="repro_bench"):
            bench.validate_bench_document(bad)

    def test_rejects_missing_scenario_keys(self, quick_doc):
        bad = copy.deepcopy(quick_doc)
        del bad["scenarios"][0]["throughput"]
        with pytest.raises(ConfigurationError, match="missing"):
            bench.validate_bench_document(bad)

    def test_rejects_nonpositive_calibration(self, quick_doc):
        bad = {**quick_doc, "calibration_ops_per_s": 0.0}
        with pytest.raises(ConfigurationError, match="calibration"):
            bench.validate_bench_document(bad)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no bench document"):
            bench.load_bench_document(tmp_path / "absent.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            bench.load_bench_document(path)


def scaled(document, throughput_factor=1.0, calibration_factor=1.0):
    """A synthetic document with uniformly scaled numbers."""
    out = copy.deepcopy(document)
    out["calibration_ops_per_s"] *= calibration_factor
    for entry in out["scenarios"]:
        entry["throughput"] *= throughput_factor
        entry["wall_s"] /= throughput_factor
    return out


class TestComparison:
    def test_identical_documents_pass(self, quick_doc):
        report = bench.compare_benchmarks(quick_doc, quick_doc)
        assert report["ok"]
        assert report["regressions"] == []
        assert report["scenarios"][0]["calibrated_ratio"] == pytest.approx(1.0)

    def test_detects_2x_slowdown(self, quick_doc):
        # The acceptance scenario: same machine, code got twice as slow.
        slower = scaled(quick_doc, throughput_factor=0.5)
        report = bench.compare_benchmarks(quick_doc, slower)
        assert not report["ok"]
        assert report["regressions"] == ["sim.single"]
        assert "REGRESSED" in bench.format_comparison(report)

    def test_calibration_forgives_a_slower_machine(self, quick_doc):
        # Half the throughput but also half the calibration: the machine
        # is slower, the code is not — the gate must pass.
        slower_machine = scaled(
            quick_doc, throughput_factor=0.5, calibration_factor=0.5
        )
        report = bench.compare_benchmarks(quick_doc, slower_machine)
        assert report["ok"]
        assert report["scenarios"][0]["calibrated_ratio"] == pytest.approx(1.0)

    def test_improvement_never_fails(self, quick_doc):
        faster = scaled(quick_doc, throughput_factor=3.0)
        assert bench.compare_benchmarks(quick_doc, faster)["ok"]

    def test_within_tolerance_passes(self, quick_doc):
        slightly = scaled(quick_doc, throughput_factor=0.85)
        assert bench.compare_benchmarks(
            quick_doc, slightly, tolerance=0.25
        )["ok"]
        assert not bench.compare_benchmarks(
            quick_doc, slightly, tolerance=0.10
        )["ok"]

    def test_disjoint_scenarios_reported_not_failed(self, quick_doc):
        other = copy.deepcopy(quick_doc)
        other["scenarios"][0]["name"] = "sim.other"
        report = bench.compare_benchmarks(quick_doc, other)
        assert report["ok"]
        assert report["only_in_baseline"] == ["sim.single"]
        assert report["only_in_current"] == ["sim.other"]

    def test_bad_tolerance_rejected(self, quick_doc):
        for tolerance in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                bench.compare_benchmarks(
                    quick_doc, quick_doc, tolerance=tolerance
                )


class TestSchemaVersion:
    """Stale baselines fail loud with regeneration guidance, exit 2."""

    def test_mismatch_is_rejected_with_guidance(self, quick_doc):
        bad = {**quick_doc, "schema_version": 99}
        with pytest.raises(
            ConfigurationError, match="unsupported bench schema version 99"
        ) as exc:
            bench.validate_bench_document(bad)
        assert "regenerate" in str(exc.value)
        assert str(bench.BENCH_SCHEMA_VERSION) in str(exc.value)

    def test_load_prefixes_the_offending_path(self, quick_doc, tmp_path):
        bad = copy.deepcopy(quick_doc)
        bad["schema_version"] = 99
        path = tmp_path / "stale-baseline.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ConfigurationError) as exc:
            bench.load_bench_document(path)
        message = str(exc.value)
        assert str(path) in message
        assert "unsupported bench schema version 99" in message

    def test_cli_baseline_with_stale_schema_exits_2(
        self, capsys, quick_doc, tmp_path
    ):
        from repro.cli import main

        bad = copy.deepcopy(quick_doc)
        bad["schema_version"] = 99
        baseline = tmp_path / "stale-baseline.json"
        baseline.write_text(json.dumps(bad))
        code = main(
            [
                "bench", "--quick", "--repeat", "1",
                "--scenario", "sim.single", "--baseline", str(baseline),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "unsupported bench schema version 99" in captured.err


class TestEngineScenarios:
    def test_engine_scenarios_registered(self):
        names = [s.name for s in bench.available_scenarios()]
        for name in (
            "serial_sweep_cold", "batch_sweep_cold", "batch_vs_serial",
        ):
            assert name in names

    def test_batch_vs_serial_meta_carries_speedup(self):
        document = bench.run_bench(
            quick=True, repeat=1, only=["batch_vs_serial"]
        )
        (entry,) = document["scenarios"]
        meta = entry["meta"]
        assert meta["server"] == "Xeon-E5462"
        assert meta["serial_wall_s"] > 0
        assert meta["batch_wall_s"] > 0
        assert meta["speedup"] == pytest.approx(
            meta["serial_wall_s"] / meta["batch_wall_s"]
        )
