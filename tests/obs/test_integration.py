"""Observability wired through the engine, fleet, and CLI.

The contract under test: with ``REPRO_OBS`` unset nothing changes — not
results, not report JSON — and with it set, worker metrics flow from
child processes into the :class:`FleetReport`.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.engine import Simulator
from repro.fleet import (
    CampaignSpec,
    FleetReport,
    FleetRunner,
    campaign_to_dict,
    demo_campaign,
)
from repro.hardware import get_server
from repro.workloads.npb import NpbWorkload


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(scope="module")
def small_campaign():
    """Two cheap EP jobs — enough to exercise the fleet paths."""
    return CampaignSpec(
        name="obs-small",
        servers=(get_server("Xeon-E5462"),),
        workloads=(
            {"type": "npb", "program": "ep", "class": "C", "nprocs": 1},
            {"type": "npb", "program": "ep", "class": "C", "nprocs": 2},
        ),
        seed=2015,
    )


@pytest.fixture()
def failing_campaign_file(tmp_path):
    """A campaign whose second job always fails (64 procs on 8 cores)."""
    spec = CampaignSpec(
        name="obs-failing",
        servers=(get_server("Xeon-E5462"),),
        workloads=(
            {"type": "npb", "program": "ep", "class": "C", "nprocs": 4},
            {"type": "npb", "program": "ep", "class": "C", "nprocs": 64},
        ),
        seed=2015,
    )
    path = tmp_path / "failing.json"
    path.write_text(json.dumps(campaign_to_dict(spec)))
    return path


class TestBitIdentical:
    def test_simulator_results_identical_with_obs_on(self, e5462):
        workload = NpbWorkload("ep", "C", 4)
        baseline = Simulator(e5462, seed=7).run(workload)
        obs.enable()
        instrumented = Simulator(e5462, seed=7).run(workload)
        assert np.array_equal(baseline.times_s, instrumented.times_s)
        assert np.array_equal(
            baseline.measured_watts, instrumented.measured_watts
        )
        assert baseline.pmu_samples == instrumented.pmu_samples

    def test_fleet_outcome_has_no_metrics_by_default(self, small_campaign):
        outcome = FleetRunner(workers=1, cache=None).run(small_campaign)
        assert outcome.ok
        assert outcome.metrics is None
        report_dict = FleetReport.from_outcome(outcome).to_dict()
        assert "metrics" not in report_dict

    def test_disabled_run_leaves_registry_and_tracer_empty(
        self, small_campaign, clean_obs
    ):
        FleetRunner(workers=1, cache=None).run(small_campaign)
        assert clean_obs.snapshot()["counters"] == {}
        assert obs.get_tracer().records() == ()


class TestWorkerMetrics:
    def test_inline_runner_collects_metrics(self, small_campaign):
        obs.enable()
        outcome = FleetRunner(workers=1, cache=None).run(small_campaign)
        counters = outcome.metrics["counters"]
        assert counters["sim.run.count"] == 2.0
        assert counters["meter.samples"] > 0
        assert outcome.metrics["histograms"]["sim.run.seconds"]["count"] == 2

    def test_pool_workers_ship_metrics_home(self, small_campaign):
        obs.enable()
        outcome = FleetRunner(workers=2, cache=None).run(small_campaign)
        counters = outcome.metrics["counters"]
        assert counters["sim.run.count"] == 2.0
        assert counters["fleet.job.completed"] == 2.0

    def test_metrics_reach_report_format_and_dict(self, small_campaign):
        obs.enable()
        outcome = FleetRunner(workers=1, cache=None).run(small_campaign)
        report = FleetReport.from_outcome(outcome)
        assert "worker metrics:" in report.format()
        assert report.to_dict()["metrics"] == outcome.metrics


class TestCliExitCodes:
    def test_fleet_run_exits_1_on_exhausted_retries_serial(
        self, capsys, failing_campaign_file
    ):
        code, out, _ = run_cli(
            capsys, "fleet", "run", str(failing_campaign_file),
            "--serial", "--retries", "1", "--cache-dir", "", "--events", "",
        )
        assert code == 1
        assert "failed 1" in out

    def test_fleet_run_exits_1_on_exhausted_retries_pool(
        self, capsys, failing_campaign_file
    ):
        code, out, _ = run_cli(
            capsys, "fleet", "run", str(failing_campaign_file),
            "--workers", "2", "--retries", "1",
            "--cache-dir", "", "--events", "",
        )
        assert code == 1
        assert "failed 1" in out

    def test_fleet_status_and_report_exit_1_on_failures(
        self, capsys, failing_campaign_file, tmp_path
    ):
        events = tmp_path / "events.jsonl"
        run_cli(
            capsys, "fleet", "run", str(failing_campaign_file),
            "--serial", "--retries", "1", "--cache-dir", "",
            "--events", str(events),
        )
        code, out, _ = run_cli(capsys, "fleet", "status", str(events))
        assert code == 1
        assert "1 failed" in out
        code, _, _ = run_cli(capsys, "fleet", "report", str(events))
        assert code == 1

    def test_fleet_status_and_report_exit_0_on_success(
        self, capsys, tmp_path
    ):
        spec_path = tmp_path / "demo.json"
        spec_path.write_text(json.dumps(campaign_to_dict(demo_campaign())))
        events = tmp_path / "events.jsonl"
        code, _, _ = run_cli(
            capsys, "fleet", "run", str(spec_path), "--serial",
            "--cache-dir", "", "--events", str(events),
        )
        assert code == 0
        assert run_cli(capsys, "fleet", "status", str(events))[0] == 0
        assert run_cli(capsys, "fleet", "report", str(events))[0] == 0


class TestCliObs:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_evaluate_trace_exports_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code, _, err = run_cli(
            capsys, "evaluate", "Xeon-E5462", "--trace", str(trace)
        )
        assert code == 0
        assert "trace:" in err
        records = obs.load_jsonl(trace)
        # The default batch engine evaluates the ten states in one span.
        batch_spans = [r for r in records if r.name == "engine.batch"]
        assert len(batch_spans) == 1
        assert batch_spans[0].attrs["runs"] == 10

    def test_trace_flag_does_not_leak_enablement(self, capsys, tmp_path):
        run_cli(
            capsys, "evaluate", "Xeon-E5462",
            "--trace", str(tmp_path / "t.jsonl"),
        )
        assert not obs.enabled()

    def test_trace_tree_renders_exported_file(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        run_cli(capsys, "evaluate", "Xeon-E5462", "--trace", str(trace))
        code, out, _ = run_cli(capsys, "trace", "tree", str(trace))
        assert code == 0
        assert "engine.batch" in out

    def test_trace_tree_missing_file_is_usage_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "trace", "tree", str(tmp_path / "absent.jsonl")
        )
        assert code == 2
        assert "error:" in err

    def test_bench_list(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "--list")
        assert code == 0
        assert "sim.single" in out
        assert "fleet.w4.warm" in out

    def test_bench_quick_writes_schema_valid_json(self, capsys, tmp_path):
        from repro.obs import bench

        path = tmp_path / "bench.json"
        code, out, _ = run_cli(
            capsys, "bench", "--quick", "--repeat", "1",
            "--scenario", "sim.single", "--json", str(path),
        )
        assert code == 0
        assert "sim.single" in out
        document = bench.load_bench_document(path)  # validates
        assert document["quick"] is True

    def test_bench_baseline_gate_exit_3_on_regression(
        self, capsys, tmp_path
    ):
        from repro.obs import bench

        path = tmp_path / "current.json"
        run_cli(
            capsys, "bench", "--quick", "--repeat", "1",
            "--scenario", "sim.single", "--json", str(path),
        )
        document = json.loads(path.read_text())
        # Fabricate a baseline twice as fast on the same machine.
        for entry in document["scenarios"]:
            entry["throughput"] *= 2.0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document))
        code, out, _ = run_cli(
            capsys, "bench", "--quick", "--repeat", "1",
            "--scenario", "sim.single", "--baseline", str(baseline),
        )
        assert code == 3
        assert "REGRESSED" in out

    def test_bench_baseline_gate_passes_against_itself(
        self, capsys, tmp_path
    ):
        path = tmp_path / "self.json"
        run_cli(
            capsys, "bench", "--quick", "--repeat", "1",
            "--scenario", "sim.single", "--json", str(path),
        )
        # A wide tolerance keeps this exit-0 path test immune to timing
        # noise from neighbouring tests; the gate itself is covered by
        # the synthetic-document comparisons in test_bench.py.
        code, out, _ = run_cli(
            capsys, "bench", "--quick", "--repeat", "2",
            "--scenario", "sim.single", "--baseline", str(path),
            "--tolerance", "0.9",
        )
        assert code == 0
        assert "result: ok" in out
