"""Tests for repro.obs — tracing, metrics, and the bench harness."""
