"""Shared obs fixtures: every test runs against fresh global state."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import runtime


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    """Isolate each test: no env var, fresh registry/tracer, no override."""
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    runtime.reset()
    registry = obs.MetricsRegistry()
    previous_tracer = obs.get_tracer()
    obs.set_tracer(obs.Tracer())
    with obs.use_registry(registry):
        try:
            yield registry
        finally:
            obs.set_tracer(previous_tracer)
            runtime.reset()
