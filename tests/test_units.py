"""Unit-conversion helpers."""

import pytest

from repro import units


def test_byte_constants():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3


def test_gflops_mflops_roundtrip():
    assert units.gflops_to_mflops(1.5) == 1500.0
    assert units.mflops_to_gflops(1500.0) == 1.5
    assert units.mflops_to_gflops(units.gflops_to_mflops(0.123)) == pytest.approx(0.123)


def test_watts_kilowatts_roundtrip():
    assert units.watts_to_kilowatts(1500.0) == 1.5
    assert units.kilowatts_to_watts(1.5) == 1500.0


def test_mb_gb_roundtrip():
    assert units.gb_to_mb(8) == 8192.0
    assert units.mb_to_gb(8192.0) == 8.0


def test_bytes_mb_roundtrip():
    assert units.bytes_to_mb(units.mb_to_bytes(3.5)) == pytest.approx(3.5)


def test_energy_kj_matches_eq2():
    # 1 kW for 60 s is 60 KJ.
    assert units.energy_kj(1000.0, 60.0) == pytest.approx(60.0)


def test_energy_kj_paper_scale():
    # EP.C.1 on the Xeon-E5462: ~145 W for ~135 s is ~19.6 KJ.
    assert units.energy_kj(145.4889, 134.6) == pytest.approx(19.58, abs=0.05)


def test_energy_rejects_negative_power():
    with pytest.raises(ValueError):
        units.energy_kj(-1.0, 10.0)


def test_energy_rejects_negative_time():
    with pytest.raises(ValueError):
        units.energy_kj(1.0, -10.0)


def test_mhz_to_ghz():
    assert units.mhz_to_ghz(2800) == pytest.approx(2.8)
