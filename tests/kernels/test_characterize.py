"""Cache characterisation of kernel access patterns."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.characterize import (
    blocked_matmul_trace,
    characterize,
    random_trace,
    streaming_trace,
)


@pytest.fixture(scope="module")
def profiles():
    return {
        "blocked": characterize(blocked_matmul_trace(32, 8)),
        "stream": characterize(streaming_trace(50_000)),
        "random": characterize(random_trace(30_000, 500_000)),
    }


def test_blocked_beats_streaming_beats_random(profiles):
    """The locality ordering the trait registry encodes, demonstrated on
    the trace-driven cache simulator."""
    assert (
        profiles["blocked"]["l1_hit_rate"]
        > profiles["stream"]["l1_hit_rate"]
        > profiles["random"]["l1_hit_rate"]
    )


def test_random_access_mostly_misses_to_dram(profiles):
    assert profiles["random"]["dram_fraction"] > 0.8


def test_blocked_rarely_reaches_dram(profiles):
    assert profiles["blocked"]["dram_fraction"] < 0.1


def test_streaming_hits_line_reuse(profiles):
    """Sequential doubles hit 7 of 8 accesses within each 64 B line."""
    assert profiles["stream"]["l1_hit_rate"] == pytest.approx(0.875, abs=0.01)


def test_trace_validation():
    with pytest.raises(ConfigurationError):
        blocked_matmul_trace(8, 16)
    with pytest.raises(ConfigurationError):
        streaming_trace(0)
    with pytest.raises(ConfigurationError):
        random_trace(0, 100)
