"""Stencil kernels: SSOR and ADI."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.stencil import adi_sweep, ssor_sweep, thomas_solve


def tridiag_dense(lower, diag, upper):
    n = diag.shape[0]
    a = np.diag(diag)
    a += np.diag(lower[1:], -1)
    a += np.diag(upper[:-1], 1)
    return a


class TestThomas:
    def test_matches_dense_solve(self):
        rng = np.random.default_rng(1)
        n = 20
        lower = rng.uniform(-1, 0, n)
        upper = rng.uniform(-1, 0, n)
        diag = 4.0 + rng.uniform(0, 1, n)  # diagonally dominant
        rhs = rng.standard_normal(n)
        x = thomas_solve(
            lower[None, :], diag[None, :], upper[None, :], rhs[None, :]
        )[0]
        dense = tridiag_dense(lower, diag, upper)
        assert np.allclose(x, np.linalg.solve(dense, rhs), atol=1e-10)

    def test_batch_independence(self):
        rng = np.random.default_rng(2)
        n, batch = 16, 5
        lower = rng.uniform(-1, 0, (batch, n))
        upper = rng.uniform(-1, 0, (batch, n))
        diag = 4.0 + rng.uniform(0, 1, (batch, n))
        rhs = rng.standard_normal((batch, n))
        full = thomas_solve(lower, diag, upper, rhs)
        for i in range(batch):
            single = thomas_solve(
                lower[i : i + 1], diag[i : i + 1], upper[i : i + 1], rhs[i : i + 1]
            )
            assert np.allclose(full[i], single[0])

    def test_identity_system(self):
        n = 8
        x = thomas_solve(
            np.zeros((1, n)), np.ones((1, n)), np.zeros((1, n)), np.full((1, n), 3.0)
        )
        assert np.allclose(x, 3.0)

    def test_zero_pivot_rejected(self):
        n = 4
        with pytest.raises(ConfigurationError):
            thomas_solve(
                np.zeros((1, n)), np.zeros((1, n)), np.zeros((1, n)), np.ones((1, n))
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            thomas_solve(
                np.zeros((1, 4)), np.ones((1, 5)), np.zeros((1, 4)), np.ones((1, 4))
            )


class TestSsor:
    def _setup(self, n=17):
        h = 1.0 / (n - 1)
        u = np.zeros((n, n, n))
        f = np.ones((n, n, n))
        return u, f, h

    def test_converges_to_direct_solution(self):
        """Enough SSOR sweeps reproduce the exact interior solution of
        the 7-point Dirichlet Poisson system."""
        n = 9
        h = 1.0 / (n - 1)
        u = np.zeros((n, n, n))
        f = np.ones((n, n, n))
        # Assemble the dense interior operator (-lap with zero walls).
        m = n - 2
        idx = np.arange(m**3).reshape(m, m, m)
        a = np.zeros((m**3, m**3))
        for i in range(m):
            for j in range(m):
                for k in range(m):
                    row = idx[i, j, k]
                    a[row, row] = 6.0
                    for di, dj, dk in (
                        (1, 0, 0),
                        (-1, 0, 0),
                        (0, 1, 0),
                        (0, -1, 0),
                        (0, 0, 1),
                        (0, 0, -1),
                    ):
                        ni, nj, nk = i + di, j + dj, k + dk
                        if 0 <= ni < m and 0 <= nj < m and 0 <= nk < m:
                            a[row, idx[ni, nj, nk]] = -1.0
        exact = np.linalg.solve(a / (h * h), np.ones(m**3)).reshape(m, m, m)
        for _ in range(400):
            u = ssor_sweep(u, f, h)
        assert np.allclose(u[1:-1, 1:-1, 1:-1], exact, atol=1e-4)

    def test_boundary_fixed(self):
        u, f, h = self._setup()
        u2 = ssor_sweep(u, f, h)
        assert np.all(u2[0] == 0) and np.all(u2[-1] == 0)
        assert np.all(u2[:, 0] == 0) and np.all(u2[:, :, -1] == 0)

    def test_omega_validated(self):
        u, f, h = self._setup(9)
        with pytest.raises(ConfigurationError):
            ssor_sweep(u, f, h, omega=2.5)

    def test_shape_mismatch(self):
        u, f, h = self._setup(9)
        with pytest.raises(ConfigurationError):
            ssor_sweep(u, f[:-1], h)


class TestAdi:
    def test_smooths_toward_steady_state(self):
        n = 17
        h = 1.0 / (n - 1)
        u = np.zeros((n, n, n))
        f = np.zeros((n, n, n))
        f[n // 2, n // 2, n // 2] = 1.0
        u1 = adi_sweep(u, f, h)
        u2 = adi_sweep(u1, f, h)
        # The heat deposits spread: the centre grows, then diffuses.
        assert u1[n // 2, n // 2, n // 2] > 0
        assert np.abs(u2).sum() > np.abs(u1).sum()

    def test_zero_forcing_keeps_zero(self):
        n = 9
        u = np.zeros((n, n, n))
        out = adi_sweep(u, u, 1.0 / (n - 1))
        assert np.allclose(out, 0)

    def test_dt_validated(self):
        n = 9
        u = np.zeros((n, n, n))
        with pytest.raises(ConfigurationError):
            adi_sweep(u, u, 0.1, dt=0)

    def test_stability_large_dt(self):
        """Implicit line solves stay bounded even for large dt."""
        n = 17
        rng = np.random.default_rng(0)
        u = rng.standard_normal((n, n, n))
        out = adi_sweep(u, np.zeros_like(u), 1.0 / (n - 1), dt=10.0)
        assert np.abs(out).max() <= np.abs(u).max() * 1.5
