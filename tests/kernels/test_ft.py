"""FT kernel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.ft import initial_state, run_ft


class TestInitialState:
    def test_deterministic(self):
        a = initial_state((8, 8, 8))
        b = initial_state((8, 8, 8))
        assert np.array_equal(a, b)

    def test_values_in_unit_square(self):
        u = initial_state((8, 8, 8))
        assert np.all(u.real > 0) and np.all(u.real < 1)
        assert np.all(u.imag > 0) and np.all(u.imag < 1)


class TestEvolution:
    def test_checksums_deterministic(self):
        assert run_ft((16, 16, 16), 3).checksums == run_ft((16, 16, 16), 3).checksums

    def test_checksum_count_matches_steps(self):
        assert len(run_ft((8, 8, 8), 5).checksums) == 5

    def test_roundtrip_preserves_energy_initially(self):
        """With tiny alpha, one step barely changes total mass."""
        u0 = initial_state((16, 16, 16))
        result = run_ft((16, 16, 16), 1)
        # Direct recomputation: the evolved field differs from u0 by the
        # decay factor only, which is ~1 for low modes.
        assert abs(result.final_checksum) > 0

    def test_evolution_progresses_but_contracts_gently(self):
        """Each step changes the checksum, but with the tiny diffusion
        constant the per-step relative change is small (the DC mode does
        not decay at all)."""
        result = run_ft((16, 16, 16), 8)
        checks = result.checksums
        for prev, curr in zip(checks, checks[1:]):
            assert curr != prev
            assert abs(curr - prev) < 1e-3 * abs(prev)

    def test_spectral_energy_decays(self):
        """The evolution operator is a strict contraction on every
        non-constant mode."""
        from repro.kernels.ft import _wavenumbers, initial_state

        shape = (8, 8, 8)
        u_hat = np.fft.fftn(initial_state(shape))
        kx = _wavenumbers(8)[:, None, None]
        ky = _wavenumbers(8)[None, :, None]
        kz = _wavenumbers(8)[None, None, :]
        k2 = (kx**2 + ky**2 + kz**2).astype(float)
        decay = np.exp(-4.0e-6 * np.pi**2 * k2)
        nonzero = k2 > 0
        before = np.abs(u_hat[nonzero]) ** 2
        after = np.abs((u_hat * decay)[nonzero]) ** 2
        assert np.all(after < before)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            run_ft((12, 16, 16), 1)

    def test_zero_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            run_ft((8, 8, 8), 0)

    def test_anisotropic_shape(self):
        result = run_ft((8, 16, 32), 2)
        assert result.shape == (8, 16, 32)
