"""The EP kernel."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.ep import N_BINS, EpResult, run_ep


class TestSerial:
    def test_acceptance_near_pi_over_4(self):
        result = run_ep(16)
        assert result.acceptance_rate == pytest.approx(math.pi / 4, abs=0.01)

    def test_counts_sum_to_accepted(self):
        result = run_ep(14)
        assert sum(result.counts) == result.n_accepted

    def test_deterministic(self):
        assert run_ep(12) == run_ep(12)

    def test_gaussian_moments(self):
        """sx/n and sy/n estimate the (zero) Gaussian mean."""
        result = run_ep(18)
        n = result.n_accepted
        assert abs(result.sx / n) < 0.01
        assert abs(result.sy / n) < 0.01

    def test_annulus_counts_decay(self):
        """Nearly all Gaussian deviates fall in the first few annuli."""
        result = run_ep(16)
        assert result.counts[0] > result.counts[2] > result.counts[4]
        assert sum(result.counts[:4]) > 0.999 * result.n_accepted

    def test_m_bounds(self):
        with pytest.raises(ConfigurationError):
            run_ep(0)
        with pytest.raises(ConfigurationError):
            run_ep(40)


class TestParallelDecomposition:
    """The paper's reason for choosing EP: any worker count works and
    produces the same answer."""

    @pytest.mark.parametrize("workers", [2, 3, 5, 8, 16])
    def test_sums_match_serial(self, workers):
        serial = run_ep(14)
        parallel = run_ep(14, n_workers=workers)
        assert parallel.sx == pytest.approx(serial.sx, abs=1e-7)
        assert parallel.sy == pytest.approx(serial.sy, abs=1e-7)

    @pytest.mark.parametrize("workers", [2, 7, 13])
    def test_counts_match_serial_exactly(self, workers):
        assert run_ep(13, n_workers=workers).counts == run_ep(13).counts

    def test_uneven_split(self):
        # 2^10 pairs over 3 workers: 342 + 341 + 341.
        assert run_ep(10, n_workers=3).counts == run_ep(10).counts

    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            run_ep(10, n_workers=0)
        with pytest.raises(ConfigurationError):
            run_ep(2, n_workers=8)


class TestResult:
    def test_combine(self):
        a = EpResult(m=5, sx=1.0, sy=2.0, counts=(1,) * N_BINS)
        b = EpResult(m=5, sx=0.5, sy=-1.0, counts=(2,) * N_BINS)
        c = a.combine(b)
        assert c.sx == 1.5
        assert c.sy == 1.0
        assert c.counts == (3,) * N_BINS

    def test_combine_rejects_mismatched_m(self):
        a = EpResult(m=5, sx=0, sy=0, counts=(0,) * N_BINS)
        b = EpResult(m=6, sx=0, sy=0, counts=(0,) * N_BINS)
        with pytest.raises(ConfigurationError):
            a.combine(b)

    def test_n_pairs(self):
        assert run_ep(10).n_pairs == 1024
