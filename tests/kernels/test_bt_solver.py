"""The miniature BT solver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.bt_solver import BtMiniProblem, bt_adi_step, bt_solve


def problem(n=9, dt=0.05, coupling=None):
    if coupling is None:
        coupling = np.zeros((5, 5))
    return BtMiniProblem(n=n, dt=dt, coupling=coupling)


def centered_forcing(n):
    f = np.zeros((n, n, n, 5))
    f[n // 2, n // 2, n // 2, :] = np.arange(1.0, 6.0)
    return f


class TestStructure:
    def test_zero_forcing_zero_state_stays_zero(self):
        p = problem()
        u = bt_solve(p, np.zeros((9, 9, 9, 5)), steps=3)
        assert np.allclose(u, 0.0)

    def test_forcing_spreads(self):
        p = problem()
        u = bt_solve(p, centered_forcing(9), steps=3)
        centre = u[4, 4, 4]
        neighbour = u[3, 4, 4]
        assert np.all(centre > 0)
        assert np.all(neighbour > 0)
        assert np.all(neighbour < centre)

    def test_components_scale_with_forcing(self):
        """With diagonal-free coupling, component k's response scales
        linearly with its forcing amplitude (1..5)."""
        p = problem()
        u = bt_solve(p, centered_forcing(9), steps=2)
        centre = u[4, 4, 4]
        ratios = centre / centre[0]
        assert np.allclose(ratios, np.arange(1.0, 6.0), rtol=1e-9)

    def test_diagonal_coupling_reduces_to_scalar(self):
        """K = k*I decouples: each component evolves like the scalar ADI
        problem with reaction k."""
        k = 0.7
        p_coupled = problem(coupling=k * np.eye(5))
        u = bt_solve(p_coupled, centered_forcing(9), steps=2)
        # Solve the scalar problem for component 2 (forcing amplitude 3)
        # by embedding it alone.
        f_scalar = np.zeros((9, 9, 9, 5))
        f_scalar[4, 4, 4, 0] = 3.0
        u_scalar = bt_solve(p_coupled, f_scalar, steps=2)
        assert np.allclose(u[..., 2], u_scalar[..., 0], atol=1e-12)

    def test_dirichlet_boundaries_pinned(self):
        p = problem()
        u = bt_solve(p, centered_forcing(9), steps=4)
        assert np.allclose(u[0], 0.0)
        assert np.allclose(u[-1], 0.0)
        assert np.allclose(u[:, 0], 0.0)
        assert np.allclose(u[:, :, -1], 0.0)


class TestStability:
    def test_unconditionally_stable_large_dt(self):
        """The implicit treatment stays bounded even at dt far above the
        explicit CFL limit — BT's reason for paying for block solves."""
        rng = np.random.default_rng(0)
        p = problem(dt=5.0)
        u0 = rng.standard_normal((9, 9, 9, 5))
        u0[0] = u0[-1] = 0.0
        u0[:, 0] = u0[:, -1] = 0.0
        u0[:, :, 0] = u0[:, :, -1] = 0.0
        u = bt_solve(p, np.zeros((9, 9, 9, 5)), steps=5, u0=u0)
        assert np.abs(u).max() <= np.abs(u0).max() * 1.01

    def test_dissipative_coupling_decays(self):
        """A PSD coupling matrix drains energy from the free evolution."""
        coupling = np.diag([1.0, 2.0, 3.0, 4.0, 5.0])
        p = problem(dt=0.2, coupling=coupling)
        rng = np.random.default_rng(1)
        u0 = rng.standard_normal((9, 9, 9, 5)) * 0.1
        u0[0] = u0[-1] = 0.0
        u0[:, 0] = u0[:, -1] = 0.0
        u0[:, :, 0] = u0[:, :, -1] = 0.0
        u1 = bt_solve(p, np.zeros((9, 9, 9, 5)), steps=1, u0=u0)
        u3 = bt_solve(p, np.zeros((9, 9, 9, 5)), steps=3, u0=u0)
        assert np.linalg.norm(u3) < np.linalg.norm(u1)

    def test_steady_state_under_constant_forcing(self):
        """Repeated stepping converges (diffusion balances forcing)."""
        p = problem(dt=0.5)
        f = centered_forcing(9)
        u_a = bt_solve(p, f, steps=60)
        u_b = bt_adi_step(u_a, f, p)
        assert np.abs(u_b - u_a).max() < 1e-3 * np.abs(u_a).max()


class TestValidation:
    def test_grid_too_small(self):
        with pytest.raises(ConfigurationError):
            problem(n=3)

    def test_bad_dt(self):
        with pytest.raises(ConfigurationError):
            problem(dt=0.0)

    def test_bad_coupling_shape(self):
        with pytest.raises(ConfigurationError):
            problem(coupling=np.zeros((4, 4)))

    def test_field_shape_checked(self):
        p = problem()
        with pytest.raises(ConfigurationError):
            bt_adi_step(
                np.zeros((8, 9, 9, 5)), np.zeros((9, 9, 9, 5)), p
            )

    def test_steps_positive(self):
        with pytest.raises(ConfigurationError):
            bt_solve(problem(), np.zeros((9, 9, 9, 5)), steps=0)
