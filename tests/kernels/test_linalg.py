"""Blocked LU and DGEMM."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.linalg import blocked_dgemm, blocked_lu, hpl_residual, lu_solve


@pytest.fixture()
def system():
    rng = np.random.default_rng(7)
    n = 96
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    return a, b


class TestLu:
    @pytest.mark.parametrize("nb", [1, 8, 32, 96, 200])
    def test_factorisation_reconstructs(self, system, nb):
        a, _ = system
        lu, piv = blocked_lu(a, nb=nb)
        l = np.tril(lu, -1) + np.eye(a.shape[0])
        u = np.triu(lu)
        assert np.allclose(l @ u, a[piv], atol=1e-9)

    def test_block_size_does_not_change_answer(self, system):
        a, b = system
        x8 = lu_solve(*blocked_lu(a, nb=8), b)
        x64 = lu_solve(*blocked_lu(a, nb=64), b)
        assert np.allclose(x8, x64)

    def test_solve_accuracy(self, system):
        a, b = system
        x = lu_solve(*blocked_lu(a, nb=16), b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_hpl_residual_passes_acceptance(self, system):
        """HPL accepts residuals below 16."""
        a, b = system
        x = lu_solve(*blocked_lu(a, nb=32), b)
        assert hpl_residual(a, x, b) < 16.0

    def test_hpl_residual_detects_garbage(self, system):
        a, b = system
        assert hpl_residual(a, np.zeros_like(b), b) > 16.0

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = lu_solve(*blocked_lu(a, nb=2), np.array([2.0, 3.0]))
        assert np.allclose(a @ x, [2.0, 3.0])

    def test_singular_matrix_rejected(self):
        a = np.ones((4, 4))
        with pytest.raises(ConfigurationError):
            blocked_lu(a)

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            blocked_lu(np.ones((3, 4)))

    def test_rejects_bad_nb(self, system):
        with pytest.raises(ConfigurationError):
            blocked_lu(system[0], nb=0)

    def test_input_not_mutated(self, system):
        a, _ = system
        before = a.copy()
        blocked_lu(a)
        assert np.array_equal(a, before)

    def test_rhs_length_checked(self, system):
        a, _ = system
        lu, piv = blocked_lu(a)
        with pytest.raises(ConfigurationError):
            lu_solve(lu, piv, np.ones(3))


class TestDgemm:
    @pytest.mark.parametrize("nb", [1, 7, 16, 64, 200])
    def test_matches_numpy(self, nb):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((37, 53))
        b = rng.standard_normal((53, 29))
        assert np.allclose(blocked_dgemm(a, b, nb=nb), a @ b)

    def test_rejects_incompatible_shapes(self):
        with pytest.raises(ConfigurationError):
            blocked_dgemm(np.ones((3, 4)), np.ones((3, 4)))

    def test_rejects_bad_block(self):
        with pytest.raises(ConfigurationError):
            blocked_dgemm(np.ones((4, 4)), np.ones((4, 4)), nb=0)
