"""IS kernel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.is_ import generate_keys, run_is


class TestKeys:
    def test_range(self):
        keys = generate_keys(10_000, 2048)
        assert keys.min() >= 0
        assert keys.max() < 2048

    def test_binomialish_distribution(self):
        """Sum of four uniforms concentrates keys around the middle."""
        keys = generate_keys(100_000, 2048)
        mid = ((keys > 512) & (keys < 1536)).mean()
        assert mid > 0.9

    def test_deterministic(self):
        assert np.array_equal(
            generate_keys(1000, 256), generate_keys(1000, 256)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_keys(0, 256)
        with pytest.raises(ConfigurationError):
            generate_keys(10, 1)


class TestSort:
    def test_full_verification(self):
        assert run_is(m=12).verify()

    def test_sorted_keys_are_permutation(self):
        result = run_is(m=10)
        original = generate_keys(result.n_keys, result.max_key)
        assert np.array_equal(np.sort(original), result.sorted_keys)

    def test_ranks_are_a_permutation(self):
        result = run_is(m=10)
        assert np.array_equal(np.sort(result.ranks), np.arange(result.n_keys))

    def test_ranks_order_keys(self):
        result = run_is(m=10)
        keys = generate_keys(result.n_keys, result.max_key)
        reordered = np.empty_like(keys)
        reordered[result.ranks] = keys
        assert np.array_equal(reordered, result.sorted_keys)

    def test_stability(self):
        """Equal keys keep their input order (stable ranking)."""
        result = run_is(m=8, key_bits=3)  # many duplicates
        keys = generate_keys(result.n_keys, result.max_key)
        same = keys == keys  # all positions
        # For any two equal keys, the earlier one gets the smaller rank.
        order = np.argsort(result.ranks)
        restored = keys[order]
        assert np.all(np.diff(restored) >= 0)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            run_is(m=2)
        with pytest.raises(ConfigurationError):
            run_is(m=10, key_bits=1)
