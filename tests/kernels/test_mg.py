"""Multigrid kernel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.mg import poisson_rhs, residual, v_cycle_solve


class TestRhs:
    def test_zero_mean(self):
        f = poisson_rhs(16)
        assert abs(f.mean()) < 1e-12

    def test_deterministic(self):
        assert np.array_equal(poisson_rhs(16, seed=3), poisson_rhs(16, seed=3))

    def test_shape(self):
        assert poisson_rhs(8).shape == (8, 8, 8)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            poisson_rhs(12)


class TestSolve:
    def test_residual_decreases_every_cycle(self):
        f = poisson_rhs(32)
        result = v_cycle_solve(f, cycles=4)
        norms = result.residual_norms
        assert all(b < a for a, b in zip(norms, norms[1:]))

    def test_convergence_factor_healthy(self):
        """A working V-cycle reduces the residual by >40 % per cycle."""
        result = v_cycle_solve(poisson_rhs(32), cycles=5)
        assert result.convergence_factor < 0.6

    def test_grid_independent_convergence(self):
        """Multigrid's defining property: the rate does not degrade much
        with resolution."""
        small = v_cycle_solve(poisson_rhs(16), cycles=4).convergence_factor
        large = v_cycle_solve(poisson_rhs(64), cycles=4).convergence_factor
        assert large < max(2.5 * small, 0.6)

    def test_solution_zero_mean(self):
        result = v_cycle_solve(poisson_rhs(16), cycles=2)
        assert abs(result.u.mean()) < 1e-10

    def test_residual_operator_consistent(self):
        """r(0, f) == f: the zero guess leaves the full right-hand side."""
        f = poisson_rhs(8)
        assert np.allclose(residual(np.zeros_like(f), f, 1 / 8), f)

    def test_rejects_nonzero_mean_rhs(self):
        f = np.ones((8, 8, 8))
        with pytest.raises(ConfigurationError):
            v_cycle_solve(f)

    def test_rejects_non_cube(self):
        with pytest.raises(ConfigurationError):
            v_cycle_solve(np.zeros((8, 8, 4)))
