"""STREAM, RandomAccess, PTRANS."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.ptrans import run_ptrans
from repro.kernels.random_access import run_random_access
from repro.kernels.stream import run_stream


class TestStream:
    def test_reports_all_four_operations(self):
        result = run_stream(n_elements=50_000, repeats=1)
        assert set(result.bandwidth_gbs) == {"copy", "scale", "add", "triad"}

    def test_bandwidths_positive(self):
        result = run_stream(n_elements=50_000, repeats=1)
        assert all(v > 0 for v in result.bandwidth_gbs.values())

    def test_triad_property(self):
        result = run_stream(n_elements=50_000, repeats=1)
        assert result.triad_gbs == result.bandwidth_gbs["triad"]

    def test_checksum_is_triad_result(self):
        # c = a + 3*b where b = 3*a, so c = 10*a elementwise.
        n = 10_000
        result = run_stream(n_elements=n, repeats=1, scalar=3.0)
        a = np.arange(n) * 1e-6
        assert result.checksum == pytest.approx(float((10 * a).sum()), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_stream(n_elements=10)
        with pytest.raises(ConfigurationError):
            run_stream(repeats=0)


class TestRandomAccess:
    def test_deterministic_fingerprint(self):
        assert (
            run_random_access(table_bits=10).fingerprint
            == run_random_access(table_bits=10).fingerprint
        )

    def test_xor_involution(self):
        """Applying the same update stream twice restores the table."""
        once = run_random_access(table_bits=10, seed=5)
        from repro.kernels.nas_rng import NasRandom

        table = once.table.copy()
        rng = NasRandom(seed=5)
        raw = rng.raw(once.n_updates)
        idx = (raw & np.uint64(once.table_size - 1)).astype(np.int64)
        np.bitwise_xor.at(table, idx, raw)
        assert np.array_equal(table, np.arange(once.table_size, dtype=np.uint64))

    def test_default_update_count_is_4x(self):
        result = run_random_access(table_bits=8)
        assert result.n_updates == 4 * 256

    def test_updates_actually_modify(self):
        result = run_random_access(table_bits=10)
        assert not np.array_equal(
            result.table, np.arange(1024, dtype=np.uint64)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_random_access(table_bits=2)
        with pytest.raises(ConfigurationError):
            run_random_access(table_bits=10, n_updates=0)


class TestPtrans:
    def test_transpose_add(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        assert np.allclose(run_ptrans(a, b, block=16), a.T + b)

    def test_non_divisible_block(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((50, 50))
        b = rng.standard_normal((50, 50))
        assert np.allclose(run_ptrans(a, b, block=16), a.T + b)

    def test_involution_identity(self):
        """(A^T + 0)^T == A."""
        rng = np.random.default_rng(2)
        a = rng.standard_normal((32, 32))
        z = np.zeros_like(a)
        assert np.allclose(run_ptrans(run_ptrans(a, z), z), a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_ptrans(np.ones((3, 4)), np.ones((3, 4)))
        with pytest.raises(ConfigurationError):
            run_ptrans(np.ones((4, 4)), np.ones((3, 3)))
        with pytest.raises(ConfigurationError):
            run_ptrans(np.ones((4, 4)), np.ones((4, 4)), block=0)
