"""Block-tridiagonal solver (BT's inner kernel)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.block_tridiag import (
    block_thomas_solve,
    random_block_tridiagonal,
)


def assemble_dense(lower, diag, upper):
    """Dense matrix of one block-tridiagonal system (batch index 0)."""
    _, n, b, _ = diag.shape
    a = np.zeros((n * b, n * b))
    for i in range(n):
        a[i * b : (i + 1) * b, i * b : (i + 1) * b] = diag[0, i]
        if i > 0:
            a[i * b : (i + 1) * b, (i - 1) * b : i * b] = lower[0, i]
        if i < n - 1:
            a[i * b : (i + 1) * b, (i + 1) * b : (i + 2) * b] = upper[0, i]
    return a


class TestCorrectness:
    @pytest.mark.parametrize("block", [1, 2, 5])
    def test_matches_dense_solve(self, block):
        lower, diag, upper = random_block_tridiagonal(1, 8, block, seed=1)
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal((1, 8, block))
        x = block_thomas_solve(lower, diag, upper, rhs)
        dense = assemble_dense(lower, diag, upper)
        expected = np.linalg.solve(dense, rhs[0].ravel()).reshape(8, block)
        assert np.allclose(x[0], expected, atol=1e-9)

    def test_residual_small(self):
        lower, diag, upper = random_block_tridiagonal(3, 12, 5, seed=3)
        rng = np.random.default_rng(4)
        rhs = rng.standard_normal((3, 12, 5))
        x = block_thomas_solve(lower, diag, upper, rhs)
        for k in range(3):
            dense = assemble_dense(lower[k : k + 1], diag[k : k + 1], upper[k : k + 1])
            residual = dense @ x[k].ravel() - rhs[k].ravel()
            assert np.abs(residual).max() < 1e-9

    def test_batch_independence(self):
        lower, diag, upper = random_block_tridiagonal(4, 6, 3, seed=5)
        rng = np.random.default_rng(6)
        rhs = rng.standard_normal((4, 6, 3))
        full = block_thomas_solve(lower, diag, upper, rhs)
        single = block_thomas_solve(
            lower[2:3], diag[2:3], upper[2:3], rhs[2:3]
        )
        assert np.allclose(full[2], single[0])

    def test_scalar_blocks_match_thomas(self):
        """b=1 reduces to the scalar Thomas algorithm."""
        from repro.kernels.stencil import thomas_solve

        lower, diag, upper = random_block_tridiagonal(2, 10, 1, seed=7)
        rng = np.random.default_rng(8)
        rhs = rng.standard_normal((2, 10, 1))
        block = block_thomas_solve(lower, diag, upper, rhs)
        scalar = thomas_solve(
            lower[..., 0, 0], diag[..., 0, 0], upper[..., 0, 0], rhs[..., 0]
        )
        assert np.allclose(block[..., 0], scalar)

    def test_block_identity_system(self):
        n, b = 6, 5
        diag = np.broadcast_to(np.eye(b), (1, n, b, b)).copy()
        zero = np.zeros((1, n, b, b))
        rhs = np.arange(n * b, dtype=float).reshape(1, n, b)
        x = block_thomas_solve(zero, diag, zero, rhs)
        assert np.allclose(x, rhs)


class TestValidation:
    def test_singular_pivot_rejected(self):
        n, b = 4, 3
        diag = np.zeros((1, n, b, b))
        zero = np.zeros((1, n, b, b))
        rhs = np.ones((1, n, b))
        with pytest.raises(ConfigurationError):
            block_thomas_solve(zero, diag, zero, rhs)

    def test_shape_mismatches(self):
        lower, diag, upper = random_block_tridiagonal(1, 4, 2)
        with pytest.raises(ConfigurationError):
            block_thomas_solve(lower, diag, upper, np.ones((1, 4, 3)))
        with pytest.raises(ConfigurationError):
            block_thomas_solve(lower[:, :3], diag, upper, np.ones((1, 4, 2)))

    def test_non_square_blocks(self):
        with pytest.raises(ConfigurationError):
            block_thomas_solve(
                np.ones((1, 4, 2, 3)),
                np.ones((1, 4, 2, 3)),
                np.ones((1, 4, 2, 3)),
                np.ones((1, 4, 2)),
            )

    def test_generator_validation(self):
        with pytest.raises(ConfigurationError):
            random_block_tridiagonal(0, 4)
        with pytest.raises(ConfigurationError):
            random_block_tridiagonal(1, 1)
