"""The NAS 46-bit LCG."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.nas_rng import (
    DEFAULT_A,
    DEFAULT_SEED,
    MODULUS_BITS,
    NasRandom,
    lcg_modmul,
    lcg_power,
)

MOD = 1 << MODULUS_BITS


class TestModMul:
    def test_matches_python_bigints(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, MOD, size=200, dtype=np.int64).astype(np.uint64)
        b = rng.integers(0, MOD, size=200, dtype=np.int64).astype(np.uint64)
        ours = lcg_modmul(a, b)
        expected = [(int(x) * int(y)) % MOD for x, y in zip(a, b)]
        assert [int(v) for v in ours] == expected

    def test_identity(self):
        assert int(lcg_modmul(1, DEFAULT_A)) == DEFAULT_A

    def test_zero(self):
        assert int(lcg_modmul(0, 12345)) == 0


class TestPower:
    def test_matches_python_pow(self):
        for n in (0, 1, 2, 17, 1000, 1 << 20):
            assert lcg_power(DEFAULT_A, n) == pow(DEFAULT_A, n, MOD)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            lcg_power(DEFAULT_A, -1)


class TestStream:
    def test_matches_scalar_recurrence(self):
        rng = NasRandom()
        ours = rng.raw(50)
        state = DEFAULT_SEED
        expected = []
        for _ in range(50):
            state = (DEFAULT_A * state) % MOD
            expected.append(state)
        assert [int(v) for v in ours] == expected

    def test_uniform_in_unit_interval(self):
        u = NasRandom().uniform(10_000)
        assert np.all(u > 0)
        assert np.all(u < 1)

    def test_uniform_mean_near_half(self):
        u = NasRandom().uniform(100_000)
        assert abs(u.mean() - 0.5) < 0.005

    def test_skip_equals_draw(self):
        a = NasRandom()
        b = NasRandom()
        reference = a.uniform(100)
        b.skip(60)
        assert np.allclose(b.uniform(40), reference[60:])

    def test_skip_zero_is_noop(self):
        a = NasRandom()
        a.skip(0)
        assert np.allclose(a.uniform(5), NasRandom().uniform(5))

    def test_skip_is_o_log_n(self):
        """Skipping 2^40 positions must be instant (log-time jump)."""
        rng = NasRandom()
        rng.skip(1 << 40)
        assert rng.state == int(
            lcg_modmul(lcg_power(DEFAULT_A, 1 << 40), DEFAULT_SEED)
        )

    def test_spawn_partitions_stream(self):
        base = NasRandom()
        reference = NasRandom().uniform(90)
        chunks = []
        for i in range(3):
            child = base.spawn(i, 30)
            chunks.append(child.uniform(30))
        assert np.allclose(np.concatenate(chunks), reference)

    def test_state_advances(self):
        rng = NasRandom()
        s0 = rng.state
        rng.uniform(3)
        assert rng.state != s0

    def test_seed_validation(self):
        with pytest.raises(ConfigurationError):
            NasRandom(seed=0)
        with pytest.raises(ConfigurationError):
            NasRandom(seed=2)  # even seeds shorten the period
        with pytest.raises(ConfigurationError):
            NasRandom(seed=MOD + 1)

    def test_raw_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            NasRandom().raw(0)

    def test_full_46_bit_states(self):
        """States use the full modulus width (not stuck in low bits)."""
        raw = NasRandom().raw(1000)
        assert int(raw.max()) > (1 << 45)
