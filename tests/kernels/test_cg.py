"""Conjugate gradient kernel."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ConfigurationError
from repro.kernels.cg import conjugate_gradient, random_spd_matrix


class TestMatrix:
    def test_symmetric(self):
        a = random_spd_matrix(200, seed=1)
        assert abs(a - a.T).max() < 1e-12

    def test_positive_definite_by_diagonal_dominance(self):
        a = random_spd_matrix(200, seed=2).toarray()
        off = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.diag(a) > off - 1e-9)

    def test_sparse(self):
        a = random_spd_matrix(500, nonzeros_per_row=5, seed=3)
        assert a.nnz < 0.1 * 500 * 500

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_spd_matrix(1)
        with pytest.raises(ConfigurationError):
            random_spd_matrix(10, nonzeros_per_row=10)


class TestSolve:
    def test_converges(self):
        a = random_spd_matrix(300, seed=4)
        b = np.ones(300)
        result = conjugate_gradient(a, b)
        assert result.converged
        assert result.residual_norm < 1e-9

    def test_solution_solves_system(self):
        a = random_spd_matrix(150, seed=5)
        rng = np.random.default_rng(5)
        b = rng.standard_normal(150)
        result = conjugate_gradient(a, b)
        assert np.allclose(a @ result.x, b, atol=1e-6)

    def test_iterations_bounded_for_well_conditioned(self):
        """Heavy diagonal shift means rapid convergence."""
        a = random_spd_matrix(400, shift=50.0, seed=6)
        result = conjugate_gradient(a, np.ones(400))
        assert result.iterations < 30

    def test_zero_rhs_instant(self):
        a = random_spd_matrix(50, seed=7)
        result = conjugate_gradient(a, np.zeros(50))
        assert result.iterations == 0
        assert np.allclose(result.x, 0)

    def test_max_iterations_respected(self):
        a = random_spd_matrix(200, shift=0.5, seed=8)
        result = conjugate_gradient(a, np.ones(200), max_iterations=2)
        assert result.iterations <= 2

    def test_rhs_shape_checked(self):
        a = random_spd_matrix(50, seed=9)
        with pytest.raises(ConfigurationError):
            conjugate_gradient(a, np.ones(49))
