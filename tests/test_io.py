"""JSON persistence."""

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.evaluation import EvaluationResult, EvaluationRow
from repro.core.regression import VerificationResult
from repro.errors import ConfigurationError


@pytest.fixture()
def eval_result():
    return EvaluationResult(
        server="Xeon-E5462",
        rows=(
            EvaluationRow("Idle", 0.0, 134.37, 600.0, 120.0),
            EvaluationRow("HPL P4 Mf", 37.2, 235.32, 7800.0, 520.0),
        ),
    )


class TestEvaluationRoundtrip:
    def test_roundtrip(self, eval_result, tmp_path):
        path = repro_io.save_json(
            repro_io.evaluation_to_dict(eval_result), tmp_path / "eval.json"
        )
        restored = repro_io.evaluation_from_dict(repro_io.load_json(path))
        assert restored == eval_result

    def test_score_preserved(self, eval_result):
        restored = repro_io.evaluation_from_dict(
            repro_io.evaluation_to_dict(eval_result)
        )
        assert restored.score == pytest.approx(eval_result.score)

    def test_kind_checked(self, eval_result):
        doc = repro_io.evaluation_to_dict(eval_result)
        doc["kind"] = "something_else"
        with pytest.raises(ConfigurationError):
            repro_io.evaluation_from_dict(doc)

    def test_version_checked(self, eval_result):
        doc = repro_io.evaluation_to_dict(eval_result)
        doc["schema_version"] = 99
        with pytest.raises(ConfigurationError):
            repro_io.evaluation_from_dict(doc)


class TestVerificationRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = VerificationResult(
            server="Xeon-4870",
            npb_class="B",
            labels=("bt.B.1", "ep.B.1", "sp.B.4"),
            measured=np.array([1.0, -1.0, 0.5]),
            predicted=np.array([0.8, -0.5, 0.4]),
        )
        path = repro_io.save_json(
            repro_io.verification_to_dict(original), tmp_path / "v.json"
        )
        restored = repro_io.verification_from_dict(repro_io.load_json(path))
        assert restored.labels == original.labels
        assert np.allclose(restored.measured, original.measured)
        assert restored.r_squared == pytest.approx(original.r_squared)


class TestModelRoundtrip:
    @pytest.fixture(scope="class")
    def model(self):
        from repro.core.regression import (
            collect_hpcc_training,
            train_power_model,
        )
        from repro.hardware import XEON_E5462

        return train_power_model(
            collect_hpcc_training(XEON_E5462), server_name="Xeon-E5462"
        )

    def test_roundtrip_predictions_identical(self, model, tmp_path):
        path = repro_io.save_json(
            repro_io.model_to_dict(model), tmp_path / "model.json"
        )
        restored = repro_io.model_from_dict(repro_io.load_json(path))
        features = np.array([[4.0, 1e11, 1e8, 0.0, 1e7, 5e6]])
        assert np.allclose(
            restored.predict_normalized(features),
            model.predict_normalized(features),
        )
        assert np.allclose(
            restored.predict_watts(features), model.predict_watts(features)
        )

    def test_summary_preserved(self, model):
        restored = repro_io.model_from_dict(repro_io.model_to_dict(model))
        assert restored.r_square == pytest.approx(model.r_square)
        assert restored.n_observations == model.n_observations
        assert restored.selected == model.selected

    def test_stepwise_not_preserved(self, model):
        restored = repro_io.model_from_dict(repro_io.model_to_dict(model))
        assert restored.stepwise is None


class TestServerRoundtrip:
    def test_builtin_roundtrip_identical(self):
        from repro.hardware import XEON_4870

        restored = repro_io.server_from_dict(
            repro_io.server_to_dict(XEON_4870)
        )
        assert restored == XEON_4870

    def test_roundtrip_preserves_caches(self):
        from repro.hardware import OPTERON_8347

        restored = repro_io.server_from_dict(
            repro_io.server_to_dict(OPTERON_8347)
        )
        assert restored.processor.l3 == OPTERON_8347.processor.l3
        assert restored.processor.l3.shared

    def test_missing_l3_roundtrips_as_none(self):
        from repro.hardware import XEON_E5462

        restored = repro_io.server_from_dict(
            repro_io.server_to_dict(XEON_E5462)
        )
        assert restored.processor.l3 is None

    def test_file_roundtrip_usable_by_simulator(self, tmp_path):
        import dataclasses

        from repro.engine import Simulator
        from repro.hardware import XEON_E5462
        from repro.workloads.npb import NpbWorkload

        custom = dataclasses.replace(XEON_E5462, name="Clone")
        path = repro_io.save_json(
            repro_io.server_to_dict(custom), tmp_path / "s.json"
        )
        restored = repro_io.server_from_dict(repro_io.load_json(path))
        run = Simulator(restored).run(NpbWorkload("ep", "C", 4))
        assert run.average_power_watts() > 0

    def test_kind_checked(self):
        with pytest.raises(ConfigurationError):
            repro_io.server_from_dict({"kind": "evaluation", "schema_version": 1})


class TestPartialEvaluationSerialisation:
    def test_complete_document_has_no_degradation_keys(self, eval_result):
        doc = repro_io.evaluation_to_dict(eval_result)
        assert "missing" not in doc
        assert "coverage" not in doc

    def test_partial_round_trip(self, eval_result):
        partial = EvaluationResult(
            server=eval_result.server,
            rows=eval_result.rows,
            missing=("HPL P4 Mh", "HPL P4 Mf"),
        )
        doc = repro_io.evaluation_to_dict(partial)
        assert doc["missing"] == ["HPL P4 Mh", "HPL P4 Mf"]
        assert doc["coverage"] == pytest.approx(0.5)
        restored = repro_io.evaluation_from_dict(doc)
        assert restored.missing == partial.missing
        assert restored.coverage == pytest.approx(0.5)
        assert not restored.complete
