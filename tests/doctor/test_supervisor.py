"""The serve supervisor on a fake timeline: budget, backoff, breaker."""

from repro.doctor.supervisor import RestartPolicy, Supervisor


class FakeWorld:
    """Deterministic child + clock: ``runs`` is (uptime_s, exit_code)."""

    def __init__(self, runs):
        self._runs = iter(runs)
        self.now = 0.0
        self.slept = []
        self.events = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds

    def run_child(self):
        uptime, code = next(self._runs)
        self.now += uptime
        return code

    def on_event(self, kind, fields):
        self.events.append((kind, fields))

    def supervisor(self, policy, audit=None):
        return Supervisor(
            run_child=self.run_child,
            policy=policy,
            audit=audit,
            sleep=self.sleep,
            clock=self.clock,
            on_event=self.on_event,
        )


class TestBackoffFormula:
    def test_deterministic_exponential_with_cap(self):
        policy = RestartPolicy(backoff_initial_s=0.5, backoff_cap_s=30.0)
        delays = [policy.backoff_s(n) for n in range(1, 9)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0]


class TestSupervisorRun:
    def test_clean_first_exit_never_sleeps(self):
        world = FakeWorld([(12.0, 0)])
        outcome = world.supervisor(RestartPolicy()).run()
        assert outcome.status == "clean"
        assert outcome.exit_code == 0
        assert outcome.restarts == 0
        assert world.slept == []
        assert [k for k, _ in world.events] == ["clean_exit"]

    def test_crashes_then_recovery_audit_before_each_restart(self):
        audits = []
        world = FakeWorld([(10.0, 1), (10.0, 1), (60.0, 0)])
        outcome = world.supervisor(
            RestartPolicy(min_uptime_s=5.0),
            audit=lambda: audits.append(True),
        ).run()
        assert outcome.status == "clean"
        assert outcome.restarts == 2
        assert outcome.audits == 2 and len(audits) == 2
        assert world.slept == [0.5, 1.0]  # the backoff schedule, exactly
        kinds = [k for k, _ in world.events]
        assert kinds == ["restart", "restart", "clean_exit"]

    def test_budget_exhaustion_exits_2(self):
        world = FakeWorld([(10.0, 1)] * 4)
        outcome = world.supervisor(
            RestartPolicy(max_restarts=3, min_uptime_s=5.0)
        ).run()
        assert outcome.status == "budget_exhausted"
        assert outcome.exit_code == 2
        assert outcome.restarts == 3
        assert outcome.strikes == 0  # every run lived past min_uptime
        halt = world.events[-1]
        assert halt[0] == "halt"
        assert halt[1]["reason"] == "budget_exhausted"

    def test_crash_loop_opens_the_breaker_before_the_budget(self):
        # A child that dies in 0.1 s will not be fixed by run four: the
        # breaker must halt after 3 strikes with budget still unspent.
        world = FakeWorld([(0.1, 1)] * 10)
        outcome = world.supervisor(
            RestartPolicy(
                max_restarts=99, min_uptime_s=5.0, breaker_strikes=3
            )
        ).run()
        assert outcome.status == "breaker_open"
        assert outcome.exit_code == 3
        assert outcome.strikes == 3
        assert outcome.restarts == 2  # two retries, then the halt
        assert world.events[-1][1]["reason"] == "breaker_open"

    def test_long_uptime_resets_the_strike_count(self):
        # fast, fast, long, fast, fast, long, ... never three in a row:
        # the breaker must not open on total strikes, only consecutive.
        runs = [(0.1, 1), (0.1, 1), (60.0, 1)] * 2 + [(60.0, 0)]
        world = FakeWorld(runs)
        outcome = world.supervisor(
            RestartPolicy(
                max_restarts=99, min_uptime_s=5.0, breaker_strikes=3
            )
        ).run()
        assert outcome.status == "clean"
        assert outcome.restarts == 6

    def test_audit_failure_is_tolerated_and_not_counted(self):
        def bad_audit():
            raise RuntimeError("quarantine dir unwritable")

        world = FakeWorld([(10.0, 1), (60.0, 0)])
        outcome = world.supervisor(
            RestartPolicy(min_uptime_s=5.0), audit=bad_audit
        ).run()
        assert outcome.status == "clean"
        assert outcome.restarts == 1
        assert outcome.audits == 0  # failed audits are not audits

    def test_event_callback_failure_is_swallowed(self):
        world = FakeWorld([(10.0, 0)])
        supervisor = world.supervisor(RestartPolicy())
        supervisor.on_event = lambda kind, fields: 1 / 0
        assert supervisor.run().status == "clean"

    def test_restart_event_carries_the_backoff_and_uptime(self):
        world = FakeWorld([(2.5, 9), (60.0, 0)])
        world.supervisor(RestartPolicy(min_uptime_s=5.0)).run()
        kind, fields = world.events[0]
        assert kind == "restart"
        assert fields["backoff_s"] == 0.5
        assert fields["exit_code"] == 9
        assert fields["uptime_s"] == 2.5
        assert fields["strikes"] == 1
