"""Shared fixtures for the doctor-subsystem tests.

One cheap real RunResult and one trained model per session: the store
adapters are exercised against the same artifacts production writes,
not synthetic stand-ins, so a format drift in any store breaks these
tests before it breaks an audit in the field.
"""

import pytest

from repro.core.regression import collect_hpcc_training, train_power_model
from repro.engine.simulator import Simulator
from repro.workloads.npb import NpbWorkload


@pytest.fixture(scope="session")
def run_result(e5462):
    return Simulator(e5462, seed=3).run(NpbWorkload("ep", "A", 2))


@pytest.fixture(scope="session")
def model_e5462(e5462):
    return train_power_model(
        collect_hpcc_training(e5462), server_name=e5462.name
    )
