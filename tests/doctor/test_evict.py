"""Eviction policy: TTL, LRU order, caps, and refcount-aware pins."""

import os

from repro.doctor.engine import (
    EvictionPolicy,
    evict_store,
    serve_pins,
    submission_cache_keys,
)
from repro.doctor.stores import FleetCacheStore, StoreAdapter, StoreEntry
from repro.fleet.cache import ResultCache
from repro.serve.protocol import Submission, submission_content_key
from repro.serve.state import StateStore


class FakeStore(StoreAdapter):
    name = "fake"

    def __init__(self, entries):
        self._entries = list(entries)
        self.removed = []
        self.commits = 0

    def entries(self):
        return list(self._entries)

    def evict(self, entry):
        self.removed.append(entry.entry_id)
        self._entries.remove(entry)
        return entry.size

    def commit(self):
        self.commits += 1


def _entry(entry_id, mtime, size=100, pin_keys=()):
    return StoreEntry(
        store="fake",
        entry_id=entry_id,
        paths=(),
        size=size,
        mtime=mtime,
        pin_keys=pin_keys,
    )


class TestEvictionPolicy:
    def test_unbounded_policy_is_not_bounded(self):
        assert not EvictionPolicy().bounded
        assert EvictionPolicy(max_entries=3).bounded
        assert EvictionPolicy(ttl_s=60.0).bounded

    def test_ttl_evicts_only_expired_entries(self):
        store = FakeStore([_entry("old", 0.0), _entry("new", 90.0)])
        report = evict_store(
            store, EvictionPolicy(ttl_s=60.0), now=100.0
        )
        assert report.evicted == ["old"]
        assert store.removed == ["old"]
        assert report.satisfied and report.freed_bytes == 100

    def test_lru_order_oldest_unpinned_first(self):
        store = FakeStore(
            [_entry(e, t) for e, t in [("c", 3.0), ("a", 1.0), ("b", 2.0)]]
        )
        report = evict_store(store, EvictionPolicy(max_entries=1))
        assert report.evicted == ["a", "b"]  # mtime order, not insert
        assert [e.entry_id for e in store.entries()] == ["c"]
        assert store.commits == 1

    def test_max_bytes_cap(self):
        store = FakeStore(
            [_entry("a", 1.0, size=60), _entry("b", 2.0, size=60)]
        )
        report = evict_store(store, EvictionPolicy(max_bytes=100))
        assert report.evicted == ["a"]
        assert report.freed_bytes == 60

    def test_pinned_entries_survive_even_max_entries_zero(self):
        store = FakeStore(
            [
                _entry("a", 1.0, pin_keys=("a", "c-000001")),
                _entry("b", 2.0),
            ]
        )
        report = evict_store(
            store, EvictionPolicy(max_entries=0), pins={"c-000001"}
        )
        assert report.evicted == ["b"]
        assert report.pinned_kept == 1
        # The pin still counts against the cap: the cap was not met,
        # and the report must say so rather than evict live state.
        assert not report.satisfied

    def test_ttl_never_expires_a_pin(self):
        store = FakeStore([_entry("a", 0.0, pin_keys=("keep",))])
        report = evict_store(
            store, EvictionPolicy(ttl_s=1.0), pins={"keep"}, now=1e9
        )
        assert report.evicted == []
        assert report.satisfied

    def test_dry_run_touches_nothing(self):
        store = FakeStore([_entry("a", 1.0), _entry("b", 2.0)])
        report = evict_store(
            store, EvictionPolicy(max_entries=0), dry_run=True
        )
        assert sorted(report.evicted) == ["a", "b"]
        assert report.freed_bytes == 200
        assert report.dry_run
        assert store.removed == [] and store.commits == 0

    def test_busy_store_is_skipped_without_mutation(self):
        store = FakeStore([_entry("a", 1.0), _entry("b", 2.0)])
        store.busy = lambda: "live_writer"
        report = evict_store(store, EvictionPolicy(max_entries=0))
        assert report.skipped == "live_writer"
        assert report.evicted == [] and not report.satisfied
        assert store.removed == [] and store.commits == 0
        assert "SKIPPED" in report.format()
        # Dry runs never mutate, so busy stores still report plans.
        planned = evict_store(
            store, EvictionPolicy(max_entries=0), dry_run=True
        )
        assert sorted(planned.evicted) == ["a", "b"]

    def test_journal_store_with_live_writer_is_skipped(self, tmp_path):
        from repro.doctor.stores import JournalStore

        root = tmp_path / "state"
        writer = StateStore(root)
        try:
            sub = Submission(
                tenant="alice",
                priority="normal",
                kind="evaluate",
                spec={"server": "Xeon-E5462", "seed": 7},
            )
            writer.journal_submit("c-000001", sub, "k" * 64)
            writer.journal_done("c-000001", "done", digest="d" * 64)
            before = writer.journal_path.read_bytes()
            store = JournalStore(
                writer.journal_path, name="j", known_kinds=None
            )
            report = evict_store(store, EvictionPolicy(max_entries=0))
            assert report.skipped == "live_writer"
            assert writer.journal_path.read_bytes() == before
        finally:
            writer.close()
        # Daemon stopped: the same sweep now compacts the journal.
        store = JournalStore(
            writer.journal_path, name="j", known_kinds=None
        )
        report = evict_store(store, EvictionPolicy(max_entries=0))
        assert not report.skipped and len(report.evicted) == 2
        assert writer.journal_path.read_bytes() == b""


class TestFleetCacheEviction:
    def test_lru_on_a_real_cache_directory(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        keys = [f"{i:02d}" + "e" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, run_result, wall_s=0.1)
            meta = cache.root / key[:2] / f"{key}.json"
            os.utime(meta, (100.0 * (i + 1), 100.0 * (i + 1)))
            os.utime(meta.with_suffix(".bin"), (100.0 * (i + 1),) * 2)

        report = evict_store(
            FleetCacheStore(cache.root), EvictionPolicy(max_entries=1)
        )
        assert report.evicted == keys[:2]
        assert report.satisfied and report.freed_bytes > 0
        survivor = ResultCache(tmp_path / "cache")
        assert survivor.get(keys[2]) is not None
        assert survivor.get(keys[0]) is None


class TestServePins:
    def _submission(self):
        return Submission(
            tenant="alice",
            priority="normal",
            kind="evaluate",
            spec={"server": "Xeon-E5462", "seed": 7},
        )

    def test_submission_cache_keys_are_deterministic(self):
        sub = self._submission()
        first = submission_cache_keys(sub.kind, sub.spec)
        assert first  # the ten-state matrix expands to real jobs
        assert all(len(key) == 64 for key in first)
        assert submission_cache_keys(sub.kind, sub.spec) == first

    def test_pending_submission_pins_campaign_and_cache_keys(
        self, tmp_path
    ):
        root = tmp_path / "state"
        store = StateStore(root)
        sub = self._submission()
        store.journal_submit(
            "c-000001", sub, submission_content_key(sub)
        )
        store.close()
        pins = serve_pins(root)
        assert "c-000001" in pins.campaign_ids
        assert pins.cache_keys == frozenset(
            submission_cache_keys(sub.kind, sub.spec)
        )
        assert pins.all >= pins.campaign_ids | pins.cache_keys

    def test_done_campaign_releases_its_pins(self, tmp_path):
        root = tmp_path / "state"
        store = StateStore(root)
        sub = self._submission()
        store.journal_submit(
            "c-000001", sub, submission_content_key(sub)
        )
        store.journal_done("c-000001", "done", digest="d" * 64)
        store.close()
        pins = serve_pins(root)
        assert pins.all == frozenset()

    def test_missing_state_dir_pins_nothing(self, tmp_path):
        assert serve_pins(tmp_path / "nowhere").all == frozenset()

    def test_cache_keys_use_the_public_placement_default(self):
        # The pin computation must agree with the scheduler about the
        # placement policy without reaching into Simulator internals.
        from repro.engine.simulator import (
            DEFAULT_PLACEMENT_POLICY,
            Simulator,
        )
        from repro.hardware.specs import get_server

        simulator = Simulator(get_server("Xeon-E5462"))
        assert simulator.placement_policy == DEFAULT_PLACEMENT_POLICY

    def test_bad_spec_skips_cache_keys_but_keeps_campaign_pin(
        self, tmp_path
    ):
        root = tmp_path / "state"
        store = StateStore(root)
        bad = Submission(
            tenant="alice",
            priority="normal",
            kind="evaluate",
            spec={"server": "PDP-11", "seed": 0},  # unknown server
        )
        store.journal_submit("c-000001", bad, submission_content_key(bad))
        store.close()
        pins = serve_pins(root)
        assert "c-000001" in pins.campaign_ids
        assert pins.cache_keys == frozenset()

    def test_pin_derivation_regressions_fail_loudly(
        self, tmp_path, monkeypatch
    ):
        # A refactor that breaks submission_cache_keys must surface in
        # audits/tests, not silently turn pins into no-ops (which would
        # let evict delete in-flight cache entries).
        import pytest

        from repro.doctor import engine

        root = tmp_path / "state"
        store = StateStore(root)
        sub = self._submission()
        store.journal_submit("c-000001", sub, submission_content_key(sub))
        store.close()

        def broken(kind, spec):
            raise AttributeError("Simulator lost an attribute")

        monkeypatch.setattr(engine, "submission_cache_keys", broken)
        with pytest.raises(AttributeError):
            serve_pins(root)
