"""The safe-write layer: degrade on capacity faults, crash on bugs."""

import errno

import pytest

from repro.doctor import safewrite
from repro.errors import ReproError, StorageDegradedError


@pytest.fixture(autouse=True)
def _disarm():
    yield
    safewrite.clear_disk_fault()


class TestInjector:
    def test_budget_counts_guarded_writes_then_fails(self, tmp_path):
        dest = tmp_path / "doc.json"
        safewrite.inject_disk_full(budget=2)
        assert safewrite.fault_active()
        safewrite.write_atomic(tmp_path / "t1", dest, b"one")
        safewrite.write_atomic(tmp_path / "t2", dest, b"two")
        with pytest.raises(StorageDegradedError):
            safewrite.write_atomic(tmp_path / "t3", dest, b"three")
        # Deterministic: the *third* write failed, the first two landed.
        assert dest.read_bytes() == b"two"

    def test_clear_disk_fault_restores_writes(self, tmp_path):
        safewrite.inject_disk_full(0)
        safewrite.clear_disk_fault()
        assert not safewrite.fault_active()
        safewrite.write_atomic(
            tmp_path / "t", tmp_path / "doc.json", b"ok"
        )
        assert (tmp_path / "doc.json").read_bytes() == b"ok"

    @pytest.mark.parametrize(
        "raw, budget",
        [("3", 3), ("", None), ("junk", None), ("-2", 0), (" 1 ", 1)],
    )
    def test_env_budget_parsing(self, raw, budget, monkeypatch):
        monkeypatch.setenv(safewrite.ENV_FAULT_BUDGET, raw)
        assert safewrite._load_env_budget() == budget


class TestIsDegrading:
    def test_capacity_and_media_errnos_degrade(self):
        for code in (errno.ENOSPC, errno.EDQUOT, errno.EIO):
            assert safewrite.is_degrading(OSError(code, "disk"))

    def test_other_errors_do_not(self):
        assert not safewrite.is_degrading(OSError(errno.EACCES, "perm"))
        assert not safewrite.is_degrading(ValueError("nope"))

    def test_storage_degraded_error_shape(self):
        # A ReproError so the CLI reports it, a RuntimeError so generic
        # handlers catch it — but deliberately NOT an OSError, so the
        # repo's best-effort ``except OSError`` paths never swallow a
        # degradation signal by accident.
        exc = StorageDegradedError("path", OSError(errno.ENOSPC, "full"))
        assert isinstance(exc, ReproError)
        assert isinstance(exc, RuntimeError)
        assert not isinstance(exc, OSError)
        assert safewrite.is_degrading(exc)


class TestWriteAtomic:
    def test_failure_cleans_temp_and_keeps_old_content(self, tmp_path):
        dest = tmp_path / "doc.json"
        tmp = tmp_path / "doc.tmp"
        safewrite.write_atomic(tmp, dest, b"old")
        safewrite.inject_disk_full(0)
        with pytest.raises(StorageDegradedError):
            safewrite.write_atomic(tmp, dest, b"new")
        assert dest.read_bytes() == b"old"  # never a mix
        assert not tmp.exists()  # no corpse for readers to trip over

    def test_non_capacity_oserror_propagates_untouched(self, tmp_path):
        missing = tmp_path / "no-such-dir"
        with pytest.raises(OSError) as info:
            safewrite.write_atomic(
                missing / "t", missing / "doc.json", b"x"
            )
        assert not isinstance(info.value, StorageDegradedError)


class TestAppendLine:
    def test_failure_raises_with_target_in_message(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with journal.open("a") as fh:
            safewrite.append_line(fh, "one\n", fsync=True, target=journal)
            safewrite.inject_disk_full(0)
            with pytest.raises(StorageDegradedError) as info:
                safewrite.append_line(
                    fh, "two\n", fsync=True, target=journal
                )
        assert "journal.jsonl" in str(info.value)
        assert journal.read_text() == "one\n"
