"""Audit/repair round-trips for every store adapter.

Each store gets the same drill: build real entries with the production
writers, confirm a clean audit, corrupt one entry the way its medium
fails (bitflip, torn line), confirm the audit flags it *without*
mutating anything, then repair and confirm the corpse is quarantined
or compacted and the survivors are untouched.
"""

import hashlib
import json

from repro.doctor.stores import (
    SUBMIT_JOURNAL_KINDS,
    FleetCacheStore,
    JournalStore,
    ModelRegistryStore,
    ServeResultsStore,
    verify_cache_entry,
)
from repro.fleet.cache import ResultCache, canonical_json
from repro.model import ModelRegistry
from repro.serve.protocol import Submission
from repro.serve.state import StateStore

_KEY_A = "aa" + "0" * 62
_KEY_B = "bb" + "0" * 62


def _state_submission() -> Submission:
    return Submission(
        tenant="alice",
        priority="normal",
        kind="evaluate",
        spec={"server": "Xeon-E5462", "seed": 7},
    )


def _cache_with_entries(tmp_path, run_result):
    cache = ResultCache(tmp_path / "cache")
    cache.put(_KEY_A, run_result, wall_s=0.1)
    cache.put(_KEY_B, run_result, wall_s=0.2)
    return cache


class TestFleetCacheStore:
    def test_clean_cache_audits_clean(self, tmp_path, run_result):
        cache = _cache_with_entries(tmp_path, run_result)
        store = FleetCacheStore(cache.root)
        entries = store.entries()
        assert sorted(e.entry_id for e in entries) == [_KEY_A, _KEY_B]
        assert all(e.size > 0 for e in entries)
        assert store.audit() == []

    def test_bitflip_is_found_and_audit_does_not_mutate(
        self, tmp_path, run_result
    ):
        cache = _cache_with_entries(tmp_path, run_result)
        blob = cache.root / _KEY_A[:2] / f"{_KEY_A}.bin"
        raw = bytearray(blob.read_bytes())
        raw[len(raw) // 2] ^= 1
        blob.write_bytes(bytes(raw))

        store = FleetCacheStore(cache.root)
        (finding,) = store.audit()
        assert finding.entry_id == _KEY_A
        assert finding.problem == "blob_checksum_mismatch"
        assert finding.severity == "corrupt"
        assert blob.exists()  # audit is read-only

    def test_repair_quarantines_through_the_cache_itself(
        self, tmp_path, run_result
    ):
        cache = _cache_with_entries(tmp_path, run_result)
        meta = cache.root / _KEY_A[:2] / f"{_KEY_A}.json"
        blob = meta.with_suffix(".bin")
        blob.write_bytes(b"")

        store = FleetCacheStore(cache.root)
        (finding,) = store.repair()
        assert finding.action == "quarantined"
        assert not meta.exists() and not blob.exists()
        assert list((cache.root / "quarantine").iterdir())
        # The healthy entry survived the repair bit-for-bit.
        assert verify_cache_entry(
            cache.root / _KEY_B[:2] / f"{_KEY_B}.json"
        ) is None

    def test_gc_sweeps_tmp_debris_and_expired_corpses(
        self, tmp_path, run_result
    ):
        cache = _cache_with_entries(tmp_path, run_result)
        debris = cache.root / _KEY_A[:2] / "x.json.tmp.999"
        debris.write_bytes(b"torn")
        qdir = cache.root / "quarantine"
        qdir.mkdir()
        corpse = qdir / "old.bin"
        corpse.write_bytes(b"corpse")

        store = FleetCacheStore(cache.root)
        removed = store.gc(quarantine_ttl_s=3600.0)
        assert debris in removed and not debris.exists()
        assert corpse.exists()  # younger than the TTL
        store.gc(quarantine_ttl_s=0.0)
        assert not corpse.exists()
        assert store.audit() == []


def _state_with_result(tmp_path):
    root = tmp_path / "state"
    store = StateStore(root)
    sub = Submission(
        tenant="alice",
        priority="normal",
        kind="evaluate",
        spec={"server": "Xeon-E5462", "seed": 7},
    )
    document = {"kind": "evaluation", "answer": 42}
    store.journal_submit("c-000001", sub, "k" * 64)
    store.save_result("c-000001", document)
    digest = hashlib.sha256(canonical_json(document).encode()).hexdigest()
    store.journal_done("c-000001", "done", digest=digest)
    store.close()
    return root


class TestServeResultsStore:
    def test_clean_state_audits_clean(self, tmp_path):
        store = ServeResultsStore(_state_with_result(tmp_path))
        assert [e.entry_id for e in store.entries()] == ["c-000001"]
        assert store.audit() == []

    def test_flipped_result_byte_fails_the_journal_digest(self, tmp_path):
        root = _state_with_result(tmp_path)
        victim = root / "results" / "c-000001.json"
        victim.write_text(victim.read_text().replace("42", "43"))

        store = ServeResultsStore(root)
        (finding,) = store.audit()
        assert finding.problem == "digest_mismatch"
        assert finding.severity == "corrupt"

        (finding,) = store.repair()
        assert finding.action == "quarantined"
        assert not victim.exists()
        corpses = list((root / "quarantine").iterdir())
        assert len(corpses) == 1
        assert corpses[0].name.startswith("results-c-000001.json")

    def test_missing_result_with_done_record_is_a_warning(self, tmp_path):
        root = _state_with_result(tmp_path)
        (root / "results" / "c-000001.json").unlink()
        store = ServeResultsStore(root)
        (finding,) = store.audit()
        assert finding.problem == "missing_result"
        assert finding.severity == "warn"
        # Warnings never fail an audit: eviction leaves this residue.
        from repro.doctor.engine import audit_stores

        assert audit_stores([store]).ok


class TestModelRegistryStore:
    def test_latest_version_is_protected(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        registry.publish(model_e5462)
        store = ModelRegistryStore(tmp_path)
        entries = store.entries()
        assert [e.entry_id for e in entries] == [
            "xeon-e5462@v000001",
            "xeon-e5462@v000002",
        ]
        assert not store.protected(entries[0])
        assert store.protected(entries[1])
        assert store.audit() == []

    def test_tampered_artifact_is_quarantined(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        artifact = registry.publish(model_e5462)
        registry.publish(model_e5462)
        document = json.loads(artifact.path.read_text())
        document["r_square"] = 0.123  # silent tamper: digest now stale
        artifact.path.write_text(json.dumps(document))

        store = ModelRegistryStore(tmp_path)
        (finding,) = store.audit()
        assert finding.entry_id == "xeon-e5462@v000001"
        assert finding.problem == "digest_mismatch"
        (finding,) = store.repair()
        assert finding.action == "quarantined"
        assert not artifact.path.exists()
        assert store.audit() == []


class TestJournalStore:
    def _journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        lines = [
            json.dumps({"kind": "submit", "id": "c-000001", "ts": 1.0}),
            json.dumps({"kind": "done", "id": "c-000001", "ts": 2.0}),
            "{corrupt-interior",
            json.dumps({"kind": "mystery", "ts": 3.0}),
            '{"kind": "submit", "id": "c-0000',  # torn tail, no newline
        ]
        path.write_text("\n".join(lines))
        return path

    def test_audit_grades_severities(self, tmp_path):
        store = JournalStore(
            self._journal(tmp_path),
            name="serve-journal",
            known_kinds=SUBMIT_JOURNAL_KINDS,
        )
        problems = {f.problem: f.severity for f in store.audit()}
        assert problems == {
            "corrupt_record": "corrupt",
            "unknown_kind:'mystery'": "warn",
            "torn_tail": "warn",
        }

    def test_repair_compacts_keeping_good_records_byte_for_byte(
        self, tmp_path
    ):
        path = self._journal(tmp_path)
        store = JournalStore(
            path, name="serve-journal", known_kinds=SUBMIT_JOURNAL_KINDS
        )
        findings = store.repair()
        actions = {f.problem: f.action for f in findings}
        assert actions["corrupt_record"] == "compacted"
        assert actions["torn_tail"] == "compacted"
        assert actions["unknown_kind:'mystery'"] == ""  # kept: only a warn
        kinds = [
            json.loads(line)["kind"]
            for line in path.read_text().splitlines()
        ]
        assert kinds == ["submit", "done", "mystery"]
        assert store.audit() == [
            f for f in store.audit() if f.severity == "warn"
        ]

    def test_entries_pin_under_their_campaign_id(self, tmp_path):
        store = JournalStore(
            self._journal(tmp_path),
            name="serve-journal",
            known_kinds=SUBMIT_JOURNAL_KINDS,
        )
        first = store.entries()[0]
        assert first.pinned_by({"c-000001"})
        assert not first.pinned_by({"c-000099"})

    def test_evict_defers_until_commit(self, tmp_path):
        path = self._journal(tmp_path)
        store = JournalStore(path, name="j", known_kinds=None)
        victim = store.entries()[0]
        freed = store.evict(victim)
        assert freed == victim.size
        assert b"c-000001" in path.read_bytes()  # not yet
        store.commit()
        kinds = [
            json.loads(line)["kind"]
            for line in path.read_text().splitlines()
        ]
        # One atomic rewrite: victim dropped, torn tail and corrupt
        # line dropped too (commit keeps only parseable records).
        assert kinds == ["done", "mystery"]

    def test_commit_keeps_a_parseable_tail_record(self, tmp_path):
        # A final record torn exactly at the newline boundary parses
        # fine and may be a pending submit: compaction must preserve
        # and re-terminate it, not treat it like an unparseable tail.
        path = tmp_path / "journal.jsonl"
        pending = json.dumps({"kind": "submit", "id": "c-000002"})
        path.write_text(
            json.dumps({"kind": "submit", "id": "c-000001"})
            + "\n{corrupt\n"
            + pending  # no trailing newline
        )
        store = JournalStore(path, name="j", known_kinds=None)
        findings = store.repair()
        assert [f.problem for f in findings] == ["corrupt_record"]
        assert path.read_bytes().endswith((pending + "\n").encode())
        ids = [
            json.loads(line)["id"]
            for line in path.read_text().splitlines()
        ]
        assert ids == ["c-000001", "c-000002"]

    def test_compaction_refused_while_a_writer_holds_the_journal(
        self, tmp_path
    ):
        import pytest

        from repro.errors import JournalBusyError

        root = tmp_path / "state"
        writer = StateStore(root)  # holds the journal writer lock
        try:
            writer.journal_submit("c-000001", _state_submission(), "k" * 64)
            path = writer.journal_path
            before = path.read_bytes()
            store = JournalStore(path, name="j", known_kinds=None)
            assert store.busy() == "live_writer"
            victim = store.entries()[0]
            store.evict(victim)
            with pytest.raises(JournalBusyError):
                store.commit()
            assert path.read_bytes() == before  # untouched
            # The daemon's subsequent appends stay visible to replay.
            writer.journal_done("c-000001", "done", digest="d" * 64)
            pending, _ = writer.replay()
            assert pending == []
        finally:
            writer.close()
        assert store.busy() is None  # lock released with the handle

    def test_repair_refuses_compaction_with_live_writer(self, tmp_path):
        root = tmp_path / "state"
        writer = StateStore(root)
        try:
            writer.journal_submit("c-000001", _state_submission(), "k" * 64)
            path = writer.journal_path
            with path.open("ab") as fh:
                fh.write(b"{corrupt\n")
            store = JournalStore(path, name="j", known_kinds=None)
            before = path.read_bytes()
            findings = store.repair()
            assert path.read_bytes() == before  # nothing rewritten
            by_problem = {f.problem: f for f in findings}
            assert by_problem["corrupt_record"].action == ""  # unrepaired
            assert by_problem["live_writer"].severity == "warn"
            assert by_problem["live_writer"].action == (
                "compaction refused"
            )
        finally:
            writer.close()
        # Writer gone: the same repair now compacts.
        (finding,) = JournalStore(
            path, name="j", known_kinds=None
        ).repair()
        assert finding.action == "compacted"
