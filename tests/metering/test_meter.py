"""The simulated WT210."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MeterError
from repro.metering.meter import WT210, MeterSpec, Wt210Meter


class TestSpec:
    def test_wt210_covers_all_servers(self):
        """Peak measured power in the paper is 1119.6 W."""
        assert WT210.max_watts >= 1200

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            MeterSpec("x", max_watts=0, noise_sigma_watts=1, gain_error=0, quantum_watts=0.01)
        with pytest.raises(ConfigurationError):
            MeterSpec("x", max_watts=100, noise_sigma_watts=-1, gain_error=0, quantum_watts=0.01)
        with pytest.raises(ConfigurationError):
            MeterSpec("x", max_watts=100, noise_sigma_watts=1, gain_error=0.5, quantum_watts=0.01)


class TestSampling:
    def test_deterministic_for_seed(self):
        series = np.full(100, 200.0)
        a = Wt210Meter(seed=7).sample_series(series)
        b = Wt210Meter(seed=7).sample_series(series)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        series = np.full(100, 200.0)
        a = Wt210Meter(seed=1).sample_series(series)
        b = Wt210Meter(seed=2).sample_series(series)
        assert not np.array_equal(a, b)

    def test_unbiased_within_accuracy(self):
        series = np.full(10_000, 500.0)
        readings = Wt210Meter(seed=3).sample_series(series)
        # Gain error is 0.1 %, additive noise 0.5 W.
        assert readings.mean() == pytest.approx(500.0, rel=0.005)

    def test_noise_magnitude(self):
        series = np.full(10_000, 500.0)
        readings = Wt210Meter(seed=3).sample_series(series)
        assert 0.1 < readings.std() < 2.0

    def test_quantisation(self):
        readings = Wt210Meter(seed=1).sample_series(np.full(100, 123.456))
        scaled = readings / WT210.quantum_watts
        assert np.allclose(scaled, np.round(scaled))

    def test_over_range_raises(self):
        with pytest.raises(MeterError):
            Wt210Meter().sample_series(np.array([2500.0]))

    def test_negative_power_raises(self):
        with pytest.raises(MeterError):
            Wt210Meter().sample_series(np.array([-1.0]))

    def test_readings_never_negative(self):
        readings = Wt210Meter(seed=5).sample_series(np.full(1000, 0.1))
        assert np.all(readings >= 0)

    def test_single_sample(self):
        value = Wt210Meter(seed=9).sample(300.0)
        assert value == pytest.approx(300.0, rel=0.01)

    def test_empty_series(self):
        out = Wt210Meter().sample_series(np.array([]))
        assert out.shape == (0,)
