"""The 1 s memory sampler."""

import numpy as np
import pytest

from repro.metering.sampler import MemorySampler


def test_deterministic(e5462):
    series = np.full(50, 2000.0)
    a = MemorySampler(e5462, seed=1).sample_series(series)
    b = MemorySampler(e5462, seed=1).sample_series(series)
    assert np.array_equal(a, b)


def test_tracks_true_value(e5462):
    series = np.full(1000, 2000.0)
    observed = MemorySampler(e5462, seed=2).sample_series(series)
    assert observed.mean() == pytest.approx(2000.0, rel=0.01)


def test_clipped_to_installed_memory(e5462):
    series = np.full(100, e5462.memory_mb)
    observed = MemorySampler(e5462, seed=3).sample_series(series)
    assert np.all(observed <= e5462.memory_mb)


def test_never_negative(e5462):
    observed = MemorySampler(e5462, seed=4).sample_series(np.full(100, 1.0))
    assert np.all(observed >= 0)


def test_usage_percent(e5462):
    series = np.full(200, e5462.memory_mb / 2)
    pct = MemorySampler(e5462, seed=5).usage_percent(series)
    assert pct.mean() == pytest.approx(50.0, abs=1.0)


def test_zero_jitter_is_exact(e5462):
    series = np.full(10, 1234.0)
    observed = MemorySampler(e5462, jitter_mb=0.0).sample_series(series)
    assert np.array_equal(observed, series)
