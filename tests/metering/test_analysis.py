"""Window extraction and 10 % trimming (Section V-C2 analysis)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metering.analysis import (
    extract_window,
    trimmed_mean,
    trimmed_stats,
)


class TestExtract:
    def test_half_open_window(self):
        t = np.arange(10.0)
        v = np.arange(10.0) * 2
        out = extract_window(t, v, 2.0, 5.0)
        assert np.array_equal(out, [4.0, 6.0, 8.0])

    def test_empty_window_outside_range(self):
        t = np.arange(10.0)
        assert extract_window(t, t, 100.0, 200.0).size == 0

    def test_rejects_inverted_window(self):
        t = np.arange(10.0)
        with pytest.raises(ConfigurationError):
            extract_window(t, t, 5.0, 5.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            extract_window(np.arange(3.0), np.arange(4.0), 0, 1)


class TestTrim:
    def test_drops_10_percent_each_end(self):
        values = np.arange(100.0)
        stats = trimmed_stats(values, trim=0.10)
        assert stats.n_used == 80
        assert stats.n_trimmed == 20
        assert stats.mean == pytest.approx(np.arange(10.0, 90.0).mean())

    def test_positional_not_magnitude(self):
        """Start-up transient at the head is removed even though its
        values are extreme."""
        values = np.concatenate([np.full(10, 1000.0), np.full(90, 200.0)])
        assert trimmed_mean(values, trim=0.10) == pytest.approx(200.0)

    def test_zero_trim_keeps_everything(self):
        values = np.arange(10.0)
        assert trimmed_mean(values, trim=0.0) == pytest.approx(4.5)

    def test_tiny_window_keeps_a_sample(self):
        assert trimmed_mean(np.array([5.0]), trim=0.4) == 5.0

    def test_two_samples_heavy_trim(self):
        # trim of 0.49 on 2 samples: cut = 0 -> keeps both.
        assert trimmed_mean(np.array([1.0, 3.0]), trim=0.49) == 2.0

    def test_std_reported(self):
        stats = trimmed_stats(np.array([1.0, 2.0, 3.0, 4.0]), trim=0.0)
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4]))

    def test_rejects_bad_trim(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean(np.arange(10.0), trim=0.5)
        with pytest.raises(ConfigurationError):
            trimmed_mean(np.arange(10.0), trim=-0.1)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean(np.array([]))
