"""Window extraction and 10 % trimming (Section V-C2 analysis)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metering.analysis import (
    extract_window,
    trimmed_mean,
    trimmed_stats,
)


class TestExtract:
    def test_half_open_window(self):
        t = np.arange(10.0)
        v = np.arange(10.0) * 2
        out = extract_window(t, v, 2.0, 5.0)
        assert np.array_equal(out, [4.0, 6.0, 8.0])

    def test_empty_window_outside_range(self):
        t = np.arange(10.0)
        assert extract_window(t, t, 100.0, 200.0).size == 0

    def test_rejects_inverted_window(self):
        t = np.arange(10.0)
        with pytest.raises(ConfigurationError):
            extract_window(t, t, 5.0, 5.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            extract_window(np.arange(3.0), np.arange(4.0), 0, 1)


class TestExtractEdges:
    """Regression pins for the boundary decision and tolerance snapping.

    The meter samples a run at ``t0, t0+1, ..., t0+ceil(d)-1``; with
    ``gap_s=0`` the next run's first sample lands exactly on this run's
    ``t_end_s``.  The window is therefore half-open, and edge timestamps
    jittered by float round-trips must still land on the right side.
    """

    def test_samples_exactly_on_both_edges(self):
        t = np.arange(10.0)
        # Window [3, 7): sample at 3.0 is ours, sample at 7.0 is the
        # next run's first sample.
        out = extract_window(t, t * 10, 3.0, 7.0)
        assert np.array_equal(out, [30.0, 40.0, 50.0, 60.0])

    def test_adjacent_windows_partition_the_trace(self):
        # gap_s=0 back-to-back runs: every sample in exactly one window.
        t = np.arange(20.0)
        first = extract_window(t, t, 0.0, 8.0)
        second = extract_window(t, t, 8.0, 20.0)
        assert first.size + second.size == t.size
        assert not set(first) & set(second)

    def test_start_edge_jitter_does_not_drop_the_sample(self):
        # A clock-offset round-trip can leave t0 at t0 - 1ulp; the old
        # exact >= comparison dropped that sample from every window.
        start = 1000.0
        jittered = start - 2e-14 * start  # one ulp below
        assert jittered < start
        t = np.array([jittered, start + 1, start + 2])
        out = extract_window(t, t, start, start + 3)
        assert out.size == 3

    def test_end_edge_jitter_does_not_steal_the_next_runs_sample(self):
        end = 1000.0
        jittered = end - 2e-14 * end  # next run's t0, one ulp early
        t = np.array([end - 2, end - 1, jittered])
        out = extract_window(t, t, end - 2, end)
        assert out.size == 2  # the jittered sample belongs to the next run

    def test_clean_grid_unchanged_by_tolerance(self):
        t = np.arange(50.0)
        v = np.sin(t)
        exact = v[(t >= 10.0) & (t < 20.0)]
        assert np.array_equal(extract_window(t, v, 10.0, 20.0), exact)

    def test_tolerance_is_overridable(self):
        t = np.array([4.9999, 5.0])
        assert extract_window(t, t, 5.0, 6.0).size == 1
        assert (
            extract_window(t, t, 5.0, 6.0, edge_tolerance_s=1e-3).size == 2
        )


class TestTrim:
    def test_drops_10_percent_each_end(self):
        values = np.arange(100.0)
        stats = trimmed_stats(values, trim=0.10)
        assert stats.n_used == 80
        assert stats.n_trimmed == 20
        assert stats.mean == pytest.approx(np.arange(10.0, 90.0).mean())

    def test_positional_not_magnitude(self):
        """Start-up transient at the head is removed even though its
        values are extreme."""
        values = np.concatenate([np.full(10, 1000.0), np.full(90, 200.0)])
        assert trimmed_mean(values, trim=0.10) == pytest.approx(200.0)

    def test_zero_trim_keeps_everything(self):
        values = np.arange(10.0)
        assert trimmed_mean(values, trim=0.0) == pytest.approx(4.5)

    def test_tiny_window_keeps_a_sample(self):
        assert trimmed_mean(np.array([5.0]), trim=0.4) == 5.0

    def test_two_samples_heavy_trim(self):
        # trim of 0.49 on 2 samples: cut = 0 -> keeps both.
        assert trimmed_mean(np.array([1.0, 3.0]), trim=0.49) == 2.0

    def test_std_reported(self):
        stats = trimmed_stats(np.array([1.0, 2.0, 3.0, 4.0]), trim=0.0)
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4]))

    def test_rejects_bad_trim(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean(np.arange(10.0), trim=0.5)
        with pytest.raises(ConfigurationError):
            trimmed_mean(np.arange(10.0), trim=-0.1)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean(np.array([]))


class TestTrimDegenerate:
    """ddof contract and the flagged (never silent) fallback paths."""

    def test_single_sample_is_flagged(self):
        stats = trimmed_stats(np.array([5.0]), trim=0.4)
        assert stats.fallback
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.n_used == 1

    def test_two_samples_not_a_fallback(self):
        # cut = int(2 * 0.49) = 0: untrimmed but exact statistics.
        stats = trimmed_stats(np.array([1.0, 3.0]), trim=0.49)
        assert not stats.fallback
        assert stats.n_used == 2
        assert stats.mean == 2.0

    def test_short_window_below_one_over_trim(self):
        # n=9 < ceil(1/0.1)=10 -> cut=0, untrimmed, not a fallback.
        stats = trimmed_stats(np.arange(9.0), trim=0.1)
        assert not stats.fallback
        assert stats.n_used == 9
        assert stats.n_trimmed == 0

    def test_default_ddof_is_population_std(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        stats = trimmed_stats(values, trim=0.0)
        assert stats.ddof == 0
        assert stats.std == pytest.approx(np.std(values, ddof=0))

    def test_explicit_ddof_one(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        stats = trimmed_stats(values, trim=0.0, ddof=1)
        assert stats.ddof == 1
        assert stats.std == pytest.approx(np.std(values, ddof=1))

    def test_ddof_needs_enough_samples(self):
        with pytest.raises(ConfigurationError, match="ddof=1"):
            trimmed_stats(np.array([5.0]), trim=0.0, ddof=1)

    def test_negative_ddof_rejected(self):
        with pytest.raises(ConfigurationError, match="ddof"):
            trimmed_stats(np.arange(4.0), ddof=-1)

    def test_clean_window_not_flagged(self):
        stats = trimmed_stats(np.arange(100.0), trim=0.10)
        assert not stats.fallback
        assert stats.ddof == 0


class TestRepairTrace:
    """Validation/repair stage: every fault class leaves an audit flag."""

    @staticmethod
    def _trace(n=120):
        times = np.arange(float(n))
        watts = 250.0 + np.sin(times / 7.0)
        return times, watts

    def test_pristine_trace_is_untouched(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        repaired = repair_trace(times, watts)
        assert repaired.quality.ok
        assert repaired.quality.flags == ()
        assert np.array_equal(repaired.times_s, times)
        assert np.array_equal(repaired.watts, watts)

    def test_nan_samples_rejected_and_interpolated(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        watts[10] = np.nan
        repaired = repair_trace(times, watts)
        q = repaired.quality
        assert "nonfinite_rejected" in q.flags
        assert q.n_nan == 1
        assert q.n_interpolated == 1
        assert repaired.watts.size == times.size
        assert np.isfinite(repaired.watts).all()

    def test_duplicate_timestamps_keep_the_first(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace(20)
        times[5] = times[4]
        repaired = repair_trace(times, watts)
        q = repaired.quality
        assert "duplicate_timestamps" in q.flags
        assert q.n_duplicates == 1
        assert repaired.watts[4] == watts[4]

    def test_uniform_clock_skew_is_removed(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        repaired = repair_trace(times + 0.25, watts)
        q = repaired.quality
        assert "clock_skew_corrected" in q.flags
        assert q.clock_skew_s == pytest.approx(0.25)
        assert np.allclose(repaired.times_s, times)

    def test_inconsistent_jitter_is_flagged_not_corrected(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        rng = np.random.default_rng(5)
        jittered = times + rng.uniform(-0.4, 0.4, times.size)
        q = repair_trace(jittered, watts).quality
        assert "timestamp_jitter" in q.flags
        assert "clock_skew_corrected" not in q.flags

    def test_glitch_spikes_rejected(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        watts[[30, 60]] = watts[[30, 60]] * 20
        repaired = repair_trace(times, watts)
        q = repaired.quality
        assert "outliers_rejected" in q.flags
        assert q.n_outliers == 2
        assert repaired.watts.max() < 300

    def test_gap_within_budget_is_interpolated(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        keep = np.ones(times.size, dtype=bool)
        keep[50:53] = False  # 3 s hole, budget 5 s
        repaired = repair_trace(times[keep], watts[keep])
        q = repaired.quality
        assert "gaps_interpolated" in q.flags
        assert q.n_interpolated == 3
        assert q.coverage == 1.0

    def test_gap_beyond_budget_stays_missing(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        keep = np.ones(times.size, dtype=bool)
        keep[50:60] = False  # 10 s hole, budget 5 s
        q = repair_trace(times[keep], watts[keep]).quality
        assert "gap_budget_exceeded" in q.flags
        assert q.n_unfilled == 10
        assert q.coverage < 1.0
        assert not q.quarantined

    def test_hopeless_trace_is_quarantined(self):
        from repro.metering.analysis import repair_trace

        times, watts = self._trace()
        keep = np.zeros(times.size, dtype=bool)
        keep[:10] = True  # 8% of the expected grid survives
        keep[-1] = True
        repaired = repair_trace(times[keep], watts[keep])
        assert repaired.quality.quarantined
        assert repaired.times_s.size == 0

    def test_all_nan_is_quarantined(self):
        from repro.metering.analysis import repair_trace

        times = np.arange(10.0)
        q = repair_trace(times, np.full(10, np.nan)).quality
        assert q.quarantined
        assert "all_nan" in q.flags

    def test_empty_trace_is_quarantined(self):
        from repro.metering.analysis import repair_trace

        q = repair_trace(np.array([]), np.array([])).quality
        assert q.quarantined
        assert "empty" in q.flags

    def test_single_sample_survives(self):
        from repro.metering.analysis import repair_trace

        repaired = repair_trace(np.array([0.0]), np.array([200.0]))
        assert not repaired.quality.quarantined
        assert repaired.watts.size == 1

    def test_validate_is_a_dry_run(self):
        from repro.metering.analysis import repair_trace, validate_trace

        times, watts = self._trace()
        watts[3] = np.nan
        assert (
            validate_trace(times, watts)
            == repair_trace(times, watts).quality
        )

    def test_rejects_inconsistent_inputs(self):
        from repro.metering.analysis import repair_trace

        with pytest.raises(ConfigurationError):
            repair_trace(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ConfigurationError):
            repair_trace(np.arange(3.0), np.arange(3.0), sample_hz=0.0)
        with pytest.raises(ConfigurationError):
            repair_trace(np.arange(3.0), np.arange(3.0), max_gap_s=-1.0)

    def test_quality_to_dict_is_json_ready(self):
        import json

        from repro.metering.analysis import validate_trace

        times, watts = self._trace()
        data = json.loads(json.dumps(validate_trace(times, watts).to_dict()))
        assert data["coverage"] == 1.0
        assert data["flags"] == []


class TestMadZeroFallback:
    """Robust-z fallback when the MAD collapses to zero (flat traces)."""

    def test_flat_trace_with_spike_is_rejected(self):
        from repro.metering.analysis import repair_trace

        # A quantised flat trace has MAD 0; the old fallback scale was
        # watts.std() *including* the glitch, so a single large spike
        # inflated its own threshold and survived.  The scale must come
        # from the MAD-inlier core instead.
        times = np.arange(60.0)
        watts = np.full(60, 250.0)
        watts[30] = 1200.0
        repaired = repair_trace(times, watts)
        assert "outliers_rejected" in repaired.quality.flags
        # The spike's slot is interpolated back to the plateau.
        assert repaired.watts[30] == pytest.approx(250.0)
        assert float(repaired.watts.max()) < 300.0

    def test_minimum_population_still_rejects(self):
        from repro.metering.analysis import repair_trace

        times = np.arange(4.0)
        watts = np.array([250.0, 250.0, 250.0, 2000.0])
        repaired = repair_trace(times, watts)
        assert "outliers_rejected" in repaired.quality.flags
        assert float(repaired.watts.max()) < 300.0

    def test_outlier_z_inf_still_disables_rejection(self):
        from repro.metering.analysis import repair_trace

        # The campaign path disables glitch rejection with z=inf; the
        # flat-trace fallback must honour that too (inf <= inf).
        times = np.arange(60.0)
        watts = np.full(60, 250.0)
        watts[30] = 1200.0
        repaired = repair_trace(times, watts, outlier_z=np.inf)
        assert "outliers_rejected" not in repaired.quality.flags
        assert float(repaired.watts.max()) == 1200.0

    def test_bit_flat_trace_is_untouched(self):
        from repro.metering.analysis import repair_trace

        times = np.arange(60.0)
        watts = np.full(60, 250.0)
        repaired = repair_trace(times, watts)
        assert repaired.quality.flags == ()
        assert np.array_equal(repaired.watts, watts)

    def test_noisy_core_fallback_scales_from_inliers(self):
        from repro.metering.analysis import repair_trace

        # MAD 0 but the core is not perfectly flat: > half the samples
        # sit on the median, the rest carry small quantisation noise.
        # The inlier std scales z; the glitch still stands out.
        times = np.arange(40.0)
        watts = np.full(40, 250.0)
        watts[1::4] = 250.25
        watts[20] = 1500.0
        repaired = repair_trace(times, watts)
        assert "outliers_rejected" in repaired.quality.flags
        assert float(repaired.watts.max()) < 300.0


class TestExpectedWindow:
    """Declared-window regrid: edge dropouts count against coverage."""

    def test_leading_dropout_counts_as_unfilled(self):
        from repro.metering.analysis import repair_trace

        times = np.arange(30.0, 120.0)
        watts = np.full(90, 250.0)
        plain = repair_trace(times, watts)
        assert plain.quality.coverage == 1.0  # cannot see the loss
        declared = repair_trace(
            times, watts, expected_start_s=0.0, expected_end_s=120.0
        )
        assert declared.quality.n_expected == 120
        assert declared.quality.n_unfilled == 30
        assert declared.quality.coverage == pytest.approx(0.75)
        assert "long_gap_unfilled" in declared.quality.flags or (
            declared.quality.n_unfilled > 0
        )

    def test_trailing_dropout_counts_as_unfilled(self):
        from repro.metering.analysis import repair_trace

        times = np.arange(0.0, 90.0)
        watts = np.full(90, 250.0)
        declared = repair_trace(
            times, watts, expected_start_s=0.0, expected_end_s=120.0
        )
        assert declared.quality.n_expected == 120
        assert declared.quality.n_unfilled == 30
        assert declared.times_s.size == 90

    def test_samples_outside_window_are_dropped(self):
        from repro.metering.analysis import repair_trace

        times = np.arange(-10.0, 130.0)
        watts = np.full(140, 250.0)
        declared = repair_trace(
            times, watts, expected_start_s=0.0, expected_end_s=120.0
        )
        assert "outside_expected_window" in declared.quality.flags
        assert declared.times_s.size == 120
        assert declared.times_s[0] == 0.0
        assert declared.times_s[-1] == 119.0

    def test_matching_window_is_bit_identical_to_default(self):
        from repro.metering.analysis import repair_trace

        rng = np.random.default_rng(9)
        times = np.arange(120.0)
        watts = 250.0 + rng.standard_normal(120)
        plain = repair_trace(times, watts)
        declared = repair_trace(
            times, watts, expected_start_s=0.0, expected_end_s=120.0
        )
        assert np.array_equal(plain.times_s, declared.times_s)
        assert np.array_equal(plain.watts, declared.watts)
        assert plain.quality == declared.quality

    def test_empty_window_rejected(self):
        from repro.metering.analysis import repair_trace

        with pytest.raises(ConfigurationError):
            repair_trace(
                np.arange(3.0),
                np.full(3, 250.0),
                expected_start_s=10.0,
                expected_end_s=10.0,
            )

    def test_interior_gap_still_budgeted(self):
        from repro.metering.analysis import repair_trace

        # A short interior gap interpolates exactly as before even with
        # a declared window.
        times = np.concatenate([np.arange(0.0, 50.0), np.arange(53.0, 120.0)])
        watts = np.full(times.size, 250.0)
        declared = repair_trace(
            times, watts, expected_start_s=0.0, expected_end_s=120.0
        )
        assert declared.quality.n_expected == 120
        assert declared.quality.n_unfilled == 0
        assert "gaps_interpolated" in declared.quality.flags
