"""Unit tests for the streaming metering pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metering.analysis import trimmed_stats
from repro.metering.stream import (
    StreamingFeatures,
    StreamingStats,
    StreamingTrim,
    StreamingWindow,
    WindowSpec,
)


class TestStreamingStats:
    def test_matches_numpy_closely(self):
        rng = np.random.default_rng(0)
        values = 200.0 + 30.0 * rng.standard_normal(1000)
        acc = StreamingStats()
        acc.push_many(values)
        assert acc.n == 1000
        assert acc.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert acc.std() == pytest.approx(float(values.std()), rel=1e-10)
        assert acc.std(ddof=1) == pytest.approx(
            float(values.std(ddof=1)), rel=1e-10
        )

    def test_empty_and_degenerate(self):
        acc = StreamingStats()
        assert acc.n == 0
        assert acc.mean == 0.0
        assert np.isnan(acc.std())
        acc.push(5.0)
        assert acc.mean == 5.0
        assert acc.std() == 0.0
        assert np.isnan(acc.std(ddof=1))

    def test_chunking_is_exact(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 500, 257)
        one = StreamingStats()
        one.push_many(values)
        split = StreamingStats()
        split.push_many(values[:100])
        split.push_many(values[100:101])
        split.push_many(values[101:])
        assert one.mean == split.mean
        assert one.std() == split.std()

    def test_bad_ddof(self):
        with pytest.raises(ConfigurationError):
            StreamingStats().std(ddof=-1)


class TestStreamingTrim:
    @pytest.mark.parametrize("n", [1, 2, 3, 9, 10, 11, 100, 257])
    @pytest.mark.parametrize("trim", [0.0, 0.1, 0.25, 0.49])
    def test_bit_identical_to_batch(self, n, trim):
        rng = np.random.default_rng(n)
        values = rng.uniform(50, 400, n)
        acc = StreamingTrim(trim=trim)
        acc.push_many(values)
        assert acc.finalize() == trimmed_stats(values, trim)

    def test_ddof_threads_through(self):
        values = np.arange(20.0)
        acc = StreamingTrim(trim=0.1, ddof=1)
        acc.push_many(values)
        assert acc.finalize() == trimmed_stats(values, 0.1, ddof=1)

    def test_memory_is_bounded_by_kept_fraction(self):
        acc = StreamingTrim(trim=0.1)
        acc.push_many(np.arange(1000.0))
        # 10 % of the head is dropped on arrival.
        assert acc.n_buffered == 900
        assert acc.n_seen == 1000

    def test_empty_raises_like_batch(self):
        with pytest.raises(ConfigurationError):
            StreamingTrim().finalize()

    def test_invalid_trim(self):
        with pytest.raises(ConfigurationError):
            StreamingTrim(trim=0.5)
        with pytest.raises(ConfigurationError):
            StreamingTrim(trim=-0.01)

    def test_live_estimate_tracks_all_samples(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        acc = StreamingTrim(trim=0.25)
        acc.push_many(values)
        assert acc.live.n == 4
        assert acc.live.mean == pytest.approx(2.5)


class TestStreamingWindow:
    def test_routes_like_extract_window(self):
        times = np.arange(10.0)
        watts = np.arange(10.0) * 10.0
        pipeline = StreamingWindow(trim=0.0)
        pipeline.add_window(WindowSpec("a", 0.0, 5.0))
        pipeline.add_window(WindowSpec("b", 5.0, 10.0))
        pipeline.push_many(times, watts)
        results = pipeline.finalize()
        assert [r.spec.label for r in results] == ["a", "b"]
        assert results[0].stats.n_total == 5
        assert results[0].stats.mean == pytest.approx(20.0)
        assert results[1].stats.mean == pytest.approx(70.0)

    def test_edge_snapping_matches_batch(self):
        # A start-edge sample drifted a hair below the edge must still
        # land in the window; an end-edge one must stay out.
        times = np.array([5.0 - 1e-12, 6.0, 7.0, 10.0 - 1e-12])
        watts = np.array([1.0, 2.0, 3.0, 4.0])
        pipeline = StreamingWindow(trim=0.0)
        pipeline.add_window(WindowSpec("w", 5.0, 10.0))
        pipeline.push_many(times, watts)
        (result,) = pipeline.finalize()
        assert result.stats.n_total == 3
        assert result.stats.mean == pytest.approx(2.0)

    def test_eager_finalization_and_callback(self):
        seen = []
        pipeline = StreamingWindow(trim=0.0, on_finalize=seen.append)
        pipeline.add_window(WindowSpec("a", 0.0, 3.0))
        pipeline.add_window(WindowSpec("b", 3.0, 6.0))
        pipeline.push_many([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        assert seen == []  # watermark has not passed the end yet
        pipeline.push(3.1, 2.0)
        assert [r.spec.label for r in seen] == ["a"]
        assert pipeline.n_open == 1
        pipeline.finalize()
        assert [r.spec.label for r in seen] == ["a", "b"]

    def test_late_samples_counted_not_fatal(self):
        pipeline = StreamingWindow(trim=0.0)
        pipeline.add_window(WindowSpec("a", 0.0, 2.0))
        pipeline.push_many([0.0, 1.0, 5.0], [1.0, 1.0, 1.0])
        assert pipeline.n_open == 0  # watermark closed the window
        pipeline.push(0.5, 9.0)  # arrives after its window finalised
        assert pipeline.late_samples == 1
        (result,) = pipeline.finalize()
        assert result.stats.n_total == 2

    def test_windows_must_start_in_order(self):
        pipeline = StreamingWindow()
        pipeline.add_window(WindowSpec("a", 10.0, 20.0))
        with pytest.raises(ConfigurationError):
            pipeline.add_window(WindowSpec("b", 5.0, 8.0))

    def test_empty_window_raises_on_finalize(self):
        pipeline = StreamingWindow()
        pipeline.add_window(WindowSpec("a", 0.0, 5.0))
        with pytest.raises(ConfigurationError):
            pipeline.finalize()

    def test_overlapping_windows_both_receive(self):
        pipeline = StreamingWindow(trim=0.0)
        pipeline.add_window(WindowSpec("a", 0.0, 4.0))
        pipeline.add_window(WindowSpec("b", 2.0, 6.0))
        pipeline.push_many(np.arange(6.0), np.ones(6))
        a, b = pipeline.finalize()
        assert a.stats.n_total == 4
        assert b.stats.n_total == 4

    def test_stats_by_label(self):
        pipeline = StreamingWindow(trim=0.0)
        pipeline.add_window(WindowSpec("a", 0.0, 2.0))
        pipeline.push_many([0.0, 1.0], [3.0, 5.0])
        pipeline.finalize()
        assert pipeline.stats_by_label()["a"].mean == pytest.approx(4.0)


class TestStreamingFeatures:
    def test_pairs_like_hpcc_inner_loop(self):
        rng = np.random.default_rng(3)
        watts = rng.uniform(100, 300, 47)  # 4 full intervals + partial
        pmu = [rng.uniform(0, 1, 6) for _ in range(5)]
        acc = StreamingFeatures(interval=10)
        acc.push_pmu_many(pmu)
        acc.push_power_many(watts)
        features, power = acc.finalize()
        assert features.shape == (5, 6)
        for k in range(5):
            window = watts[k * 10 : (k + 1) * 10]
            assert power[k] == float(window.mean())
            np.testing.assert_array_equal(features[k], pmu[k])

    def test_surplus_pmu_rows_skipped(self):
        acc = StreamingFeatures(interval=10)
        acc.push_pmu_many([np.ones(6), np.ones(6) * 2.0])
        acc.push_power_many(np.full(10, 5.0))  # one interval only
        features, power = acc.finalize()
        assert features.shape == (1, 6)
        assert power.tolist() == [5.0]

    def test_pmu_mean_matches_vstack(self):
        rows = [np.arange(6.0), np.arange(6.0) * 3.0]
        acc = StreamingFeatures()
        acc.push_pmu_many(rows)
        np.testing.assert_array_equal(
            acc.pmu_mean(), np.vstack(rows).mean(axis=0)
        )

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            StreamingFeatures().finalize()
        with pytest.raises(ConfigurationError):
            StreamingFeatures().pmu_mean()
        with pytest.raises(ConfigurationError):
            StreamingFeatures(interval=0)
