"""WTViewer-style CSV read/write/merge."""

import numpy as np
import pytest

from repro.errors import MeterError
from repro.metering.csvlog import merge_power_csvs, read_power_csv, write_power_csv


def test_roundtrip(tmp_path):
    times = np.arange(10.0)
    watts = 200.0 + np.sin(times)
    path = write_power_csv(tmp_path / "a.csv", times, watts)
    t2, w2 = read_power_csv(path)
    assert np.allclose(t2, times)
    assert np.allclose(w2, watts, atol=0.01)  # 2-decimal format


def test_write_rejects_mismatched_shapes(tmp_path):
    with pytest.raises(MeterError):
        write_power_csv(tmp_path / "a.csv", np.arange(3.0), np.arange(4.0))


def test_read_rejects_wrong_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(MeterError):
        read_power_csv(path)


def test_read_rejects_bad_row(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time_s,power_w\n1.0,oops\n")
    with pytest.raises(MeterError):
        read_power_csv(path)


def test_read_rejects_wrong_column_count(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time_s,power_w\n1.0,2.0,3.0\n")
    with pytest.raises(MeterError):
        read_power_csv(path)


def test_merge_sorts_by_time(tmp_path):
    p1 = write_power_csv(tmp_path / "late.csv", np.arange(5.0, 10.0), np.full(5, 2.0))
    p2 = write_power_csv(tmp_path / "early.csv", np.arange(0.0, 5.0), np.full(5, 1.0))
    merged = merge_power_csvs([p1, p2], tmp_path / "merged.csv")
    t, w = read_power_csv(merged)
    assert np.array_equal(t, np.arange(10.0))
    assert np.array_equal(w[:5], np.full(5, 1.0))


def test_merge_deduplicates_overlap(tmp_path):
    p1 = write_power_csv(tmp_path / "a.csv", np.arange(0.0, 6.0), np.full(6, 1.0))
    p2 = write_power_csv(tmp_path / "b.csv", np.arange(4.0, 10.0), np.full(6, 2.0))
    merged = merge_power_csvs([p1, p2], tmp_path / "m.csv")
    t, w = read_power_csv(merged)
    assert np.array_equal(t, np.arange(10.0))
    # First occurrence wins at the overlapping 4.0 and 5.0 stamps.
    assert w[4] == 1.0
    assert w[5] == 1.0


def test_merge_rejects_empty_list(tmp_path):
    with pytest.raises(MeterError):
        merge_power_csvs([], tmp_path / "m.csv")


class TestTolerantReader:
    def test_clean_file_reports_ok(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        times = np.arange(10.0)
        path = write_power_csv(tmp_path / "a.csv", times, times + 200.0)
        t, w, report = read_power_csv_tolerant(path)
        assert report.ok
        assert report.n_rows == 10
        assert np.allclose(t, times)
        assert np.allclose(w, times + 200.0, atol=0.01)

    def test_truncated_file_skips_the_torn_row(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        path = tmp_path / "torn.csv"
        path.write_text("time_s,power_w\n0.0,200.0\n1.0,201.0\n2.")
        t, w, report = read_power_csv_tolerant(path)
        assert not report.ok
        assert report.bad_lines == (4,)
        assert np.array_equal(t, [0.0, 1.0])
        assert np.array_equal(w, [200.0, 201.0])

    def test_corrupt_rows_reported_with_line_numbers(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,power_w\n0.0,200.0\n@@junk@@\n2.0,oops\n3.0,203.0\n"
        )
        t, w, report = read_power_csv_tolerant(path)
        assert report.n_bad == 2
        assert report.bad_lines == (3, 4)
        assert np.array_equal(t, [0.0, 3.0])

    def test_wrong_header_still_raises(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        path = tmp_path / "foreign.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(MeterError):
            read_power_csv_tolerant(path)


class TestIterPowerCsv:
    def test_chunks_concatenate_to_full_read(self, tmp_path):
        from repro.metering.csvlog import iter_power_csv

        times = np.arange(1000.0)
        watts = 200.0 + np.sin(times)
        path = write_power_csv(tmp_path / "a.csv", times, watts)
        t_full, w_full = read_power_csv(path)
        for chunk_size in (1, 7, 100, 4096):
            chunks = list(iter_power_csv(path, chunk_size=chunk_size))
            assert all(t.size <= chunk_size for t, _ in chunks)
            t_cat = np.concatenate([t for t, _ in chunks])
            w_cat = np.concatenate([w for _, w in chunks])
            assert np.array_equal(t_cat, t_full)
            assert np.array_equal(w_cat, w_full)

    def test_same_validation_as_batch_reader(self, tmp_path):
        from repro.metering.csvlog import iter_power_csv

        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(MeterError):
            list(iter_power_csv(bad))
        torn = tmp_path / "torn.csv"
        torn.write_text("time_s,power_w\n1.0,200.0\n2.0,oops\n")
        with pytest.raises(MeterError):
            list(iter_power_csv(torn))

    def test_empty_body_yields_nothing(self, tmp_path):
        from repro.metering.csvlog import iter_power_csv

        path = write_power_csv(
            tmp_path / "empty.csv", np.array([]), np.array([])
        )
        assert list(iter_power_csv(path)) == []


class TestPowerCsvWriter:
    def test_incremental_writes_byte_identical_to_batch(self, tmp_path):
        from repro.metering.csvlog import PowerCsvWriter

        times = np.arange(100.0)
        watts = 250.0 + np.cos(times / 3.0)
        batch = write_power_csv(tmp_path / "batch.csv", times, watts)
        inc = tmp_path / "inc.csv"
        with PowerCsvWriter(inc) as writer:
            writer.write(times[0], watts[0])
            writer.write_many(times[1:41], watts[1:41])
            for t, w in zip(times[41:], watts[41:]):
                writer.write(t, w)
        assert inc.read_bytes() == batch.read_bytes()

    def test_roundtrip_sample_matches_file_roundtrip(self, tmp_path):
        from repro.metering.csvlog import roundtrip_sample

        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0, 500, 50))
        watts = rng.uniform(50, 400, 50)
        path = write_power_csv(tmp_path / "a.csv", times, watts)
        t_read, w_read = read_power_csv(path)
        for i in range(50):
            t, w = roundtrip_sample(times[i], watts[i])
            assert t == t_read[i]
            assert w == w_read[i]


class TestStreamingMerge:
    @staticmethod
    def _segments(tmp_path, n_files=3, n=200, overlap=5):
        rng = np.random.default_rng(17)
        paths = []
        start = 0.0
        for i in range(n_files):
            times = start + np.arange(float(n))
            watts = rng.uniform(100, 300, n)
            paths.append(
                write_power_csv(tmp_path / f"seg{i}.csv", times, watts)
            )
            start = times[-1] + 1.0 - overlap
        return paths

    def test_streaming_merge_byte_identical_to_materialized(self, tmp_path):
        from repro.metering import csvlog

        paths = self._segments(tmp_path)
        streamed = merge_power_csvs(paths, tmp_path / "stream.csv")
        materialized = csvlog._merge_materialized(
            paths, tmp_path / "mat.csv"
        )
        assert streamed.read_bytes() == materialized.read_bytes()

    def test_small_chunk_size_changes_nothing(self, tmp_path):
        paths = self._segments(tmp_path)
        a = merge_power_csvs(paths, tmp_path / "a.csv")
        b = merge_power_csvs(paths, tmp_path / "b.csv", chunk_size=1)
        assert a.read_bytes() == b.read_bytes()

    def test_unsorted_file_falls_back_to_materialized(self, tmp_path):
        from repro.metering import csvlog

        # One segment written out of order: the k-way merge cannot
        # stream it, but the result must still match the historical
        # sort-based merge.
        ordered = write_power_csv(
            tmp_path / "ok.csv", np.arange(10.0), np.full(10, 200.0)
        )
        shuffled = tmp_path / "shuffled.csv"
        shuffled.write_text(
            "time_s,power_w\n5.000,210.00\n2.000,220.00\n8.000,230.00\n"
        )
        out = merge_power_csvs([ordered, shuffled], tmp_path / "out.csv")
        expected = csvlog._merge_materialized(
            [ordered, shuffled], tmp_path / "expected.csv"
        )
        assert out.read_bytes() == expected.read_bytes()
        times, _ = read_power_csv(out)
        assert np.all(np.diff(times) > 0)

    def test_no_temp_file_left_behind(self, tmp_path):
        paths = self._segments(tmp_path)
        merge_power_csvs(paths, tmp_path / "out.csv")
        leftovers = [p.name for p in tmp_path.glob("*.merge-tmp")]
        assert leftovers == []

    def test_failure_leaves_no_partial_output(self, tmp_path):
        paths = self._segments(tmp_path)
        missing = tmp_path / "missing.csv"
        with pytest.raises(FileNotFoundError):
            merge_power_csvs(paths + [missing], tmp_path / "out.csv")
        assert not (tmp_path / "out.csv").exists()
        assert list(tmp_path.glob("*.merge-tmp")) == []
