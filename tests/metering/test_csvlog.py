"""WTViewer-style CSV read/write/merge."""

import numpy as np
import pytest

from repro.errors import MeterError
from repro.metering.csvlog import merge_power_csvs, read_power_csv, write_power_csv


def test_roundtrip(tmp_path):
    times = np.arange(10.0)
    watts = 200.0 + np.sin(times)
    path = write_power_csv(tmp_path / "a.csv", times, watts)
    t2, w2 = read_power_csv(path)
    assert np.allclose(t2, times)
    assert np.allclose(w2, watts, atol=0.01)  # 2-decimal format


def test_write_rejects_mismatched_shapes(tmp_path):
    with pytest.raises(MeterError):
        write_power_csv(tmp_path / "a.csv", np.arange(3.0), np.arange(4.0))


def test_read_rejects_wrong_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(MeterError):
        read_power_csv(path)


def test_read_rejects_bad_row(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time_s,power_w\n1.0,oops\n")
    with pytest.raises(MeterError):
        read_power_csv(path)


def test_read_rejects_wrong_column_count(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time_s,power_w\n1.0,2.0,3.0\n")
    with pytest.raises(MeterError):
        read_power_csv(path)


def test_merge_sorts_by_time(tmp_path):
    p1 = write_power_csv(tmp_path / "late.csv", np.arange(5.0, 10.0), np.full(5, 2.0))
    p2 = write_power_csv(tmp_path / "early.csv", np.arange(0.0, 5.0), np.full(5, 1.0))
    merged = merge_power_csvs([p1, p2], tmp_path / "merged.csv")
    t, w = read_power_csv(merged)
    assert np.array_equal(t, np.arange(10.0))
    assert np.array_equal(w[:5], np.full(5, 1.0))


def test_merge_deduplicates_overlap(tmp_path):
    p1 = write_power_csv(tmp_path / "a.csv", np.arange(0.0, 6.0), np.full(6, 1.0))
    p2 = write_power_csv(tmp_path / "b.csv", np.arange(4.0, 10.0), np.full(6, 2.0))
    merged = merge_power_csvs([p1, p2], tmp_path / "m.csv")
    t, w = read_power_csv(merged)
    assert np.array_equal(t, np.arange(10.0))
    # First occurrence wins at the overlapping 4.0 and 5.0 stamps.
    assert w[4] == 1.0
    assert w[5] == 1.0


def test_merge_rejects_empty_list(tmp_path):
    with pytest.raises(MeterError):
        merge_power_csvs([], tmp_path / "m.csv")


class TestTolerantReader:
    def test_clean_file_reports_ok(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        times = np.arange(10.0)
        path = write_power_csv(tmp_path / "a.csv", times, times + 200.0)
        t, w, report = read_power_csv_tolerant(path)
        assert report.ok
        assert report.n_rows == 10
        assert np.allclose(t, times)
        assert np.allclose(w, times + 200.0, atol=0.01)

    def test_truncated_file_skips_the_torn_row(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        path = tmp_path / "torn.csv"
        path.write_text("time_s,power_w\n0.0,200.0\n1.0,201.0\n2.")
        t, w, report = read_power_csv_tolerant(path)
        assert not report.ok
        assert report.bad_lines == (4,)
        assert np.array_equal(t, [0.0, 1.0])
        assert np.array_equal(w, [200.0, 201.0])

    def test_corrupt_rows_reported_with_line_numbers(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,power_w\n0.0,200.0\n@@junk@@\n2.0,oops\n3.0,203.0\n"
        )
        t, w, report = read_power_csv_tolerant(path)
        assert report.n_bad == 2
        assert report.bad_lines == (3, 4)
        assert np.array_equal(t, [0.0, 3.0])

    def test_wrong_header_still_raises(self, tmp_path):
        from repro.metering.csvlog import read_power_csv_tolerant

        path = tmp_path / "foreign.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(MeterError):
            read_power_csv_tolerant(path)
