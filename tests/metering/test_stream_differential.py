"""Differential suite: streaming metering is bit-identical to batch.

Every test here compares the online pipeline's finalised numbers
against the historical whole-trace path with ``==`` on raw float64
values — no tolerances.  Seeds cover clean grids, repaired traces,
degenerate/fallback windows, and the full campaign round trip.
"""

import filecmp

import numpy as np
import pytest

from repro.core.regression import collect_npb_features
from repro.engine.experiment import Campaign
from repro.engine.simulator import PMU_INTERVAL_S, Simulator
from repro.metering.analysis import (
    DEFAULT_TRIM,
    extract_window,
    repair_trace,
    trimmed_stats,
)
from repro.metering.csvlog import read_power_csv
from repro.metering.stream import (
    StreamingFeatures,
    StreamingTrim,
    StreamingWindow,
    WindowSpec,
)
from repro.workloads.npb import NpbWorkload

SEEDS = [7, 42, 2015]


def _chunks(array, sizes):
    """Split an array into chunks of the (cycled) given sizes."""
    out = []
    i = 0
    k = 0
    while i < len(array):
        size = sizes[k % len(sizes)]
        out.append(array[i : i + size])
        i += size
        k += 1
    return out


class TestTrimDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("trim", [0.0, 0.1, DEFAULT_TRIM])
    def test_simulator_traces(self, e5462, seed, trim):
        run = Simulator(e5462, seed=seed).run(NpbWorkload("ep", "C", 4))
        acc = StreamingTrim(trim=trim)
        acc.push_many(run.measured_watts)
        assert acc.finalize() == trimmed_stats(run.measured_watts, trim)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_any_chunking(self, seed):
        rng = np.random.default_rng(seed)
        watts = rng.uniform(80, 400, 523)
        whole = StreamingTrim()
        whole.push_many(watts)
        chunked = StreamingTrim()
        for chunk in _chunks(watts, [1, 7, 64, 3]):
            chunked.push_many(chunk)
        batch = trimmed_stats(watts, DEFAULT_TRIM)
        assert whole.finalize() == batch
        assert chunked.finalize() == batch

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_degenerate_windows(self, n):
        # n=1 is the batch fallback (middle sample, flagged); tiny n
        # exercises the cut==0 edge.
        watts = np.linspace(100.0, 110.0, n)
        acc = StreamingTrim(DEFAULT_TRIM)
        acc.push_many(watts)
        batch = trimmed_stats(watts, DEFAULT_TRIM)
        streamed = acc.finalize()
        assert streamed == batch
        assert streamed.fallback == batch.fallback

    @pytest.mark.parametrize("seed", SEEDS)
    def test_repaired_traces(self, seed):
        # Repair is a whole-trace pass; what streaming must match is the
        # summary of the repaired samples.
        rng = np.random.default_rng(seed)
        times = np.arange(300.0)
        watts = 250.0 + 12.0 * rng.standard_normal(300)
        watts[50] = 4000.0  # glitch
        keep = np.ones(300, dtype=bool)
        keep[120:125] = False  # dropout
        repaired = repair_trace(times[keep], watts[keep], sample_hz=1.0)
        acc = StreamingTrim(DEFAULT_TRIM)
        acc.push_many(repaired.watts)
        assert acc.finalize() == trimmed_stats(repaired.watts, DEFAULT_TRIM)


class TestWindowDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_campaign_trace_windows(self, e5462, seed, tmp_path):
        campaign = Campaign(Simulator(e5462, seed=seed), gap_s=10.0)
        result = campaign.run(
            [NpbWorkload("ep", "C", 2), NpbWorkload("ft", "C", 4)],
            csv_dir=tmp_path,
        )
        times, watts = read_power_csv(tmp_path / "merged.csv")
        times = times - campaign.clock_offset_s

        pipeline = StreamingWindow(trim=campaign.trim)
        for run in result.runs:
            pipeline.add_window(
                WindowSpec(run.demand.program, run.t_start_s, run.t_end_s)
            )
        # Push in deliberately awkward chunks.
        for idx in _chunks(np.arange(times.size), [13, 1, 97]):
            pipeline.push_many(times[idx], watts[idx])

        for run, window in zip(result.runs, pipeline.finalize()):
            batch = trimmed_stats(
                extract_window(times, watts, run.t_start_s, run.t_end_s),
                campaign.trim,
            )
            assert window.stats == batch

    def test_short_window_fallback_matches(self):
        # A 1 s program window: batch falls back to the middle sample.
        times = np.arange(5.0)
        watts = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
        pipeline = StreamingWindow(trim=DEFAULT_TRIM)
        pipeline.add_window(WindowSpec("tiny", 2.0, 3.0))
        pipeline.push_many(times, watts)
        (result,) = pipeline.finalize()
        batch = trimmed_stats(
            extract_window(times, watts, 2.0, 3.0), DEFAULT_TRIM
        )
        assert result.stats == batch
        assert result.stats.fallback


class TestCampaignDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_measurements_and_merged_csv(self, e5462, seed, tmp_path):
        workloads = [
            NpbWorkload("ep", "C", 1),
            NpbWorkload("ft", "C", 2),
            NpbWorkload("ep", "C", 4),
        ]
        batch_dir = tmp_path / "batch"
        stream_dir = tmp_path / "stream"
        batch = Campaign(Simulator(e5462, seed=seed)).run(
            workloads, csv_dir=batch_dir
        )
        streamed = Campaign(Simulator(e5462, seed=seed), streaming=True).run(
            workloads, csv_dir=stream_dir
        )
        # Dataclass equality on ProgramMeasurement is exact float
        # equality field by field — the bit-identity contract.
        assert streamed.measurements == batch.measurements
        assert filecmp.cmp(
            batch_dir / "merged.csv",
            stream_dir / "merged.csv",
            shallow=False,
        )

    def test_nonzero_clock_offset(self, e5462, tmp_path):
        workloads = [NpbWorkload("ep", "C", 4)]
        batch = Campaign(
            Simulator(e5462, seed=11), clock_offset_s=1.7
        ).run(workloads, csv_dir=tmp_path / "b")
        streamed = Campaign(
            Simulator(e5462, seed=11), clock_offset_s=1.7, streaming=True
        ).run(workloads, csv_dir=tmp_path / "s")
        assert streamed.measurements == batch.measurements


class TestFeatureDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_hpcc_pairing(self, e5462, seed):
        from repro.workloads.hpcc import HpccWorkload

        run = Simulator(e5462, seed=seed).run(HpccWorkload("hpl", 4))
        acc = StreamingFeatures(interval=int(PMU_INTERVAL_S))
        acc.push_pmu_many(run.pmu_samples)
        acc.push_power_many(run.measured_watts)
        features, power = acc.finalize()

        # The historical inner loop, materialised.
        rows = []
        means = []
        interval = int(PMU_INTERVAL_S)
        for k, pmu in enumerate(run.pmu_samples):
            window = run.measured_watts[k * interval : (k + 1) * interval]
            if window.size == 0:
                continue
            rows.append(pmu.as_vector())
            means.append(float(window.mean()))
        np.testing.assert_array_equal(features, np.vstack(rows))
        assert power.tolist() == means

    def test_npb_feature_rows(self, e5462):
        run = Simulator(e5462, seed=5).run(NpbWorkload("ep", "C", 4))
        acc = StreamingFeatures(interval=int(PMU_INTERVAL_S))
        acc.push_pmu_many(run.pmu_samples)
        np.testing.assert_array_equal(
            acc.pmu_mean(), run.pmu_matrix().mean(axis=0)
        )
        trim_acc = StreamingTrim(DEFAULT_TRIM)
        trim_acc.push_many(run.measured_watts)
        assert trim_acc.finalize().mean == run.average_power_watts()

    def test_collect_npb_features_self_consistent(self, e5462):
        # The collector now runs on the accumulators; its watts must
        # still equal each run's materialised trimmed power.
        simulator = Simulator(e5462, seed=1234)
        labels, features, watts = collect_npb_features(
            e5462, "B", simulator=simulator
        )
        check = Simulator(e5462, seed=1234)
        from repro.core.regression import verification_runs

        by_label = {w.label: w for w in verification_runs(e5462, "B")}
        for label, row, w in zip(labels, features, watts):
            run = check.run(by_label[label])
            np.testing.assert_array_equal(row, run.pmu_matrix().mean(axis=0))
            assert w == run.average_power_watts()
