"""ASCII chart rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.viz import bar_chart, line_columns, paired_series


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart("Power", ["ep.C.4", "HPL.4"], [174.0, 235.3])
        assert "ep.C.4" in text
        assert "235.30" in text
        assert "Power" in text

    def test_max_value_gets_full_bar(self):
        text = bar_chart("t", ["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert "##########" in lines[2]  # b's bar

    def test_floor_scales_from_zero(self):
        with_floor = bar_chart("t", ["a"], [50.0], width=10, floor=0.0)
        assert "#" in with_floor

    def test_equal_values_render(self):
        text = bar_chart("t", ["a", "b"], [5.0, 5.0])
        assert text.count("#") > 0

    def test_unit_appended(self):
        text = bar_chart("t", ["a"], [5.0], unit=" W")
        assert "5.00 W" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", [], [])

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart("t", ["a"], [1.0], width=2)


class TestLineColumns:
    def test_layout(self):
        text = line_columns(
            "Fig5", ["10%", "50%"], {"1 core": [170.0, 170.5], "4 cores": [233.0, 233.2]}
        )
        assert "1 core" in text
        assert "4 cores" in text
        assert "170.00" in text

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            line_columns("t", ["a", "b"], {"s": [1.0]})

    def test_empty_series(self):
        with pytest.raises(ConfigurationError):
            line_columns("t", ["a"], {})


class TestPairedSeries:
    def test_renders_both_columns(self):
        text = paired_series(
            "Fig12", ["bt.B.1", "ep.B.1"], [1.0, -1.0], [0.5, -1.2]
        )
        assert "bt.B.1" in text
        assert "1.00" in text
        assert "-1.20" in text

    def test_signed_bars(self):
        text = paired_series("t", ["pos", "neg"], [1.0, 0.0], [0.0, 1.0])
        lines = text.splitlines()
        assert "+" in lines[2]  # over-measured -> positive bar
        assert "-" in lines[3]  # under-measured -> negative bar

    def test_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            paired_series("t", ["a"], [1.0], [1.0, 2.0])

    def test_zero_differences(self):
        text = paired_series("t", ["a"], [1.0], [1.0])
        assert "|" in text
