"""The versioned model registry: publish, reload, verify, quarantine."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import io as repro_io
from repro.errors import ModelIntegrityError, ModelRegistryError
from repro.model import ModelRegistry, training_metadata
from repro.model.registry import _slug


class TestPublish:
    def test_first_publish_is_v1(self, tmp_path, model_e5462):
        artifact = ModelRegistry(tmp_path).publish(model_e5462)
        assert artifact.name == "xeon-e5462"
        assert artifact.version == 1
        assert artifact.path.exists()

    def test_versions_auto_increment(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        second = registry.publish(model_e5462)
        assert second.version == 2
        assert registry.versions("xeon-e5462") == [1, 2]

    def test_republish_shares_model_digest(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        first = registry.publish(model_e5462)
        second = registry.publish(model_e5462)
        assert first.model_digest == second.model_digest
        # ...but not the whole-document digest (version differs).
        assert first.digest != second.digest

    def test_artifact_bytes_are_stable(self, tmp_path, model_e5462):
        a = ModelRegistry(tmp_path / "a").publish(
            model_e5462, created_unix_s=0.0
        )
        b = ModelRegistry(tmp_path / "b").publish(
            model_e5462, created_unix_s=0.0
        )
        assert a.path.read_bytes() == b.path.read_bytes()

    def test_invalid_name_rejected(self, tmp_path, model_e5462):
        with pytest.raises(ModelRegistryError, match="invalid model name"):
            ModelRegistry(tmp_path).publish(model_e5462, name="No Spaces!")

    def test_slug_normalises_server_names(self):
        assert _slug("Xeon-E5462") == "xeon-e5462"
        assert _slug("!!!") == "model"

    def test_metadata_records_table_vii(self, model_e5462, training_e5462):
        meta = training_metadata(model_e5462, training_e5462)
        assert meta["summary"]["observations"] == 604
        assert meta["summary"]["r_square"] == model_e5462.r_square
        assert meta["dataset"]["n_observations"] == 604
        assert len(meta["coefficients_full"]) == 6


class TestReload:
    def test_roundtrip_predictions_bit_identical(
        self, tmp_path, model_e5462, training_e5462
    ):
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        reloaded = registry.load("xeon-e5462")
        original = model_e5462.predict_normalized(training_e5462.features)
        again = reloaded.predict_normalized(training_e5462.features)
        assert np.array_equal(original, again)

    def test_get_latest_by_default(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        registry.publish(model_e5462)
        assert registry.get("xeon-e5462").version == 2
        assert registry.get("xeon-e5462", 1).version == 1

    def test_unknown_name_and_version(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ModelRegistryError, match="no model named"):
            registry.get("nope")
        registry.publish(model_e5462)
        with pytest.raises(ModelRegistryError, match="no version 9"):
            registry.get("xeon-e5462", 9)

    def test_fresh_process_reload_is_bit_identical(
        self, tmp_path, model_e5462, training_e5462
    ):
        """The CI model-smoke property, in miniature: a process that
        never saw the training run must reproduce every output bit."""
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        features = tmp_path / "features.json"
        features.write_text(
            json.dumps(training_e5462.features[:17].tolist())
        )
        script = (
            "import json, sys, hashlib, numpy as np\n"
            "from repro.model import ModelRegistry\n"
            "m = ModelRegistry(sys.argv[1]).load('xeon-e5462')\n"
            "f = np.asarray(json.load(open(sys.argv[2])))\n"
            "out = np.ascontiguousarray("
            "m.predict_normalized(f), dtype='<f8').tobytes()\n"
            "print(hashlib.sha256(out).hexdigest())\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path), str(features)],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        import hashlib

        local = hashlib.sha256(
            np.ascontiguousarray(
                model_e5462.predict_normalized(training_e5462.features[:17]),
                dtype="<f8",
            ).tobytes()
        ).hexdigest()
        assert result.stdout.strip() == local


class TestIntegrity:
    def test_corruption_quarantines_and_raises(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        artifact = registry.publish(model_e5462)
        document = json.loads(artifact.path.read_text())
        document["model"]["intercept"] = 123.456  # silent coefficient flip
        artifact.path.write_text(json.dumps(document))
        with pytest.raises(ModelIntegrityError, match="digest mismatch"):
            registry.get("xeon-e5462")
        quarantined = tmp_path / "quarantine" / "xeon-e5462-v000001.json"
        assert quarantined.exists()
        assert not artifact.path.exists()

    def test_unreadable_json_quarantines(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        artifact = registry.publish(model_e5462)
        artifact.path.write_text("{not json")
        with pytest.raises(ModelIntegrityError, match="unreadable"):
            registry.get("xeon-e5462")
        assert not artifact.path.exists()

    def test_verify_all_reports_rows(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        registry.publish(model_e5462, name="other")
        rows = registry.verify_all()
        assert rows == [("other", 1, None), ("xeon-e5462", 1, None)]

    def test_verify_all_flags_corruption(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        artifact = registry.publish(model_e5462)
        artifact.path.write_text(
            artifact.path.read_text().replace("power_model_artifact", "x")
        )
        rows = registry.verify_all()
        assert rows[0][0] == "xeon-e5462"
        assert "failed verification" in rows[0][2]


class TestListing:
    def test_names_skip_quarantine_and_empty_dirs(self, tmp_path, model_e5462):
        registry = ModelRegistry(tmp_path)
        registry.publish(model_e5462)
        (tmp_path / "quarantine").mkdir()
        (tmp_path / "empty-model").mkdir()
        assert registry.names() == ["xeon-e5462"]

    def test_entries_carry_provenance(self, tmp_path, model_e5462, e5462):
        registry = ModelRegistry(tmp_path)
        registry.publish(
            model_e5462, server_spec=repro_io.server_to_dict(e5462)
        )
        (entry,) = registry.entries()
        assert entry.server == "Xeon-E5462"
        assert entry.r_square == pytest.approx(model_e5462.r_square)
        assert entry.document["server_spec"]["name"] == "Xeon-E5462"
