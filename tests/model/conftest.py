"""Shared trained-model fixtures for the model-layer tests.

Training on the 4-core Xeon-E5462 is the cheapest real fit; everything
in this package shares one dataset/model pair per session.
"""

import pytest

from repro.core.regression import collect_hpcc_training, train_power_model


@pytest.fixture(scope="session")
def training_e5462(e5462):
    return collect_hpcc_training(e5462)


@pytest.fixture(scope="session")
def model_e5462(training_e5462, e5462):
    return train_power_model(training_e5462, server_name=e5462.name)
