"""Model registry, inference, and validation tests."""
