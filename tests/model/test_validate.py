"""K-fold CV and R² band drift checks."""

import numpy as np
import pytest

from repro.engine import Simulator
from repro.errors import ConfigurationError
from repro.model import R2_BANDS, kfold_cv, validate_model


@pytest.fixture(scope="module")
def report(e5462, model_e5462, training_e5462):
    return validate_model(
        e5462,
        model_e5462,
        training_e5462,
        klasses=("B",),
        folds=4,
        seed=0,
        simulator=Simulator(e5462, seed=0),
    )


class TestKfold:
    def test_folds_partition_the_dataset(self, training_e5462):
        scores = kfold_cv(training_e5462, k=4, seed=0)
        assert len(scores) == 4
        n = training_e5462.n_observations
        assert sum(s.n_test for s in scores) == n
        for s in scores:
            assert s.n_train + s.n_test == n

    def test_deterministic_under_seed(self, training_e5462):
        a = kfold_cv(training_e5462, k=3, seed=7)
        b = kfold_cv(training_e5462, k=3, seed=7)
        assert a == b

    def test_seed_changes_assignment(self, training_e5462):
        a = kfold_cv(training_e5462, k=3, seed=0)
        b = kfold_cv(training_e5462, k=3, seed=1)
        assert [s.r_square for s in a] != [s.r_square for s in b]

    def test_heldout_r2_close_to_training(self, training_e5462, model_e5462):
        scores = kfold_cv(training_e5462, k=5, seed=0)
        mean = float(np.mean([s.r_square for s in scores]))
        assert abs(mean - model_e5462.r_square) < 0.05

    def test_too_few_folds_or_rows(self, training_e5462):
        with pytest.raises(ConfigurationError, match="at least 2"):
            kfold_cv(training_e5462, k=1)
        from repro.core.regression import RegressionDataset

        tiny = RegressionDataset(
            features=training_e5462.features[:5],
            power=training_e5462.power[:5],
            labels=training_e5462.labels[:5],
        )
        with pytest.raises(ConfigurationError, match="cannot fill"):
            kfold_cv(tiny, k=4)


class TestValidateModel:
    def test_builtin_model_passes_bands(self, report):
        assert report.train_within_band
        assert report.cv_within_band
        assert all(d.within_band for d in report.drifts)
        assert report.ok

    def test_drift_carries_per_program_rms(self, report):
        (drift,) = report.drifts
        assert drift.npb_class == "B"
        assert drift.n_runs > 3
        programs = set(drift.per_program_rms)
        assert programs <= {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}
        assert all(v >= 0 for v in drift.per_program_rms.values())

    def test_band_override_can_fail_a_model(
        self, e5462, model_e5462, training_e5462
    ):
        report = validate_model(
            e5462,
            model_e5462,
            training_e5462,
            klasses=("B",),
            folds=4,
            seed=0,
            simulator=Simulator(e5462, seed=0),
            bands={"B": (0.99, 1.0)},
        )
        assert not report.drifts[0].within_band
        assert not report.ok

    def test_to_dict_schema(self, report):
        document = report.to_dict()
        assert document["kind"] == "model_validation"
        assert document["ok"] is True
        assert document["train"]["band"] == list(R2_BANDS["train"])
        assert len(document["cv"]["folds"]) == 4
        assert document["drift"][0]["npb_class"] == "B"

    def test_format_mentions_verdict(self, report):
        text = report.format()
        assert "verdict: PASS" in text
        assert "train R^2" in text
        assert "NPB-B R^2" in text
