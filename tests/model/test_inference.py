"""Batched inference: bit-identity, batch round-trips, digests."""

import numpy as np
import pytest

from repro.engine import Simulator
from repro.errors import ConfigurationError, RegressionError
from repro.model import (
    BatchPrediction,
    FeatureBatch,
    InferenceEngine,
    collect_feature_batch,
)


@pytest.fixture(scope="module")
def batch_b(e5462):
    return collect_feature_batch(e5462, "B", Simulator(e5462, seed=0))


class TestFeatureBatch:
    def test_collect_shape(self, batch_b):
        assert batch_b.features.shape == (batch_b.n_rows, 6)
        assert len(batch_b.labels) == batch_b.n_rows
        assert batch_b.watts.shape == (batch_b.n_rows,)

    def test_roundtrip_via_json_dict(self, batch_b):
        again = FeatureBatch.from_dict(batch_b.to_dict())
        assert again.labels == batch_b.labels
        assert np.array_equal(again.features, batch_b.features)
        assert np.array_equal(again.watts, batch_b.watts)

    def test_shape_validation(self):
        with pytest.raises(RegressionError, match=r"must be \(n, 6\)"):
            FeatureBatch(labels=("a",), features=np.zeros((1, 3)))
        with pytest.raises(RegressionError, match="labels"):
            FeatureBatch(labels=("a", "b"), features=np.zeros((1, 6)))
        with pytest.raises(RegressionError, match="watts"):
            FeatureBatch(
                labels=("a",),
                features=np.zeros((1, 6)),
                watts=np.zeros(3),
            )

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ConfigurationError, match="feature_batch"):
            FeatureBatch.from_dict({"kind": "evaluation"})


class TestInferenceEngine:
    def test_batch_equals_per_row(self, model_e5462, batch_b):
        prediction = InferenceEngine(model_e5462).predict(batch_b)
        per_row_norm = np.concatenate(
            [
                model_e5462.predict_normalized(batch_b.features[i])
                for i in range(batch_b.n_rows)
            ]
        )
        per_row_watts = np.concatenate(
            [
                model_e5462.predict_watts(batch_b.features[i])
                for i in range(batch_b.n_rows)
            ]
        )
        assert np.array_equal(prediction.normalized, per_row_norm)
        assert np.array_equal(prediction.watts, per_row_watts)

    def test_accepts_bare_matrix(self, model_e5462, batch_b):
        prediction = InferenceEngine(model_e5462).predict(batch_b.features)
        assert prediction.n_rows == batch_b.n_rows
        assert prediction.labels[0] == "row0"
        assert prediction.measured_watts is None

    def test_digest_is_deterministic(self, model_e5462, batch_b):
        engine = InferenceEngine(model_e5462)
        assert (
            engine.predict(batch_b).digest == engine.predict(batch_b).digest
        )

    def test_digest_sees_every_bit(self, batch_b):
        base = BatchPrediction(
            labels=batch_b.labels,
            normalized=np.zeros(batch_b.n_rows),
            watts=np.zeros(batch_b.n_rows),
        )
        flipped_watts = np.zeros(batch_b.n_rows)
        flipped_watts[-1] = np.nextafter(0.0, 1.0)  # one ulp
        flipped = BatchPrediction(
            labels=batch_b.labels,
            normalized=np.zeros(batch_b.n_rows),
            watts=flipped_watts,
        )
        assert base.digest != flipped.digest

    def test_r_squared_against_measured(self, model_e5462, batch_b):
        prediction = InferenceEngine(model_e5462).predict(batch_b)
        r2 = prediction.r_squared_against_measured()
        assert 0.4 < r2 < 1.0

    def test_r_squared_needs_measured_watts(self, model_e5462, batch_b):
        prediction = InferenceEngine(model_e5462).predict(batch_b.features)
        with pytest.raises(RegressionError, match="no measured watts"):
            prediction.r_squared_against_measured()

    def test_to_dict_is_schema_stable(self, model_e5462, batch_b):
        document = InferenceEngine(model_e5462).predict(batch_b).to_dict()
        assert document["kind"] == "model_predictions"
        assert sorted(document) == [
            "digest",
            "kind",
            "labels",
            "measured_watts",
            "n_rows",
            "normalized",
            "schema_version",
            "watts",
        ]

    def test_fleet_backend_collection_matches_inline(self, e5462):
        from repro.fleet.backend import FleetBackend

        inline = collect_feature_batch(e5462, "B", Simulator(e5462, seed=0))
        dispatched = collect_feature_batch(
            e5462, "B", Simulator(e5462, seed=0), FleetBackend(workers=2)
        )
        assert dispatched.labels == inline.labels
        assert np.array_equal(dispatched.features, inline.features)
        assert np.array_equal(dispatched.watts, inline.watts)
