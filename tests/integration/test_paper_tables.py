"""Paper-vs-measured: the evaluation tables and method rankings.

These are the headline reproduction checks: every band corresponds to a
number or ordering printed in the paper.  EXPERIMENTS.md records the
exact measured values.
"""

import pytest

from repro.core.evaluation import evaluate_server
from repro.core.green500 import green500_score
from repro.core.spec_method import specpower_score
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462


@pytest.fixture(scope="module")
def evaluations():
    return {
        s.name: evaluate_server(s)
        for s in (XEON_E5462, OPTERON_8347, XEON_4870)
    }


class TestTableIVtoVI:
    @pytest.mark.parametrize(
        "server_name, paper_score",
        [
            ("Xeon-E5462", 0.0639),  # printed as 0.639 = the PPW sum
            ("Opteron-8347", 0.0251),
            ("Xeon-4870", 0.0975),
        ],
    )
    def test_scores(self, evaluations, server_name, paper_score):
        assert evaluations[server_name].score == pytest.approx(
            paper_score, rel=0.05
        )

    @pytest.mark.parametrize(
        "server_name, paper_avg_watts",
        [
            ("Xeon-E5462", 182.2896),
            ("Opteron-8347", 446.5118),
            ("Xeon-4870", 826.7030),
        ],
    )
    def test_average_power(self, evaluations, server_name, paper_avg_watts):
        assert evaluations[server_name].average_watts == pytest.approx(
            paper_avg_watts, rel=0.04
        )

    @pytest.mark.parametrize(
        "server_name, paper_avg_gflops",
        [
            ("Xeon-E5462", 13.5),
            ("Opteron-8347", 12.6),
            ("Xeon-4870", 103.0),
        ],
    )
    def test_average_performance(self, evaluations, server_name, paper_avg_gflops):
        assert evaluations[server_name].average_gflops == pytest.approx(
            paper_avg_gflops, rel=0.04
        )

    def test_table_v_sample_rows(self, evaluations):
        result = evaluations["Opteron-8347"]
        assert result.row("Idle").watts == pytest.approx(311.5, abs=2.0)
        assert result.row("HPL P16 Mf").watts == pytest.approx(529.5, rel=0.08)
        assert result.row("HPL P16 Mf").gflops == pytest.approx(32.7, rel=0.01)

    def test_table_vi_sample_rows(self, evaluations):
        result = evaluations["Xeon-4870"]
        assert result.row("Idle").watts == pytest.approx(642.2, abs=3.0)
        assert result.row("HPL P40 Mf").watts == pytest.approx(1119.6, rel=0.06)
        assert result.row("ep.C.40").gflops == pytest.approx(0.759, rel=0.01)


class TestSectionVC3Rankings:
    def test_consistent_score_ranking(self, evaluations):
        """With a consistently-computed score (mean PPW), the large
        Xeon-4870 leads.  The paper's printed ordering (E5462 first)
        relies on Table IV showing the PPW *sum* where Tables V/VI show
        sum/10 — see EXPERIMENTS.md."""
        scores = {name: r.score for name, r in evaluations.items()}
        assert scores["Xeon-4870"] > scores["Xeon-E5462"] > scores["Opteron-8347"]

    def test_paper_printed_ordering_with_paper_scalings(self, evaluations):
        """Reproducing the exact printed comparison: Table IV's value is
        the sum (x10 the mean); Tables V and VI use the mean."""
        printed = {
            "Xeon-E5462": evaluations["Xeon-E5462"].score * 10,
            "Opteron-8347": evaluations["Opteron-8347"].score,
            "Xeon-4870": evaluations["Xeon-4870"].score,
        }
        assert (
            printed["Xeon-E5462"]
            > printed["Xeon-4870"]
            > printed["Opteron-8347"]
        )

    def test_green500_ranking_differs_from_printed_ours(self):
        g500 = {
            s.name: green500_score(s).ppw
            for s in (XEON_E5462, OPTERON_8347, XEON_4870)
        }
        assert g500["Xeon-4870"] > g500["Xeon-E5462"] > g500["Opteron-8347"]

    def test_specpower_ranking(self):
        spec = {
            s.name: specpower_score(s).overall_ssj_ops_per_watt
            for s in (XEON_E5462, OPTERON_8347, XEON_4870)
        }
        assert spec["Xeon-E5462"] > spec["Xeon-4870"] > spec["Opteron-8347"]


class TestFindingsSectionIVD:
    """The four findings that motivate the method."""

    @pytest.fixture(scope="class")
    def xeon_powers(self):
        from repro.engine import Simulator
        from repro.workloads.hpl import HplConfig, HplWorkload
        from repro.workloads.npb import NPB_PROGRAMS, NpbWorkload

        sim = Simulator(XEON_E5462)
        powers = {}
        for n in (1, 2, 4):
            powers[("hpl", n)] = sim.run(
                HplWorkload(HplConfig(n, 0.95))
            ).average_power_watts()
            for name, prog in NPB_PROGRAMS.items():
                if not prog.proc_rule.allows(n):
                    continue
                try:
                    powers[(name, n)] = sim.run(
                        NpbWorkload(name, "C", n)
                    ).average_power_watts()
                except Exception:
                    continue
        return powers

    def test_finding_1_hpl_power_grows_fastest(self, xeon_powers):
        hpl_growth = xeon_powers[("hpl", 4)] - xeon_powers[("hpl", 1)]
        ep_growth = xeon_powers[("ep", 4)] - xeon_powers[("ep", 1)]
        assert hpl_growth > 2 * ep_growth

    def test_finding_2_ep_is_lowest(self, xeon_powers):
        for n in (2, 4):
            competitors = [
                w for (name, procs), w in xeon_powers.items()
                if procs == n and name != "ep"
            ]
            assert xeon_powers[("ep", n)] <= min(competitors) + 1.0

    def test_finding_4_programs_between_ep_and_hpl(self, xeon_powers):
        for n in (2, 4):
            low = xeon_powers[("ep", n)]
            high = xeon_powers[("hpl", n)]
            for (name, procs), w in xeon_powers.items():
                if procs != n or name in ("ep", "hpl"):
                    continue
                assert low - 5 <= w <= high + 20, (name, n, w)
