"""End-to-end pipeline: the paper's full test procedure (Section V-C2).

Runs a complete campaign — idle, EP sweep, HPL sweep — through the meter,
CSV logging, merge, clock-sync, window extraction, and trim pipeline, and
checks the derived table against the direct simulator results and the
paper's rows.
"""

import numpy as np
import pytest

from repro.core.evaluation import evaluate_server
from repro.core.states import evaluation_states
from repro.demand import ResourceDemand
from repro.engine import Campaign, Simulator
from repro.hardware import XEON_E5462
from repro.metering.csvlog import read_power_csv


@pytest.fixture(scope="module")
def full_campaign(tmp_path_factory):
    csv_dir = tmp_path_factory.mktemp("power_csv")
    sim = Simulator(XEON_E5462, seed=99)
    workloads = [
        state.workload
        for state in evaluation_states(XEON_E5462)
        if not state.is_idle
    ]
    campaign = Campaign(sim, gap_s=30.0, clock_offset_s=0.7)
    return campaign.run(workloads, csv_dir=csv_dir), csv_dir


class TestCampaignEndToEnd:
    def test_nine_loaded_measurements(self, full_campaign):
        result, _ = full_campaign
        assert len(result.measurements) == 9

    def test_merged_csv_well_formed(self, full_campaign):
        result, _ = full_campaign
        times, watts = read_power_csv(result.merged_csv)
        assert np.all(np.diff(times) > 0)
        assert np.all(watts > 100.0)

    def test_csv_duration_matches_runs(self, full_campaign):
        result, _ = full_campaign
        times, _ = read_power_csv(result.merged_csv)
        total_run_seconds = sum(
            int(np.ceil(r.duration_s)) for r in result.runs
        )
        assert times.shape[0] == total_run_seconds

    def test_table_iv_from_pipeline(self, full_campaign):
        """The campaign-derived rows land on the paper's Table IV."""
        result, _ = full_campaign
        hpl4 = result.by_label("HPL P4 Mf")
        assert hpl4.average_watts == pytest.approx(235.3, rel=0.08)
        assert hpl4.ppw == pytest.approx(0.158, rel=0.08)
        ep4 = result.by_label("ep.C.4")
        assert ep4.average_watts == pytest.approx(174.0, rel=0.08)

    def test_pipeline_agrees_with_evaluate_server(self, full_campaign):
        """The convenience API and the full CSV pipeline agree."""
        result, _ = full_campaign
        direct = evaluate_server(XEON_E5462, Simulator(XEON_E5462, seed=99))
        for row in direct.rows:
            if row.label == "Idle":
                continue
            pipeline_row = result.by_label(row.label)
            assert pipeline_row.average_watts == pytest.approx(
                row.watts, rel=0.02
            ), row.label


class TestIdleMeasurement:
    def test_idle_window(self):
        sim = Simulator(XEON_E5462, seed=5)
        run = sim.run(ResourceDemand.idle(120.0))
        assert run.average_power_watts() == pytest.approx(134.4, abs=1.0)
        assert run.average_memory_mb() == pytest.approx(600.0, abs=20.0)
