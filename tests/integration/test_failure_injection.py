"""Failure injection: the pipeline fails loudly, not silently.

A measurement pipeline's worst failure mode is producing a plausible
number from corrupted input.  These tests inject the realistic faults —
meter over-range, truncated/corrupted CSVs, undersized meters, impossible
configurations — and assert each one raises a typed error instead of
degrading the result.
"""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.engine import Campaign, Simulator
from repro.errors import (
    ConfigurationError,
    InsufficientMemoryError,
    InvalidProcessCountError,
    MeterError,
    RegressionError,
)
from repro.hardware import XEON_4870, XEON_E5462
from repro.metering.csvlog import read_power_csv, write_power_csv
from repro.metering.meter import MeterSpec
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


class TestMeterFaults:
    def test_undersized_meter_range_fails_campaign(self):
        """A 800 W meter cannot measure the Xeon-4870 under HPL."""
        small_meter = MeterSpec(
            name="small",
            max_watts=800.0,
            noise_sigma_watts=0.5,
            gain_error=0.001,
            quantum_watts=0.01,
        )
        sim = Simulator(XEON_4870, meter_spec=small_meter)
        with pytest.raises(MeterError):
            sim.run(HplWorkload(HplConfig(40, 0.95)))

    def test_undersized_meter_still_measures_idle(self):
        small_meter = MeterSpec(
            name="small",
            max_watts=800.0,
            noise_sigma_watts=0.5,
            gain_error=0.001,
            quantum_watts=0.01,
        )
        sim = Simulator(XEON_4870, meter_spec=small_meter)
        run = sim.run(ResourceDemand.idle())
        assert run.average_power_watts() == pytest.approx(642.2, abs=2.0)


class TestCsvCorruption:
    def test_truncated_file(self, tmp_path):
        path = write_power_csv(
            tmp_path / "a.csv", np.arange(5.0), np.full(5, 100.0)
        )
        content = path.read_text()
        path.write_text(content[: len(content) // 2].rsplit("\n", 1)[0] + "\n1.0\n")
        with pytest.raises(MeterError):
            read_power_csv(path)

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_bytes(b"time_s,power_w\n\x00\xff\x13,garbage\n")
        with pytest.raises(MeterError):
            read_power_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(MeterError):
            read_power_csv(path)


class TestImpossibleConfigurations:
    def test_campaign_with_unrunnable_workload_fails_loudly(self, tmp_path):
        sim = Simulator(XEON_E5462)
        campaign = Campaign(sim)
        with pytest.raises(InsufficientMemoryError):
            campaign.run([NpbWorkload("cg", "C", 1)], csv_dir=tmp_path)

    def test_proc_rule_violation_fails_before_any_simulation(self):
        sim = Simulator(XEON_E5462)
        with pytest.raises(InvalidProcessCountError):
            sim.run(NpbWorkload("bt", "C", 3))

    def test_oversubscription_fails(self):
        sim = Simulator(XEON_E5462)
        with pytest.raises(ConfigurationError):
            sim.run(HplWorkload(HplConfig(8, 0.5)))


class TestRegressionInputFaults:
    def test_degenerate_training_target_rejected(self):
        from repro.core.regression import RegressionDataset, train_power_model

        rng = np.random.default_rng(0)
        features = rng.uniform(1, 2, size=(50, 6))
        constant_power = np.full(50, 500.0)
        dataset = RegressionDataset(
            features=features,
            power=constant_power,
            labels=("x",) * 50,
        )
        with pytest.raises(RegressionError):
            train_power_model(dataset)

    def test_nonfinite_features_rejected(self):
        from repro.core.regression import RegressionDataset, train_power_model

        rng = np.random.default_rng(1)
        features = rng.uniform(1, 2, size=(50, 6))
        features[3, 2] = np.nan
        dataset = RegressionDataset(
            features=features,
            power=rng.uniform(400, 600, 50),
            labels=("x",) * 50,
        )
        with pytest.raises(RegressionError):
            train_power_model(dataset)
