"""Paper-vs-measured: the Section VI regression study.

Runs the full pipeline on the Xeon-4870 exactly as the paper describes
and checks every published property: observation count, training fit,
the dominant coefficients, the near-zero intercept, the verification R²
band, and the identity of the worst-fit programs.
"""

import numpy as np
import pytest

from repro.core.regression import (
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)
from repro.hardware import XEON_4870
from repro.hardware.pmu import REGRESSION_FEATURES


@pytest.fixture(scope="module")
def training():
    return collect_hpcc_training(XEON_4870)


@pytest.fixture(scope="module")
def model(training):
    return train_power_model(training, server_name="Xeon-4870")


@pytest.fixture(scope="module")
def verification_b(model):
    return verify_on_npb(XEON_4870, model, "B")


@pytest.fixture(scope="module")
def verification_c(model):
    return verify_on_npb(XEON_4870, model, "C")


class TestTableVII:
    def test_observation_count_near_6056(self, training):
        assert 5500 <= training.n_observations <= 6500

    def test_r_square_band(self, model):
        """Paper: 0.9403 ('close to 1, strong correlation')."""
        assert 0.85 <= model.r_square <= 0.97

    def test_adjusted_tracks_r_square(self, model):
        assert model.ols.adjusted_r_square == pytest.approx(
            model.r_square, abs=0.002
        )

    def test_standard_error_band(self, model):
        """Paper: 0.2444 (normalised units)."""
        assert 0.15 <= model.ols.standard_error <= 0.40


class TestTableVIII:
    def test_intercept_near_zero(self, model):
        """Paper: C = 2.37e-14 after normalisation."""
        assert abs(model.intercept) < 1e-10

    def test_instructions_is_largest_coefficient(self, model):
        """Paper: b2 = 0.837 dominates."""
        b = model.coefficients_full()
        instr = b[REGRESSION_FEATURES.index("instruction_num")]
        assert instr > 0
        assert instr == max(b)

    def test_core_count_positive(self, model):
        b = model.coefficients_full()
        assert b[REGRESSION_FEATURES.index("working_core_num")] > 0

    def test_cache_hit_coefficients_small(self, model):
        """Paper: b3, b4 are small (|b| < 0.2 of the dominant one)."""
        b = model.coefficients_full()
        instr = b[REGRESSION_FEATURES.index("instruction_num")]
        l2 = abs(b[REGRESSION_FEATURES.index("l2_cache_hit")])
        assert l2 < 0.5 * instr

    def test_stepwise_selects_instructions_first(self, model):
        assert model.selected[0] == REGRESSION_FEATURES.index(
            "instruction_num"
        )


class TestVerification:
    def test_class_b_r2_band(self, verification_b):
        """Paper: 0.634 — 'greater than 0.5, satisfactory'."""
        assert 0.45 <= verification_b.r_squared <= 0.72

    def test_class_c_r2_band(self, verification_c):
        """Paper: 0.543."""
        assert 0.40 <= verification_c.r_squared <= 0.72

    def test_verification_well_below_training(self, model, verification_b):
        assert verification_b.r_squared < model.r_square - 0.15

    def test_82_bars_like_fig12(self, verification_b):
        assert len(verification_b.labels) == 82

    def test_ep_and_sp_among_worst_fits(self, verification_b):
        """Section VI-C: 'EP and SP have unsatisfactory results'."""
        rms = verification_b.per_program_rms()
        worst_three = sorted(rms, key=rms.get, reverse=True)[:4]
        assert "ep" in worst_three
        assert "sp" in worst_three

    def test_differences_centered(self, verification_b):
        """Fig. 13: differences scatter around zero, not biased to one
        side by more than half a normalised unit."""
        assert abs(float(verification_b.difference.mean())) < 0.5

    def test_measured_dimensionless_range(self, verification_b):
        """Fig. 12's y-axis spans roughly -2..6 normalised units."""
        assert verification_b.measured.min() > -3.0
        assert verification_b.measured.max() < 7.0


class TestFutureWorkExtension:
    """Section VI-C suggests adding EP and SP to the training set to
    reinforce the forecast.  The library supports exactly that."""

    def test_augmented_training_improves_ep_sp_fit(self, training, model):
        from repro.core.regression import RegressionDataset
        from repro.engine import Simulator
        from repro.engine.simulator import PMU_INTERVAL_S
        from repro.workloads.npb import NpbWorkload

        sim = Simulator(XEON_4870)
        rows, power, labels = [], [], []
        for name in ("ep", "sp"):
            for n in (1, 4, 16, 36) if name == "sp" else (1, 10, 20, 40):
                run = sim.run(NpbWorkload(name, "B", n))
                interval = int(PMU_INTERVAL_S)
                for k, sample in enumerate(run.pmu_samples):
                    window = run.measured_watts[k * interval : (k + 1) * interval]
                    if window.size == 0:
                        window = run.measured_watts
                    rows.append(sample.as_vector())
                    power.append(float(window.mean()))
                    labels.append(run.demand.program)
        augmented = RegressionDataset(
            features=np.vstack([training.features] + rows),
            power=np.concatenate([training.power, np.array(power)]),
            labels=training.labels + tuple(labels),
        )
        from repro.core.regression import train_power_model

        model2 = train_power_model(augmented, server_name="Xeon-4870+npb")
        v1 = verify_on_npb(XEON_4870, model, "B")
        v2 = verify_on_npb(XEON_4870, model2, "B")
        rms1 = v1.per_program_rms()
        rms2 = v2.per_program_rms()
        # The reinforced training set fits EP and SP at least as well.
        assert rms2["ep"] <= rms1["ep"] * 1.05
        assert rms2["sp"] <= rms1["sp"] * 1.10
