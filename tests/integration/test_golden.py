"""Golden-value regression tests.

The simulation is deterministic for a given seed, so key outputs are
frozen in ``tests/data/golden.json``.  A failure here means the model's
behaviour changed — which is fine when intentional (re-freeze with the
snippet in the file's git history / EXPERIMENTS.md workflow), and a bug
when not.

Paper-band correctness lives in test_paper_tables.py; this file guards
against *silent drift* at much tighter tolerance.
"""

import json
from pathlib import Path

import pytest

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "data" / "golden.json").read_text()
)


class TestEvaluationGolden:
    @pytest.mark.parametrize(
        "server_name", ["Xeon-E5462", "Opteron-8347", "Xeon-4870"]
    )
    def test_scores_frozen(self, server_name):
        from repro import evaluate_server, get_server

        result = evaluate_server(get_server(server_name))
        frozen = GOLDEN[server_name]
        assert result.score == pytest.approx(frozen["score"], abs=1e-6)
        assert result.average_watts == pytest.approx(
            frozen["average_watts"], abs=1e-3
        )

    def test_every_row_frozen_e5462(self):
        from repro import XEON_E5462, evaluate_server

        result = evaluate_server(XEON_E5462)
        for row in result.rows:
            assert row.watts == pytest.approx(
                GOLDEN["Xeon-E5462"]["rows"][row.label], abs=1e-3
            ), row.label


class TestKernelGolden:
    def test_ep_sums_frozen(self):
        from repro.kernels.ep import run_ep

        result = run_ep(16)
        frozen = GOLDEN["ep_m16"]
        assert result.sx == pytest.approx(frozen["sx"], abs=1e-9)
        assert result.sy == pytest.approx(frozen["sy"], abs=1e-9)
        assert list(result.counts) == frozen["counts"]

    def test_lcg_stream_frozen(self):
        from repro.kernels.nas_rng import NasRandom

        assert [int(v) for v in NasRandom().raw(10)] == GOLDEN["lcg_first_10"]
