"""Paper-vs-measured: the figures (shape checks).

Each test reproduces the qualitative content of one figure on the
simulated servers.
"""

import numpy as np
import pytest

from repro.engine import Simulator
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbClass, NpbWorkload
from repro.workloads.specpower import SpecPowerWorkload, full_run_levels


@pytest.fixture(scope="module")
def sim():
    return Simulator(XEON_E5462)


class TestFig5NsSweep:
    """Power vs memory utilisation: cores decide power, memory barely."""

    def test_memory_fraction_barely_moves_power(self, sim):
        watts = [
            sim.run(
                HplWorkload(HplConfig(4, fraction))
            ).average_power_watts()
            for fraction in (0.2, 0.5, 0.8, 0.95)
        ]
        assert max(watts) - min(watts) < 12.0

    def test_core_curves_do_not_intersect(self, sim):
        """Fig. 5/6: curves for different core counts never cross."""
        fractions = (0.2, 0.5, 0.8, 0.95)
        by_cores = {
            n: [
                sim.run(HplWorkload(HplConfig(n, f))).average_power_watts()
                for f in fractions
            ]
            for n in (1, 2, 4)
        }
        assert max(by_cores[1]) < min(by_cores[2])
        assert max(by_cores[2]) < min(by_cores[4])


class TestFig6NbSweep:
    def test_nb_50_draws_less(self, sim):
        normal = sim.run(
            HplWorkload(HplConfig(4, 0.5, nb=200))
        ).average_power_watts()
        small = sim.run(
            HplWorkload(HplConfig(4, 0.5, nb=50))
        ).average_power_watts()
        assert 3.0 < normal - small < 20.0

    def test_nb_above_150_flat(self, sim):
        watts = [
            sim.run(
                HplWorkload(HplConfig(4, 0.5, nb=nb))
            ).average_power_watts()
            for nb in (150, 200, 300, 400)
        ]
        assert max(watts) - min(watts) < 3.0


class TestFig7PqGrid:
    def test_grid_influence_minimal(self, sim):
        watts = [
            sim.run(
                HplWorkload(HplConfig(4, 0.5, nb=200, p=p, q=q))
            ).average_power_watts()
            for p, q in ((1, 4), (2, 2), (4, 1))
        ]
        assert max(watts) - min(watts) < 8.0


class TestFig9NpbScales:
    def test_power_grows_with_cores_not_class(self, sim):
        """Power rises with core count; problem class barely matters."""
        by_class = {
            k: sim.run(NpbWorkload("lu", k, 4)).average_power_watts()
            for k in ("A", "B", "C")
        }
        assert max(by_class.values()) - min(by_class.values()) < 25.0
        one = sim.run(NpbWorkload("lu", "C", 1)).average_power_watts()
        four = sim.run(NpbWorkload("lu", "C", 4)).average_power_watts()
        assert four > one + 20.0

    def test_ep_minimum_power_at_equal_cores(self, sim):
        ep = sim.run(NpbWorkload("ep", "C", 4)).average_power_watts()
        for name in ("bt", "ft", "is", "lu", "mg", "sp"):
            other = sim.run(NpbWorkload(name, "C", 4)).average_power_watts()
            assert ep <= other + 1.0, name


class TestFig10And11Ep:
    def test_power_and_ppw_increase_with_cores(self, sim):
        runs = {n: sim.run(NpbWorkload("ep", "C", n)) for n in (1, 2, 4)}
        watts = [runs[n].average_power_watts() for n in (1, 2, 4)]
        ppws = [runs[n].ppw() for n in (1, 2, 4)]
        assert watts == sorted(watts)
        assert ppws == sorted(ppws)

    def test_energy_decreases_with_cores(self, sim):
        """Fig. 11: parallelism saves energy despite higher power."""
        energies = [
            sim.run(NpbWorkload("ep", "C", n)).energy_kilojoules()
            for n in (1, 2, 4)
        ]
        assert energies[0] > energies[1] > energies[2]


class TestTableII:
    """Normalized power on the Xeon-4870 across process counts."""

    @pytest.fixture(scope="class")
    def table(self):
        sim = Simulator(XEON_4870)
        rows = {}
        counts = (1, 2, 4, 8, 9, 16, 25, 32, 36, 39, 40)
        for n in counts:
            row = {}
            row["hpl"] = sim.run(
                HplWorkload(HplConfig(n, 0.95))
            ).average_power_watts()
            for name, prog in NPB_PROGRAMS.items():
                if prog.proc_rule.allows(n):
                    row[name] = sim.run(
                        NpbWorkload(name, NpbClass.C, n)
                    ).average_power_watts()
            rows[n] = row
        return rows

    def test_sparsity_pattern(self, table):
        assert set(table[39]) == {"hpl", "ep"}
        assert "bt" in table[25] and "sp" in table[25] and "ft" not in table[25]
        assert "mg" in table[32] and "bt" not in table[32]

    def test_hpl_tops_every_full_row(self, table):
        for n in (16, 32, 40):
            row = table[n]
            assert row["hpl"] == max(row.values())

    def test_ep_bottoms_every_row(self, table):
        for n, row in table.items():
            assert row["ep"] == min(row.values())

    def test_normalized_power_monotone_like_paper(self, table):
        """HPL normalized power grows 0.45 -> 0.74 over 1 -> 40 procs."""
        peak = table[40]["hpl"]
        series = [table[n]["hpl"] / peak for n in (1, 4, 16, 40)]
        assert series == sorted(series)
        assert series[0] > 0.4  # idle floor keeps the ratio high


class TestFig4Opteron:
    def test_power_ordering_on_opteron(self):
        sim = Simulator(OPTERON_8347)
        ep = sim.run(NpbWorkload("ep", "C", 16)).average_power_watts()
        hpl = sim.run(HplWorkload(HplConfig(16, 0.95))).average_power_watts()
        cg = sim.run(NpbWorkload("cg", "C", 16)).average_power_watts()
        # The envelope cap keeps cg near (at most ~5 % above) the HPL
        # point; the paper's own Table II likewise shows MG above HPL at
        # 16 processes.
        assert ep < cg < hpl * 1.06


class TestFigs1And2SpecPower:
    def test_calibration_then_descending_loads(self):
        sim = Simulator(XEON_E5462)
        levels = full_run_levels()
        watts = [
            sim.run(SpecPowerWorkload(level)).average_power_watts()
            for level in levels
        ]
        # Cal1-3 and 100% draw the most; 10% the least.
        assert max(watts[:4]) == max(watts)
        assert watts[-1] == min(watts)
