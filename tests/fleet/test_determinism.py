"""Satellite: fleet execution must be bit-identical to the serial path.

The simulator derives every random stream from ``(seed, program label)``,
so worker count, execution order, and caching cannot change results.
These tests pin that contract: a 2-worker fleet pool reproduces the
serial :class:`~repro.engine.simulator.Simulator` exactly, bit for bit.
"""

import numpy as np

from repro.core.evaluation import evaluate_server
from repro.engine.simulator import Simulator
from repro.fleet import FleetBackend, FleetRunner, demo_campaign
from repro.fleet.spec import workload_from_dict
from repro.hardware import BUILTIN_SERVERS, XEON_E5462


def assert_bit_identical(a, b):
    """Exact equality on every array and scalar of two RunResults."""
    assert a.demand == b.demand
    assert np.array_equal(a.times_s, b.times_s)
    assert np.array_equal(a.true_watts, b.true_watts)
    assert np.array_equal(a.measured_watts, b.measured_watts)
    assert np.array_equal(a.memory_mb, b.memory_mb)
    assert a.pmu_samples == b.pmu_samples
    assert a.power_factor == b.power_factor


class TestPoolMatchesSerialSimulator:
    def test_two_worker_pool_bit_identical_to_serial(self):
        campaign = demo_campaign()
        pooled = FleetRunner(workers=2).run(campaign)
        assert pooled.ok
        simulator = Simulator(XEON_E5462, seed=campaign.seed)
        for record in pooled.records:
            serial = simulator.run(workload_from_dict(record.job.workload))
            assert_bit_identical(record.result, serial)

    def test_pool_result_independent_of_worker_count(self):
        campaign = demo_campaign()
        two = FleetRunner(workers=2).run(campaign)
        four = FleetRunner(workers=4).run(campaign)
        for a, b in zip(two.records, four.records):
            assert_bit_identical(a.result, b.result)


class TestBackendMatchesEvaluateServer:
    def test_evaluation_identical_through_fleet_backend(self):
        # Frozen-dataclass equality compares every float exactly, so
        # this asserts bit-identical evaluation tables.
        backend = FleetBackend(workers=2)
        for server in BUILTIN_SERVERS.values():
            assert evaluate_server(server) == evaluate_server(
                server, backend=backend
            )
