"""Watchdog and backoff: hung/crashed workers must never stall a run."""

import numpy as np
import pytest

from repro.fleet import (
    EventLog,
    FaultInjection,
    FleetRunner,
    RetryPolicy,
    demo_campaign,
    read_events,
)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


@pytest.fixture(scope="module")
def baseline_digest():
    return FleetRunner(workers=1).run(demo_campaign()).results_digest()


def _pooled_runner(fault, **kwargs):
    defaults = dict(
        workers=2,
        retry=FAST_RETRY,
        fault=fault,
        timeout_s=2.0,
        chunk_size=1,
    )
    defaults.update(kwargs)
    return FleetRunner(**defaults)


class TestWatchdog:
    def test_hung_worker_is_killed_and_job_retried(self, baseline_digest):
        fault = FaultInjection(
            "ep.C.4", fail_attempts=1, kind="hang", delay_s=30.0
        )
        outcome = _pooled_runner(fault).run(demo_campaign())
        assert outcome.ok
        assert outcome.results_digest() == baseline_digest

    def test_crashed_worker_is_replaced(self, baseline_digest):
        fault = FaultInjection("ep.C.4", fail_attempts=1, kind="crash")
        outcome = _pooled_runner(fault).run(demo_campaign())
        assert outcome.ok
        assert outcome.results_digest() == baseline_digest

    def test_slow_worker_completes_without_retry(self, baseline_digest):
        fault = FaultInjection(
            "ep.C.4", fail_attempts=1, kind="slow", delay_s=0.2
        )
        outcome = _pooled_runner(fault).run(demo_campaign())
        assert outcome.ok
        assert outcome.results_digest() == baseline_digest
        record = next(
            r for r in outcome.records if r.job.label == "ep.C.4"
        )
        assert record.attempts == 1

    def test_permanent_hang_lands_in_the_failure_report(
        self, tmp_path, baseline_digest
    ):
        fault = FaultInjection(
            "ep.C.4", fail_attempts=99, kind="hang", delay_s=30.0
        )
        events_path = tmp_path / "events.jsonl"
        with EventLog(events_path) as events:
            outcome = _pooled_runner(
                fault, timeout_s=0.5, events=events
            ).run(demo_campaign())
        assert not outcome.ok
        (failure,) = outcome.failures
        assert failure.label == "ep.C.4"
        assert failure.attempts == FAST_RETRY.max_attempts
        assert "no result within" in failure.error
        # The other four jobs still completed with correct numbers.
        assert len(outcome.results()) == 4
        kinds = {e["kind"] for e in read_events(events_path)}
        assert "job_timeout" in kinds
        assert "pool_replaced" in kinds

    def test_chunked_dispatch_survives_a_crash(self, baseline_digest):
        fault = FaultInjection("ep.C.2", fail_attempts=1, kind="crash")
        outcome = _pooled_runner(fault, chunk_size=3).run(demo_campaign())
        assert outcome.ok
        assert outcome.results_digest() == baseline_digest

    def test_rejects_bad_timeout(self):
        with pytest.raises(Exception):
            FleetRunner(workers=1, timeout_s=0.0).run_jobs(
                tuple(demo_campaign().jobs())
            )


class TestBackoff:
    def test_cap_bounds_the_schedule(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_s=1.0, multiplier=2.0, max_backoff_s=5.0
        )
        assert policy.delay_s(1) == pytest.approx(1.0)
        assert policy.delay_s(3) == pytest.approx(4.0)
        assert policy.delay_s(4) == pytest.approx(5.0)
        assert policy.delay_s(9) == pytest.approx(5.0)

    def test_seeded_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, max_backoff_s=8.0, jitter=0.1)
        delays = [policy.delay_s(2, seed=42) for _ in range(3)]
        assert delays[0] == delays[1] == delays[2]
        assert 2.0 * 0.9 <= delays[0] < 2.0 * 1.1
        # Plain schedule stays jitter-free for callers without a seed.
        assert policy.delay_s(2) == pytest.approx(2.0)

    def test_different_seeds_decorrelate(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.1)
        delays = {policy.delay_s(2, seed=s) for s in range(8)}
        assert len(delays) > 1

    def test_rejects_bad_jitter_and_cap(self):
        with pytest.raises(Exception):
            RetryPolicy(jitter=1.5)
        with pytest.raises(Exception):
            RetryPolicy(max_backoff_s=-1.0)


class TestResultsDigest:
    def test_identical_across_schedules(self, baseline_digest):
        chunked = FleetRunner(workers=2, chunk_size=2).run(demo_campaign())
        assert chunked.results_digest() == baseline_digest

    def test_sensitive_to_results(self):
        campaign = demo_campaign()
        a = FleetRunner(workers=1).run(campaign)
        b = FleetRunner(workers=1).run(
            type(campaign)(
                name=campaign.name,
                servers=campaign.servers,
                workloads=campaign.workloads[:-1],
                seed=campaign.seed,
            )
        )
        assert a.results_digest() != b.results_digest()
