"""Content-addressed result cache: keys, round trips, resilience."""

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.demand import ResourceDemand
from repro.engine.simulator import Simulator
from repro.fleet.cache import (
    ResultCache,
    canonical_json,
    job_cache_key,
    runresult_from_dict,
    runresult_to_dict,
)
from repro.fleet.spec import FleetJob, make_job
from repro.hardware import XEON_E5462, OPTERON_8347
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


@pytest.fixture(scope="module")
def run_result():
    return Simulator(XEON_E5462, seed=3).run(NpbWorkload("ep", "C", 4))


class TestRunResultSerialisation:
    def test_bit_identical_round_trip(self, run_result):
        clone = runresult_from_dict(
            json.loads(json.dumps(runresult_to_dict(run_result)))
        )
        assert clone.demand == run_result.demand
        assert np.array_equal(clone.times_s, run_result.times_s)
        assert np.array_equal(clone.true_watts, run_result.true_watts)
        assert np.array_equal(clone.measured_watts, run_result.measured_watts)
        assert np.array_equal(clone.memory_mb, run_result.memory_mb)
        assert clone.pmu_samples == run_result.pmu_samples
        assert clone.power_factor == run_result.power_factor
        # Derived analysis quantities are consequently exact too.
        assert clone.average_power_watts() == run_result.average_power_watts()


class TestCacheKey:
    def test_stable_under_dict_build_order(self):
        """The dict-ordering hazard: structurally equal specs built in
        different orders must hash identically."""
        job = make_job(XEON_E5462, HplWorkload(HplConfig(4, 0.5)), seed=1)
        reordered_workload = dict(reversed(list(job.workload.items())))
        reordered = FleetJob(
            server=XEON_E5462,
            workload=reordered_workload,
            label=job.label,
            seed=1,
        )
        assert job.workload == reordered_workload
        assert job_cache_key(job) == job_cache_key(reordered)
        assert job.job_id == reordered.job_id

    def test_stable_across_equal_server_objects(self):
        # A server round-tripped through JSON is a distinct but equal
        # object; the key must not depend on object identity.
        clone = repro_io.server_from_dict(repro_io.server_to_dict(XEON_E5462))
        assert clone == XEON_E5462
        a = make_job(XEON_E5462, NpbWorkload("ep", "C", 2), seed=5)
        b = make_job(clone, NpbWorkload("ep", "C", 2), seed=5)
        assert job_cache_key(a) == job_cache_key(b)

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_key_distinguishes_inputs(self):
        base = make_job(XEON_E5462, NpbWorkload("ep", "C", 2), seed=0)
        keys = {
            job_cache_key(base),
            job_cache_key(
                make_job(XEON_E5462, NpbWorkload("ep", "C", 2), seed=1)
            ),
            job_cache_key(
                make_job(XEON_E5462, NpbWorkload("ep", "C", 4), seed=0)
            ),
            job_cache_key(
                make_job(OPTERON_8347, NpbWorkload("ep", "C", 2), seed=0)
            ),
            job_cache_key(
                make_job(
                    XEON_E5462, NpbWorkload("ep", "C", 2), seed=0,
                    placement="scatter",
                )
            ),
        }
        assert len(keys) == 5


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, run_result, wall_s=0.25)
        hit = cache.get(key)
        assert hit is not None
        assert hit.wall_s == 0.25
        assert np.array_equal(
            hit.result.measured_watts, run_result.measured_watts
        )
        assert len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "cd" + "1" * 62
        path = cache.put(key, run_result, wall_s=0.1)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_foreign_document_is_a_miss(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "ef" + "2" * 62
        path = cache.put(key, run_result, wall_s=0.1)
        path.write_text(json.dumps({"kind": "something_else"}))
        assert cache.get(key) is None

    def test_salt_mismatch_is_a_miss(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "0a" + "3" * 62
        path = cache.put(key, run_result, wall_s=0.1)
        data = json.loads(path.read_text())
        data["salt"] = "repro-fleet-cache-v0"
        path.write_text(json.dumps(data))
        assert cache.get(key) is None


class TestCacheIntegrity:
    def test_contains_is_a_cheap_probe(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "12" + "4" * 62
        assert not cache.contains(key)
        cache.put(key, run_result, wall_s=0.1)
        assert cache.contains(key)
        assert cache.stats.hits == 0  # contains() never loads

    def test_flipped_blob_bit_is_quarantined(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "34" + "5" * 62
        path = cache.put(key, run_result, wall_s=0.1)
        blob_path = path.with_suffix(".bin")
        raw = bytearray(blob_path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        blob_path.write_bytes(bytes(raw))
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1
        quarantine = cache.root / "quarantine"
        corpses = sorted(p.name for p in quarantine.iterdir())
        assert len(corpses) == 2
        assert all(name.startswith(key) for name in corpses)
        assert {p.rsplit(".", 1)[-1] for p in corpses} == {"json", "bin"}
        # The damaged entry no longer counts as live and a fresh write
        # heals the slot.
        assert len(cache) == 0
        cache.put(key, run_result, wall_s=0.1)
        assert cache.get(key) is not None

    def test_requarantine_never_overwrites_a_corpse(
        self, tmp_path, run_result
    ):
        """Regression: corpse names collided on a same-key re-quarantine
        (and would for any two quarantines in the same second), so the
        second corruption event silently destroyed the first corpse.
        Every quarantine now gets a unique suffix."""
        cache = ResultCache(tmp_path / "cache")
        key = "de" + "a" * 62
        for _round in range(3):
            path = cache.put(key, run_result, wall_s=0.1)
            path.with_suffix(".bin").write_text("garbage")
            assert cache.get(key) is None
        assert cache.stats.quarantined == 3
        corpses = list((cache.root / "quarantine").iterdir())
        assert len(corpses) == 6  # 3 damage events x (json + bin)
        assert len({p.name for p in corpses}) == 6  # all names unique

    def test_torn_blob_is_quarantined(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        key = "56" + "6" * 62
        path = cache.put(key, run_result, wall_s=0.1)
        blob_path = path.with_suffix(".bin")
        raw = blob_path.read_bytes()
        blob_path.write_bytes(raw[: len(raw) // 2])
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1

    def test_entry_bytes_are_canonical(self, tmp_path, run_result):
        """Two writers of the same result produce byte-identical entry
        files (regression: bare ``json.dumps`` leaked dict build order
        into the entry bytes, unlike the ``sort_keys=True`` key path)."""
        import json

        key = "bc" + "9" * 62
        path_a = ResultCache(tmp_path / "a").put(key, run_result, wall_s=0.5)
        path_b = ResultCache(tmp_path / "b").put(key, run_result, wall_s=0.5)
        raw = path_a.read_bytes()
        assert raw == path_b.read_bytes()
        # Canonical form: sorted keys, no whitespace after separators.
        document = json.loads(raw)
        assert raw == json.dumps(
            document, sort_keys=True, separators=(",", ":")
        ).encode()
        # ...and a round-trip through the reader serves the entry intact.
        hit = ResultCache(tmp_path / "a").get(key)
        assert hit is not None
        assert hit.result.demand.program == run_result.demand.program

    def test_quarantine_excluded_from_len(self, tmp_path, run_result):
        cache = ResultCache(tmp_path / "cache")
        good, bad = "78" + "7" * 62, "9a" + "8" * 62
        cache.put(good, run_result, wall_s=0.1)
        path = cache.put(bad, run_result, wall_s=0.1)
        path.with_suffix(".bin").write_text("garbage")
        assert len(cache) == 2
        assert cache.get(bad) is None
        assert len(cache) == 1
        assert cache.get(good) is not None
