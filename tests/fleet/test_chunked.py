"""Chunked fleet execution: batching jobs per worker round-trip.

Chunking is the default; ``chunk_size=1`` restores per-job dispatch.
The contract: identical results either way (the chunk body runs the
batch engine, which is bit-identical to serial), identical retry
arithmetic (the chunk pass counts as attempt 1, retries go out as
single jobs), and identical event/cache behaviour.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    EventLog,
    FaultInjection,
    FleetRunner,
    ResultCache,
    RetryPolicy,
    auto_chunk_size,
    demo_campaign,
    read_events,
)

NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_s=0.0)


@pytest.fixture(scope="module")
def campaign():
    return demo_campaign()


@pytest.fixture(scope="module")
def per_job_outcome(campaign):
    """The pre-chunking behaviour: one job per dispatch."""
    return FleetRunner(workers=1, chunk_size=1).run(campaign)


class TestAutoChunkSize:
    def test_inline_gets_one_big_chunk(self):
        assert auto_chunk_size(17, 1) == 17
        assert auto_chunk_size(17, 0) == 17

    def test_pool_aims_for_four_chunks_per_worker(self):
        assert auto_chunk_size(32, 2) == 4
        assert auto_chunk_size(33, 2) == 5  # ceiling division
        assert auto_chunk_size(100, 4) == 7

    def test_never_below_one(self):
        assert auto_chunk_size(0, 1) == 1
        assert auto_chunk_size(3, 8) == 1


class TestResultParity:
    def test_chunked_inline_matches_per_job(self, campaign, per_job_outcome):
        chunked = FleetRunner(workers=1).run(campaign)
        assert chunked.ok
        for a, b in zip(per_job_outcome.records, chunked.records):
            assert a.job.job_id == b.job.job_id
            assert np.array_equal(
                a.result.measured_watts, b.result.measured_watts
            )
            assert a.result.pmu_samples == b.result.pmu_samples

    def test_chunked_pool_matches_per_job(self, campaign, per_job_outcome):
        chunked = FleetRunner(workers=2, chunk_size=2).run(campaign)
        assert chunked.ok
        for a, b in zip(per_job_outcome.records, chunked.records):
            assert a.job.job_id == b.job.job_id
            assert np.array_equal(
                a.result.measured_watts, b.result.measured_watts
            )

    def test_every_record_charges_some_wall_time(self, campaign):
        outcome = FleetRunner(workers=2, chunk_size=3).run(campaign)
        assert all(r.wall_s > 0 for r in outcome.records)
        assert all(r.attempts == 1 for r in outcome.records)

    def test_bad_chunk_size_rejected(self, campaign):
        with pytest.raises(ConfigurationError):
            FleetRunner(workers=1, chunk_size=0).run(campaign)


class TestChunkRetries:
    def test_chunk_member_fault_is_retried_solo(self, campaign):
        # The chunk pass is attempt 1; the failing member is re-sent as
        # a single job while its chunk-mates keep their first result.
        runner = FleetRunner(
            workers=2,
            chunk_size=len(campaign.jobs()),
            retry=NO_BACKOFF,
            fault=FaultInjection("ep.C.2", fail_attempts=2),
        )
        outcome = runner.run(campaign)
        assert outcome.ok
        record = next(
            r for r in outcome.records if r.job.label == "ep.C.2"
        )
        assert record.attempts == 3
        others = [r for r in outcome.records if r.job.label != "ep.C.2"]
        assert all(r.attempts == 1 for r in others)
        assert outcome.report().n_retries == 2

    def test_inline_chunk_fault_is_retried_too(self, campaign):
        runner = FleetRunner(
            workers=1,
            retry=NO_BACKOFF,
            fault=FaultInjection("ep.C.1", fail_attempts=1),
        )
        outcome = runner.run(campaign)
        assert outcome.ok
        record = next(r for r in outcome.records if r.job.label == "ep.C.1")
        assert record.attempts == 2

    def test_exhausted_retries_fail_only_the_member(self, campaign):
        runner = FleetRunner(
            workers=2,
            chunk_size=4,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fault=FaultInjection("HPL P4 Mf", fail_attempts=99),
        )
        outcome = runner.run(campaign)
        assert not outcome.ok
        assert [f.label for f in outcome.failures] == ["HPL P4 Mf"]
        assert outcome.failures[0].attempts == 2
        assert sum(1 for r in outcome.records if r.ok) == len(
            campaign.jobs()
        ) - 1

    def test_single_attempt_policy_fails_straight_from_chunk(self, campaign):
        runner = FleetRunner(
            workers=2,
            chunk_size=4,
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
            fault=FaultInjection("ep.C.4", fail_attempts=99),
        )
        outcome = runner.run(campaign)
        assert not outcome.ok
        assert outcome.failures[0].attempts == 1


class TestChunkEventsAndCache:
    def test_lifecycle_events_are_per_job(self, tmp_path, campaign):
        log_path = tmp_path / "events.jsonl"
        with EventLog(log_path) as events:
            FleetRunner(workers=2, chunk_size=3, events=events).run(campaign)
        kinds = [r["kind"] for r in read_events(log_path)]
        n = len(campaign.jobs())
        assert kinds.count("job_start") == n
        assert kinds.count("job_finish") == n
        assert kinds.count("campaign_finish") == 1

    def test_chunked_run_fills_the_cache(self, tmp_path, campaign):
        cache = ResultCache(tmp_path / "cache")
        cold = FleetRunner(workers=2, chunk_size=3, cache=cache).run(campaign)
        assert cold.cache_hits == 0
        # A per-job runner sees every entry the chunked run wrote.
        warm = FleetRunner(workers=1, chunk_size=1, cache=cache).run(campaign)
        assert warm.cache_hits == len(campaign.jobs())
        for a, b in zip(cold.records, warm.records):
            assert np.array_equal(
                a.result.measured_watts, b.result.measured_watts
            )

    def test_chunked_metrics_reach_the_outcome(self, campaign):
        from repro import obs
        from repro.obs import runtime

        registry = obs.MetricsRegistry()
        obs.enable()
        try:
            with obs.use_registry(registry):
                outcome = FleetRunner(workers=1, cache=None).run(campaign)
                counters = outcome.metrics["counters"]
                assert counters["sim.run.count"] == float(
                    len(campaign.jobs())
                )
        finally:
            runtime.reset()
