"""Fleet runner: pool execution, caching, retries, graceful degradation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    EventLog,
    FaultInjection,
    FleetRunner,
    ResultCache,
    RetryPolicy,
    demo_campaign,
    read_events,
)

NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_s=0.0)


@pytest.fixture(scope="module")
def campaign():
    return demo_campaign()


@pytest.fixture(scope="module")
def serial_outcome(campaign):
    return FleetRunner(workers=1).run(campaign)


class TestExecution:
    def test_pool_matches_inline(self, campaign, serial_outcome):
        pooled = FleetRunner(workers=2).run(campaign)
        assert pooled.ok and serial_outcome.ok
        for a, b in zip(serial_outcome.records, pooled.records):
            assert a.job.job_id == b.job.job_id
            assert np.array_equal(
                a.result.measured_watts, b.result.measured_watts
            )

    def test_records_preserve_campaign_order(self, campaign, serial_outcome):
        assert [r.job.label for r in serial_outcome.records] == [
            j.label for j in campaign.jobs()
        ]

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetRunner(workers=1).run_jobs((), "empty")


class TestCacheIntegration:
    def test_warm_run_hits_every_job(self, tmp_path, campaign):
        cache = ResultCache(tmp_path / "cache")
        runner = FleetRunner(workers=2, cache=cache)
        cold = runner.run(campaign)
        assert cold.cache_hits == 0
        warm = runner.run(campaign)
        assert warm.cache_hits == len(campaign.jobs())
        for a, b in zip(cold.records, warm.records):
            assert np.array_equal(
                a.result.measured_watts, b.result.measured_watts
            )
        # Warm wall_s carries the original execution cost for speedup
        # accounting, not the (near-zero) cache read time.
        assert all(r.wall_s > 0 for r in warm.records)

    def test_cache_shared_between_runners(self, tmp_path, campaign):
        cache = ResultCache(tmp_path / "cache")
        FleetRunner(workers=1, cache=cache).run(campaign)
        warm = FleetRunner(workers=2, cache=cache).run(campaign)
        assert warm.cache_hits == len(campaign.jobs())


class TestFaultTolerance:
    def test_transient_fault_is_retried_to_success(self, campaign):
        runner = FleetRunner(
            workers=2,
            retry=NO_BACKOFF,
            fault=FaultInjection("ep.C.2", fail_attempts=2),
        )
        outcome = runner.run(campaign)
        assert outcome.ok
        record = next(
            r for r in outcome.records if r.job.label == "ep.C.2"
        )
        assert record.attempts == 3
        report = outcome.report()
        assert report.n_retries == 2
        assert report.n_failed == 0

    def test_permanent_fault_degrades_gracefully(self, campaign):
        runner = FleetRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fault=FaultInjection("HPL P4 Mf", fail_attempts=99),
        )
        outcome = runner.run(campaign)  # must not raise
        assert not outcome.ok
        assert [f.label for f in outcome.failures] == ["HPL P4 Mf"]
        assert outcome.failures[0].attempts == 2
        assert "InjectedFaultError" in outcome.failures[0].error
        # Every other job still completed.
        assert sum(1 for r in outcome.records if r.ok) == len(
            campaign.jobs()
        ) - 1

    def test_inline_runner_retries_too(self, campaign):
        runner = FleetRunner(
            workers=1,
            retry=NO_BACKOFF,
            fault=FaultInjection("ep.C.1", fail_attempts=1),
        )
        outcome = runner.run(campaign)
        assert outcome.ok
        record = next(r for r in outcome.records if r.job.label == "ep.C.1")
        assert record.attempts == 2

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, multiplier=2.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)


class TestEventLog:
    def test_campaign_emits_lifecycle_events(self, tmp_path, campaign):
        log_path = tmp_path / "events.jsonl"
        cache = ResultCache(tmp_path / "cache")
        with EventLog(log_path) as events:
            FleetRunner(workers=2, cache=cache, events=events).run(campaign)
            FleetRunner(workers=2, cache=cache, events=events).run(campaign)
        records = read_events(log_path)
        kinds = [r["kind"] for r in records]
        assert kinds.count("campaign_start") == 2
        assert kinds.count("campaign_finish") == 2
        assert kinds.count("job_finish") == len(campaign.jobs())
        assert kinds.count("cache_hit") == len(campaign.jobs())
        finish = next(r for r in records if r["kind"] == "job_finish")
        assert finish["wall_s"] > 0
        assert isinstance(finish["worker"], int)
        assert finish["ts"] > 0

    def test_retry_and_failure_events(self, tmp_path, campaign):
        log_path = tmp_path / "events.jsonl"
        with EventLog(log_path) as events:
            FleetRunner(
                workers=1,
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
                fault=FaultInjection("ep.C.4", fail_attempts=99),
                events=events,
            ).run(campaign)
        kinds = [r["kind"] for r in read_events(log_path)]
        assert kinds.count("job_retry") == 1
        assert kinds.count("job_failed") == 1
