"""Crash-safe campaigns: journal, checkpoint records, SIGKILL + --resume."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fleet import (
    EventLog,
    FleetRunner,
    ResultCache,
    campaign_to_dict,
    completed_job_ids,
    demo_campaign,
    read_events,
)
from repro import io as repro_io

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def baseline_digest():
    return FleetRunner(workers=1).run(demo_campaign()).results_digest()


class TestJournal:
    def test_checkpoints_cover_every_finished_job(self, tmp_path):
        campaign = demo_campaign()
        with EventLog(tmp_path / "events.jsonl") as events:
            outcome = FleetRunner(workers=1, events=events).run(campaign)
        assert outcome.ok
        journaled = completed_job_ids(
            read_events(tmp_path / "events.jsonl"), campaign=campaign.name
        )
        assert journaled == {job.job_id for job in campaign.jobs()}

    def test_truncated_journal_replays_the_durable_prefix(self, tmp_path):
        campaign = demo_campaign()
        path = tmp_path / "events.jsonl"
        with EventLog(path) as events:
            # chunk_size=1 checkpoints after every job, so the journal
            # has a durable prefix to truncate at.
            FleetRunner(workers=1, chunk_size=1, events=events).run(campaign)
        lines = path.read_text().splitlines()
        first_checkpoint = next(
            i for i, line in enumerate(lines)
            if json.loads(line)["kind"] == "checkpoint"
        )
        # Keep the journal as a kill right after the first fsynced
        # checkpoint would have left it — plus a torn half-line, which
        # read_events must skip rather than choke on.
        path.write_text(
            "\n".join(lines[: first_checkpoint + 1]) + '\n{"kind": "job_f'
        )
        journaled = completed_job_ids(read_events(path), campaign=campaign.name)
        assert journaled
        assert journaled < {job.job_id for job in campaign.jobs()}


class TestSigkillResume:
    def _spawn(self, spec, cache_dir, events, out=None, resume=False):
        argv = [
            sys.executable, "-m", "repro", "fleet", "run", str(spec),
            "--workers", "1",
            "--cache-dir", str(cache_dir),
            "--events", str(events),
            "--chunk-size", "1",  # checkpoint after every job
        ]
        if out:
            argv += ["--out", str(out)]
        if resume:
            argv += ["--resume"]
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.Popen(
            argv,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_sigkill_then_resume_is_bit_identical(
        self, tmp_path, baseline_digest
    ):
        campaign = demo_campaign()
        spec = repro_io.save_json(
            campaign_to_dict(campaign), tmp_path / "campaign.json"
        )
        cache_dir = tmp_path / "cache"
        events = tmp_path / "events.jsonl"

        victim = self._spawn(spec, cache_dir, events)
        # SIGKILL as soon as the first durable checkpoint lands (or let
        # the run finish if it outraces the poll — the resume contract
        # must hold from any kill point, including "none").
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if events.exists() and '"checkpoint"' in events.read_text():
                victim.kill()
                break
            time.sleep(0.005)
        else:
            victim.kill()
            pytest.fail("campaign produced no checkpoint within 60 s")
        victim.wait(timeout=60)

        out = tmp_path / "resumed.json"
        resumed = self._spawn(spec, cache_dir, events, out=out, resume=True)
        stdout, stderr = resumed.communicate(timeout=120)
        assert resumed.returncode == 0, stderr
        assert "resuming" in stdout
        document = json.loads(out.read_text())
        assert document["results_digest"] == baseline_digest
        assert not document["failures"]

    def test_resume_without_journal_is_an_error(self, tmp_path):
        campaign = demo_campaign()
        spec = repro_io.save_json(
            campaign_to_dict(campaign), tmp_path / "campaign.json"
        )
        proc = self._spawn(
            spec,
            tmp_path / "cache",
            tmp_path / "missing.jsonl",
            resume=True,
        )
        _stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 2
        assert "--resume needs" in stderr


class TestCacheResume:
    def test_warm_cache_alone_reproduces_the_digest(
        self, tmp_path, baseline_digest
    ):
        campaign = demo_campaign()
        cache = ResultCache(tmp_path / "cache")
        cold = FleetRunner(workers=1, cache=cache).run(campaign)
        warm = FleetRunner(workers=1, cache=cache).run(campaign)
        assert warm.cache_hits == len(campaign.jobs())
        assert (
            cold.results_digest()
            == warm.results_digest()
            == baseline_digest
        )
