"""Campaign specs and workload serialisation."""

import pytest

from repro import io as repro_io
from repro.demand import ResourceDemand
from repro.errors import ConfigurationError
from repro.fleet.spec import (
    CampaignSpec,
    campaign_from_dict,
    campaign_to_dict,
    demo_campaign,
    evaluation_campaign,
    make_job,
    workload_from_dict,
    workload_label,
    workload_to_dict,
)
from repro.hardware import XEON_E5462, BUILTIN_SERVERS
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload
from repro.workloads.specpower import SpecPowerLevel, SpecPowerWorkload


class TestWorkloadSerialisation:
    @pytest.mark.parametrize(
        "workload",
        [
            NpbWorkload("ep", "C", 4),
            NpbWorkload("bt", "B", 4),
            HplWorkload(HplConfig(nprocs=4, memory_fraction=0.5)),
            HplWorkload(HplConfig(nprocs=4, memory_fraction=0.95, nb=50)),
            HplWorkload(HplConfig(nprocs=4, memory_fraction=0.5, p=2, q=2)),
            SpecPowerWorkload(SpecPowerLevel("50%", 0.5)),
        ],
    )
    def test_round_trip_binds_identically(self, workload):
        data = workload_to_dict(workload)
        clone = workload_from_dict(data)
        assert workload_label(clone) == workload_label(workload)
        assert clone.bind(XEON_E5462) == workload.bind(XEON_E5462)

    def test_idle_round_trip(self):
        demand = ResourceDemand.idle(120.0)
        clone = workload_from_dict(workload_to_dict(demand))
        assert clone == demand

    def test_custom_demand_round_trip(self):
        demand = ResourceDemand(
            program="custom", nprocs=2, duration_s=30.0, gflops=1.0,
            memory_mb=512.0,
        )
        assert workload_from_dict(workload_to_dict(demand)) == demand

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_from_dict({"type": "mystery"})


class TestFleetJob:
    def test_job_id_is_content_based(self):
        # Same label ("HPL P1 Mh" covers every fraction <= 0.7) but
        # different configuration must give different job ids.
        a = make_job(XEON_E5462, HplWorkload(HplConfig(1, 0.1)))
        b = make_job(XEON_E5462, HplWorkload(HplConfig(1, 0.3)))
        assert a.label == b.label
        assert a.job_id != b.job_id

    def test_equal_content_equal_id(self):
        a = make_job(XEON_E5462, NpbWorkload("ep", "C", 4), seed=7)
        b = make_job(XEON_E5462, NpbWorkload("ep", "C", 4), seed=7)
        assert a.job_id == b.job_id


class TestCampaignSpec:
    def test_demo_campaign_ports_pipeline_workloads(self):
        jobs = demo_campaign().jobs()
        assert [j.label for j in jobs] == [
            "ep.C.1", "ep.C.2", "ep.C.4", "HPL P4 Mh", "HPL P4 Mf",
        ]
        assert all(j.seed == 2015 for j in jobs)

    def test_matrix_campaign_expands_ten_states_per_server(self):
        spec = evaluation_campaign()
        jobs = spec.jobs()
        assert len(jobs) == 10 * len(BUILTIN_SERVERS)
        assert len({j.job_id for j in jobs}) == len(jobs)
        labels = [j.label for j in jobs[:10]]
        assert labels[0] == "Idle"
        assert "HPL P4 Mf" in labels

    def test_round_trip_through_io(self, tmp_path):
        spec = demo_campaign()
        path = repro_io.save_json(
            repro_io.campaign_to_dict(spec), tmp_path / "campaign.json"
        )
        clone = repro_io.campaign_from_dict(repro_io.load_json(path))
        assert clone == spec
        assert [j.job_id for j in clone.jobs()] == [
            j.job_id for j in spec.jobs()
        ]

    def test_custom_server_embedded(self, tmp_path):
        import dataclasses

        custom = dataclasses.replace(XEON_E5462, name="My-Box")
        spec = CampaignSpec(
            name="custom",
            servers=(custom,),
            workloads=(workload_to_dict(NpbWorkload("ep", "C", 2)),),
        )
        data = campaign_to_dict(spec)
        assert isinstance(data["servers"][0], dict)  # not a builtin name
        assert campaign_from_dict(data).servers[0] == custom

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="empty", servers=(XEON_E5462,))
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="no-servers", servers=(), evaluation_matrix=True)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            campaign_from_dict({"kind": "evaluation", "schema_version": 1})

    def test_bad_workload_fails_at_load_time(self):
        data = campaign_to_dict(demo_campaign())
        data["workloads"].append({"type": "mystery"})
        with pytest.raises(ConfigurationError):
            campaign_from_dict(data)
