"""The event-log tailing race: torn final lines must never raise or lose.

A reader that races the writer can observe a *partial* final line —
including one cut in the middle of a multi-byte UTF-8 character.  The
old ``read_text()``-based reader raised ``UnicodeDecodeError`` on that;
a naive skip-the-torn-line tailer silently *loses* the event once its
offset advances past it.  These are the regression tests for both.
"""

import json

from repro.fleet import EventLog, EventTail, read_events

# "smørgås" — the ø and å are two-byte UTF-8 sequences to tear through.
_MULTIBYTE_LABEL = "smørgås"


def _torn_log(tmp_path, cut: int):
    """A log whose final record is cut ``cut`` bytes before its end."""
    path = tmp_path / "events.jsonl"
    with EventLog(path) as events:
        events.emit("campaign_start", campaign="torn", jobs=2)
        events.emit("job_finish", campaign="torn", job_id="a", wall_s=0.1)
    full = path.read_bytes()
    record = (
        json.dumps(
            {"ts": 1.0, "kind": "job_finish", "label": _MULTIBYTE_LABEL},
            ensure_ascii=False,
            sort_keys=True,
        )
        + "\n"
    ).encode("utf-8")
    path.write_bytes(full + record[: len(record) - cut])
    return path, full, record


class TestReadEventsTornLine:
    def test_cut_mid_multibyte_char_does_not_raise(self, tmp_path):
        # Cut inside the å at the end of the label: the tail of the
        # file is not valid UTF-8.  read_text(strict) raised here.
        record = json.dumps(
            {"kind": "job_finish", "label": _MULTIBYTE_LABEL},
            ensure_ascii=False,
        ).encode("utf-8")
        split = record.rindex(_MULTIBYTE_LABEL[-1].encode("utf-8")) + 1
        path = tmp_path / "events.jsonl"
        path.write_bytes(
            b'{"kind": "campaign_start", "campaign": "x"}\n'
            + record[:split]
        )
        events = read_events(path)  # must not raise
        assert [e["kind"] for e in events] == ["campaign_start"]

    def test_complete_lines_before_the_tear_all_parse(self, tmp_path):
        path, _full, _record = _torn_log(tmp_path, cut=3)
        kinds = [e["kind"] for e in read_events(path)]
        assert kinds == ["campaign_start", "job_finish"]


class TestEventTailTornLine:
    def test_torn_line_is_buffered_not_lost(self, tmp_path):
        path, full, record = _torn_log(tmp_path, cut=3)
        tail = EventTail(path)
        first = tail.poll()
        assert [e["kind"] for e in first] == ["campaign_start", "job_finish"]
        # The writer finishes the record: append the missing bytes.
        with path.open("ab") as fh:
            fh.write(record[len(record) - 3 :])
        second = tail.poll()
        assert [e["label"] for e in second] == [_MULTIBYTE_LABEL]

    def test_tear_inside_multibyte_char(self, tmp_path):
        # Cut so the partial line ends mid-å: decoding the buffered
        # fragment naively would corrupt it; holding bytes must not.
        record = (
            json.dumps(
                {"ts": 1.0, "kind": "checkpoint", "note": _MULTIBYTE_LABEL},
                ensure_ascii=False,
                sort_keys=True,
            )
            + "\n"
        ).encode("utf-8")
        cut = len(record) - record.rindex(b"\xc3") - 1  # inside the å
        path = tmp_path / "events.jsonl"
        path.write_bytes(record[: len(record) - cut])
        tail = EventTail(path)
        assert tail.poll() == []
        with path.open("ab") as fh:
            fh.write(record[len(record) - cut :])
        (event,) = tail.poll()
        assert event["note"] == _MULTIBYTE_LABEL

    def test_campaign_filter_and_incremental_offsets(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tail = EventTail(path, campaign="mine")
        assert tail.poll() == []  # file does not exist yet
        with EventLog(path) as events:
            events.emit("campaign_start", campaign="mine", jobs=1)
            events.emit("campaign_start", campaign="other", jobs=1)
            assert [e["campaign"] for e in tail.poll()] == ["mine"]
            events.emit("campaign_finish", campaign="mine")
            polled = tail.poll()
        assert [e["kind"] for e in polled] == ["campaign_finish"]
        assert tail.poll() == []

    def test_truncation_discards_a_buffered_torn_line(self, tmp_path):
        # A rotation that lands while the tail holds a torn partial
        # line must drop the stale buffer: otherwise those bytes are
        # spliced onto the first record of the new file, which then
        # fails to parse and the event is silently lost.
        path = tmp_path / "events.jsonl"
        path.write_bytes(
            b'{"kind": "checkpoint", "campaign": "a"}\n{"kind": "job_fin'
        )
        tail = EventTail(path)
        assert [e["kind"] for e in tail.poll()] == ["checkpoint"]
        path.write_bytes(b"")  # rotation beneath the buffered tear
        assert tail.poll() == []
        with EventLog(path) as events:
            events.emit("campaign_start", campaign="fresh", jobs=1)
        (event,) = tail.poll()
        assert event["kind"] == "campaign_start"
        assert event["campaign"] == "fresh"

    def test_truncated_file_resets_the_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as events:
            events.emit("campaign_start", campaign="a", jobs=1)
        tail = EventTail(path)
        assert len(tail.poll()) == 1
        path.write_bytes(b"")  # rotation
        assert tail.poll() == []
        with EventLog(path) as events:
            events.emit("campaign_start", campaign="b", jobs=1)
        (event,) = tail.poll()
        assert event["campaign"] == "b"
