"""FleetReport aggregation from outcomes and from event logs."""

import pytest

from repro.fleet import (
    EventLog,
    FaultInjection,
    FleetReport,
    FleetRunner,
    ResultCache,
    RetryPolicy,
    demo_campaign,
    last_campaign_events,
)


@pytest.fixture(scope="module")
def campaign():
    return demo_campaign()


class TestFromOutcome:
    def test_clean_run_numbers(self, campaign):
        outcome = FleetRunner(workers=2).run(campaign)
        report = outcome.report()
        n = len(campaign.jobs())
        assert report.campaign == campaign.name
        assert report.workers == 2
        assert (report.n_jobs, report.n_ok, report.n_failed) == (n, n, 0)
        assert report.n_cache_hits == 0
        assert report.n_retries == 0
        assert report.cache_hit_rate == 0.0
        assert report.wall_s > 0
        assert report.serial_wall_s > 0
        assert report.throughput_jobs_per_s == pytest.approx(
            n / report.wall_s
        )
        assert report.speedup_vs_serial == pytest.approx(
            report.serial_wall_s / report.wall_s
        )

    def test_warm_cache_reports_full_hit_rate(self, tmp_path, campaign):
        cache = ResultCache(tmp_path / "cache")
        runner = FleetRunner(workers=2, cache=cache)
        runner.run(campaign)
        report = runner.run(campaign).report()
        assert report.cache_hit_rate == 1.0
        # Cache hits carry their original execution wall, so a warm run
        # still reports a meaningful (and large) speedup-vs-serial.
        assert report.serial_wall_s > report.wall_s

    def test_failure_and_retry_counts(self, campaign):
        outcome = FleetRunner(
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fault=FaultInjection("ep.C.2", fail_attempts=99),
        ).run(campaign)
        report = outcome.report()
        assert report.n_failed == 1
        assert report.n_ok == len(campaign.jobs()) - 1
        assert report.n_retries == 1


class TestFromEvents:
    def test_reconstruction_matches_live_report(self, tmp_path, campaign):
        log_path = tmp_path / "events.jsonl"
        with EventLog(log_path) as events:
            live = FleetRunner(workers=2, events=events).run(campaign).report()
        rebuilt = FleetReport.from_events(last_campaign_events(log_path))
        assert rebuilt.campaign == live.campaign
        assert rebuilt.workers == live.workers
        assert rebuilt.n_jobs == live.n_jobs
        assert rebuilt.n_ok == live.n_ok
        assert rebuilt.n_failed == live.n_failed
        assert rebuilt.n_cache_hits == live.n_cache_hits
        assert rebuilt.n_retries == live.n_retries
        assert rebuilt.wall_s == pytest.approx(live.wall_s, rel=0.25)
        assert rebuilt.serial_wall_s == pytest.approx(
            live.serial_wall_s, rel=1e-6
        )

    def test_last_campaign_slices_most_recent(self, tmp_path, campaign):
        log_path = tmp_path / "events.jsonl"
        cache = ResultCache(tmp_path / "cache")
        with EventLog(log_path) as events:
            FleetRunner(workers=1, cache=cache, events=events).run(campaign)
            FleetRunner(workers=1, cache=cache, events=events).run(campaign)
        tail = last_campaign_events(log_path)
        assert tail[0]["kind"] == "campaign_start"
        report = FleetReport.from_events(tail)
        assert report.n_cache_hits == len(campaign.jobs())

    def test_empty_events(self):
        report = FleetReport.from_events([])
        assert report.n_jobs == 0
        assert report.cache_hit_rate == 0.0
        assert report.throughput_jobs_per_s == 0.0


class TestFormatting:
    def test_format_mentions_key_numbers(self, campaign):
        report = FleetRunner(workers=2).run(campaign).report()
        text = report.format()
        assert campaign.name in text
        assert "cache hits" in text
        assert "speedup" in text

    def test_to_dict_round_trips_through_json(self, campaign):
        import json

        report = FleetRunner(workers=1).run(campaign).report()
        data = json.loads(json.dumps(report.to_dict()))
        assert data["n_jobs"] == report.n_jobs
        assert data["speedup_vs_serial"] == report.speedup_vs_serial
