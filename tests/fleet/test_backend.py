"""FleetBackend routed through the core sweeps and evaluation loops."""

import pytest

from repro.core import sweeps
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError, SimulationError
from repro.fleet import FaultInjection, FleetBackend, ResultCache, RetryPolicy
from repro.hardware import XEON_E5462
import dataclasses

from repro.metering.meter import WT210
from repro.workloads.npb import NpbWorkload


@pytest.fixture(scope="module")
def simulator():
    return Simulator(XEON_E5462, seed=11)


@pytest.fixture(scope="module")
def backend():
    return FleetBackend(workers=2)


class TestSweepEquality:
    """Each sweep must be value-identical serial vs through the fleet."""

    def test_hpl_ns_sweep(self, simulator, backend):
        assert sweeps.hpl_ns_sweep(simulator) == sweeps.hpl_ns_sweep(
            simulator, backend=backend
        )

    def test_mixed_power_sweep_keeps_unrunnable_points(
        self, simulator, backend
    ):
        serial = sweeps.mixed_power_sweep(simulator, (4, 2, 1))
        fleet = sweeps.mixed_power_sweep(simulator, (4, 2, 1), backend=backend)
        assert fleet == serial
        # The sweep includes points that cannot fit in memory; they must
        # come back as None through the backend too, not crash it.
        assert any(not p.runnable for p in serial)

    def test_npb_class_sweep(self, simulator, backend):
        assert sweeps.npb_class_sweep(simulator) == sweeps.npb_class_sweep(
            simulator, backend=backend
        )

    def test_ep_profile(self, simulator, backend):
        assert sweeps.ep_profile(simulator) == sweeps.ep_profile(
            simulator, backend=backend
        )


class TestMapRuns:
    def test_dedupes_repeated_workloads(self, simulator):
        backend = FleetBackend(workers=1)
        workload = NpbWorkload("ep", "C", 2)
        a, b = backend.map_runs(simulator, [workload, workload])
        assert a == b

    def test_cache_reused_across_calls(self, simulator, tmp_path):
        backend = FleetBackend(
            workers=1, cache=ResultCache(tmp_path / "cache")
        )
        workload = NpbWorkload("ep", "C", 4)
        backend.map_runs(simulator, [workload])
        backend.map_runs(simulator, [workload])
        assert backend.cache.stats.hits == 1

    def test_rejects_non_default_meter(self, backend):
        other_meter = dataclasses.replace(WT210, name="WT-custom")
        simulator = Simulator(XEON_E5462, seed=0, meter_spec=other_meter)
        with pytest.raises(ConfigurationError):
            backend.map_runs(simulator, [NpbWorkload("ep", "C", 1)])

    def test_exhausted_retries_raise_simulation_error(self, simulator):
        backend = FleetBackend(
            workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fault=FaultInjection("ep.C.2", fail_attempts=99),
        )
        with pytest.raises(SimulationError):
            backend.map_runs(simulator, [NpbWorkload("ep", "C", 2)])
