"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462


@pytest.fixture(scope="session")
def e5462():
    """The 4-core Xeon-E5462 server."""
    return XEON_E5462


@pytest.fixture(scope="session")
def opteron():
    """The 16-core Opteron-8347 server."""
    return OPTERON_8347


@pytest.fixture(scope="session")
def x4870():
    """The 40-core Xeon-4870 server."""
    return XEON_4870


@pytest.fixture(scope="session", params=["Xeon-E5462", "Opteron-8347", "Xeon-4870"])
def any_server(request):
    """Parametrised over all three built-in servers."""
    from repro.hardware import get_server

    return get_server(request.param)


@pytest.fixture()
def sim_e5462(e5462):
    """A deterministic simulator on the small server."""
    return Simulator(e5462, seed=1234)


@pytest.fixture()
def sim_4870(x4870):
    """A deterministic simulator on the large server."""
    return Simulator(x4870, seed=1234)
