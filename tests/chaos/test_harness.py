"""The chaos harness itself: scenario registry, verdicts, report."""

import pytest

from repro.chaos import (
    OUTCOMES,
    ChaosReport,
    ScenarioVerdict,
    available_scenarios,
    run_chaos,
)
from repro.errors import ReproError

#: Cheap, pool-free scenarios safe to run inside the unit suite.  The
#: full matrix (worker pools, watchdog kills) runs as ``python -m repro
#: chaos`` in CI's chaos-smoke job.
_FAST = [
    "meter-dropout",
    "meter-spikes",
    "meter-nan",
    "meter-clock-skew",
    "meter-guard",
    "csv-truncated",
    "csv-corrupt",
]


class TestRegistry:
    def test_every_layer_is_covered(self):
        layers = {layer for _n, layer, _d in available_scenarios()}
        assert layers == {"meter", "fleet", "cache", "campaign", "serve"}

    def test_names_are_unique(self):
        names = [n for n, _l, _d in available_scenarios()]
        assert len(names) == len(set(names))

    def test_storage_fault_scenarios_are_registered(self):
        names = {n for n, _l, _d in available_scenarios()}
        assert {
            "disk-full",
            "journal-bitflip",
            "evict-during-dedup",
            "supervisor-crash-loop",
        } <= names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError):
            run_chaos(only=["no-such-scenario"])


class TestFastScenarios:
    def test_meter_layer_recovers(self):
        report = run_chaos(seed=2015, only=_FAST)
        assert isinstance(report, ChaosReport)
        assert report.ok
        assert {v.outcome for v in report.verdicts} == {"recovered"}
        assert len(report.verdicts) == len(_FAST)

    def test_partial_matrix_degrades_flagged(self):
        report = run_chaos(seed=2015, only=["partial-matrix"])
        (verdict,) = report.verdicts
        assert verdict.outcome == "degraded"
        assert verdict.ok
        assert "coverage" in verdict.detail

    def test_cache_bitflip_recovers(self):
        report = run_chaos(seed=2015, only=["cache-bitflip"])
        (verdict,) = report.verdicts
        assert verdict.outcome == "recovered"
        assert "quarantined" in verdict.detail

    def test_campaign_resume_is_bit_identical(self):
        report = run_chaos(seed=2015, only=["campaign-resume"])
        (verdict,) = report.verdicts
        assert verdict.outcome == "recovered"
        assert "digest identical" in verdict.detail


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos(seed=2015, only=["meter-dropout", "partial-matrix"])

    def test_counts(self, report):
        assert report.count("recovered") == 1
        assert report.count("degraded") == 1
        assert report.count("failed") == 0

    def test_format_lists_every_scenario(self, report):
        text = report.format()
        assert "meter-dropout" in text
        assert "partial-matrix" in text
        assert "0 failed" in text

    def test_to_dict_round_trips_through_json(self, report):
        import json

        data = json.loads(json.dumps(report.to_dict()))
        assert data["kind"] == "chaos_report"
        assert data["ok"] is True
        assert data["seed"] == 2015
        assert len(data["verdicts"]) == 2
        assert all(v["outcome"] in OUTCOMES for v in data["verdicts"])

    def test_failed_verdict_fails_the_report(self):
        bad = ScenarioVerdict("x", "meter", "failed", "boom")
        report = ChaosReport(seed=1, verdicts=(bad,), wall_s=0.0)
        assert not report.ok
        assert not bad.ok
