"""Disk-full mid-campaign, then SIGKILL: restart must be bit-identical.

The SIGKILL test (:mod:`tests.chaos.test_serve_kill`) proves recovery
from a violent death on a *healthy* disk.  This is the compound
failure: the daemon boots onto a disk with almost no space left
(``REPRO_FAULT_ENOSPC`` write-token budget — exactly enough for the
boot event and the fsynced submit record), so the campaign's result
and ``done`` record can never land.  The daemon must degrade — report
the campaign ``degraded`` (a distinct terminal status: unlike
``failed``, the journaled submission is retried on restart) with a
``storage_degraded`` error, stay up —
and after a SIGKILL, a restart *with space available* must replay the
journaled submission and produce a result document byte-identical to
an uninterrupted run on a healthy disk.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import io as repro_io
from repro.core.evaluation import evaluate_server
from repro.doctor.safewrite import ENV_FAULT_BUDGET
from repro.engine.simulator import Simulator
from repro.hardware.specs import get_server
from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parents[2]

_SERVER = "Xeon-E5462"
_SEED = 7

# One token for the boot's ``serve_start`` event, one for the fsynced
# submit record (so the client's 202 lands): every write after that —
# cache entries, job events, the result document, the ``done`` record —
# hits the injected ENOSPC.
_BOOT_BUDGET = 2


def _spawn_serve(state_dir, port_file, fault_budget=None):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--state-dir", str(state_dir),
        "--port-file", str(port_file),
        "--slots", "1",
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    if fault_budget is not None:
        env[ENV_FAULT_BUDGET] = str(fault_budget)
    else:
        env.pop(ENV_FAULT_BUDGET, None)
    return subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _client_when_up(port_file, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return ServeClient.from_port_file(port_file)
        time.sleep(0.02)
    raise AssertionError("daemon never published its port")


@pytest.fixture(scope="module")
def reference_bytes(tmp_path_factory):
    server = get_server(_SERVER)
    document = repro_io.evaluation_to_dict(
        evaluate_server(server, Simulator(server, seed=_SEED))
    )
    path = tmp_path_factory.mktemp("ref") / "reference.json"
    return repro_io.save_json(document, path).read_bytes()


class TestEnospcThenSigkill:
    def test_full_disk_degrades_then_restart_is_bit_identical(
        self, tmp_path, reference_bytes
    ):
        state_dir = tmp_path / "state"
        port_file = tmp_path / "port"

        victim = _spawn_serve(
            state_dir, port_file, fault_budget=_BOOT_BUDGET
        )
        try:
            client = _client_when_up(port_file)
            campaign_id = client.submit_evaluate(
                _SERVER, seed=_SEED, tenant="alice"
            )["id"]
            # The full disk must degrade the campaign, not kill the
            # daemon: poll until it reports degraded/storage_degraded
            # (distinct from "failed": restart will retry it).
            status = client.wait(campaign_id, timeout_s=180)
            assert status["status"] == "degraded"
            assert "storage_degraded" in (status.get("error") or "")
            assert victim.poll() is None, "daemon died on a full disk"
            # No done record, no result document: the journal still
            # carries the submission for the next boot.
            assert not (
                state_dir / "results" / f"{campaign_id}.json"
            ).exists()
            victim.kill()
            victim.wait(timeout=60)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)

        # Space returns (no fault budget): the restarted daemon replays
        # the submit record and completes the identical campaign.
        restarted = _spawn_serve(state_dir, tmp_path / "port2")
        try:
            client = _client_when_up(tmp_path / "port2")
            status = client.wait(campaign_id, timeout_s=180)
            assert status["status"] == "done"
            result_path = state_dir / "results" / f"{campaign_id}.json"
            assert result_path.read_bytes() == reference_bytes
        finally:
            restarted.send_signal(signal.SIGTERM)
            try:
                restarted.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                restarted.kill()
                restarted.wait(timeout=30)
        assert restarted.returncode == 0
