"""SIGKILL the serve daemon mid-campaign: restart must be bit-identical.

The drain test covers the *graceful* path (SIGTERM journals pending
work).  This is the violent one: SIGKILL gives the daemon no chance to
journal a drain record, so recovery rests entirely on the fsynced
submit records and the content-addressed cache.  A restarted daemon
must finish the interrupted campaign and produce a result document
byte-identical to an uninterrupted run — the same contract
``tests/fleet/test_resume.py`` proves for ``repro fleet run --resume``.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import io as repro_io
from repro.core.evaluation import evaluate_server
from repro.engine.simulator import Simulator
from repro.hardware.specs import get_server
from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parents[2]

_SERVER = "Xeon-E5462"
_SEED = 7


def _spawn_serve(state_dir, port_file):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--state-dir", str(state_dir),
        "--port-file", str(port_file),
        "--slots", "1",
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _client_when_up(port_file, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return ServeClient.from_port_file(port_file)
        time.sleep(0.02)
    raise AssertionError("daemon never published its port")


@pytest.fixture(scope="module")
def reference_bytes(tmp_path_factory):
    """The uninterrupted result, exactly as serve would write it."""
    server = get_server(_SERVER)
    document = repro_io.evaluation_to_dict(
        evaluate_server(server, Simulator(server, seed=_SEED))
    )
    path = tmp_path_factory.mktemp("ref") / "reference.json"
    return repro_io.save_json(document, path).read_bytes()


class TestSigkillServe:
    def test_sigkill_mid_campaign_then_restart_is_bit_identical(
        self, tmp_path, reference_bytes
    ):
        state_dir = tmp_path / "state"
        port_file = tmp_path / "port"
        events_path = state_dir / "events.jsonl"

        victim = _spawn_serve(state_dir, port_file)
        try:
            client = _client_when_up(port_file)
            campaign_id = client.submit_evaluate(
                _SERVER, seed=_SEED, tenant="alice"
            )["id"]
            # Kill the instant execution visibly starts (or let it
            # finish if it outraces the poll — the contract must hold
            # from any kill point, including "none").
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    break
                if (
                    events_path.exists()
                    and b'"serve_start"' in events_path.read_bytes()
                ):
                    victim.kill()
                    break
                time.sleep(0.005)
            else:
                victim.kill()
                pytest.fail("campaign never started within 60 s")
            victim.wait(timeout=60)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30)

        # SIGKILL leaves no drain record — recovery rests on the
        # fsynced submit journal alone (possibly with a torn tail).
        restarted = _spawn_serve(state_dir, tmp_path / "port2")
        try:
            client = _client_when_up(tmp_path / "port2")
            status = client.wait(campaign_id, timeout_s=180)
            assert status["status"] == "done"
            result_path = state_dir / "results" / f"{campaign_id}.json"
            assert result_path.read_bytes() == reference_bytes
        finally:
            restarted.send_signal(signal.SIGTERM)
            try:
                restarted.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                restarted.kill()
                restarted.wait(timeout=30)
        assert restarted.returncode == 0
