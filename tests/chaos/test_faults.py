"""Deterministic fault injectors: same seed, same damage."""

import numpy as np
import pytest

from repro.chaos import faults
from repro.errors import ConfigurationError
from repro.metering.csvlog import read_power_csv_tolerant, write_power_csv


@pytest.fixture()
def trace():
    times = np.arange(60.0)
    watts = 200.0 + np.sin(times / 5.0)
    return times, watts


class TestFaultRng:
    def test_same_seed_same_stream(self):
        a = faults.fault_rng(7, "x").integers(1 << 30, size=8)
        b = faults.fault_rng(7, "x").integers(1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_scenarios_get_independent_streams(self):
        a = faults.fault_rng(7, "x").integers(1 << 30, size=8)
        b = faults.fault_rng(7, "y").integers(1 << 30, size=8)
        assert not np.array_equal(a, b)


class TestTraceInjectors:
    def test_dropout_removes_the_fraction(self, trace):
        times, watts = trace
        t2, w2 = faults.inject_dropout(
            times, watts, faults.fault_rng(1, "d"), fraction=0.1
        )
        assert t2.size == w2.size == 54
        # Survivors are untouched originals.
        assert set(w2).issubset(set(watts))

    def test_dropout_is_deterministic(self, trace):
        times, watts = trace
        runs = [
            faults.inject_dropout(
                times, watts, faults.fault_rng(1, "d"), fraction=0.1
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0][0], runs[1][0])
        assert np.array_equal(runs[0][1], runs[1][1])

    def test_dropout_rejects_bad_fraction(self, trace):
        with pytest.raises(ConfigurationError):
            faults.inject_dropout(*trace, faults.fault_rng(1, "d"), fraction=1.0)

    def test_spikes_damage_exactly_count_samples(self, trace):
        times, watts = trace
        _t2, w2 = faults.inject_spikes(
            times, watts, faults.fault_rng(1, "s"), count=5
        )
        assert int((w2 != watts).sum()) == 5
        assert w2.max() > watts.max() * 10
        # The input arrays are never mutated.
        assert watts.max() < 210

    def test_nan_damages_exactly_count_samples(self, trace):
        times, watts = trace
        _t2, w2 = faults.inject_nan(
            times, watts, faults.fault_rng(1, "n"), count=3
        )
        assert int(np.isnan(w2).sum()) == 3
        assert not np.isnan(watts).any()

    def test_clock_skew_shifts_every_timestamp(self, trace):
        times, watts = trace
        t2, w2 = faults.inject_clock_skew(times, watts, offset_s=0.3)
        assert np.allclose(t2 - times, 0.3)
        assert np.array_equal(w2, watts)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            faults.inject_clock_skew(np.arange(3.0), np.arange(4.0))


class TestCsvInjectors:
    def test_truncate_leaves_a_torn_final_row(self, tmp_path, trace):
        path = write_power_csv(tmp_path / "t.csv", *trace)
        faults.truncate_csv(path, keep_fraction=0.6)
        lines = path.read_text().splitlines()
        # Header intact, last line is a one-byte stub of a real row.
        assert lines[0].startswith("time")
        assert len(lines[-1]) == 1
        _t, w, report = read_power_csv_tolerant(path)
        assert report.n_bad == 1
        assert w.size == len(lines) - 2  # header + torn row excluded

    def test_truncate_rejects_bad_fraction(self, tmp_path, trace):
        path = write_power_csv(tmp_path / "t.csv", *trace)
        with pytest.raises(ConfigurationError):
            faults.truncate_csv(path, keep_fraction=1.5)

    def test_corrupt_rows_reports_the_line_numbers(self, tmp_path, trace):
        path = write_power_csv(tmp_path / "t.csv", *trace)
        _path, bad = faults.corrupt_csv_rows(
            path, faults.fault_rng(3, "c"), count=4
        )
        assert len(bad) == 4
        _t, _w, report = read_power_csv_tolerant(path)
        assert sorted(report.bad_lines) == sorted(bad)


class TestCacheInjectors:
    @pytest.fixture()
    def warm_cache(self, tmp_path):
        from repro.engine.simulator import Simulator
        from repro.fleet import ResultCache
        from repro.hardware import XEON_E5462
        from repro.workloads.npb import NpbWorkload

        cache = ResultCache(tmp_path / "cache")
        result = Simulator(XEON_E5462, seed=3).run(NpbWorkload("ep", "C", 2))
        cache.put("ab" + "0" * 62, result, wall_s=0.1)
        return cache

    def test_bitflip_changes_one_blob(self, warm_cache):
        victim = faults.flip_cache_bit(
            warm_cache.root, faults.fault_rng(1, "b")
        )
        assert victim.suffix == ".bin"
        assert warm_cache.get("ab" + "0" * 62) is None
        assert warm_cache.stats.quarantined == 1

    def test_torn_entry_is_quarantined(self, warm_cache):
        faults.tear_cache_entry(warm_cache.root, faults.fault_rng(1, "t"))
        assert warm_cache.get("ab" + "0" * 62) is None
        assert warm_cache.stats.quarantined == 1

    def test_empty_cache_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            faults.flip_cache_bit(tmp_path, faults.fault_rng(1, "b"))
        with pytest.raises(ConfigurationError):
            faults.tear_cache_entry(tmp_path, faults.fault_rng(1, "t"))


class TestJournalInjector:
    def _journal(self, tmp_path):
        import json

        path = tmp_path / "journal.jsonl"
        records = [
            {"kind": "submit", "id": "c-000001"},
            {"kind": "done", "id": "c-000001"},
            {"kind": "submit", "id": "c-000002"},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        return path

    def test_flip_damages_exactly_one_line(self, tmp_path):
        import json

        path = self._journal(tmp_path)
        before = path.read_bytes().split(b"\n")
        _path, lineno = faults.flip_journal_record(
            path, faults.fault_rng(1, "j")
        )
        after = path.read_bytes().split(b"\n")
        assert len(before) == len(after)
        changed = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert changed == [lineno]
        with pytest.raises(json.JSONDecodeError):
            json.loads(after[lineno])

    def test_kind_filter_targets_only_that_kind(self, tmp_path):
        import json

        path = self._journal(tmp_path)
        _path, lineno = faults.flip_journal_record(
            path, faults.fault_rng(1, "j"), kind="done"
        )
        assert lineno == 1  # the only done record

    def test_no_matching_record_rejected(self, tmp_path):
        path = self._journal(tmp_path)
        with pytest.raises(ConfigurationError):
            faults.flip_journal_record(
                path, faults.fault_rng(1, "j"), kind="drain"
            )
