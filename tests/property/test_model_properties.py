"""Property-based bit-identity of batched model inference.

The registry's digest comparisons only work if a batched prediction can
never diverge from a per-row loop — for *any* row order or batch
composition, on *any* server's model, whether or not observability is
instrumenting the pass.  Hypothesis drives exactly those degrees of
freedom: it shuffles and concatenates rows of the real NPB verification
matrices and the property demands ``np.array_equal`` (every bit), not
``allclose``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.regression import (
    collect_hpcc_training,
    collect_npb_features,
    train_power_model,
)
from repro.hardware import BUILTIN_SERVERS
from repro.model import InferenceEngine

SERVER_NAMES = tuple(BUILTIN_SERVERS)

_CACHE: dict = {}


def _trained(name):
    """Model + NPB-B feature matrix per server, trained once per run."""
    if name not in _CACHE:
        server = BUILTIN_SERVERS[name]
        model = train_power_model(
            collect_hpcc_training(server), server_name=server.name
        )
        _labels, features, _watts = collect_npb_features(server, "B")
        _CACHE[name] = (model, features)
    return _CACHE[name]


def _per_row_ols(model, features):
    """The reference: raw per-row OlsModel.predict calls."""
    normalized = model.feature_normalizer.transform(features)[
        :, list(model.selected)
    ]
    return np.array(
        [model.ols.predict(normalized[i]) for i in range(len(features))]
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
@pytest.mark.parametrize("server_name", SERVER_NAMES)
@pytest.mark.parametrize("obs_on", [False, True], ids=["obs-off", "obs-on"])
def test_batched_inference_bit_matches_per_row(server_name, obs_on, data):
    model, base = _trained(server_name)
    n = base.shape[0]
    # An arbitrary batch: rows of the real matrix, shuffled, repeated,
    # and concatenated — batch composition must not leak into any row.
    indices = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=3 * n),
        label="row indices",
    )
    features = base[np.asarray(indices, dtype=int)]
    obs.runtime.enable() if obs_on else obs.runtime.disable()
    try:
        batched = InferenceEngine(model).predict(features)
    finally:
        obs.runtime.reset()
    assert np.array_equal(batched.normalized, _per_row_ols(model, features))


@settings(max_examples=15, deadline=None)
@given(
    split=st.integers(1, 22),
    seed=st.integers(0, 2**16),
)
def test_prediction_rows_independent_of_batch_mates(split, seed):
    """Predicting a matrix in two halves equals predicting it whole."""
    model, base = _trained(SERVER_NAMES[0])
    order = np.random.default_rng(seed).permutation(base.shape[0])
    shuffled = base[order]
    split = min(split, base.shape[0] - 1)
    engine = InferenceEngine(model)
    whole = engine.predict(shuffled)
    halves = np.concatenate(
        [
            engine.predict(shuffled[:split]).normalized,
            engine.predict(shuffled[split:]).normalized,
        ]
    )
    assert np.array_equal(whole.normalized, halves)
    assert whole.digest == engine.predict(shuffled).digest
