"""Property-based coverage of the DVFS layer and the state grid.

Three invariant families the example tests cannot exhaust:

* the alpha-power law round-trips any ratio inside a node's DVFS
  window, and power scale factors are monotone in frequency;
* at any fixed activity level, modelled power never *rises* when a
  server steps down the frequency axis (elementwise coefficient
  dominance implies it for every non-negative feature vector);
* the degenerate one-P-state grid is bit-identical to the paper's
  5-state method on the builtins, and zoo specs survive a JSON
  round-trip at every operating point.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import evaluate_server
from repro.core.grid import StateGrid, evaluate_grid, evaluation_digest
from repro.engine.simulator import Simulator
from repro.hardware.calibration import calibrated_power_model
from repro.hardware.specs import BUILTIN_SERVERS, get_server
from repro.hardware.technode import TECH_NODES
from repro.hardware.zoo import ZOO_SERVERS, get_zoo_server
from repro.io import server_from_dict, server_to_dict

tech_nodes = st.sampled_from(sorted(TECH_NODES))
zoo_names = st.sampled_from(sorted(ZOO_SERVERS))


@st.composite
def node_and_ratio(draw):
    node = TECH_NODES[draw(tech_nodes)]
    lo, hi = node.dvfs_ratio_bounds()
    # Shrink-friendly: interpolate inside the window rather than
    # drawing raw floats that mostly fall outside it.
    t = draw(st.floats(0.0, 1.0, allow_nan=False))
    return node, lo + t * (hi - lo)


@given(node_and_ratio())
def test_alpha_power_law_round_trips(pair):
    node, ratio = pair
    vdd = node.voltage_for_ratio(ratio)
    assert node.vdd_min_v <= vdd <= node.vdd_max_v
    assert abs(node.frequency_scale(vdd) - ratio) < 1e-9


@st.composite
def node_and_ratio_pair(draw):
    node = TECH_NODES[draw(tech_nodes)]
    lo, hi = node.dvfs_ratio_bounds()
    t1 = draw(st.floats(0.0, 1.0, allow_nan=False))
    t2 = draw(st.floats(0.0, 1.0, allow_nan=False))
    return node, lo + t1 * (hi - lo), lo + t2 * (hi - lo)


@given(node_and_ratio_pair())
def test_power_scales_monotone_in_frequency(triple):
    node, r1, r2 = triple
    r_slow, r_fast = sorted((r1, r2))
    assert node.dynamic_power_scale(r_slow) <= node.dynamic_power_scale(r_fast)
    assert node.static_power_scale(r_slow) <= node.static_power_scale(r_fast)


@given(zoo_names, st.data())
def test_power_never_rises_stepping_down_the_ladder(name, data):
    server = ZOO_SERVERS[name]
    shallow = data.draw(
        st.integers(0, server.n_pstates - 2), label="shallow"
    )
    deep = data.draw(
        st.integers(shallow + 1, server.n_pstates - 1), label="deep"
    )
    c_shallow = calibrated_power_model(
        server.at_pstate(shallow)
    ).coefficients
    c_deep = calibrated_power_model(server.at_pstate(deep)).coefficients
    # Elementwise dominance: for every non-negative activity feature
    # vector, deeper P-states draw at most the shallower state's watts.
    assert c_deep.p_idle <= c_shallow.p_idle
    assert np.all(
        c_deep.as_delta_vector() <= c_shallow.as_delta_vector()
    )
    assert c_deep.mem_dyn == c_shallow.mem_dyn  # DRAM rail is exempt


@settings(max_examples=6, deadline=None)
@given(st.sampled_from(sorted(BUILTIN_SERVERS)), st.integers(0, 3))
def test_degenerate_grid_equals_five_state_method(name, seed):
    server = get_server(name)
    grid_result = evaluate_grid(StateGrid(server), seed=seed)
    direct = evaluate_server(server, Simulator(server, seed=seed))
    [cell] = grid_result.cells
    assert cell.digest == evaluation_digest(direct)


@given(zoo_names, st.data())
def test_zoo_specs_round_trip_through_json(name, data):
    pstate = data.draw(
        st.integers(0, ZOO_SERVERS[name].n_pstates - 1), label="pstate"
    )
    spec = get_zoo_server(name).at_pstate(pstate)
    assert server_from_dict(server_to_dict(spec)) == spec
