"""Property-based tests (hypothesis) on the streaming metering pipeline.

The invariants pinned here are the ones the bit-identity contract rests
on: chunk boundaries can never change an accumulator's state, the
positional trim reproduces ``trimmed_stats`` exactly, and window routing
is insensitive to reordering within the edge tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metering.analysis import extract_window, trimmed_stats
from repro.metering.stream import (
    StreamingStats,
    StreamingTrim,
    StreamingWindow,
    WindowSpec,
)

watt_values = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(watt_values, min_size=1, max_size=200)


def _split(values, cut_points):
    """Split a list at the given (possibly duplicated) cut points."""
    bounds = sorted({min(c, len(values)) for c in cut_points})
    out = []
    prev = 0
    for b in bounds:
        out.append(values[prev:b])
        prev = b
    out.append(values[prev:])
    return out


class TestChunkInvariance:
    @given(
        sample_lists,
        st.lists(st.integers(min_value=0, max_value=200), max_size=8),
    )
    def test_stats_state_identical_under_any_split(self, values, cuts):
        whole = StreamingStats()
        whole.push_many(np.asarray(values))
        split = StreamingStats()
        for chunk in _split(values, cuts):
            split.push_many(np.asarray(chunk))
        # Bit-identical internal state, not just approximately equal.
        assert whole.n == split.n
        assert whole.mean == split.mean
        assert whole._m2 == split._m2

    @given(sample_lists)
    def test_torn_chunks_of_one(self, values):
        # The most adversarial tearing: every chunk holds one sample.
        whole = StreamingStats()
        whole.push_many(np.asarray(values))
        torn = StreamingStats()
        for v in values:
            torn.push_many(np.asarray([v]))
        assert whole.mean == torn.mean
        assert whole._m2 == torn._m2

    @given(
        sample_lists,
        st.lists(st.integers(min_value=0, max_value=200), max_size=8),
        st.sampled_from([0.0, 0.1, 0.2, 0.49]),
    )
    def test_trim_identical_under_any_split(self, values, cuts, trim):
        whole = StreamingTrim(trim=trim)
        whole.push_many(np.asarray(values))
        split = StreamingTrim(trim=trim)
        for chunk in _split(values, cuts):
            split.push_many(np.asarray(chunk))
        assert whole.finalize() == split.finalize()


class TestBatchEquivalence:
    @given(sample_lists, st.sampled_from([0.0, 0.1, 0.2, 0.49]))
    def test_trim_matches_trimmed_stats_bit_exact(self, values, trim):
        array = np.asarray(values, dtype=float)
        acc = StreamingTrim(trim=trim)
        acc.push_many(array)
        assert acc.finalize() == trimmed_stats(array, trim)

    @given(
        st.lists(watt_values, min_size=4, max_size=120),
        st.sampled_from([0.0, 0.2]),
    )
    def test_window_matches_extract_window(self, values, trim):
        times = np.arange(float(len(values)))
        watts = np.asarray(values, dtype=float)
        mid = len(values) // 2
        specs = [
            WindowSpec("head", 0.0, float(mid) + 0.5),
            WindowSpec("tail", float(mid), float(len(values))),
        ]
        pipeline = StreamingWindow(trim=trim)
        for spec in specs:
            pipeline.add_window(spec)
        pipeline.push_many(times, watts)
        for spec, result in zip(specs, pipeline.finalize()):
            batch = trimmed_stats(
                extract_window(times, watts, spec.start_s, spec.end_s), trim
            )
            assert result.stats == batch


class TestReorderTolerance:
    @given(
        st.lists(watt_values, min_size=6, max_size=80),
        st.data(),
    )
    @settings(max_examples=50)
    def test_adjacent_swaps_inside_window_do_not_change_result(
        self, values, data
    ):
        # Samples may arrive slightly out of order; as long as no
        # reordered sample crosses a window edge the finalised stats
        # cannot change, because membership is positional in time, not
        # in arrival order... except the trim, which is arrival-order
        # positional.  So swaps are only harmless when the swapped
        # samples stay inside the same window AND trim is 0.
        times = np.arange(float(len(values)))
        watts = np.asarray(values, dtype=float)
        end = float(len(values))
        i = data.draw(
            st.integers(min_value=0, max_value=len(values) - 2), label="i"
        )

        sorted_pipe = StreamingWindow(trim=0.0)
        sorted_pipe.add_window(WindowSpec("w", 0.0, end))
        sorted_pipe.push_many(times, watts)

        swapped = StreamingWindow(trim=0.0)
        swapped.add_window(WindowSpec("w", 0.0, end))
        order = list(range(len(values)))
        order[i], order[i + 1] = order[i + 1], order[i]
        swapped.push_many(times[order], watts[order])

        (a,) = sorted_pipe.finalize()
        (b,) = swapped.finalize()
        # Membership is exact under reordering; the mean's last bits may
        # differ because numpy's pairwise sum sees a permuted array.
        assert a.stats.n_total == b.stats.n_total
        assert a.stats.n_used == b.stats.n_used
        assert b.stats.mean == pytest.approx(a.stats.mean, rel=1e-12)
        assert b.spec.label == "w"
        assert swapped.late_samples == 0
