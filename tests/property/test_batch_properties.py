"""Property-based equivalence of the batch and serial engines.

The differential suite pins the curated workload families; these
properties fuzz the demand space itself — arbitrary valid
:class:`ResourceDemand` mixes on every builtin server must come out of
the batch engine bit-identical to the serial simulator, and the batch
result of a run must not depend on which other runs share the batch.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.demand import ResourceDemand
from repro.engine import Simulator
from repro.engine.batch import run_batch
from repro.engine.trace import RunResult
from repro.errors import WorkloadError
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbWorkload

SERVERS = (XEON_E5462, OPTERON_8347, XEON_4870)

_PROGRAMS = ("fuzz-a", "fuzz-b", "fuzz-c", "fuzz-d", "fuzz-e")

unit = st.floats(0.0, 1.0, allow_nan=False)
# The cache model requires locality strictly below 1.
locality = st.floats(0.0, 0.99, allow_nan=False)


@st.composite
def demands(draw, server):
    """An arbitrary valid demand that fits ``server``."""
    nprocs = draw(st.integers(1, server.total_cores))
    return ResourceDemand(
        program=draw(st.sampled_from(_PROGRAMS)),
        nprocs=nprocs,
        duration_s=draw(st.floats(1.0, 45.0, allow_nan=False)),
        gflops=draw(st.floats(0.0, 40.0, allow_nan=False)),
        memory_mb=draw(st.floats(0.0, 2000.0, allow_nan=False)),
        cpu_util=draw(unit),
        ipc=draw(unit),
        fp_intensity=draw(unit),
        mem_intensity=draw(unit),
        comm_intensity=draw(unit),
        l1_locality=draw(locality),
        l2_locality=draw(locality),
        l3_locality=draw(locality),
        read_fraction=draw(unit),
    )


@st.composite
def server_and_demands(draw):
    server = draw(st.sampled_from(SERVERS))
    batch = draw(st.lists(demands(server), min_size=1, max_size=4))
    return server, batch


def assert_runs_identical(a: RunResult, b: RunResult) -> None:
    assert a.demand == b.demand
    assert np.array_equal(a.times_s, b.times_s)
    assert np.array_equal(a.true_watts, b.true_watts)
    assert np.array_equal(a.measured_watts, b.measured_watts)
    assert np.array_equal(a.memory_mb, b.memory_mb)
    assert a.pmu_samples == b.pmu_samples
    assert a.power_factor == b.power_factor


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=server_and_demands(), seed=st.integers(0, 2**16))
def test_batch_matches_serial_on_random_demands(case, seed):
    server, batch = case
    serial = [Simulator(server, seed=seed).run(d) for d in batch]
    batched = run_batch(Simulator(server, seed=seed), batch)
    for a, b in zip(serial, batched):
        assert_runs_identical(a, b)


hpl_workloads = st.builds(
    HplWorkload,
    st.builds(
        HplConfig,
        st.sampled_from([1, 2, 4]),
        st.sampled_from([0.5, 0.95]),
    ),
)
npb_workloads = st.builds(
    NpbWorkload,
    st.sampled_from(sorted(NPB_PROGRAMS)),
    st.sampled_from(["W", "A", "B", "C"]),
    st.sampled_from([1, 2, 4]),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    server=st.sampled_from(SERVERS),
    workloads=st.lists(
        st.one_of(hpl_workloads, npb_workloads), min_size=1, max_size=4
    ),
    seed=st.integers(0, 2**16),
)
def test_batch_matches_serial_on_random_workloads(server, workloads, seed):
    """Modelled workloads (bind-time errors included) behave identically."""
    simulator = Simulator(server, seed=seed)
    serial = []
    for workload in workloads:
        try:
            serial.append(Simulator(server, seed=seed).run(workload))
        except WorkloadError as exc:
            serial.append(exc)
    for a, b in zip(serial, run_batch(simulator, workloads)):
        if isinstance(a, WorkloadError):
            assert type(b) is type(a) and str(b) == str(a)
        else:
            assert_runs_identical(a, b)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=server_and_demands(), data=st.data())
def test_batch_is_order_and_membership_independent(case, data):
    """A run's result depends on (seed, program), never on batch shape.

    Shuffling the batch, or evaluating any subset of it, must reproduce
    each member's result exactly — this is what lets the fleet chunk
    jobs arbitrarily and retry single members without drift.
    """
    server, batch = case
    reference = run_batch(Simulator(server, seed=2015), batch)

    order = data.draw(st.permutations(range(len(batch))))
    shuffled = run_batch(
        Simulator(server, seed=2015), [batch[i] for i in order]
    )
    for position, original_index in enumerate(order):
        assert_runs_identical(
            shuffled[position], reference[original_index]
        )

    keep = data.draw(
        st.lists(
            st.integers(0, len(batch) - 1),
            min_size=1,
            max_size=len(batch),
            unique=True,
        )
    )
    subset = run_batch(Simulator(server, seed=2015), [batch[i] for i in keep])
    for position, original_index in enumerate(keep):
        assert_runs_identical(subset[position], reference[original_index])
