"""Property-based tests on the simulation stack.

Strategies generate arbitrary *valid* workload configurations; the
properties assert the physical invariants every run must satisfy,
regardless of configuration.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.demand import ResourceDemand
from repro.engine import Simulator
from repro.errors import InsufficientMemoryError
from repro.hardware import XEON_4870, XEON_E5462
from repro.hardware.calibration import calibrated_power_model
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbClass, NpbWorkload

_SIM_SMALL = Simulator(XEON_E5462)
_SIM_BIG = Simulator(XEON_4870)

npb_names = st.sampled_from(sorted(NPB_PROGRAMS))
small_classes = st.sampled_from(["W", "A", "B"])


def _bindable(sim, workload):
    try:
        return sim.run(workload)
    except InsufficientMemoryError:
        return None


valid_counts = {
    name: [
        n
        for n in range(1, 41)
        if NPB_PROGRAMS[name].proc_rule.allows(n)
    ]
    for name in NPB_PROGRAMS
}


@st.composite
def npb_workloads(draw):
    name = draw(npb_names)
    klass = draw(small_classes)
    nprocs = draw(st.sampled_from(valid_counts[name]))
    return NpbWorkload(name, klass, nprocs)


class TestRunInvariants:
    @settings(max_examples=25, deadline=None)
    @given(npb_workloads())
    def test_power_bounded_by_idle_and_envelope(self, workload):
        run = _bindable(_SIM_BIG, workload)
        if run is None:
            return
        idle = calibrated_power_model(XEON_4870).coefficients.p_idle
        assert run.true_watts.min() >= idle - 1e-9
        # No single-server workload can triple the idle power on this
        # machine (HPL full-out reaches ~1.8x).
        assert run.true_watts.max() < 2.5 * idle

    @settings(max_examples=25, deadline=None)
    @given(npb_workloads())
    def test_memory_trace_within_installed(self, workload):
        run = _bindable(_SIM_BIG, workload)
        if run is None:
            return
        assert np.all(run.memory_mb >= 0)
        assert np.all(run.memory_mb <= XEON_4870.memory_mb)

    @settings(max_examples=25, deadline=None)
    @given(npb_workloads())
    def test_pmu_counters_nonnegative(self, workload):
        run = _bindable(_SIM_BIG, workload)
        if run is None:
            return
        assert np.all(run.pmu_matrix() >= 0)

    @settings(max_examples=20, deadline=None)
    @given(npb_workloads())
    def test_deterministic_under_fixed_seed(self, workload):
        a = _bindable(Simulator(XEON_4870, seed=7), workload)
        b = _bindable(Simulator(XEON_4870, seed=7), workload)
        if a is None or b is None:
            assert (a is None) == (b is None)
            return
        assert np.array_equal(a.measured_watts, b.measured_watts)

    @settings(max_examples=20, deadline=None)
    @given(npb_workloads())
    def test_energy_consistent_with_power_and_time(self, workload):
        run = _bindable(_SIM_BIG, workload)
        if run is None:
            return
        expected = run.average_power_watts() / 1000.0 * run.duration_s
        assert run.energy_kilojoules() == pytest.approx(expected, rel=1e-9)


class TestHplInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.05, max_value=0.95),
        st.sampled_from([64, 128, 200, 256]),
    )
    def test_hpl_power_increases_with_cores(self, nprocs, fraction, nb):
        if nprocs > 1:
            lo = _SIM_SMALL.run(
                HplWorkload(HplConfig(nprocs - 1, fraction, nb=nb))
            ).average_power_watts()
            hi = _SIM_SMALL.run(
                HplWorkload(HplConfig(nprocs, fraction, nb=nb))
            ).average_power_watts()
            assert hi > lo - 1.5  # meter noise tolerance

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_hpl_footprint_tracks_fraction(self, fraction):
        demand = HplWorkload(HplConfig(4, fraction)).bind(XEON_E5462)
        from repro.hardware.memory import MemorySubsystem

        usable = MemorySubsystem(XEON_E5462).usable_mb
        assert demand.memory_mb <= fraction * usable * 1.01


class TestDemandInvariants:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(npb_workloads())
    def test_bound_demand_is_self_consistent(self, workload):
        try:
            demand = workload.bind(XEON_4870)
        except InsufficientMemoryError:
            return
        assert demand.nprocs == workload.nprocs
        assert demand.duration_s > 0
        assert demand.gflops > 0
        assert demand.program == workload.label
