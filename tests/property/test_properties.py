"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.metrics import r_squared, rss, tss
from repro.hardware.cache import analytic_hit_rate
from repro.hardware.specs import XEON_4870
from repro.hardware.topology import place_processes
from repro.kernels.nas_rng import MODULUS_BITS, lcg_modmul, lcg_power
from repro.metering.analysis import trimmed_mean, trimmed_stats
from repro.stats.normalize import ZScoreNormalizer
from repro.units import energy_kj
from repro.workloads.base import power_idiosyncrasy
from repro.workloads.hpl import best_grid
from repro.workloads.perfdata import interp_loglog

MOD = 1 << MODULUS_BITS

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestLcgProperties:
    @given(
        st.integers(min_value=0, max_value=MOD - 1),
        st.integers(min_value=0, max_value=MOD - 1),
    )
    def test_modmul_matches_bigint(self, a, b):
        assert int(lcg_modmul(a, b)) == (a * b) % MOD

    @given(
        st.integers(min_value=0, max_value=MOD - 1),
        st.integers(min_value=0, max_value=MOD - 1),
        st.integers(min_value=0, max_value=MOD - 1),
    )
    def test_modmul_associative(self, a, b, c):
        left = lcg_modmul(lcg_modmul(a, b), c)
        right = lcg_modmul(a, lcg_modmul(b, c))
        assert int(left) == int(right)

    @given(
        st.integers(min_value=1, max_value=MOD - 1),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_power_homomorphism(self, a, m, n):
        assert lcg_power(a, m + n) == int(
            lcg_modmul(lcg_power(a, m), lcg_power(a, n))
        )


class TestTrimProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=200),
            elements=finite_floats,
        ),
        st.floats(min_value=0.0, max_value=0.49),
    )
    def test_trimmed_mean_within_range(self, values, trim):
        mean = trimmed_mean(values, trim)
        assert values.min() - 1e-9 <= mean <= values.max() + 1e-9

    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=200),
            elements=finite_floats,
        ),
        st.floats(min_value=0.0, max_value=0.49),
    )
    def test_trim_counts_consistent(self, values, trim):
        stats = trimmed_stats(values, trim)
        assert 1 <= stats.n_used <= stats.n_total
        assert stats.n_trimmed == stats.n_total - stats.n_used

    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=100),
            elements=finite_floats,
        )
    )
    def test_constant_shift_equivariance(self, values):
        shifted = trimmed_mean(values + 10.0)
        assert shifted == pytest.approx(trimmed_mean(values) + 10.0, abs=1e-6)


class TestFitFormulaProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(min_value=2, max_value=100),
            elements=finite_floats,
        )
    )
    def test_r2_of_self_is_one(self, measured):
        assume(np.std(measured) > 1e-6)
        assert r_squared(measured, measured) == pytest.approx(1.0)

    @given(
        hnp.arrays(np.float64, 50, elements=finite_floats),
        hnp.arrays(np.float64, 50, elements=finite_floats),
    )
    def test_r2_never_exceeds_one(self, measured, predicted):
        assume(np.std(measured) > 1e-6)
        assert r_squared(measured, predicted) <= 1.0 + 1e-12

    @given(
        hnp.arrays(np.float64, 30, elements=finite_floats),
        hnp.arrays(np.float64, 30, elements=finite_floats),
    )
    def test_rss_tss_identity(self, measured, predicted):
        assume(np.std(measured) > 1e-6)
        r2 = r_squared(measured, predicted)
        assert r2 == pytest.approx(1 - rss(measured, predicted) / tss(measured))


class TestNormalizerProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=2, max_value=50),
                st.integers(min_value=1, max_value=5),
            ),
            elements=finite_floats,
        )
    )
    def test_roundtrip(self, data):
        norm = ZScoreNormalizer().fit(data)
        restored = norm.inverse_transform(norm.transform(data))
        assert np.allclose(restored, data, atol=1e-6)


class TestPlacementProperties:
    @given(st.integers(min_value=1, max_value=40))
    def test_compact_conserves_processes(self, n):
        p = place_processes(XEON_4870, n, "compact")
        assert p.active_cores == n
        assert all(0 <= used <= 10 for used in p.cores_per_chip_used)

    @given(st.integers(min_value=1, max_value=40))
    def test_scatter_conserves_processes(self, n):
        p = place_processes(XEON_4870, n, "scatter")
        assert p.active_cores == n

    @given(st.integers(min_value=1, max_value=40))
    def test_compact_uses_minimal_chips(self, n):
        p = place_processes(XEON_4870, n, "compact")
        assert p.active_chips == math.ceil(n / 10)

    @given(st.integers(min_value=1, max_value=40))
    def test_scatter_never_fewer_chips_than_compact(self, n):
        compact = place_processes(XEON_4870, n, "compact")
        scatter = place_processes(XEON_4870, n, "scatter")
        assert scatter.active_chips >= compact.active_chips


class TestInterpProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=64),
            st.floats(min_value=0.01, max_value=1e4),
            min_size=2,
            max_size=6,
        ),
        st.integers(min_value=1, max_value=64),
    )
    def test_interp_positive(self, anchors, n):
        assert interp_loglog(anchors, n) > 0

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=64),
            st.floats(min_value=0.01, max_value=1e4),
            min_size=1,
            max_size=6,
        )
    )
    def test_exact_at_every_anchor(self, anchors):
        for n, value in anchors.items():
            assert interp_loglog(anchors, n) == pytest.approx(value, rel=1e-9)


class TestMiscProperties:
    @given(
        st.floats(min_value=0, max_value=1e5),
        st.floats(min_value=0, max_value=1e5),
    )
    def test_energy_nonnegative(self, watts, seconds):
        assert energy_kj(watts, seconds) >= 0

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=1e-3, max_value=1e4),
        st.floats(min_value=0, max_value=0.999),
    )
    def test_hit_rate_bounded(self, working_set, capacity, locality):
        rate = analytic_hit_rate(working_set, capacity, locality)
        assert 0.0 <= rate <= 0.999

    @given(st.text(min_size=1, max_size=30))
    def test_idiosyncrasy_band(self, key):
        factor = power_idiosyncrasy(key)
        assert 0.7 <= factor <= 1.3

    @given(st.integers(min_value=1, max_value=10_000))
    def test_best_grid_factorises(self, n):
        p, q = best_grid(n)
        assert p * q == n
        assert p <= q
