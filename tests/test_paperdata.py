"""The transcribed paper constants."""

import pytest

from repro.errors import ConfigurationError
from repro.paperdata import (
    PAPER_GREEN500_PPW,
    PAPER_REGRESSION_COEFFICIENTS,
    PAPER_REGRESSION_SUMMARY,
    PAPER_SCORES,
    PAPER_SPECPOWER_SCORES,
    PAPER_TABLES,
    PAPER_VERIFICATION_R2,
    paper_table,
)


class TestInternalConsistency:
    """Checks the paper's own arithmetic (documenting the one slip)."""

    def test_ppw_columns_recompute(self):
        """Each published PPW is GFLOPS/W of the same row (4 d.p.)."""
        for server, rows in PAPER_TABLES.items():
            for row in rows:
                if row.watts == 0:
                    continue
                assert row.ppw == pytest.approx(
                    row.gflops / row.watts, abs=6e-4
                ), (server, row.label)

    def test_opteron_and_4870_scores_are_sum_over_ten(self):
        for server in ("Opteron-8347", "Xeon-4870"):
            total = sum(r.ppw for r in PAPER_TABLES[server])
            assert PAPER_SCORES[server] == pytest.approx(total / 10, abs=2e-4)

    def test_e5462_score_is_the_sum_not_sum_over_ten(self):
        """The documented paper inconsistency: Table IV prints the sum."""
        total = sum(r.ppw for r in PAPER_TABLES["Xeon-E5462"])
        assert PAPER_SCORES["Xeon-E5462"] == pytest.approx(total, abs=2e-3)
        assert PAPER_SCORES["Xeon-E5462"] != pytest.approx(total / 10, rel=0.5)

    def test_green500_values_match_hpl_full_rows(self):
        """Section V-C3's Green500 numbers are the HPL P<full> Mf PPWs."""
        full_rows = {
            "Xeon-E5462": "HPL P4 Mf",
            "Opteron-8347": "HPL P16 Mf",
            "Xeon-4870": "HPL P40 Mf",
        }
        for server, label in full_rows.items():
            row = next(
                r for r in PAPER_TABLES[server] if r.label == label
            )
            assert PAPER_GREEN500_PPW[server] == pytest.approx(
                row.ppw, abs=5e-4
            )

    def test_every_table_has_ten_rows(self):
        for rows in PAPER_TABLES.values():
            assert len(rows) == 10

    def test_regression_summary_multiple_r_squares_to_r_square(self):
        s = PAPER_REGRESSION_SUMMARY
        assert s["multiple_r"] ** 2 == pytest.approx(s["r_square"], abs=1e-6)

    def test_coefficient_count(self):
        assert len(PAPER_REGRESSION_COEFFICIENTS) == 7  # b1..b6 + C

    def test_verification_classes(self):
        assert set(PAPER_VERIFICATION_R2) == {"B", "C"}
        assert PAPER_VERIFICATION_R2["B"] > PAPER_VERIFICATION_R2["C"] > 0.5


class TestLookup:
    def test_paper_table_lookup(self):
        assert paper_table("Xeon-4870")[0].label == "Idle"

    def test_unknown_server(self):
        with pytest.raises(ConfigurationError):
            paper_table("Cray-1")

    def test_spec_scores_cover_all_servers(self):
        assert set(PAPER_SPECPOWER_SCORES) == set(PAPER_TABLES)
