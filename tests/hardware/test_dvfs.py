"""P-state ladders and coefficient scaling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.dvfs import (
    DEFAULT_DVFS_RATIOS,
    DvfsSpec,
    scale_coefficients,
)
from repro.hardware.power import PowerCoefficients
from repro.hardware.technode import TECH_22NM, TECH_65NM, TECH_NODES

COEFFS = PowerCoefficients(
    p_idle=150.0,
    chip_uncore=10.0,
    shared_sqrt=6.0,
    core_active=3.0,
    core_intensity=15.0,
    mem_dyn=1.0,
    comm=2.0,
)


class TestLadderValidation:
    def test_default_ladder_fits_every_node(self):
        """The default ladder's deepest step clears even the 22nm floor."""
        for node in TECH_NODES.values():
            spec = DvfsSpec(tech=node, ratios=DEFAULT_DVFS_RATIOS)
            assert spec.n_pstates == 4

    def test_nominal_must_lead(self):
        with pytest.raises(ConfigurationError):
            DvfsSpec(tech=TECH_65NM, ratios=(0.9, 0.8))

    def test_strictly_decreasing(self):
        with pytest.raises(ConfigurationError):
            DvfsSpec(tech=TECH_65NM, ratios=(1.0, 0.8, 0.8))

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsSpec(tech=TECH_65NM, ratios=())

    def test_ratio_below_window_rejected(self):
        # 22nm bottoms out near 0.69x; 0.5x is unreachable silicon.
        with pytest.raises(ConfigurationError):
            DvfsSpec(tech=TECH_22NM, ratios=(1.0, 0.5))

    def test_idle_chip_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            DvfsSpec(tech=TECH_65NM, idle_chip_fraction=1.5)

    def test_validate_pstate(self):
        spec = DvfsSpec(tech=TECH_65NM)
        spec.validate_pstate(0)
        spec.validate_pstate(spec.n_pstates - 1)
        with pytest.raises(ConfigurationError):
            spec.validate_pstate(spec.n_pstates)
        with pytest.raises(ConfigurationError):
            spec.validate_pstate(-1)


class TestPStateResolution:
    def test_ladder_frequencies(self):
        spec = DvfsSpec(tech=TECH_65NM)
        states = spec.pstates(2800.0)
        assert [s.index for s in states] == [0, 1, 2, 3]
        for state, ratio in zip(states, DEFAULT_DVFS_RATIOS):
            assert state.freq_ratio == ratio
            assert state.frequency_mhz == pytest.approx(2800.0 * ratio)

    def test_nominal_point(self):
        state = DvfsSpec(tech=TECH_65NM).pstate(0, 2800.0)
        assert state.voltage_v == pytest.approx(
            TECH_65NM.vdd_nominal_v, abs=1e-9
        )
        assert state.dynamic_scale == pytest.approx(1.0, abs=1e-9)
        assert state.static_scale == pytest.approx(1.0, abs=1e-9)

    def test_voltage_and_scales_fall_down_the_ladder(self):
        states = DvfsSpec(tech=TECH_65NM).pstates(2800.0)
        for a, b in zip(states, states[1:]):
            assert b.voltage_v < a.voltage_v
            assert b.dynamic_scale < a.dynamic_scale
            assert b.static_scale < a.static_scale


class TestScaleCoefficients:
    def test_p0_is_the_identity(self):
        """Nominal returns the very same object — no arithmetic at all."""
        spec = DvfsSpec(tech=TECH_65NM)
        assert scale_coefficients(COEFFS, spec, 0) is COEFFS

    def test_chip_dynamic_terms_follow_cv2f(self):
        spec = DvfsSpec(tech=TECH_65NM)
        ratio = spec.ratios[2]
        dyn = spec.tech.dynamic_power_scale(ratio)
        scaled = scale_coefficients(COEFFS, spec, 2)
        for term in (
            "chip_uncore", "shared_sqrt", "core_active",
            "core_intensity", "comm",
        ):
            assert getattr(scaled, term) == pytest.approx(
                getattr(COEFFS, term) * dyn
            )

    def test_memory_rail_untouched(self):
        spec = DvfsSpec(tech=TECH_65NM)
        scaled = scale_coefficients(COEFFS, spec, 3)
        assert scaled.mem_dyn == COEFFS.mem_dyn

    def test_idle_blends_chip_static_with_platform_floor(self):
        spec = DvfsSpec(tech=TECH_65NM, idle_chip_fraction=0.35)
        ratio = spec.ratios[1]
        static = spec.tech.static_power_scale(ratio)
        scaled = scale_coefficients(COEFFS, spec, 1)
        assert scaled.p_idle == pytest.approx(
            COEFFS.p_idle * (0.65 + 0.35 * static)
        )
        # The platform floor never scales: idle cannot fall below it.
        assert scaled.p_idle > COEFFS.p_idle * 0.65

    def test_every_term_monotone_down_the_ladder(self):
        spec = DvfsSpec(tech=TECH_65NM)
        previous = COEFFS
        for p in range(1, spec.n_pstates):
            scaled = scale_coefficients(COEFFS, spec, p)
            assert scaled.p_idle < previous.p_idle
            assert scaled.core_active < previous.core_active
            previous = scaled

    def test_out_of_range_pstate_rejected(self):
        spec = DvfsSpec(tech=TECH_65NM)
        with pytest.raises(ConfigurationError):
            scale_coefficients(COEFFS, spec, spec.n_pstates)
