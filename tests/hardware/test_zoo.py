"""The heterogeneous server zoo registry."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.calibration import calibrated_power_model
from repro.hardware.specs import BUILTIN_SERVERS, get_server
from repro.hardware.zoo import (
    ZOO_SERVERS,
    get_zoo_server,
    resolve_server,
    zoo_entries,
)


class TestRegistry:
    def test_at_least_eight_servers(self):
        assert len(ZOO_SERVERS) >= 8

    def test_disjoint_from_builtins(self):
        assert not set(ZOO_SERVERS) & set(BUILTIN_SERVERS)

    def test_entries_carry_provenance(self):
        for entry in zoo_entries():
            assert entry.summary
            assert entry.name == entry.spec.name

    def test_covers_every_heterogeneous_core_type(self):
        core_types = {s.processor.core_type for s in ZOO_SERVERS.values()}
        assert {"ooo-cpu", "io-cpu", "gpu-simd", "mic"} <= core_types

    def test_every_server_has_a_pstate_ladder(self):
        for spec in ZOO_SERVERS.values():
            assert spec.n_pstates >= 2
            assert spec.pstate == 0  # registry entries sit at nominal


class TestLookup:
    def test_case_insensitive(self):
        assert get_zoo_server("atom-c2750").name == "Atom-C2750"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_zoo_server("Cray-1")

    def test_resolve_prefers_builtins(self):
        assert resolve_server("Xeon-E5462") is get_server("Xeon-E5462")

    def test_resolve_falls_through_to_zoo(self):
        assert resolve_server("Tesla-K20-Node").name == "Tesla-K20-Node"

    def test_resolve_unknown_names_both_worlds(self):
        with pytest.raises(ConfigurationError, match="zoo"):
            resolve_server("Cray-1")


class TestDvfsVariants:
    """The -DVFS servers are the builtins plus a ladder, nothing else."""

    @pytest.mark.parametrize("base", sorted(BUILTIN_SERVERS))
    def test_same_silicon_at_nominal(self, base):
        builtin = get_server(base)
        variant = get_zoo_server(f"{base}-DVFS")
        assert variant.chips == builtin.chips
        assert variant.memory == builtin.memory
        assert variant.processor.frequency_mhz == builtin.processor.frequency_mhz
        assert variant.gflops_peak == builtin.gflops_peak

    @pytest.mark.parametrize("base", sorted(BUILTIN_SERVERS))
    def test_p0_coefficients_are_the_paper_fit(self, base):
        builtin_c = calibrated_power_model(get_server(base)).coefficients
        variant_c = calibrated_power_model(
            get_zoo_server(f"{base}-DVFS")
        ).coefficients
        assert variant_c == builtin_c


class TestDerivedPower:
    def test_shrink_is_strictly_cooler(self):
        base = calibrated_power_model(get_server("Xeon-4870")).coefficients
        shrunk = calibrated_power_model(
            get_zoo_server("Xeon-4870-22nm")
        ).coefficients
        assert shrunk.p_idle < base.p_idle
        # Compare the terms the Xeon-4870 fit actually uses (the least-
        # squares fit zeroes core_active/chip_uncore for this server).
        assert shrunk.shared_sqrt < base.shared_sqrt
        assert shrunk.core_intensity < base.core_intensity

    def test_throttled_coefficients_below_nominal(self):
        for spec in ZOO_SERVERS.values():
            nominal = calibrated_power_model(spec).coefficients
            deepest = calibrated_power_model(
                spec.at_pstate(spec.n_pstates - 1)
            ).coefficients
            assert deepest.p_idle < nominal.p_idle
            assert deepest.core_intensity < nominal.core_intensity

    def test_microserver_idles_below_big_iron(self):
        atom = calibrated_power_model(get_zoo_server("Atom-C2750"))
        xeon = calibrated_power_model(get_zoo_server("Xeon-E5-2658"))
        assert atom.coefficients.p_idle < xeon.coefficients.p_idle


class TestPstatePinning:
    def test_effective_frequency_follows_the_ladder(self):
        spec = get_zoo_server("Xeon-E5-2658")
        for p in range(spec.n_pstates):
            pinned = spec.at_pstate(p)
            ratio = spec.processor.frequency_ratio_at(p)
            assert pinned.effective_frequency_mhz == pytest.approx(
                spec.processor.frequency_mhz * ratio
            )
            assert pinned.gflops_peak == pytest.approx(
                spec.gflops_peak * ratio
            )

    def test_at_pstate_same_point_is_identity(self):
        spec = get_zoo_server("Xeon-E5-2658")
        assert spec.at_pstate(0) is spec

    def test_base_spec_unpins(self):
        spec = get_zoo_server("Xeon-E5-2658").at_pstate(2)
        assert spec.base_spec().pstate == 0

    def test_pstate_beyond_ladder_rejected(self):
        spec = get_zoo_server("Tesla-K20-Node")  # 3-step ladder
        with pytest.raises(ConfigurationError):
            spec.at_pstate(spec.n_pstates)

    def test_builtins_have_single_implicit_pstate(self):
        builtin = get_server("Xeon-E5462")
        assert builtin.n_pstates == 1
        assert builtin.frequency_ratio == 1.0
        with pytest.raises(ConfigurationError):
            builtin.at_pstate(1)
