"""Technology nodes and the alpha-power DVFS law."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.technode import (
    TECH_22NM,
    TECH_32NM,
    TECH_45NM,
    TECH_65NM,
    TECH_NODES,
    TechNodeSpec,
    get_tech_node,
)

ALL_NODES = (TECH_65NM, TECH_45NM, TECH_32NM, TECH_22NM)


class TestRegistry:
    def test_four_generations(self):
        assert set(TECH_NODES) == {"65nm", "45nm", "32nm", "22nm"}

    def test_lookup_case_insensitive(self):
        assert get_tech_node("32NM") is TECH_32NM

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            get_tech_node("7nm")

    def test_dennard_slowdown(self):
        """Each shrink trims Vdd, and the DVFS window narrows."""
        for older, newer in zip(ALL_NODES, ALL_NODES[1:]):
            assert newer.vdd_nominal_v < older.vdd_nominal_v
            lo_old, _ = older.dvfs_ratio_bounds()
            lo_new, _ = newer.dvfs_ratio_bounds()
            assert lo_new > lo_old  # the floor rises on newer nodes


class TestAlphaPowerLaw:
    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_nominal_voltage_is_unity_ratio(self, node):
        assert node.frequency_scale(node.vdd_nominal_v) == pytest.approx(1.0)

    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_frequency_monotone_in_voltage(self, node):
        lo, hi = node.vdd_min_v, node.vdd_max_v
        voltages = [lo + (hi - lo) * i / 10 for i in range(11)]
        scales = [node.frequency_scale(v) for v in voltages]
        assert scales == sorted(scales)

    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_bounds_span_nominal(self, node):
        lo, hi = node.dvfs_ratio_bounds()
        assert lo < 1.0 <= hi

    def test_supply_at_or_below_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            TECH_65NM.frequency_scale(TECH_65NM.vth_v)


class TestVoltageForRatio:
    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_round_trip(self, node):
        lo, hi = node.dvfs_ratio_bounds()
        for ratio in (lo, 0.5 * (lo + 1.0), 1.0, hi):
            vdd = node.voltage_for_ratio(ratio)
            assert node.frequency_scale(vdd) == pytest.approx(ratio, abs=1e-9)

    def test_unity_ratio_recovers_nominal_voltage(self):
        for node in ALL_NODES:
            assert node.voltage_for_ratio(1.0) == pytest.approx(
                node.vdd_nominal_v, abs=1e-9
            )

    def test_outside_window_rejected(self):
        lo, hi = TECH_22NM.dvfs_ratio_bounds()
        for ratio in (lo - 0.01, hi + 0.01):
            with pytest.raises(ConfigurationError):
                TECH_22NM.voltage_for_ratio(ratio)

    def test_deterministic(self):
        a = TECH_45NM.voltage_for_ratio(0.8)
        b = TECH_45NM.voltage_for_ratio(0.8)
        assert a == b  # bisection, not an iterative solver with state


class TestPowerScales:
    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_unity_at_nominal(self, node):
        assert node.dynamic_power_scale(1.0) == pytest.approx(1.0, abs=1e-9)
        assert node.static_power_scale(1.0) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_slower_is_cheaper(self, node):
        lo, _ = node.dvfs_ratio_bounds()
        ratios = [lo, 0.5 * (lo + 1.0), 1.0]
        dyn = [node.dynamic_power_scale(r) for r in ratios]
        static = [node.static_power_scale(r) for r in ratios]
        assert dyn == sorted(dyn)
        assert static == sorted(static)
        assert dyn[0] < 1.0 and static[0] < 1.0

    def test_dynamic_is_cv2f(self):
        """dynamic == ratio x (V/Vnom)^2 by construction."""
        node = TECH_32NM
        ratio = 0.75
        vs = node.voltage_for_ratio(ratio) / node.vdd_nominal_v
        assert node.dynamic_power_scale(ratio) == pytest.approx(
            ratio * vs**2
        )
        assert node.static_power_scale(ratio) == pytest.approx(vs**3)


class TestValidation:
    def test_voltage_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            TechNodeSpec(
                "bad", 32, vdd_nominal_v=0.9, vth_v=0.42,
                vdd_min_v=0.95, vdd_max_v=1.0,
            )

    def test_threshold_must_be_below_floor(self):
        with pytest.raises(ConfigurationError):
            TechNodeSpec(
                "bad", 32, vdd_nominal_v=0.9, vth_v=0.75,
                vdd_min_v=0.70, vdd_max_v=1.0,
            )

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            TechNodeSpec(
                "bad", 32, vdd_nominal_v=0.9, vth_v=0.42,
                vdd_min_v=0.70, vdd_max_v=1.0, alpha=0.5,
            )

    def test_feature_size_positive(self):
        with pytest.raises(ConfigurationError):
            TechNodeSpec(
                "bad", 0, vdd_nominal_v=0.9, vth_v=0.42,
                vdd_min_v=0.70, vdd_max_v=1.0,
            )

    def test_name_required(self):
        with pytest.raises(ConfigurationError):
            TechNodeSpec(
                "", 32, vdd_nominal_v=0.9, vth_v=0.42,
                vdd_min_v=0.70, vdd_max_v=1.0,
            )
