"""PMU counter synthesis."""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.hardware.cpu import CpuSubsystem
from repro.hardware.memory import MemorySubsystem
from repro.hardware.pmu import REGRESSION_FEATURES, Pmu


def sample_for(server, demand, interval=10.0):
    cpu = CpuSubsystem(server)
    cpu.bind(demand)
    traffic = MemorySubsystem(server).traffic(demand, cpu.placement)
    return Pmu(server).sample(demand, cpu.activity(), traffic, 0.0, interval)


def demand(nprocs=4, **kw):
    base = dict(
        program="t",
        nprocs=nprocs,
        duration_s=100.0,
        gflops=1.0,
        memory_mb=2000.0,
        ipc=0.6,
        mem_intensity=0.5,
    )
    base.update(kw)
    return ResourceDemand(**base)


def test_feature_order_is_the_papers():
    assert REGRESSION_FEATURES == (
        "working_core_num",
        "instruction_num",
        "l2_cache_hit",
        "l3_cache_hit",
        "memory_read_times",
        "memory_write_times",
    )


def test_vector_matches_fields(e5462):
    s = sample_for(e5462, demand())
    vec = s.as_vector()
    assert vec.shape == (6,)
    assert vec[0] == s.working_core_num
    assert vec[1] == s.instruction_num


def test_working_core_num(e5462):
    assert sample_for(e5462, demand(nprocs=3)).working_core_num == 3


def test_instructions_scale_with_interval(e5462):
    short = sample_for(e5462, demand(), interval=10.0)
    long = sample_for(e5462, demand(), interval=20.0)
    assert long.instruction_num == pytest.approx(2 * short.instruction_num)


def test_no_l3_counter_on_e5462(e5462):
    """The Xeon-E5462 has no L3, so X4 must be zero there."""
    assert sample_for(e5462, demand()).l3_cache_hit == 0.0


def test_l3_counter_on_4870(x4870):
    assert sample_for(x4870, demand()).l3_cache_hit > 0.0


def test_cache_cascade_conservation(x4870):
    """L2 hits can never exceed the accesses that reached L2."""
    s = sample_for(x4870, demand())
    assert s.l2_cache_hit >= 0
    assert s.l3_cache_hit >= 0
    # L3 sees only L2 misses, so L3 hits < L2 accesses - L2 hits is
    # guaranteed by construction; check sanity against instructions.
    assert s.l2_cache_hit < s.instruction_num


def test_memory_counters_track_traffic(e5462):
    low = sample_for(e5462, demand(mem_intensity=0.1))
    high = sample_for(e5462, demand(mem_intensity=0.8))
    assert high.memory_read_times > low.memory_read_times


def test_idle_sample_is_quiet(e5462):
    s = sample_for(e5462, ResourceDemand.idle())
    assert s.instruction_num == 0.0
    assert s.memory_read_times == 0.0


def test_hit_rates_degrade_with_footprint(x4870):
    pmu = Pmu(x4870)
    small = pmu.hit_rates(demand(memory_mb=100.0))
    large = pmu.hit_rates(demand(memory_mb=100_000.0))
    assert large[1] <= small[1]
    assert large[2] <= small[2]


def test_hit_rates_idle(x4870):
    assert Pmu(x4870).hit_rates(ResourceDemand.idle()) == (1.0, 1.0, 1.0)
