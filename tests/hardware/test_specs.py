"""Server specifications (Table I)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.specs import (
    BUILTIN_SERVERS,
    CacheLevelSpec,
    MemorySpec,
    OPTERON_8347,
    ProcessorSpec,
    ServerSpec,
    XEON_4870,
    XEON_E5462,
    get_server,
)


class TestTableI:
    """The three built-in servers match the paper's Table I."""

    def test_e5462_topology(self):
        assert XEON_E5462.chips == 1
        assert XEON_E5462.cores_per_chip == 4
        assert XEON_E5462.total_cores == 4
        assert XEON_E5462.processor.frequency_mhz == 2800

    def test_opteron_topology(self):
        assert OPTERON_8347.chips == 4
        assert OPTERON_8347.cores_per_chip == 4
        assert OPTERON_8347.total_cores == 16
        assert OPTERON_8347.processor.frequency_mhz == 1900

    def test_4870_topology(self):
        assert XEON_4870.chips == 4
        assert XEON_4870.cores_per_chip == 10
        assert XEON_4870.total_cores == 40
        assert XEON_4870.processor.frequency_mhz == 2400

    def test_peak_performance_section_ii(self):
        """Section II quotes 44.8 / 121.6 / 384 GFLOPS peaks."""
        assert XEON_E5462.gflops_peak == pytest.approx(44.8)
        assert OPTERON_8347.gflops_peak == pytest.approx(121.6)
        assert XEON_4870.gflops_peak == pytest.approx(384.0)

    def test_per_core_peaks(self):
        assert XEON_E5462.gflops_per_core == pytest.approx(11.2)
        assert OPTERON_8347.gflops_per_core == pytest.approx(7.6)
        assert XEON_4870.gflops_per_core == pytest.approx(9.6)

    def test_memory_sizes(self):
        assert XEON_E5462.memory.total_gb == 8
        assert OPTERON_8347.memory.total_gb == 32
        assert XEON_4870.memory.total_gb == 128

    def test_cache_hierarchies(self):
        assert XEON_E5462.processor.l3 is None
        assert OPTERON_8347.processor.l3 is not None
        assert XEON_4870.processor.l3.size_kb == 30720

    def test_half_cores(self):
        assert XEON_E5462.half_cores() == 2
        assert OPTERON_8347.half_cores() == 8
        assert XEON_4870.half_cores() == 20


class TestLookup:
    def test_get_server_case_insensitive(self):
        assert get_server("xeon-e5462") is XEON_E5462

    def test_get_server_unknown(self):
        with pytest.raises(ConfigurationError):
            get_server("cray-1")

    def test_builtin_registry_complete(self):
        assert set(BUILTIN_SERVERS) == {
            "Xeon-E5462",
            "Opteron-8347",
            "Xeon-4870",
        }


class TestValidation:
    def test_cache_rejects_non_integral_sets(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec(level=2, size_kb=100, associativity=24)

    def test_cache_rejects_bad_level(self):
        with pytest.raises(ConfigurationError):
            CacheLevelSpec(level=4, size_kb=256, associativity=8)

    def test_cache_n_sets(self):
        spec = CacheLevelSpec(level=2, size_kb=256, associativity=8)
        assert spec.n_sets == 256 * 1024 // (8 * 64)

    def test_cache_total_per_chip(self):
        spec = CacheLevelSpec(
            level=1, size_kb=32, associativity=8, instances_per_chip=4
        )
        assert spec.total_kb_per_chip == 128

    def test_memory_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            MemorySpec(total_gb=0)

    def test_processor_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec(model="x", frequency_mhz=1000, cores=0, flops_per_cycle=4)

    def test_server_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(
                name="x",
                processor=XEON_E5462.processor,
                chips=1,
                memory=XEON_E5462.memory,
                hpl_efficiency=1.5,
            )

    def test_validate_core_count_bounds(self):
        XEON_E5462.validate_core_count(1)
        XEON_E5462.validate_core_count(4)
        with pytest.raises(ConfigurationError):
            XEON_E5462.validate_core_count(0)
        with pytest.raises(ConfigurationError):
            XEON_E5462.validate_core_count(5)


class TestHplProblemSize:
    def test_full_memory_fits_installed(self):
        n = XEON_E5462.hpl_problem_size(1.0)
        assert 8 * n * n <= 8 * 1024**3

    def test_scales_with_sqrt_of_fraction(self):
        n_full = XEON_E5462.hpl_problem_size(1.0)
        n_quarter = XEON_E5462.hpl_problem_size(0.25)
        assert n_quarter == pytest.approx(n_full / 2, rel=0.01)

    def test_rejects_zero_fraction(self):
        with pytest.raises(ConfigurationError):
            XEON_E5462.hpl_problem_size(0.0)


class TestCacheLevelValidation:
    """Degenerate cache topologies must be rejected at construction."""

    def test_zero_instances_per_chip(self):
        with pytest.raises(ConfigurationError, match="instances_per_chip"):
            CacheLevelSpec(1, 32, 8, instances_per_chip=0)

    def test_negative_instances_per_chip(self):
        with pytest.raises(ConfigurationError, match="instances_per_chip"):
            CacheLevelSpec(2, 256, 8, instances_per_chip=-4)

    def test_single_instance_is_the_default(self):
        spec = CacheLevelSpec(3, 30720, 30)
        assert spec.instances_per_chip == 1
        assert spec.total_kb_per_chip == 30720

    def test_per_chip_capacity_scales_with_instances(self):
        spec = CacheLevelSpec(1, 32, 8, instances_per_chip=10)
        assert spec.total_kb_per_chip == 320

    def test_non_integral_set_count(self):
        # 1 KB across 8 ways of 256 B lines would need half a set.
        with pytest.raises(ConfigurationError, match="set count"):
            CacheLevelSpec(1, 1, 8, line_bytes=256)

    def test_line_bytes_power_of_two(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            CacheLevelSpec(1, 32, 8, line_bytes=48)
