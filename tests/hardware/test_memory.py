"""Memory subsystem: capacity checks and DRAM traffic."""

import pytest

from repro.demand import ResourceDemand
from repro.errors import InsufficientMemoryError
from repro.hardware.memory import OS_BASELINE_MB, MemorySubsystem
from repro.hardware.topology import place_processes


def demand(nprocs=4, memory_mb=1000.0, mem_intensity=0.5, util=1.0):
    return ResourceDemand(
        program="t",
        nprocs=nprocs,
        duration_s=10.0,
        gflops=1.0,
        memory_mb=memory_mb,
        mem_intensity=mem_intensity,
        cpu_util=util,
    )


class TestCapacity:
    def test_usable_excludes_os(self, e5462):
        mem = MemorySubsystem(e5462)
        assert mem.usable_mb == pytest.approx(8 * 1024 - OS_BASELINE_MB)

    def test_oversized_workload_rejected(self, e5462):
        mem = MemorySubsystem(e5462)
        with pytest.raises(InsufficientMemoryError):
            mem.check_fit(demand(memory_mb=8000.0))

    def test_cg_class_c_paper_case(self, e5462, opteron):
        """CG.C (8.4 GB) fails on the 8 GB server, runs on the 32 GB one."""
        big = demand(memory_mb=8400.0)
        with pytest.raises(InsufficientMemoryError):
            MemorySubsystem(e5462).check_fit(big)
        MemorySubsystem(opteron).check_fit(big)  # no raise


class TestTraffic:
    def test_traffic_scales_with_cores(self, x4870):
        mem = MemorySubsystem(x4870)
        t1 = mem.traffic(demand(nprocs=1), place_processes(x4870, 1))
        t4 = mem.traffic(demand(nprocs=4), place_processes(x4870, 4))
        assert t4.bandwidth_gbs == pytest.approx(4 * t1.bandwidth_gbs)

    def test_bandwidth_saturates(self, e5462):
        mem = MemorySubsystem(e5462)
        full = demand(nprocs=4, mem_intensity=1.0)
        t = mem.traffic(full, place_processes(e5462, 4))
        capacity = e5462.memory.bandwidth_gbs * e5462.chips
        assert t.bandwidth_gbs <= capacity + 1e-9

    def test_saturation_flag(self, e5462):
        mem = MemorySubsystem(e5462)
        # 4 cores each demanding the full per-core share exactly fills the
        # socket; it takes intensity 1.0 on every core to reach the cap.
        t = mem.traffic(demand(nprocs=4, mem_intensity=1.0), place_processes(e5462, 4))
        assert not t.saturated  # exactly at cap, not above
        assert t.bandwidth_gbs == pytest.approx(e5462.memory.bandwidth_gbs)

    def test_read_write_split(self, e5462):
        mem = MemorySubsystem(e5462)
        d = demand().with_(read_fraction=0.75)
        t = mem.traffic(d, place_processes(e5462, 4))
        assert t.reads_per_s == pytest.approx(3 * t.writes_per_s)
        assert t.accesses_per_s == pytest.approx(t.reads_per_s + t.writes_per_s)

    def test_resident_includes_os(self, e5462):
        mem = MemorySubsystem(e5462)
        t = mem.traffic(demand(memory_mb=1000.0), place_processes(e5462, 4))
        assert t.resident_mb == pytest.approx(1000.0 + OS_BASELINE_MB)

    def test_idle_traffic_zero(self, e5462):
        mem = MemorySubsystem(e5462)
        from repro.hardware.topology import Placement

        t = mem.traffic(
            ResourceDemand.idle(), Placement(nprocs=0, cores_per_chip_used=(0,))
        )
        assert t.bandwidth_gbs == 0.0
        assert t.accesses_per_s == 0.0

    def test_utilisation_scales_traffic(self, e5462):
        mem = MemorySubsystem(e5462)
        full = mem.traffic(demand(util=1.0), place_processes(e5462, 4))
        half = mem.traffic(demand(util=0.5), place_processes(e5462, 4))
        assert half.bandwidth_gbs == pytest.approx(0.5 * full.bandwidth_gbs)


class TestHplProblemSize:
    def test_fits_usable_memory(self, any_server):
        mem = MemorySubsystem(any_server)
        n = mem.hpl_problem_size(0.95)
        footprint_mb = 8 * n * n / 1024**2
        assert footprint_mb <= mem.usable_mb

    def test_half_is_sqrt_half(self, e5462):
        mem = MemorySubsystem(e5462)
        assert mem.hpl_problem_size(0.5) == pytest.approx(
            mem.hpl_problem_size(1.0) / 2**0.5, rel=0.01
        )

    def test_rejects_bad_fraction(self, e5462):
        with pytest.raises(InsufficientMemoryError):
            MemorySubsystem(e5462).hpl_problem_size(0.0)
