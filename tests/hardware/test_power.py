"""Component power model."""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuSubsystem
from repro.hardware.memory import MemorySubsystem
from repro.hardware.power import (
    DELTA_FEATURES,
    INTENSITY_WEIGHTS,
    PowerCoefficients,
    SystemPowerModel,
    compute_intensity,
    dynamic_feature_vector,
)


def coeffs(**overrides):
    base = dict(
        p_idle=100.0,
        chip_uncore=5.0,
        shared_sqrt=4.0,
        core_active=1.0,
        core_intensity=20.0,
        mem_dyn=0.15,
        comm=2.5,
    )
    base.update(overrides)
    return PowerCoefficients(**base)


def power_of(server, demand, c=None, factor=1.0):
    cpu = CpuSubsystem(server)
    cpu.bind(demand)
    traffic = MemorySubsystem(server).traffic(demand, cpu.placement)
    model = SystemPowerModel(server, c or coeffs())
    return model.power_watts(demand, cpu.activity(), traffic, factor)


def demand(nprocs=4, **kw):
    base = dict(
        program="t",
        nprocs=nprocs,
        duration_s=10.0,
        gflops=1.0,
        memory_mb=500.0,
        ipc=0.6,
        fp_intensity=0.5,
        mem_intensity=0.4,
    )
    base.update(kw)
    return ResourceDemand(**base)


class TestCoefficients:
    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            coeffs(core_intensity=-1.0)

    def test_rejects_zero_idle(self):
        with pytest.raises(ConfigurationError):
            coeffs(p_idle=0.0)

    def test_delta_vector_order(self):
        c = coeffs()
        vec = c.as_delta_vector()
        assert vec.shape == (len(DELTA_FEATURES),)
        assert vec[0] == c.chip_uncore
        assert vec[-1] == c.comm


class TestIntensity:
    def test_weights_sum_to_one(self):
        assert sum(INTENSITY_WEIGHTS) == pytest.approx(1.0)

    def test_intensity_bounds(self):
        lo = demand(ipc=0.0, fp_intensity=0.0, mem_intensity=0.0)
        hi = demand(ipc=1.0, fp_intensity=1.0, mem_intensity=1.0)
        assert compute_intensity(lo) == 0.0
        assert compute_intensity(hi) == pytest.approx(1.0)

    def test_fp_dominates(self):
        """FP units are the biggest per-core power lever."""
        w_ipc, w_fp, w_mem = INTENSITY_WEIGHTS
        assert w_fp > w_ipc
        assert w_fp > w_mem


class TestPower:
    def test_idle_is_exactly_p_idle(self, e5462):
        assert power_of(e5462, ResourceDemand.idle()) == pytest.approx(100.0)

    def test_power_increases_with_cores(self, e5462):
        powers = [power_of(e5462, demand(nprocs=n)) for n in (1, 2, 4)]
        assert powers[0] < powers[1] < powers[2]

    def test_power_increases_with_intensity(self, e5462):
        low = power_of(e5462, demand(fp_intensity=0.1))
        high = power_of(e5462, demand(fp_intensity=0.9))
        assert high > low

    def test_uncore_steps_with_chips(self, opteron):
        # 4 procs on one chip vs 5 procs on two chips: the 5th core also
        # wakes a second uncore.
        p4 = power_of(opteron, demand(nprocs=4))
        p5 = power_of(opteron, demand(nprocs=5))
        assert p5 - p4 > coeffs().chip_uncore * 0.9

    def test_idiosyncrasy_scales_dynamic_only(self, e5462):
        base = power_of(e5462, demand())
        boosted = power_of(e5462, demand(), factor=1.5)
        dynamic = base - 100.0
        assert boosted == pytest.approx(100.0 + 1.5 * dynamic)

    def test_idiosyncrasy_no_effect_on_idle(self, e5462):
        assert power_of(e5462, ResourceDemand.idle(), factor=1.5) == pytest.approx(
            100.0
        )

    def test_rejects_nonpositive_factor(self, e5462):
        with pytest.raises(ConfigurationError):
            power_of(e5462, demand(), factor=0.0)

    def test_comm_term(self, e5462):
        quiet = power_of(e5462, demand(comm_intensity=0.0))
        chatty = power_of(e5462, demand(comm_intensity=1.0))
        assert chatty - quiet == pytest.approx(coeffs().comm * 4)


class TestFeatureVector:
    def test_matches_manual_dot_product(self, e5462):
        d = demand()
        cpu = CpuSubsystem(e5462)
        cpu.bind(d)
        traffic = MemorySubsystem(e5462).traffic(d, cpu.placement)
        vec = dynamic_feature_vector(d, cpu.activity(), traffic)
        c = coeffs()
        expected = c.p_idle + float(vec @ c.as_delta_vector())
        assert power_of(e5462, d) == pytest.approx(expected)

    def test_feature_vector_length(self, e5462):
        d = demand()
        cpu = CpuSubsystem(e5462)
        cpu.bind(d)
        traffic = MemorySubsystem(e5462).traffic(d, cpu.placement)
        assert dynamic_feature_vector(d, cpu.activity(), traffic).shape == (
            len(DELTA_FEATURES),
        )
