"""Process placement."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.topology import Placement, place_processes


class TestCompact:
    def test_fills_first_chip_first(self, opteron):
        p = place_processes(opteron, 4, "compact")
        assert p.cores_per_chip_used == (4, 0, 0, 0)
        assert p.active_chips == 1

    def test_spills_to_second_chip(self, opteron):
        p = place_processes(opteron, 6, "compact")
        assert p.cores_per_chip_used == (4, 2, 0, 0)
        assert p.active_chips == 2

    def test_full_machine(self, opteron):
        p = place_processes(opteron, 16, "compact")
        assert p.cores_per_chip_used == (4, 4, 4, 4)
        assert p.active_chips == 4

    def test_single_chip_server(self, e5462):
        p = place_processes(e5462, 3, "compact")
        assert p.cores_per_chip_used == (3,)

    def test_4870_twenty_cores_two_chips(self, x4870):
        p = place_processes(x4870, 20, "compact")
        assert p.active_chips == 2


class TestScatter:
    def test_round_robin(self, opteron):
        p = place_processes(opteron, 6, "scatter")
        assert p.cores_per_chip_used == (2, 2, 1, 1)
        assert p.active_chips == 4

    def test_scatter_wakes_more_chips_than_compact(self, opteron):
        compact = place_processes(opteron, 4, "compact")
        scatter = place_processes(opteron, 4, "scatter")
        assert scatter.active_chips > compact.active_chips


class TestValidation:
    def test_active_cores_equals_nprocs(self, any_server):
        for n in (1, any_server.half_cores(), any_server.total_cores):
            p = place_processes(any_server, n)
            assert p.active_cores == n

    def test_rejects_zero(self, e5462):
        with pytest.raises(ConfigurationError):
            place_processes(e5462, 0)

    def test_rejects_oversubscription(self, e5462):
        with pytest.raises(ConfigurationError):
            place_processes(e5462, 5)

    def test_rejects_unknown_policy(self, e5462):
        with pytest.raises(ConfigurationError):
            place_processes(e5462, 2, "spiral")

    def test_placement_dataclass(self):
        p = Placement(nprocs=3, cores_per_chip_used=(2, 1))
        assert p.active_cores == 3
        assert p.active_chips == 2
        assert p.max_chip_load == 2
