"""Trace-driven cache simulator and the analytic hit-rate model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
    analytic_hit_rate,
    hierarchy_for_processor,
)
from repro.hardware.specs import XEON_4870, XEON_E5462


def small_cache(size=1024, assoc=2, line=64):
    return CacheLevel(CacheConfig(size, assoc, line))


class TestCacheLevel:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(np.array([0]))
        second = cache.access(np.array([0]))
        assert not first[0]
        assert second[0]

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(np.array([0]))
        assert cache.access(np.array([63]))[0]  # same 64 B line
        assert not cache.access(np.array([64]))[0]  # next line

    def test_lru_eviction(self):
        # 2-way, so a third distinct line in one set evicts the LRU.
        cache = small_cache(size=1024, assoc=2)
        n_sets = cache.config.n_sets
        stride = n_sets * 64  # same set, different tags
        cache.access(np.array([0, stride, 2 * stride]))
        # Line 0 was LRU and must be gone; 2*stride resident.
        assert not cache.access(np.array([0]))[0]
        assert cache.access(np.array([2 * stride]))[0]

    def test_lru_refresh_on_hit(self):
        cache = small_cache(size=1024, assoc=2)
        stride = cache.config.n_sets * 64
        cache.access(np.array([0, stride]))
        cache.access(np.array([0]))  # refresh 0 to MRU
        cache.access(np.array([2 * stride]))  # evicts `stride`, not 0
        assert cache.access(np.array([0]))[0]
        assert not cache.access(np.array([stride]))[0]

    def test_hit_rate_counters(self):
        cache = small_cache()
        cache.access(np.array([0, 0, 0, 0]))
        assert cache.hits == 3
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.75)

    def test_reset(self):
        cache = small_cache()
        cache.access(np.array([0]))
        cache.reset()
        assert cache.hits == 0
        assert not cache.access(np.array([0]))[0]

    def test_working_set_within_capacity_all_hits_second_pass(self):
        cache = small_cache(size=8192, assoc=8)
        addrs = np.arange(0, 4096, 64)
        cache.access(addrs)
        assert cache.access(addrs).all()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(0, 2)
        with pytest.raises(ConfigurationError):
            CacheConfig(1024, 2, line_bytes=48)
        with pytest.raises(ConfigurationError):
            CacheConfig(1000, 3, line_bytes=64)


class TestHierarchy:
    def test_miss_cascades_to_next_level(self):
        h = CacheHierarchy(
            [small_cache(1024, 2), small_cache(16384, 8)]
        )
        addrs = np.arange(0, 8192, 64)
        first = h.simulate(addrs)
        assert first.hits_per_level == (0, 0)
        assert first.dram_accesses == addrs.shape[0]
        second = h.simulate(addrs)
        # Working set exceeds L1 but fits L2: second pass hits mostly L2.
        assert second.hits_per_level[1] > 0
        assert second.dram_accesses == 0

    def test_hit_rates_are_local(self):
        h = CacheHierarchy([small_cache(65536, 8)])
        addrs = np.zeros(10, dtype=np.int64)
        result = h.simulate(addrs)
        assert result.hit_rates[0] == pytest.approx(0.9)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([])

    def test_hierarchy_for_processor(self):
        h = hierarchy_for_processor(XEON_4870.processor)
        assert len(h.levels) == 3  # L1d, L2, L3
        h2 = hierarchy_for_processor(XEON_E5462.processor)
        assert len(h2.levels) == 2  # no L3


class TestAnalyticHitRate:
    def test_fits_in_cache(self):
        assert analytic_hit_rate(1.0, 2.0, 0.5) == pytest.approx(0.999)

    def test_pure_random_is_residency_probability(self):
        assert analytic_hit_rate(100.0, 10.0, 0.0) == pytest.approx(0.1)

    def test_locality_floor(self):
        # Fully blocked code keeps hitting regardless of footprint.
        assert analytic_hit_rate(1e6, 1.0, 0.98) >= 0.98

    def test_monotone_in_capacity(self):
        rates = [analytic_hit_rate(100.0, c, 0.5) for c in (1, 10, 50, 100)]
        assert rates == sorted(rates)

    def test_monotone_in_locality(self):
        rates = [analytic_hit_rate(100.0, 5.0, l) for l in (0.0, 0.3, 0.6, 0.9)]
        assert rates == sorted(rates)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analytic_hit_rate(-1.0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            analytic_hit_rate(1.0, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            analytic_hit_rate(1.0, 1.0, 1.0)
