"""Calibration against the paper's published watts."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.hardware.calibration import (
    PAPER_IDLE_WATTS,
    PAPER_POWER_ANCHORS,
    anchor_demand,
    calibrate_server,
    calibrated_power_model,
    default_coefficients,
)
from repro.hardware.specs import (
    MemorySpec,
    ProcessorSpec,
    ServerSpec,
    XEON_4870,
    XEON_E5462,
)


class TestAnchors:
    def test_every_builtin_has_nine_anchors(self):
        for name, anchors in PAPER_POWER_ANCHORS.items():
            assert len(anchors) == 9, name

    def test_idle_watts_match_tables(self):
        assert PAPER_IDLE_WATTS["Xeon-E5462"] == pytest.approx(134.3727)
        assert PAPER_IDLE_WATTS["Opteron-8347"] == pytest.approx(311.5214)
        assert PAPER_IDLE_WATTS["Xeon-4870"] == pytest.approx(642.23)

    def test_anchor_demand_labels(self, e5462):
        anchors = PAPER_POWER_ANCHORS["Xeon-E5462"]
        labels = {anchor_demand(e5462, a).program for a in anchors}
        assert "ep.C.4" in labels
        assert "HPL P4 Mf" in labels
        assert "HPL P2 Mh" in labels

    def test_hpl_anchor_memory_scales_with_fraction(self, e5462):
        anchors = [a for a in PAPER_POWER_ANCHORS["Xeon-E5462"] if a.program == "hpl"]
        mh = next(a for a in anchors if a.memory_fraction == 0.5)
        mf = next(a for a in anchors if a.memory_fraction > 0.5)
        assert anchor_demand(e5462, mf).memory_mb > anchor_demand(
            e5462, mh
        ).memory_mb


class TestFit:
    @pytest.mark.parametrize(
        "name, rms_limit",
        [("Xeon-E5462", 10.0), ("Opteron-8347", 40.0), ("Xeon-4870", 45.0)],
    )
    def test_rms_residual_bounded(self, name, rms_limit):
        from repro.hardware.specs import get_server

        report = calibrate_server(get_server(name))
        assert report.rms_residual_watts < rms_limit

    def test_max_relative_error_bounded(self, any_server):
        report = calibrate_server(any_server)
        assert report.max_relative_error < 0.12

    def test_idle_coefficient_is_published_idle(self, any_server):
        report = calibrate_server(any_server)
        assert report.coefficients.p_idle == pytest.approx(
            PAPER_IDLE_WATTS[any_server.name]
        )

    def test_coefficients_nonnegative(self, any_server):
        c = calibrate_server(any_server).coefficients
        assert np.all(c.as_delta_vector() >= 0)

    def test_unknown_server_without_anchors_raises(self):
        custom = ServerSpec(
            name="Custom-1",
            processor=XEON_E5462.processor,
            chips=2,
            memory=MemorySpec(total_gb=16),
        )
        with pytest.raises(CalibrationError):
            calibrate_server(custom)

    def test_custom_server_with_explicit_anchors(self):
        custom = ServerSpec(
            name="Custom-2",
            processor=XEON_E5462.processor,
            chips=1,
            memory=MemorySpec(total_gb=8),
        )
        report = calibrate_server(
            custom,
            anchors=PAPER_POWER_ANCHORS["Xeon-E5462"],
            idle_watts=PAPER_IDLE_WATTS["Xeon-E5462"],
        )
        assert report.coefficients.p_idle > 0


class TestModelAccess:
    def test_builtin_model_cached(self):
        a = calibrated_power_model(XEON_4870)
        b = calibrated_power_model(XEON_4870)
        assert a is b

    def test_custom_server_gets_defaults(self):
        custom = ServerSpec(
            name="MyBox",
            processor=ProcessorSpec(
                model="Generic", frequency_mhz=2000, cores=8, flops_per_cycle=4
            ),
            chips=2,
            memory=MemorySpec(total_gb=64),
        )
        model = calibrated_power_model(custom)
        assert model.coefficients.p_idle == pytest.approx(
            default_coefficients(custom).p_idle
        )

    def test_default_coefficients_scale_with_size(self):
        small = ServerSpec(
            name="S",
            processor=XEON_E5462.processor,
            chips=1,
            memory=MemorySpec(total_gb=8),
        )
        big = ServerSpec(
            name="B",
            processor=XEON_E5462.processor,
            chips=4,
            memory=MemorySpec(total_gb=128),
        )
        assert (
            default_coefficients(big).p_idle > default_coefficients(small).p_idle
        )


class TestAnchorReproduction:
    """The calibrated model reproduces each published anchor within 12 %."""

    @pytest.mark.parametrize("server_name", list(PAPER_POWER_ANCHORS))
    def test_anchor_watts(self, server_name):
        from repro.hardware.calibration import anchor_demand
        from repro.hardware.cpu import CpuSubsystem
        from repro.hardware.memory import MemorySubsystem
        from repro.hardware.specs import get_server

        server = get_server(server_name)
        model = calibrated_power_model(server)
        cpu = CpuSubsystem(server)
        mem = MemorySubsystem(server)
        for anchor in PAPER_POWER_ANCHORS[server_name]:
            d = anchor_demand(server, anchor)
            cpu.bind(d)
            traffic = mem.traffic(d, cpu.placement)
            predicted = model.power_watts(d, cpu.activity(), traffic)
            assert predicted == pytest.approx(anchor.watts, rel=0.12), (
                f"{server_name} {d.program}"
            )
