"""CPU subsystem activity."""

import pytest

from repro.demand import ResourceDemand
from repro.errors import SimulationError
from repro.hardware.cpu import CpuSubsystem


def demand(nprocs=4, util=1.0, ipc=0.5):
    return ResourceDemand(
        program="t",
        nprocs=nprocs,
        duration_s=10.0,
        gflops=1.0,
        memory_mb=100.0,
        cpu_util=util,
        ipc=ipc,
    )


def test_requires_bind(e5462):
    cpu = CpuSubsystem(e5462)
    with pytest.raises(SimulationError):
        cpu.activity()


def test_activity_counts(e5462):
    cpu = CpuSubsystem(e5462)
    cpu.bind(demand(nprocs=4))
    act = cpu.activity()
    assert act.active_cores == 4
    assert act.active_chips == 1
    assert act.utilisation == 1.0


def test_instruction_rate_scales_with_ipc(e5462):
    cpu = CpuSubsystem(e5462)
    cpu.bind(demand(ipc=0.5))
    low = cpu.activity().instructions_per_s
    cpu.bind(demand(ipc=1.0))
    high = cpu.activity().instructions_per_s
    assert high == pytest.approx(2 * low)


def test_instruction_rate_formula(e5462):
    cpu = CpuSubsystem(e5462)
    cpu.bind(demand(nprocs=2, util=1.0, ipc=1.0))
    act = cpu.activity()
    # 2 cores * 2.8e9 Hz * max IPC 2.0
    assert act.instructions_per_s == pytest.approx(2 * 2.8e9 * 2.0)
    assert act.cycles_per_s == pytest.approx(2 * 2.8e9)


def test_partial_utilisation(e5462):
    cpu = CpuSubsystem(e5462)
    cpu.bind(demand(util=0.5))
    act = cpu.activity()
    assert act.total_utilisation == pytest.approx(2.0)  # 4 cores * 0.5


def test_idle_demand(e5462):
    cpu = CpuSubsystem(e5462)
    cpu.bind(ResourceDemand.idle())
    act = cpu.activity()
    assert act.active_cores == 0
    assert act.active_chips == 0
    assert act.instructions_per_s == 0.0


def test_multichip_activity(opteron):
    cpu = CpuSubsystem(opteron)
    cpu.bind(demand(nprocs=6))
    act = cpu.activity()
    assert act.active_cores == 6
    assert act.active_chips == 2
