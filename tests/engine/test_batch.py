"""Batch engine unit surface: selection, result geometry, error policy."""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.engine import Simulator
from repro.engine.batch import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    BatchEngine,
    BatchResult,
    resolve_engine,
    run_batch,
)
from repro.engine.trace import RunResult
from repro.errors import ConfigurationError, InsufficientMemoryError
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


class TestResolveEngine:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batch")
        assert resolve_engine("serial") == "serial"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "serial")
        assert resolve_engine() == "serial"

    def test_default_is_batch(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine() == DEFAULT_ENGINE == "batch"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "")
        assert resolve_engine() == DEFAULT_ENGINE

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            resolve_engine("gpu")

    def test_unknown_env_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            resolve_engine()

    def test_catalogue(self):
        assert ENGINES == ("serial", "batch")


@pytest.fixture(scope="module")
def batch_result(e5462) -> BatchResult:
    """Two runnable NPB jobs of different durations plus one HPL run."""
    workloads = [
        NpbWorkload("ep", "C", 4),
        NpbWorkload("mg", "C", 2),
        HplWorkload(HplConfig(4, 0.95)),
    ]
    return BatchEngine(Simulator(e5462, seed=2015)).run(workloads)


class TestBatchResult:
    def test_items_align_with_input(self, batch_result):
        assert len(batch_result.items) == 3
        assert all(
            isinstance(item, RunResult) for item in batch_result.items
        )
        assert batch_result.run_indices == (0, 1, 2)

    def test_rows_are_nan_padded_to_longest(self, batch_result):
        n_max = int(batch_result.lengths.max())
        assert batch_result.times_s.shape == (3, n_max)
        for row, length in enumerate(batch_result.lengths):
            valid = batch_result.true_watts[row, :length]
            pad = batch_result.true_watts[row, length:]
            assert not np.isnan(valid).any()
            assert np.isnan(pad).all()

    def test_mask_matches_lengths(self, batch_result):
        mask = batch_result.mask()
        assert mask.shape == batch_result.times_s.shape
        assert np.array_equal(mask.sum(axis=1), batch_result.lengths)

    def test_rows_match_per_run_traces(self, batch_result):
        for row, run in enumerate(batch_result.runs):
            n = int(batch_result.lengths[row])
            assert np.array_equal(
                batch_result.measured_watts[row, :n], run.measured_watts
            )
            assert np.array_equal(
                batch_result.memory_mb[row, :n], run.memory_mb
            )

    def test_n_samples_totals_the_traces(self, batch_result):
        assert batch_result.n_samples == sum(
            run.times_s.size for run in batch_result.runs
        )

    def test_pmu_matrix_stacks_all_runs(self, batch_result):
        matrix = batch_result.pmu_matrix()
        assert matrix.shape == (
            sum(len(run.pmu_samples) for run in batch_result.runs),
            6,
        )

    def test_server_and_seed_recorded(self, batch_result, e5462):
        assert batch_result.server == e5462.name
        assert batch_result.seed == 2015


class TestErrorPolicy:
    def test_workload_error_lands_in_place(self, e5462):
        # cg class C does not fit the E5462's 7.6 GB — the batch keeps
        # going and parks the error at the failing position.
        workloads = [
            NpbWorkload("ep", "C", 4),
            NpbWorkload("cg", "C", 1),
            NpbWorkload("mg", "C", 2),
        ]
        items = run_batch(Simulator(e5462, seed=2015), workloads)
        assert isinstance(items[0], RunResult)
        assert isinstance(items[1], InsufficientMemoryError)
        assert isinstance(items[2], RunResult)

    def test_failed_runs_are_excluded_from_arrays(self, e5462):
        result = BatchEngine(Simulator(e5462, seed=2015)).run(
            [NpbWorkload("cg", "C", 1), NpbWorkload("ep", "C", 4)]
        )
        assert result.run_indices == (1,)
        assert result.times_s.shape[0] == 1
        assert len(result.runs) == 1

    def test_empty_batch(self, e5462):
        assert run_batch(Simulator(e5462, seed=2015), []) == []
        result = BatchEngine(Simulator(e5462, seed=2015)).run([])
        assert result.n_samples == 0
        assert result.mask().shape == (0, 0)
        with pytest.raises(ConfigurationError, match="no successful runs"):
            result.pmu_matrix()

    def test_bare_demand_accepted(self, e5462):
        demand = ResourceDemand.idle(duration_s=30.0)
        (item,) = run_batch(Simulator(e5462, seed=2015), [demand])
        assert isinstance(item, RunResult)
        assert item.demand == demand
        assert item.power_factor == 1.0
