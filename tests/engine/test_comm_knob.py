"""The Section VI-C communication power knob.

``SystemPowerModel.power_watts(include_comm=...)`` and
``Simulator(externalize_comm=...)`` expose the communication-intensity
term the paper's six regression features deliberately omit.  The knob is
default-off: these tests prove the default path is bit-identical with
the knob machinery in place, and that turning it on removes exactly the
term :meth:`comm_power_watts` reports.
"""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.engine import Simulator
from repro.engine.batch import run_batch
from repro.hardware.power import (
    COMM_FEATURE_INDEX,
    DELTA_FEATURES,
    dynamic_feature_vector,
)
from repro.hardware.specs import get_server
from repro.workloads.npb import NpbWorkload

COMM_DEMAND = ResourceDemand(
    program="mpi-heavy",
    nprocs=4,
    duration_s=20.0,
    gflops=10.0,
    memory_mb=512.0,
    comm_intensity=0.8,
)


def make_model(server_name="Xeon-E5462"):
    simulator = Simulator(get_server(server_name))
    return simulator, simulator.power_model


class TestFeatureColumn:
    def test_comm_is_a_named_delta_feature(self):
        assert DELTA_FEATURES[COMM_FEATURE_INDEX] == "comm"

    def test_feature_value_is_cores_times_intensity(self):
        simulator, _ = make_model()
        simulator._cpu.bind(COMM_DEMAND)
        cpu = simulator._cpu.activity()
        memory = simulator._memory.traffic(
            COMM_DEMAND, simulator._cpu.placement
        )
        vector = dynamic_feature_vector(COMM_DEMAND, cpu, memory)
        assert vector[COMM_FEATURE_INDEX] == pytest.approx(
            cpu.active_cores * COMM_DEMAND.comm_intensity
        )


class TestPowerWattsKnob:
    def test_default_call_includes_comm(self):
        simulator, model = make_model()
        simulator._cpu.bind(COMM_DEMAND)
        cpu = simulator._cpu.activity()
        memory = simulator._memory.traffic(
            COMM_DEMAND, simulator._cpu.placement
        )
        assert model.power_watts(COMM_DEMAND, cpu, memory) == model.power_watts(
            COMM_DEMAND, cpu, memory, include_comm=True
        )

    def test_exclusion_removes_exactly_the_comm_term(self):
        simulator, model = make_model()
        simulator._cpu.bind(COMM_DEMAND)
        cpu = simulator._cpu.activity()
        memory = simulator._memory.traffic(
            COMM_DEMAND, simulator._cpu.placement
        )
        with_comm = model.power_watts(COMM_DEMAND, cpu, memory)
        without = model.power_watts(
            COMM_DEMAND, cpu, memory, include_comm=False
        )
        assert with_comm - without == pytest.approx(
            model.comm_power_watts(COMM_DEMAND, cpu)
        )

    def test_comm_power_is_zero_when_idle_or_uncommunicative(self):
        simulator, model = make_model()
        idle = ResourceDemand.idle(60.0)
        assert model.comm_power_watts(idle, None) == 0.0
        quiet = ResourceDemand(
            program="quiet",
            nprocs=4,
            duration_s=10.0,
            gflops=1.0,
            memory_mb=64.0,
            comm_intensity=0.0,
        )
        simulator._cpu.bind(quiet)
        assert model.comm_power_watts(quiet, simulator._cpu.activity()) == 0.0


class TestSimulatorKnob:
    def test_default_path_is_bit_identical(self):
        server = get_server("Xeon-E5462")
        workload = NpbWorkload("ep", "C", 4)
        plain = Simulator(server, seed=7).run(workload)
        explicit = Simulator(server, seed=7, externalize_comm=False).run(
            workload
        )
        assert np.array_equal(plain.true_watts, explicit.true_watts)
        assert np.array_equal(plain.measured_watts, explicit.measured_watts)

    def test_externalizing_lowers_comm_heavy_power(self):
        server = get_server("Xeon-E5462")
        default = Simulator(server, seed=7).run(COMM_DEMAND)
        external = Simulator(server, seed=7, externalize_comm=True).run(
            COMM_DEMAND
        )
        assert external.average_power_watts() < default.average_power_watts()

    def test_serial_and_batch_agree_under_the_knob(self):
        server = get_server("Xeon-E5462")
        items = [COMM_DEMAND, NpbWorkload("ep", "C", 4)]
        serial = [
            Simulator(server, seed=3, externalize_comm=True).run(w)
            for w in items
        ]
        batch = run_batch(
            Simulator(server, seed=3, externalize_comm=True), items
        )
        for s, b in zip(serial, batch):
            assert np.array_equal(s.measured_watts, b.measured_watts)
