"""Differential suite: the batch engine is bit-identical to serial.

Every workload family crossed with every builtin server, compared with
exact (``np.array_equal``, not approx) equality — the CI differential
job runs this file on multiple Python versions to pin the guarantee
across interpreter builds.
"""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.engine import Simulator
from repro.engine.batch import run_batch
from repro.engine.trace import RunResult
from repro.errors import WorkloadError
from repro.workloads.hpcc import HPCC_COMPONENTS, HpccWorkload
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbWorkload
from repro.workloads.specpower import SpecPowerWorkload, full_run_levels

SEED = 2015


def family_workloads(server):
    """One representative list spanning every workload family."""
    workloads = [SpecPowerWorkload(level) for level in full_run_levels()]
    workloads += [
        HplWorkload(HplConfig(n, 0.95)) for n in (1, 2, 4)
    ]
    workloads.append(HplWorkload(HplConfig(4, 0.5, nb=100)))
    workloads.append(HplWorkload(HplConfig(4, 0.5, nb=200, p=2, q=2)))
    for name in sorted(NPB_PROGRAMS):
        counts = [
            n for n in (1, 2, 4) if NPB_PROGRAMS[name].proc_rule.allows(n)
        ]
        workloads += [NpbWorkload(name, "C", n) for n in counts[:2]]
    workloads += [
        HpccWorkload(component, 4) for component in HPCC_COMPONENTS
    ]
    workloads.append(ResourceDemand.idle(duration_s=45.0))
    workloads.append(
        ResourceDemand(
            program="custom",
            nprocs=min(2, server.total_cores),
            duration_s=33.0,
            gflops=5.0,
            memory_mb=256.0,
            cpu_util=0.8,
        )
    )
    return workloads


def serial_reference(server, workloads, t_start_s=0.0):
    """The serial loop the batch path replaces, errors kept in place."""
    simulator = Simulator(server, seed=SEED)
    items = []
    for workload in workloads:
        try:
            items.append(simulator.run(workload, t_start_s=t_start_s))
        except WorkloadError as exc:
            items.append(exc)
    return items


def assert_identical(serial_item, batch_item):
    if isinstance(serial_item, WorkloadError):
        assert type(batch_item) is type(serial_item)
        assert str(batch_item) == str(serial_item)
        return
    assert isinstance(batch_item, RunResult)
    assert batch_item.demand == serial_item.demand
    assert batch_item.t_start_s == serial_item.t_start_s
    assert batch_item.power_factor == serial_item.power_factor
    # Exact equality: same draws, same IEEE-754 operations — no approx.
    assert np.array_equal(batch_item.times_s, serial_item.times_s)
    assert np.array_equal(batch_item.true_watts, serial_item.true_watts)
    assert np.array_equal(
        batch_item.measured_watts, serial_item.measured_watts
    )
    assert np.array_equal(batch_item.memory_mb, serial_item.memory_mb)
    assert batch_item.pmu_samples == serial_item.pmu_samples


class TestAllFamiliesAllServers:
    def test_batch_equals_serial(self, any_server):
        workloads = family_workloads(any_server)
        serial_items = serial_reference(any_server, workloads)
        batch_items = run_batch(Simulator(any_server, seed=SEED), workloads)
        assert len(batch_items) == len(serial_items) == len(workloads)
        assert any(
            isinstance(item, RunResult) for item in serial_items
        ), "the family list must actually exercise the trace generator"
        for serial_item, batch_item in zip(serial_items, batch_items):
            assert_identical(serial_item, batch_item)

    def test_nonzero_start_time(self, any_server):
        workloads = [
            SpecPowerWorkload(full_run_levels()[0]),
            NpbWorkload("ep", "C", 4),
        ]
        serial_items = serial_reference(
            any_server, workloads, t_start_s=1234.0
        )
        batch_items = run_batch(
            Simulator(any_server, seed=SEED), workloads, t_start_s=1234.0
        )
        for serial_item, batch_item in zip(serial_items, batch_items):
            assert_identical(serial_item, batch_item)
        assert batch_items[0].times_s[0] == 1234.0

    def test_other_seeds_still_identical(self, e5462):
        workloads = [NpbWorkload("ep", "C", 4), HplWorkload(HplConfig(2))]
        for seed in (0, 1, 7, 424242):
            simulator = Simulator(e5462, seed=seed)
            serial_items = [
                Simulator(e5462, seed=seed).run(w) for w in workloads
            ]
            for serial_item, batch_item in zip(
                serial_items, run_batch(simulator, workloads)
            ):
                assert_identical(serial_item, batch_item)


class TestErrorParity:
    def test_memory_error_identical_message(self, e5462):
        workloads = [NpbWorkload("cg", "C", 1), NpbWorkload("ep", "C", 1)]
        serial_items = serial_reference(e5462, workloads)
        batch_items = run_batch(Simulator(e5462, seed=SEED), workloads)
        assert isinstance(serial_items[0], WorkloadError)
        assert_identical(serial_items[0], batch_items[0])
        assert_identical(serial_items[1], batch_items[1])


class TestEngineParityDownstream:
    def test_mixed_power_sweep_engine_choice_invisible(self, e5462):
        from repro.core.sweeps import mixed_power_sweep

        serial = mixed_power_sweep(
            Simulator(e5462, seed=SEED), (4, 2, 1), engine="serial"
        )
        batch = mixed_power_sweep(
            Simulator(e5462, seed=SEED), (4, 2, 1), engine="batch"
        )
        assert serial == batch

    def test_evaluate_server_engine_choice_invisible(self, e5462):
        from repro.core.evaluation import evaluate_server

        serial = evaluate_server(e5462, engine="serial")
        batch = evaluate_server(e5462, engine="batch")
        assert serial == batch
        assert serial.score == batch.score
