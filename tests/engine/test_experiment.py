"""Campaign pipeline: CSV merge, clock sync, window extraction."""

import numpy as np
import pytest

from repro.engine import Campaign, Simulator
from repro.errors import ConfigurationError
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


@pytest.fixture()
def small_campaign(sim_e5462):
    return Campaign(sim_e5462, gap_s=10.0)


def ep_series():
    return [NpbWorkload("ep", "C", n) for n in (1, 2, 4)]


class TestPipeline:
    def test_measurement_per_workload(self, small_campaign):
        result = small_campaign.run(ep_series())
        assert [m.label for m in result.measurements] == [
            "ep.C.1",
            "ep.C.2",
            "ep.C.4",
        ]

    def test_pipeline_matches_direct_run(self, e5462):
        """The CSV round trip must not distort the averages (beyond the
        2-decimal CSV quantisation)."""
        sim = Simulator(e5462, seed=3)
        direct = sim.run(NpbWorkload("ep", "C", 4)).average_power_watts()
        campaign = Campaign(Simulator(e5462, seed=3)).run(
            [NpbWorkload("ep", "C", 4)]
        )
        assert campaign.measurements[0].average_watts == pytest.approx(
            direct, abs=0.02
        )

    def test_clock_offset_corrected(self, e5462):
        """A large residual clock offset must not shift the windows."""
        small = Campaign(Simulator(e5462, seed=3), clock_offset_s=0.0).run(
            ep_series()
        )
        large = Campaign(Simulator(e5462, seed=3), clock_offset_s=5.0).run(
            ep_series()
        )
        for a, b in zip(small.measurements, large.measurements):
            assert a.average_watts == pytest.approx(b.average_watts, abs=0.05)

    def test_csv_files_kept_when_dir_given(self, small_campaign, tmp_path):
        result = small_campaign.run(ep_series(), csv_dir=tmp_path)
        assert result.merged_csv is not None
        assert result.merged_csv.exists()
        assert len(list(tmp_path.glob("segment_*.csv"))) == 3

    def test_power_ordering_ep_below_hpl(self, small_campaign):
        result = small_campaign.run(
            [NpbWorkload("ep", "C", 4), HplWorkload(HplConfig(4, 0.95))]
        )
        ep, hpl = result.measurements
        assert ep.average_watts < hpl.average_watts

    def test_ppw_and_energy_accessors(self, small_campaign):
        result = small_campaign.run([NpbWorkload("ep", "C", 4)])
        m = result.measurements[0]
        assert m.ppw == pytest.approx(m.gflops / m.average_watts)
        assert m.energy_kilojoules == pytest.approx(
            m.average_watts / 1000 * m.duration_s
        )

    def test_by_label(self, small_campaign):
        result = small_campaign.run(ep_series())
        assert result.by_label("ep.C.2").label == "ep.C.2"
        with pytest.raises(ConfigurationError):
            result.by_label("nope")

    def test_empty_campaign_rejected(self, small_campaign):
        with pytest.raises(ConfigurationError):
            small_campaign.run([])

    def test_negative_gap_rejected(self, sim_e5462):
        with pytest.raises(ConfigurationError):
            Campaign(sim_e5462, gap_s=-1.0)


class TestRepairPath:
    """``Campaign(repair=True)``: validated analysis, same numbers."""

    def test_default_path_attaches_no_quality(self, small_campaign):
        assert small_campaign.run(ep_series()).quality is None

    def test_repair_matches_default_numbers(self, e5462):
        plain = Campaign(Simulator(e5462, seed=7), gap_s=10.0)
        repaired = Campaign(Simulator(e5462, seed=7), gap_s=10.0, repair=True)
        a = plain.run(ep_series())
        b = repaired.run(ep_series())
        # The repair stage detects and removes the same clock offset the
        # default path subtracts; its regrid may shift a window edge by
        # at most one sample, so the means agree to well under 0.1 %.
        for m_plain, m_rep in zip(a.measurements, b.measurements):
            assert m_rep.average_watts == pytest.approx(
                m_plain.average_watts, rel=1e-3
            )
        assert b.quality is not None
        assert "clock_skew_corrected" in b.quality.flags
        assert b.quality.clock_skew_s == pytest.approx(0.4, abs=0.05)

    def test_repair_keeps_csv_artifacts(self, e5462, tmp_path):
        campaign = Campaign(Simulator(e5462, seed=7), gap_s=10.0, repair=True)
        result = campaign.run(ep_series(), csv_dir=tmp_path)
        assert result.merged_csv is not None
        assert result.quality is not None
        assert not result.quality.quarantined


class TestStreamingPath:
    """``Campaign(streaming=True)``: online analysis, same numbers."""

    def test_streaming_matches_batch_measurements(self, e5462):
        batch = Campaign(Simulator(e5462, seed=77), gap_s=10.0)
        stream = Campaign(
            Simulator(e5462, seed=77), gap_s=10.0, streaming=True
        )
        assert (
            stream.run(ep_series()).measurements
            == batch.run(ep_series()).measurements
        )

    def test_streaming_writes_same_artifacts(self, e5462, tmp_path):
        campaign = Campaign(Simulator(e5462, seed=1), streaming=True)
        result = campaign.run([NpbWorkload("ep", "C", 2)], csv_dir=tmp_path)
        assert result.merged_csv == tmp_path / "merged.csv"
        assert (tmp_path / "segment_000.csv").exists()
        assert result.quality is None

    def test_streaming_cannot_repair(self, sim_e5462):
        with pytest.raises(ConfigurationError):
            Campaign(sim_e5462, streaming=True, repair=True)
