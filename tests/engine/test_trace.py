"""RunResult containers."""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.engine.trace import RunResult
from repro.errors import SimulationError


def make_result(n=100, watts=200.0, gflops=10.0):
    demand = ResourceDemand(
        program="t.C.4",
        nprocs=4,
        duration_s=float(n),
        gflops=gflops,
        memory_mb=1000.0,
    )
    times = np.arange(float(n))
    return RunResult(
        demand=demand,
        t_start_s=0.0,
        times_s=times,
        true_watts=np.full(n, watts),
        measured_watts=np.full(n, watts),
        memory_mb=np.full(n, 1600.0),
    )


def test_average_power():
    assert make_result().average_power_watts() == pytest.approx(200.0)


def test_ppw_eq1():
    assert make_result().ppw() == pytest.approx(10.0 / 200.0)


def test_energy_eq2():
    # 200 W for 100 s = 20 KJ.
    assert make_result().energy_kilojoules() == pytest.approx(20.0)


def test_trim_applied_to_power():
    n = 100
    r = make_result(n)
    watts = r.measured_watts.copy()
    watts[:10] = 1000.0  # start-up spike
    spiked = RunResult(
        demand=r.demand,
        t_start_s=0.0,
        times_s=r.times_s,
        true_watts=watts,
        measured_watts=watts,
        memory_mb=r.memory_mb,
    )
    assert spiked.average_power_watts(trim=0.10) == pytest.approx(200.0)


def test_t_end():
    assert make_result(50).t_end_s == pytest.approx(50.0)


def test_shape_mismatch_rejected():
    r = make_result(10)
    with pytest.raises(SimulationError):
        RunResult(
            demand=r.demand,
            t_start_s=0.0,
            times_s=r.times_s,
            true_watts=r.true_watts[:5],
            measured_watts=r.measured_watts,
            memory_mb=r.memory_mb,
        )


def test_empty_run_rejected():
    r = make_result(10)
    with pytest.raises(SimulationError):
        RunResult(
            demand=r.demand,
            t_start_s=0.0,
            times_s=np.array([]),
            true_watts=np.array([]),
            measured_watts=np.array([]),
            memory_mb=np.array([]),
        )


def test_pmu_matrix_requires_samples():
    with pytest.raises(SimulationError):
        make_result().pmu_matrix()
