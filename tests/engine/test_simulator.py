"""The discrete-time simulator."""

import numpy as np
import pytest

from repro.demand import ResourceDemand
from repro.engine.simulator import PMU_INTERVAL_S, Simulator
from repro.errors import SimulationError
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


class TestDeterminism:
    def test_same_seed_same_trace(self, e5462):
        a = Simulator(e5462, seed=11).run(NpbWorkload("ep", "C", 4))
        b = Simulator(e5462, seed=11).run(NpbWorkload("ep", "C", 4))
        assert np.array_equal(a.measured_watts, b.measured_watts)
        assert np.array_equal(a.memory_mb, b.memory_mb)

    def test_different_seed_differs(self, e5462):
        a = Simulator(e5462, seed=11).run(NpbWorkload("ep", "C", 4))
        b = Simulator(e5462, seed=12).run(NpbWorkload("ep", "C", 4))
        assert not np.array_equal(a.measured_watts, b.measured_watts)

    def test_order_independence(self, e5462):
        """A run's trace does not depend on what ran before it."""
        sim = Simulator(e5462, seed=11)
        sim.run(NpbWorkload("mg", "B", 4))
        after_other = sim.run(NpbWorkload("ep", "C", 4))
        fresh = Simulator(e5462, seed=11).run(NpbWorkload("ep", "C", 4))
        assert np.array_equal(after_other.measured_watts, fresh.measured_watts)


class TestTraces:
    def test_sample_count_matches_duration(self, e5462):
        run = Simulator(e5462).run(NpbWorkload("ep", "C", 1))
        assert run.times_s.shape[0] == int(np.ceil(run.duration_s))

    def test_t_start_offsets_clock(self, e5462):
        run = Simulator(e5462).run(NpbWorkload("ep", "C", 4), t_start_s=500.0)
        assert run.times_s[0] == 500.0
        assert run.t_start_s == 500.0

    def test_pmu_sample_count(self, e5462):
        run = Simulator(e5462).run(NpbWorkload("ep", "C", 1))
        expected = max(int(run.times_s.shape[0] // PMU_INTERVAL_S), 1)
        assert len(run.pmu_samples) == expected

    def test_short_run_still_has_one_pmu_sample(self, x4870):
        run = Simulator(x4870).run(NpbWorkload("ep", "B", 40))  # ~1.4 s
        assert len(run.pmu_samples) == 1

    def test_pmu_counts_normalised_to_standard_window(self, x4870):
        """A short run's counters must reflect its *rate*, not its
        truncated runtime."""
        short = Simulator(x4870).run(NpbWorkload("ep", "B", 40))
        long = Simulator(x4870).run(NpbWorkload("ep", "C", 40))
        s = short.pmu_matrix().mean(axis=0)
        l = long.pmu_matrix().mean(axis=0)
        assert s[1] == pytest.approx(l[1], rel=0.5)  # instructions/10 s

    def test_idle_run(self, e5462):
        run = Simulator(e5462).run(ResourceDemand.idle(60.0))
        assert run.measured_watts.mean() == pytest.approx(134.4, abs=2.0)
        assert run.true_watts.std() == 0.0  # no dynamic ripple when idle

    def test_ripple_bounded_in_steady_region(self, e5462):
        """Away from the start/stop transients, the phase ripple is a
        small fraction of dynamic power."""
        run = Simulator(e5462).run(HplWorkload(HplConfig(4, 0.5)))
        n = run.true_watts.shape[0]
        steady = run.true_watts[n // 5 : -n // 5] - 134.3727
        assert steady.std() / steady.mean() < 0.05

    def test_transients_ramp_up_and_down(self, e5462):
        """Runs start below and end below their steady power — the
        transients the paper's 10 % trim removes."""
        run = Simulator(e5462).run(NpbWorkload("ep", "C", 1))
        steady = run.average_power_watts(trim=0.2)
        assert run.true_watts[0] < steady - 2.0
        assert run.true_watts[-1] < steady - 2.0

    def test_trim_recovers_steady_power(self, e5462):
        """The 10 % trim lands on the calibration target; the untrimmed
        mean under-reports (the reason the procedure trims)."""
        run = Simulator(e5462).run(NpbWorkload("ep", "C", 1))
        trimmed = run.average_power_watts(trim=0.10)
        untrimmed = float(run.measured_watts.mean())
        assert trimmed > untrimmed

    def test_memory_trace_near_footprint(self, e5462):
        run = Simulator(e5462).run(NpbWorkload("mg", "B", 4))
        from repro.hardware.memory import OS_BASELINE_MB

        expected = run.demand.memory_mb + OS_BASELINE_MB
        assert run.memory_mb.mean() == pytest.approx(expected, rel=0.02)


class TestPowerFactor:
    def test_explicit_factor_scales_dynamic(self, e5462):
        sim = Simulator(e5462, seed=0)
        base = sim.run(NpbWorkload("ep", "C", 4), power_factor=1.0)
        boosted = sim.run(NpbWorkload("ep", "C", 4), power_factor=1.5)
        idle = 134.3727
        d_base = base.true_watts.mean() - idle
        d_boost = boosted.true_watts.mean() - idle
        assert d_boost == pytest.approx(1.5 * d_base, rel=0.01)

    def test_workload_factor_recorded(self, e5462):
        run = Simulator(e5462).run(NpbWorkload("mg", "B", 4))
        assert run.power_factor != 1.0
        run_ep = Simulator(e5462).run(NpbWorkload("ep", "C", 4))
        assert run_ep.power_factor == 1.0


class TestValidation:
    def test_foreign_power_model_rejected(self, e5462, x4870):
        from repro.hardware.calibration import calibrated_power_model

        with pytest.raises(SimulationError):
            Simulator(e5462, power_model=calibrated_power_model(x4870))
