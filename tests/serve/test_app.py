"""End-to-end HTTP: daemon on an ephemeral port, driven by the client."""

import json

import pytest

from repro import io as repro_io
from repro.core.evaluation import evaluate_server
from repro.engine.simulator import Simulator
from repro.hardware.specs import get_server
from repro.serve import (
    BackgroundServer,
    QueuePolicy,
    ServeClient,
    ServeError,
    ServeRejected,
    ServeScheduler,
    StateStore,
    parse_submission,
)


@pytest.fixture()
def server(tmp_path):
    scheduler = ServeScheduler(StateStore(tmp_path / "state"), slots=2)
    with BackgroundServer(scheduler) as background:
        yield background


@pytest.fixture()
def client(server):
    return ServeClient(port=server.port)


class TestBasics:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["draining"] is False
        stats = client.stats()
        assert stats["counters"]["submitted"] == 0
        assert stats["slots"] == 2

    def test_unknown_paths_are_404(self, client):
        with pytest.raises(ServeError) as exc:
            client._json("GET", "/nope")
        assert exc.value.status == 404
        with pytest.raises(ServeError) as exc:
            client._json("GET", "/v1/campaigns/c-000001")
        assert exc.value.code == "unknown_campaign"

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as exc:
            client._json("POST", "/v1/health", body={})
        assert exc.value.status == 405

    def test_invalid_json_body_is_400(self, client):
        status, _, data = client._request(
            "POST",
            "/v1/campaigns",
            body=None,
            headers={"Content-Length": "0"},
        )
        assert status == 400
        assert json.loads(data)["error"] == "empty_body"


class TestCampaignLifecycle:
    def test_submit_wait_result_roundtrip(self, client, tmp_path):
        submitted = client.submit_evaluate(
            "Xeon-E5462", seed=0, tenant="alice"
        )
        assert submitted["id"].startswith("c-")
        status = client.wait(submitted["id"])
        assert status["status"] == "done"
        saved = client.save_result(submitted["id"], tmp_path / "out.json")
        server_spec = get_server("Xeon-E5462")
        expected = repro_io.save_json(
            repro_io.evaluation_to_dict(
                evaluate_server(server_spec, Simulator(server_spec, seed=0))
            ),
            tmp_path / "expected.json",
        )
        # The serve result is byte-identical to the CLI's --json file.
        assert saved.read_bytes() == expected.read_bytes()

    def test_result_before_completion_is_404_with_retry(self, client):
        submitted = client.submit_evaluate("Xeon-4870", tenant="alice")
        try:
            client.result(submitted["id"])
        except ServeError as exc:
            assert exc.code == "result_not_ready"
        finally:
            client.wait(submitted["id"])

    def test_cross_tenant_dedup_visible_in_api(self, client):
        first = client.submit_evaluate("Xeon-E5462", tenant="alice")
        second = client.submit_evaluate("Xeon-E5462", tenant="bob")
        assert second.get("dedup_of") == first["id"]
        status_a = client.wait(first["id"])
        status_b = client.wait(second["id"])
        assert status_a["digest"] == status_b["digest"]
        assert client.stats()["counters"]["deduped_campaigns"] == 1

    def test_events_stream_tails_the_campaign(self, client):
        submitted = client.submit_evaluate("Xeon-E5462", tenant="alice")
        events = list(client.events(submitted["id"]))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "serve_submit"
        assert kinds[-1] == "serve_finish"
        assert "job_start" in kinds
        assert all(e["campaign"] == submitted["id"] for e in events)

    def test_events_for_unknown_campaign_is_404(self, client):
        with pytest.raises(ServeError) as exc:
            list(client.events("c-999999"))
        assert exc.value.status == 404


class TestBackpressure:
    def test_bounded_queue_answers_429_with_retry_after(self, tmp_path):
        scheduler = ServeScheduler(
            StateStore(tmp_path / "state"),
            policy=QueuePolicy(max_depth=1, max_pending=2),
            slots=1,
        )
        with BackgroundServer(scheduler) as background:
            client = ServeClient(port=background.port)
            rejected = None
            accepted = []
            # Distinct seeds: dedup must not absorb the flood.
            for seed in range(12):
                try:
                    accepted.append(
                        client.submit_evaluate(
                            "Xeon-E5462",
                            seed=seed,
                            tenant="flood",
                            priority="high",
                        )
                    )
                except ServeRejected as exc:
                    rejected = exc
            assert rejected is not None, "bounded queue never refused"
            assert rejected.status == 429
            assert rejected.retry_after_s >= 1
            assert rejected.code in (
                "tenant_queue_full",
                "server_backlog_full",
            )
            for doc in accepted:
                assert client.wait(doc["id"])["status"] == "done"

    def test_draining_503_reuses_the_ewma_retry_after(self, tmp_path):
        scheduler = ServeScheduler(
            StateStore(tmp_path / "state"),
            policy=QueuePolicy(max_depth=16, max_pending=32),
            slots=1,
        )
        with BackgroundServer(scheduler) as background:
            client = ServeClient(port=background.port)
            for seed in range(6):
                client.submit_evaluate(
                    "Xeon-E5462", seed=seed, tenant="flood"
                )
            # What SIGTERM flips before waiting out the queue: new
            # submissions refused, running work unaffected.
            scheduler.draining = True
            before = scheduler.queues.retry_after_s(scheduler.slots)
            with pytest.raises(ServeRejected) as exc:
                client.submit_evaluate(
                    "Xeon-E5462", seed=99, tenant="flood"
                )
            after = scheduler.queues.retry_after_s(scheduler.slots)
            assert exc.value.status == 503
            assert exc.value.code == "draining"
            # The hint is the same backlog x EWMA-service estimate a
            # 429 carries — bracketed by the live estimate either side
            # of the refused call — not a hard-coded constant.
            assert after <= exc.value.retry_after_s <= before
            assert exc.value.retry_after_s >= 2  # backlog-sized, not 1
            scheduler.draining = False

    def test_low_priority_sheds_before_high(self, tmp_path):
        scheduler = ServeScheduler(
            StateStore(tmp_path / "state"),
            policy=QueuePolicy(max_depth=4, max_pending=8),
            slots=1,
        )
        # Submit before slots start so the queue holds its depth.
        low_refused = high_ok = False
        for seed in range(8):
            outcome = scheduler.submit(
                parse_submission(
                    {
                        "kind": "evaluate",
                        "server": "Xeon-E5462",
                        "seed": seed,
                        "priority": "low" if seed % 2 else "high",
                    },
                    "mixed",
                )
            )
            if outcome.accepted and seed % 2 == 0:
                high_ok = True
            if (
                not outcome.accepted
                and seed % 2 == 1
                and outcome.reason == "shedding_low_priority"
            ):
                low_refused = True
        assert high_ok, "high priority was refused below the hard cap"
        assert low_refused, "low priority never shed at the soft limit"
        scheduler.drain(timeout_s=1)
