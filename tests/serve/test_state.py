"""StateStore durability contracts: torn journals and full disks.

The submit journal is the daemon's source of truth, so its failure
modes get exhaustive treatment: ``replay()`` is run against a journal
torn at *every* byte offset of its final record (a crash can stop an
append anywhere), and the append/save paths are driven into the
injected-ENOSPC fault to pin that they raise
:class:`~repro.errors.StorageDegradedError` rather than dying with a
half-written entry on disk.
"""

import json

import pytest

from repro.doctor import safewrite
from repro.errors import StorageDegradedError
from repro.serve.protocol import Submission, submission_content_key
from repro.serve.state import StateStore


def _submission(seed: int = 7) -> Submission:
    return Submission(
        tenant="alice",
        priority="normal",
        kind="evaluate",
        spec={"server": "Xeon-E5462", "seed": seed},
    )


def _seeded_journal(tmp_path):
    """A journal ending in a ``submit`` record: submit/done/submit."""
    root = tmp_path / "state"
    store = StateStore(root)
    sub = _submission()
    key = submission_content_key(sub)
    store.journal_submit("c-000001", sub, key)
    store.journal_done("c-000001", "done", digest="d" * 64)
    store.journal_submit("c-000002", _submission(seed=8), key + "x")
    store.close()
    return root, store.journal_path.read_bytes()


class TestReplayTornJournal:
    def test_replay_torn_at_every_byte_of_the_final_record(self, tmp_path):
        root, full = _seeded_journal(tmp_path)
        journal = root / "journal.jsonl"
        final_start = full.rindex(b"\n", 0, len(full) - 1) + 1
        assert full.endswith(b"\n") and final_start < len(full) - 1

        for cut in range(final_start, len(full) + 1):
            journal.write_bytes(full[:cut])
            store = StateStore(root)
            try:
                pending, counter = store.replay()  # must never raise
            finally:
                store.close()
            ids = [p.campaign_id for p in pending]
            if cut >= len(full) - 1:
                # The record survived in full (with or without its
                # trailing newline): the submission is pending again.
                assert ids == ["c-000002"]
                assert counter == 3
            else:
                # Any strictly-partial prefix is not valid JSON: the
                # torn submit never happened, earlier records intact.
                assert ids == []
                assert counter == 2

    def test_replay_missing_journal_is_empty(self, tmp_path):
        store = StateStore(tmp_path / "state")
        store.journal_path.unlink()
        try:
            assert store.replay() == ([], 1)
        finally:
            store.close()


class TestDiskFullDegrades:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        safewrite.clear_disk_fault()

    def test_journal_append_raises_storage_degraded(self, tmp_path):
        store = StateStore(tmp_path / "state")
        try:
            safewrite.inject_disk_full(0)
            with pytest.raises(StorageDegradedError):
                store.journal_submit(
                    "c-000001", _submission(), "k" * 64
                )
            safewrite.clear_disk_fault()
            # The store stays usable once space returns.
            store.journal_submit("c-000001", _submission(), "k" * 64)
        finally:
            store.close()
        pending, _counter = StateStore(tmp_path / "state").replay()
        assert [p.campaign_id for p in pending] == ["c-000001"]

    def test_rejected_append_leaves_no_ghost_in_the_buffer(
        self, tmp_path
    ):
        # A failed flush can leave the rejected record's bytes in the
        # TextIOWrapper buffer; the next successful append must not
        # flush them too (the client was told 503 — a restart would
        # otherwise resurrect and execute a ghost campaign).
        store = StateStore(tmp_path / "state")
        try:
            store._fh.write('{"kind": "submit", "id": "c-ghost"}\n')
            safewrite.inject_disk_full(0)
            with pytest.raises(StorageDegradedError):
                store.journal_submit("c-000001", _submission(), "k" * 64)
            safewrite.clear_disk_fault()
            store.journal_submit("c-000002", _submission(), "k" * 64)
        finally:
            safewrite.clear_disk_fault()
            store.close()
        raw = (tmp_path / "state" / "journal.jsonl").read_bytes()
        assert b"c-ghost" not in raw and b"c-000001" not in raw
        pending, _counter = StateStore(tmp_path / "state").replay()
        assert [p.campaign_id for p in pending] == ["c-000002"]

    def test_failed_fsync_truncates_the_undurable_record(
        self, tmp_path, monkeypatch
    ):
        # When fsync (not flush) fails, the rejected bytes are already
        # in the file: recovery must truncate back to the pre-append
        # offset so the fsync-before-202 contract holds on restart.
        import errno
        import os

        store = StateStore(tmp_path / "state")
        try:
            store.journal_submit("c-000001", _submission(), "k" * 64)
            before = store.journal_path.read_bytes()
            real_fsync = os.fsync

            def failing_fsync(fd):
                monkeypatch.setattr(os, "fsync", real_fsync)
                raise OSError(errno.ENOSPC, "no space left on device")

            monkeypatch.setattr(os, "fsync", failing_fsync)
            with pytest.raises(StorageDegradedError):
                store.journal_submit("c-000002", _submission(), "x" * 64)
            assert store.journal_path.read_bytes() == before
            store.journal_submit("c-000003", _submission(), "y" * 64)
        finally:
            store.close()
        pending, _counter = StateStore(tmp_path / "state").replay()
        assert [p.campaign_id for p in pending] == [
            "c-000001",
            "c-000003",
        ]

    def test_save_result_raises_and_leaves_no_temp_file(self, tmp_path):
        store = StateStore(tmp_path / "state")
        try:
            safewrite.inject_disk_full(0)
            with pytest.raises(StorageDegradedError):
                store.save_result("c-000001", {"answer": 42})
            results = store.root / "results"
            assert list(results.iterdir()) == []  # no tmp corpse
            safewrite.clear_disk_fault()
            path = store.save_result("c-000001", {"answer": 42})
        finally:
            store.close()
        assert json.loads(path.read_text()) == {"answer": 42}

    def test_save_result_byte_format_is_pinned(self, tmp_path):
        # Doctor's digest audit and the chaos bit-identity proofs both
        # assume this exact serialisation; a drive-by format change
        # would silently break resume-equivalence checks.
        store = StateStore(tmp_path / "state")
        try:
            path = store.save_result("c-000001", {"b": 1, "a": [2]})
        finally:
            store.close()
        expected = (
            json.dumps({"b": 1, "a": [2]}, indent=2, sort_keys=True) + "\n"
        ).encode()
        assert path.read_bytes() == expected
