"""StateStore durability contracts: torn journals and full disks.

The submit journal is the daemon's source of truth, so its failure
modes get exhaustive treatment: ``replay()`` is run against a journal
torn at *every* byte offset of its final record (a crash can stop an
append anywhere), and the append/save paths are driven into the
injected-ENOSPC fault to pin that they raise
:class:`~repro.errors.StorageDegradedError` rather than dying with a
half-written entry on disk.
"""

import json

import pytest

from repro.doctor import safewrite
from repro.errors import StorageDegradedError
from repro.serve.protocol import Submission, submission_content_key
from repro.serve.state import StateStore


def _submission(seed: int = 7) -> Submission:
    return Submission(
        tenant="alice",
        priority="normal",
        kind="evaluate",
        spec={"server": "Xeon-E5462", "seed": seed},
    )


def _seeded_journal(tmp_path):
    """A journal ending in a ``submit`` record: submit/done/submit."""
    root = tmp_path / "state"
    store = StateStore(root)
    sub = _submission()
    key = submission_content_key(sub)
    store.journal_submit("c-000001", sub, key)
    store.journal_done("c-000001", "done", digest="d" * 64)
    store.journal_submit("c-000002", _submission(seed=8), key + "x")
    store.close()
    return root, store.journal_path.read_bytes()


class TestReplayTornJournal:
    def test_replay_torn_at_every_byte_of_the_final_record(self, tmp_path):
        root, full = _seeded_journal(tmp_path)
        journal = root / "journal.jsonl"
        final_start = full.rindex(b"\n", 0, len(full) - 1) + 1
        assert full.endswith(b"\n") and final_start < len(full) - 1

        for cut in range(final_start, len(full) + 1):
            journal.write_bytes(full[:cut])
            store = StateStore(root)
            try:
                pending, counter = store.replay()  # must never raise
            finally:
                store.close()
            ids = [p.campaign_id for p in pending]
            if cut >= len(full) - 1:
                # The record survived in full (with or without its
                # trailing newline): the submission is pending again.
                assert ids == ["c-000002"]
                assert counter == 3
            else:
                # Any strictly-partial prefix is not valid JSON: the
                # torn submit never happened, earlier records intact.
                assert ids == []
                assert counter == 2

    def test_replay_missing_journal_is_empty(self, tmp_path):
        store = StateStore(tmp_path / "state")
        store.journal_path.unlink()
        try:
            assert store.replay() == ([], 1)
        finally:
            store.close()


class TestDiskFullDegrades:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        yield
        safewrite.clear_disk_fault()

    def test_journal_append_raises_storage_degraded(self, tmp_path):
        store = StateStore(tmp_path / "state")
        try:
            safewrite.inject_disk_full(0)
            with pytest.raises(StorageDegradedError):
                store.journal_submit(
                    "c-000001", _submission(), "k" * 64
                )
            safewrite.clear_disk_fault()
            # The store stays usable once space returns.
            store.journal_submit("c-000001", _submission(), "k" * 64)
        finally:
            store.close()
        pending, _counter = StateStore(tmp_path / "state").replay()
        assert [p.campaign_id for p in pending] == ["c-000001"]

    def test_save_result_raises_and_leaves_no_temp_file(self, tmp_path):
        store = StateStore(tmp_path / "state")
        try:
            safewrite.inject_disk_full(0)
            with pytest.raises(StorageDegradedError):
                store.save_result("c-000001", {"answer": 42})
            results = store.root / "results"
            assert list(results.iterdir()) == []  # no tmp corpse
            safewrite.clear_disk_fault()
            path = store.save_result("c-000001", {"answer": 42})
        finally:
            store.close()
        assert json.loads(path.read_text()) == {"answer": 42}

    def test_save_result_byte_format_is_pinned(self, tmp_path):
        # Doctor's digest audit and the chaos bit-identity proofs both
        # assume this exact serialisation; a drive-by format change
        # would silently break resume-equivalence checks.
        store = StateStore(tmp_path / "state")
        try:
            path = store.save_result("c-000001", {"b": 1, "a": [2]})
        finally:
            store.close()
        expected = (
            json.dumps({"b": 1, "a": [2]}, indent=2, sort_keys=True) + "\n"
        ).encode()
        assert path.read_bytes() == expected
