"""SIGTERM drain: the daemon exits clean and a restart resumes its work."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_serve(state_dir, port_file, slots=1):
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--state-dir", str(state_dir),
        "--port-file", str(port_file),
        "--slots", str(slots),
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _client_when_up(port_file, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return ServeClient.from_port_file(port_file)
        time.sleep(0.02)
    raise AssertionError("daemon never published its port")


class TestSigtermDrain:
    def test_sigterm_drains_clean_and_restart_resumes(self, tmp_path):
        state_dir = tmp_path / "state"
        port_file = tmp_path / "port"
        daemon = _spawn_serve(state_dir, port_file)
        try:
            client = _client_when_up(port_file)
            ids = [
                client.submit_evaluate(
                    "Xeon-E5462", seed=seed, tenant="alice"
                )["id"]
                for seed in range(4)
            ]
            daemon.send_signal(signal.SIGTERM)
            stdout, stderr = daemon.communicate(timeout=120)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
        assert daemon.returncode == 0, stderr
        assert "drained" in stdout

        # A restarted daemon picks the journaled campaigns back up and
        # finishes every one of them.
        restart_port = tmp_path / "port2"
        restarted = _spawn_serve(state_dir, restart_port, slots=2)
        try:
            client = _client_when_up(restart_port)
            for campaign_id in ids:
                status = client.wait(campaign_id, timeout_s=180)
                assert status["status"] == "done"
            restarted.send_signal(signal.SIGTERM)
            stdout, stderr = restarted.communicate(timeout=120)
        finally:
            if restarted.poll() is None:
                restarted.kill()
                restarted.wait(timeout=30)
        assert restarted.returncode == 0, stderr
        assert "drained clean" in stdout

    def test_draining_daemon_refuses_new_submissions(self, tmp_path):
        # In-process variant: once drain starts, submits get refused
        # with the dedicated reason instead of being half-accepted.
        from repro.serve import ServeScheduler, StateStore, parse_submission

        scheduler = ServeScheduler(StateStore(tmp_path / "state"), slots=1)
        scheduler.start()
        scheduler.drain(timeout_s=5)
        outcome = scheduler.submit(
            parse_submission({"server": "Xeon-E5462"}, "late")
        )
        assert not outcome.accepted
        assert outcome.reason == "draining"
        assert outcome.retry_after_s >= 1

    def test_sigterm_with_empty_queue_exits_promptly(self, tmp_path):
        daemon = _spawn_serve(tmp_path / "state", tmp_path / "port")
        try:
            _client_when_up(tmp_path / "port")
            started = time.monotonic()
            daemon.send_signal(signal.SIGTERM)
            stdout, _stderr = daemon.communicate(timeout=60)
            assert time.monotonic() - started < 30
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
        assert daemon.returncode == 0
        assert "drained clean" in stdout
