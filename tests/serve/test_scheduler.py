"""ServeScheduler: execution, dedup, shedding, drain + resume."""

import json
import time

import pytest

from repro import io as repro_io
from repro.core.evaluation import evaluate_server
from repro.engine.simulator import Simulator
from repro.fleet import campaign_to_dict, demo_campaign, read_events
from repro.hardware.specs import get_server
from repro.serve import (
    QueuePolicy,
    ServeScheduler,
    StateStore,
    Submission,
    parse_submission,
)


def _evaluate_submission(server="Xeon-E5462", tenant="alice", **extra):
    return parse_submission(
        {"kind": "evaluate", "server": server, **extra}, tenant
    )


def _wait_done(scheduler, campaign_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = scheduler.status(campaign_id)
        if status and status["status"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"{campaign_id} never finished")


@pytest.fixture()
def scheduler(tmp_path):
    sched = ServeScheduler(StateStore(tmp_path / "state"), slots=2)
    sched.start()
    yield sched
    if not sched.draining:
        sched.drain(timeout_s=30)


class TestExecution:
    def test_evaluate_result_matches_direct_evaluation(
        self, scheduler, tmp_path
    ):
        outcome = scheduler.submit(_evaluate_submission(seed=0))
        assert outcome.accepted
        status = _wait_done(scheduler, outcome.campaign.campaign_id)
        assert status["status"] == "done"
        document = scheduler.result(outcome.campaign.campaign_id)
        server = get_server("Xeon-E5462")
        expected = repro_io.evaluation_to_dict(
            evaluate_server(server, Simulator(server, seed=0))
        )
        assert document == expected

    def test_fleet_campaign_executes_with_digest(self, scheduler):
        submission = parse_submission(
            {"campaign": campaign_to_dict(demo_campaign())}, "alice"
        )
        outcome = scheduler.submit(submission)
        status = _wait_done(scheduler, outcome.campaign.campaign_id)
        assert status["status"] == "done"
        document = scheduler.result(outcome.campaign.campaign_id)
        assert document["kind"] == "fleet-outcome"
        assert document["digest"] == status["digest"]
        assert document["report"]["n_failed"] == 0

    def test_invalid_spec_fails_the_campaign_not_the_slot(
        self, scheduler
    ):
        # Construct directly (bypassing eager parse validation) to
        # exercise the slot's failure path.
        bad = Submission(
            tenant="alice",
            priority="normal",
            kind="evaluate",
            spec={"server": "PDP-11", "seed": 0},
        )
        outcome = scheduler.submit(bad)
        status = _wait_done(scheduler, outcome.campaign.campaign_id)
        assert status["status"] == "failed"
        assert "PDP-11" in status["error"]
        # The slot survives: new work still executes.
        ok = scheduler.submit(_evaluate_submission())
        assert _wait_done(scheduler, ok.campaign.campaign_id)[
            "status"
        ] == "done"


class TestDedup:
    def test_inflight_identical_submissions_share_one_execution(
        self, scheduler
    ):
        first = scheduler.submit(_evaluate_submission(tenant="alice"))
        second = scheduler.submit(_evaluate_submission(tenant="bob"))
        assert second.campaign.dedup_of == first.campaign.campaign_id
        status_a = _wait_done(scheduler, first.campaign.campaign_id)
        status_b = _wait_done(scheduler, second.campaign.campaign_id)
        assert status_a["digest"] == status_b["digest"]
        # Byte-identical result documents for both tenants.
        path_a = scheduler.state.result_path(first.campaign.campaign_id)
        path_b = scheduler.state.result_path(second.campaign.campaign_id)
        assert path_a.read_bytes() == path_b.read_bytes()
        assert scheduler.stats()["counters"]["deduped_campaigns"] == 1

    def test_sequential_identical_submissions_dedup_via_cache(
        self, scheduler
    ):
        first = scheduler.submit(_evaluate_submission())
        _wait_done(scheduler, first.campaign.campaign_id)
        second = scheduler.submit(_evaluate_submission(tenant="bob"))
        status = _wait_done(scheduler, second.campaign.campaign_id)
        # Not campaign-deduped (the primary already finished)...
        assert second.campaign.dedup_of is None
        # ...but every job came from the shared content-addressed
        # cache, and the result is bit-identical.
        assert scheduler.stats()["counters"]["deduped_jobs"] >= 10
        assert status["digest"] == scheduler.status(
            first.campaign.campaign_id
        )["digest"]


class TestOverload:
    def test_backlog_sheds_to_partial_evaluation(self, tmp_path):
        # One slot and a tiny backlog bound: drown it so dispatch
        # crosses the shed threshold and degrades to partial.
        scheduler = ServeScheduler(
            StateStore(tmp_path / "state"),
            policy=QueuePolicy(max_depth=8, max_pending=8),
            slots=1,
            shed_job_budget=1,
        )
        try:
            # Six distinct contents (seeds) so campaign-level dedup
            # cannot collapse the backlog before it crosses the shed
            # threshold (8 * 0.5 = 4 pending).
            submissions = [
                _evaluate_submission(
                    tenant="a", priority="high", seed=seed
                )
                for seed in range(6)
            ]
            accepted = []
            for submission in submissions:
                outcome = scheduler.submit(submission)
                if outcome.accepted:
                    accepted.append(outcome.campaign.campaign_id)
            scheduler.start()
            statuses = [_wait_done(scheduler, cid) for cid in accepted]
            assert all(s["status"] == "done" for s in statuses)
            partials = [s for s in statuses if s["partial"]]
            assert partials, "deep backlog never degraded to partial"
            # Partial evaluate results record what is missing.
            document = scheduler.result(partials[0]["id"])
            assert document["missing"]
            assert 0 < document["coverage"] < 1
        finally:
            scheduler.drain(timeout_s=30)

    def test_rejection_carries_retry_after(self, tmp_path):
        scheduler = ServeScheduler(
            StateStore(tmp_path / "state"),
            policy=QueuePolicy(max_depth=2, max_pending=8),
            slots=1,
        )
        # Slots not started: the queue cannot drain.
        servers = ("Xeon-E5462", "Opteron-8347", "Xeon-4870")
        outcomes = [
            scheduler.submit(
                _evaluate_submission(server=s, priority="high")
            )
            for s in servers
        ]
        assert [o.accepted for o in outcomes] == [True, True, False]
        assert outcomes[2].reason == "tenant_queue_full"
        assert outcomes[2].retry_after_s >= 1
        scheduler.drain(timeout_s=1)


class TestDurability:
    def test_drain_journals_pending_and_restart_resumes(self, tmp_path):
        state_root = tmp_path / "state"
        first = ServeScheduler(StateStore(state_root), slots=1)
        submissions = [
            _evaluate_submission(server=s, tenant=t)
            for s, t in (
                ("Xeon-E5462", "alice"),
                ("Opteron-8347", "bob"),
            )
        ]
        ids = [first.submit(s).campaign.campaign_id for s in submissions]
        # Never started: drain leaves everything journaled.
        pending = first.drain(timeout_s=1)
        assert pending == ids
        drain_records = [
            json.loads(line)
            for line in (state_root / "journal.jsonl")
            .read_text()
            .splitlines()
            if '"drain"' in line
        ]
        assert drain_records[-1]["pending"] == ids

        second = ServeScheduler(StateStore(state_root), slots=2)
        assert second.start() == len(ids)
        try:
            for campaign_id in ids:
                assert (
                    _wait_done(second, campaign_id)["status"] == "done"
                )
            # Resumed ids continue the same sequence: a new submission
            # does not collide with journaled ones.
            fresh = second.submit(
                _evaluate_submission(server="Xeon-4870")
            )
            assert fresh.campaign.campaign_id not in ids
        finally:
            second.drain(timeout_s=30)

    def test_resumed_result_is_bit_identical_to_uninterrupted(
        self, tmp_path
    ):
        submission = _evaluate_submission(seed=7)
        # Uninterrupted reference run.
        ref = ServeScheduler(StateStore(tmp_path / "ref"), slots=1)
        ref.start()
        ref_id = ref.submit(submission).campaign.campaign_id
        _wait_done(ref, ref_id)
        ref_bytes = ref.state.result_path(ref_id).read_bytes()
        ref.drain(timeout_s=30)

        # Interrupted: journal, drain before execution, restart.
        state_root = tmp_path / "state"
        first = ServeScheduler(StateStore(state_root), slots=1)
        cid = first.submit(submission).campaign.campaign_id
        first.drain(timeout_s=1)
        second = ServeScheduler(StateStore(state_root), slots=1)
        second.start()
        try:
            assert _wait_done(second, cid)["status"] == "done"
            assert (
                second.state.result_path(cid).read_bytes() == ref_bytes
            )
        finally:
            second.drain(timeout_s=30)

    def test_storage_failure_degrades_instead_of_failing(self, tmp_path):
        # A result write dying mid-campaign is not a failure: the
        # journal still carries the submission, so the terminal status
        # must be the retried-on-restart "degraded", never "failed".
        from repro.errors import StorageDegradedError

        scheduler = ServeScheduler(StateStore(tmp_path / "state"), slots=1)

        def full_disk(campaign_id, document):
            raise StorageDegradedError("save_result", "disk full")

        scheduler.state.save_result = full_disk
        scheduler.start()
        try:
            cid = scheduler.submit(_evaluate_submission()).campaign.campaign_id
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                status = scheduler.status(cid)
                if status["status"] in ("done", "failed", "degraded"):
                    break
                time.sleep(0.05)
            assert status["status"] == "degraded"
            assert "storage_degraded" in status["error"]
            assert scheduler.counters["storage_degraded"] == 1
            assert scheduler.counters["failed"] == 0
        finally:
            scheduler.drain(timeout_s=30)
        # No done record was journaled: a restart resumes the campaign.
        pending, _counter = StateStore(tmp_path / "state").replay()
        assert [p.campaign_id for p in pending] == [cid]

    def test_events_journal_carries_serve_lifecycle(self, scheduler):
        outcome = scheduler.submit(_evaluate_submission())
        campaign_id = outcome.campaign.campaign_id
        _wait_done(scheduler, campaign_id)
        events = [
            e
            for e in read_events(scheduler.state.events_path)
            if e.get("campaign") == campaign_id
        ]
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "serve_submit"
        assert kinds[-1] == "serve_finish"
        assert "job_finish" in kinds  # fleet jobs share the journal

    def test_live_window_stats_streamed_per_state(self, scheduler):
        outcome = scheduler.submit(_evaluate_submission(seed=0))
        campaign_id = outcome.campaign.campaign_id
        _wait_done(scheduler, campaign_id)
        windows = [
            e
            for e in read_events(scheduler.state.events_path)
            if e.get("campaign") == campaign_id
            and e["kind"] == "serve_stream_window"
        ]
        # One live window record per measured state of the matrix.
        assert len(windows) == 10
        labels = {e["label"] for e in windows}
        assert "Idle" in labels
        for event in windows:
            assert event["n_used"] <= event["n_total"]
            assert event["mean"] > 0

    def test_window_stats_match_evaluation_rows(self, scheduler):
        # The streamed mean is the same trimmed mean the evaluation row
        # reports — the live view never disagrees with the result.
        outcome = scheduler.submit(_evaluate_submission(seed=0))
        campaign_id = outcome.campaign.campaign_id
        _wait_done(scheduler, campaign_id)
        document = scheduler.result(campaign_id)
        by_label = {r["label"]: r for r in document["rows"]}
        for event in read_events(scheduler.state.events_path):
            if (
                event.get("campaign") != campaign_id
                or event["kind"] != "serve_stream_window"
            ):
                continue
            assert event["mean"] == by_label[event["label"]]["watts"]
