"""Tenant queues: admission ladder, stride fairness, backpressure."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.queues import Admission, QueuePolicy, TenantQueues


def _fill(queues, tenant, n, priority="high"):
    for i in range(n):
        queues.push(tenant, priority, f"{tenant}-{i}")


class TestPolicy:
    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            QueuePolicy(max_depth=0)
        with pytest.raises(ConfigurationError):
            QueuePolicy(shed_fraction=0.0)
        with pytest.raises(ConfigurationError):
            QueuePolicy(weights={"a": 0})

    def test_weight_lookup(self):
        policy = QueuePolicy(weights={"big": 4})
        assert policy.weight("big") == 4
        assert policy.weight("anyone") == 1


class TestAdmission:
    def test_high_admitted_until_hard_cap(self):
        queues = TenantQueues(QueuePolicy(max_depth=4, max_pending=64))
        _fill(queues, "a", 3)
        assert queues.admit("a", "high").admitted
        _fill(queues, "a", 1)
        refused = queues.admit("a", "high")
        assert not refused.admitted
        assert refused.reason == "tenant_queue_full"
        assert refused.retry_after_s >= 1

    def test_global_backlog_cap(self):
        queues = TenantQueues(QueuePolicy(max_depth=8, max_pending=4))
        _fill(queues, "a", 2)
        _fill(queues, "b", 2)
        refused = queues.admit("c", "high")
        assert refused.reason == "server_backlog_full"

    def test_low_sheds_at_soft_threshold(self):
        queues = TenantQueues(
            QueuePolicy(max_depth=8, max_pending=64, shed_fraction=0.5)
        )
        _fill(queues, "a", 4)  # at the soft depth (8 * 0.5)
        assert queues.admit("a", "high").admitted
        assert queues.admit("a", "normal").admitted
        low = queues.admit("a", "low")
        assert not low.admitted
        assert low.reason == "shedding_low_priority"

    def test_normal_refused_at_last_slot(self):
        queues = TenantQueues(QueuePolicy(max_depth=4, max_pending=64))
        _fill(queues, "a", 3)
        refused = queues.admit("a", "normal")
        assert refused.reason == "shedding_normal_priority"
        assert queues.admit("a", "high").admitted

    def test_retry_after_tracks_backlog_and_service_time(self):
        queues = TenantQueues(QueuePolicy(max_depth=64, max_pending=128))
        _fill(queues, "a", 10)
        fast = queues.retry_after_s(slots=2)
        for _ in range(8):
            queues.record_service_s(10.0)  # slow service estimate
        slow = queues.retry_after_s(slots=2)
        assert slow > fast
        assert 1 <= fast <= 60 and 1 <= slow <= 60

    def test_unknown_priority_raises(self):
        with pytest.raises(ConfigurationError):
            TenantQueues().admit("a", "urgent")

    def test_admission_dataclass_defaults(self):
        assert Admission(True) == Admission(True, "", 0)


class TestFairness:
    def test_priority_lanes_within_a_tenant(self):
        queues = TenantQueues()
        queues.push("a", "low", "l")
        queues.push("a", "normal", "n")
        queues.push("a", "high", "h")
        assert [queues.pop()[1] for _ in range(3)] == ["h", "n", "l"]

    def test_weighted_tenant_drains_proportionally(self):
        queues = TenantQueues(
            QueuePolicy(max_depth=64, weights={"heavy": 2})
        )
        _fill(queues, "heavy", 30, "normal")
        _fill(queues, "light", 30, "normal")
        first_30 = [queues.pop()[0] for _ in range(30)]
        # Stride scheduling: the weight-2 tenant gets ~2 of every 3.
        assert first_30.count("heavy") == 20
        assert first_30.count("light") == 10

    def test_deterministic_tie_break_by_name(self):
        queues = TenantQueues()
        _fill(queues, "bravo", 2, "normal")
        _fill(queues, "alpha", 2, "normal")
        order = [queues.pop()[0] for _ in range(4)]
        assert order == ["alpha", "bravo", "alpha", "bravo"]

    def test_new_tenant_joins_at_current_pass_no_banking(self):
        queues = TenantQueues()
        _fill(queues, "old", 10, "normal")
        for _ in range(8):
            queues.pop()
        # A tenant arriving now must not get 8 back-to-back turns.
        _fill(queues, "new", 4, "normal")
        _fill(queues, "old", 2, "normal")
        order = [queues.pop()[0] for _ in range(4)]
        assert order.count("new") <= 3

    def test_pop_empty_returns_none(self):
        assert TenantQueues().pop() is None

    def test_drain_all_empties_fairly(self):
        queues = TenantQueues()
        _fill(queues, "a", 2, "normal")
        _fill(queues, "b", 2, "normal")
        drained = queues.drain_all()
        assert len(drained) == 4
        assert queues.pending == 0

    def test_max_pending_seen_high_water_mark(self):
        queues = TenantQueues()
        _fill(queues, "a", 5, "normal")
        for _ in range(5):
            queues.pop()
        assert queues.pending == 0
        assert queues.max_pending_seen == 5
