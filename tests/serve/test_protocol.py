"""HTTP framing and submission validation."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    HttpError,
    Submission,
    json_response,
    parse_submission,
    read_request,
    stream_head,
    submission_content_key,
)


def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = _parse(
            b"GET /v1/stats?verbose=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/stats"
        assert request.query == {"verbose": "1"}
        assert request.headers["host"] == "localhost"

    def test_post_with_body(self):
        body = json.dumps({"kind": "evaluate"}).encode()
        request = _parse(
            b"POST /v1/campaigns HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.json() == {"kind": "evaluate"}

    def test_closed_connection_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc:
            _parse(
                b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
            )
        assert exc.value.status == 413

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert exc.value.code == "malformed_content_length"

    def test_empty_body_json_raises_400(self):
        request = _parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.code == "empty_body"


class TestResponses:
    def test_json_response_shape(self):
        raw = json_response(200, {"a": 1})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in head
        assert json.loads(body) == {"a": 1}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_error_body(self):
        error = HttpError(429, "tenant_queue_full", "busy")
        assert error.body() == {
            "error": "tenant_queue_full",
            "detail": "busy",
        }

    def test_stream_head_has_no_content_length(self):
        head = stream_head()
        assert b"Content-Length" not in head
        assert b"x-ndjson" in head


class TestParseSubmission:
    def test_evaluate_kind_is_inferred_and_validated(self):
        submission = parse_submission(
            {"server": "Xeon-E5462", "seed": 3}, None
        )
        assert submission.kind == "evaluate"
        assert submission.tenant == "default"
        assert submission.spec == {"server": "Xeon-E5462", "seed": 3}

    def test_header_tenant_wins_over_body(self):
        submission = parse_submission(
            {"server": "Xeon-E5462", "tenant": "body"}, "header"
        )
        assert submission.tenant == "header"

    def test_unknown_server_is_404(self):
        with pytest.raises(HttpError) as exc:
            parse_submission({"server": "PDP-11"}, None)
        assert exc.value.status == 404
        assert exc.value.code == "unknown_server"

    def test_invalid_campaign_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse_submission({"campaign": {"kind": "nonsense"}}, None)
        assert exc.value.code == "invalid_campaign"

    def test_fleet_kind_roundtrips(self):
        from repro.fleet import campaign_to_dict, demo_campaign

        doc = campaign_to_dict(demo_campaign())
        submission = parse_submission({"campaign": doc}, "alice")
        assert submission.kind == "fleet"
        assert Submission.from_dict(submission.to_dict()) == submission

    @pytest.mark.parametrize(
        "tenant", ["a" * 65, "has space", "slash/y"]
    )
    def test_bad_tenants_rejected(self, tenant):
        with pytest.raises(HttpError) as exc:
            parse_submission({"server": "Xeon-E5462"}, tenant)
        assert exc.value.code == "invalid_tenant"

    def test_empty_tenant_falls_back_to_default(self):
        submission = parse_submission({"server": "Xeon-E5462"}, "")
        assert submission.tenant == "default"

    def test_bad_priority_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse_submission(
                {"server": "Xeon-E5462", "priority": "urgent"}, None
            )
        assert exc.value.code == "invalid_priority"


class TestContentKey:
    def test_tenant_and_priority_do_not_change_the_key(self):
        a = parse_submission(
            {"server": "Xeon-E5462", "priority": "high"}, "alice"
        )
        b = parse_submission(
            {"server": "Xeon-E5462", "priority": "low"}, "bob"
        )
        assert submission_content_key(a) == submission_content_key(b)

    def test_spec_changes_the_key(self):
        a = parse_submission({"server": "Xeon-E5462", "seed": 0}, None)
        b = parse_submission({"server": "Xeon-E5462", "seed": 1}, None)
        assert submission_content_key(a) != submission_content_key(b)
