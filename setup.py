"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` in offline environments where
the ``wheel`` package (needed for PEP 517 editable installs) is missing.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
