"""Fig. 12 — measured vs regression values over the NPB-B sweep.

Paper: R² = 0.634 for class B (0.543 for class C); 82 bars in
lexicographic label order; EP and SP fit worst.
"""

from conftest import print_series

from repro.core.regression import (
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)
from repro.hardware import XEON_4870


def run_verification():
    dataset = collect_hpcc_training(XEON_4870)
    model = train_power_model(dataset, server_name="Xeon-4870")
    return (
        verify_on_npb(XEON_4870, model, "B"),
        verify_on_npb(XEON_4870, model, "C"),
    )


def test_fig12(benchmark):
    v_b, v_c = benchmark(run_verification)
    rows = [
        (label, f"{m:+.3f}", f"{p:+.3f}")
        for label, m, p in zip(v_b.labels, v_b.measured, v_b.predicted)
    ]
    print_series(
        f"Fig. 12: NPB-B measured vs regression (dimensionless); "
        f"R^2 = {v_b.r_squared:.3f} (paper 0.634); "
        f"class C R^2 = {v_c.r_squared:.3f} (paper 0.543)",
        rows[:20] + [("...", "...", "...")],
        ("Program", "Measured", "Regression"),
    )
    assert len(v_b.labels) == 82
    assert 0.45 <= v_b.r_squared <= 0.72
    assert 0.40 <= v_c.r_squared <= 0.72
