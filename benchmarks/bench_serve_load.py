"""Serve daemon load gate — sustained multi-tenant campaign replay.

Boots the daemon in-process on an ephemeral port, replays a
deterministic mixed-tenant submission stream (see
:mod:`repro.serve.loadgen`) *without pacing* — the submit loop runs as
fast as HTTP allows, so the backlog genuinely fills and the admission
path exercises its whole ladder: fair scheduling, 429 + Retry-After
shedding of low/normal priorities, campaign- and job-level dedup, and
partial execution under overload.

Hard invariants, asserted every run:

* the queue stayed bounded (``max_pending_seen`` never exceeded the
  configured cap),
* nothing failed hard — every accepted campaign ends ``done``; overload
  shows up only as 429 rejections or ``partial`` results,
* the server drains clean at the end (exit path journals nothing).

Against a baseline (``benchmarks/serve-baseline.json``) the gate
compares machine-calibrated p99 submit latency and throughput, the
shed rate, and the campaign dedup hit rate, and exits 3 on a
regression.  Re-baseline with ``--update-baseline`` after an
intentional change.

Run as a standalone gate::

    PYTHONPATH=src python benchmarks/bench_serve_load.py --smoke
        [--baseline benchmarks/serve-baseline.json] [--update-baseline]

or as a benchmark exhibit::

    pytest benchmarks/bench_serve_load.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.obs.bench import _calibration_ops_per_s
from repro.serve import (
    BackgroundServer,
    QueuePolicy,
    ServeClient,
    ServeRejected,
    ServeScheduler,
    StateStore,
)
from repro.serve.loadgen import submission_stream

SMOKE_CAMPAIGNS = 200
FULL_CAMPAIGNS = 1000
MAX_PENDING = 64
MAX_DEPTH = 16
BASELINE_PATH = Path(__file__).parent / "serve-baseline.json"

#: Tolerated calibrated slowdown (throughput down / p99 up).
SPEED_TOLERANCE = 0.35
#: Tolerated absolute shed-rate increase over baseline.
SHED_TOLERANCE = 0.25
#: Tolerated absolute dedup-hit-rate drop below baseline.
DEDUP_TOLERANCE = 0.15


def _percentile(values: "list[float]", q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def collect(campaigns: int, seed: int = 2015) -> dict:
    """Replay ``campaigns`` submissions; measure, assert, summarise."""
    root = Path(tempfile.mkdtemp(prefix="repro-serve-load-"))
    try:
        scheduler = ServeScheduler(
            StateStore(root),
            policy=QueuePolicy(
                max_depth=MAX_DEPTH, max_pending=MAX_PENDING
            ),
            slots=2,
        )
        with BackgroundServer(scheduler) as server:
            client = ServeClient(port=server.port)
            submit_s: "list[float]" = []
            accepted: "list[str]" = []
            rejected = 0
            retry_hints: "list[int]" = []
            t0 = time.perf_counter()
            for tenant, body in submission_stream(campaigns, seed=seed):
                t_submit = time.perf_counter()
                try:
                    doc = client.submit(body, tenant=tenant)
                    accepted.append(doc["id"])
                except ServeRejected as exc:
                    rejected += 1
                    retry_hints.append(exc.retry_after_s)
                submit_s.append(time.perf_counter() - t_submit)
            for campaign_id in accepted:
                client.wait(campaign_id, timeout_s=600)
            wall_s = time.perf_counter() - t0
            stats = client.stats()
            statuses = [client.status(cid) for cid in accepted]
        pending_after_drain = scheduler.stats()["pending"]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    counters = stats["counters"]
    # -- hard invariants -------------------------------------------------
    assert stats["max_pending_seen"] <= MAX_PENDING, (
        f"queue bound violated: {stats['max_pending_seen']} > {MAX_PENDING}"
    )
    assert counters["failed"] == 0, f"hard failures: {counters['failed']}"
    not_done = [s["id"] for s in statuses if s["status"] != "done"]
    assert not not_done, f"accepted campaigns not done: {not_done}"
    assert pending_after_drain == 0, "server did not drain clean"
    assert all(h >= 1 for h in retry_hints), "429 without a Retry-After"

    partial = sum(1 for s in statuses if s.get("partial"))
    return {
        "campaigns": campaigns,
        "accepted": len(accepted),
        "rejected": rejected,
        "partial": partial,
        "shed_rate": rejected / campaigns,
        "dedup_campaigns": counters["deduped_campaigns"],
        "dedup_jobs": counters["deduped_jobs"],
        "dedup_hit_rate": (
            counters["deduped_campaigns"] / len(accepted)
            if accepted
            else 0.0
        ),
        "max_pending_seen": stats["max_pending_seen"],
        "wall_s": wall_s,
        "throughput_campaigns_per_s": len(accepted) / wall_s,
        "p50_submit_ms": _percentile(submit_s, 0.50) * 1e3,
        "p99_submit_ms": _percentile(submit_s, 0.99) * 1e3,
    }


def format_stats(stats: dict) -> str:
    return "\n".join(
        [
            f"campaigns {stats['campaigns']}: "
            f"{stats['accepted']} accepted, {stats['rejected']} shed "
            f"(rate {stats['shed_rate']:.2%}), {stats['partial']} partial",
            f"dedup: {stats['dedup_campaigns']} campaigns "
            f"(hit rate {stats['dedup_hit_rate']:.2%}), "
            f"{stats['dedup_jobs']} jobs via cache",
            f"queue: max pending {stats['max_pending_seen']} "
            f"(bound {MAX_PENDING})",
            f"latency: p50 {stats['p50_submit_ms']:.2f} ms, "
            f"p99 {stats['p99_submit_ms']:.2f} ms submit",
            f"throughput: {stats['throughput_campaigns_per_s']:.1f} "
            f"campaigns/s over {stats['wall_s']:.2f} s",
        ]
    )


def compare(
    baseline: dict, stats: dict, calibration: float
) -> "list[str]":
    """Calibrated regression check; returns failure messages."""
    mode_base = baseline["modes"].get(str(stats["campaigns"]))
    if mode_base is None:
        return [
            f"baseline has no entry for {stats['campaigns']} campaigns "
            f"(has: {sorted(baseline['modes'])})"
        ]
    machine_ratio = calibration / baseline["calibration_ops_per_s"]
    failures = []

    calibrated_throughput = (
        stats["throughput_campaigns_per_s"]
        / mode_base["throughput_campaigns_per_s"]
        / machine_ratio
    )
    if calibrated_throughput < 1.0 - SPEED_TOLERANCE:
        failures.append(
            f"throughput regressed: {calibrated_throughput:.2f}x "
            f"calibrated (floor {1 - SPEED_TOLERANCE:.2f}x)"
        )

    # Latency scales inversely with machine speed: normalise the
    # measurement to the baseline machine before comparing.
    calibrated_p99 = stats["p99_submit_ms"] * machine_ratio
    ceiling = mode_base["p99_submit_ms"] * (1.0 + SPEED_TOLERANCE)
    if calibrated_p99 > ceiling and calibrated_p99 > 1.0:
        failures.append(
            f"p99 submit latency regressed: {calibrated_p99:.2f} ms "
            f"calibrated vs ceiling {ceiling:.2f} ms"
        )

    if stats["shed_rate"] > mode_base["shed_rate"] + SHED_TOLERANCE:
        failures.append(
            f"shed rate regressed: {stats['shed_rate']:.2%} vs baseline "
            f"{mode_base['shed_rate']:.2%} (+{SHED_TOLERANCE:.0%} allowed)"
        )

    if stats["dedup_hit_rate"] < (
        mode_base["dedup_hit_rate"] - DEDUP_TOLERANCE
    ):
        failures.append(
            f"dedup hit rate regressed: {stats['dedup_hit_rate']:.2%} vs "
            f"baseline {mode_base['dedup_hit_rate']:.2%} "
            f"(-{DEDUP_TOLERANCE:.0%} allowed)"
        )
    return failures


def _baseline_entry(stats: dict) -> dict:
    return {
        "throughput_campaigns_per_s": stats["throughput_campaigns_per_s"],
        "p99_submit_ms": stats["p99_submit_ms"],
        "shed_rate": stats["shed_rate"],
        "dedup_hit_rate": stats["dedup_hit_rate"],
    }


def test_serve_load(benchmark):
    stats = benchmark.pedantic(
        collect, args=(SMOKE_CAMPAIGNS,), iterations=1, rounds=1
    )
    print()
    print(format_stats(stats))
    assert stats["accepted"] > 0
    assert stats["dedup_hit_rate"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"{SMOKE_CAMPAIGNS} campaigns instead of {FULL_CAMPAIGNS}",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare against this baseline; exit 3 on regression",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write this run's numbers into {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="save the run's stats as JSON"
    )
    args = parser.parse_args(argv)
    campaigns = SMOKE_CAMPAIGNS if args.smoke else FULL_CAMPAIGNS

    stats = collect(campaigns, seed=args.seed)
    print(format_stats(stats))
    calibration = _calibration_ops_per_s()

    if args.json:
        document = dict(stats)
        document["calibration_ops_per_s"] = calibration
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.json}")

    if args.update_baseline:
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
        else:
            baseline = {
                "kind": "serve-load-baseline",
                "schema_version": 1,
                "modes": {},
            }
        baseline["calibration_ops_per_s"] = calibration
        baseline["modes"][str(campaigns)] = _baseline_entry(stats)
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures = compare(baseline, stats, calibration)
        if failures:
            # One remeasure before failing: a noisy CI slice can
            # inflate latency percentiles far beyond any code change.
            retry = collect(campaigns, seed=args.seed)
            print("remeasured:")
            print(format_stats(retry))
            retry_failures = compare(baseline, retry, calibration)
            if retry_failures:
                for line in retry_failures:
                    print(f"FAIL: {line}", file=sys.stderr)
                return 3
            failures = []
        print("baseline comparison ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
