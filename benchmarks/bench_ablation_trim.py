"""Ablation — sensitivity of the evaluation to the 10 % trim.

The paper trims the first and last 10 % of each program's samples to
remove start-up/tear-down transients.  With the simulator's transients
enabled, skipping the trim visibly *under-reports* steady power (the
ramps drag the mean down), while any trim from 5 % to 40 % lands on the
same answer — the method is robust to the exact fraction but not to
omitting the step.
"""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.engine import Simulator
from repro.hardware import XEON_E5462


def collect():
    rows = {}
    for trim in (0.0, 0.05, 0.10, 0.20, 0.40):
        result = evaluate_server(
            XEON_E5462, Simulator(XEON_E5462), trim=trim
        )
        rows[trim] = (result.score, result.row("HPL P4 Mf").watts)
    return rows


def test_trim_ablation(benchmark):
    rows = benchmark(collect)
    print_series(
        "Ablation: trim fraction vs score and the HPL P4 Mf row "
        "(Xeon-E5462)",
        [
            (f"{trim:.0%}", round(score, 5), round(watts, 2))
            for trim, (score, watts) in rows.items()
        ],
        ("Trim", "Score", "HPL P4 Mf W"),
    )
    trimmed_scores = [rows[t][0] for t in (0.05, 0.10, 0.20, 0.40)]
    assert max(trimmed_scores) - min(trimmed_scores) < 0.001
    # Untrimmed averages include the ramps: measurably lower watts.
    assert rows[0.0][1] < rows[0.10][1] - 1.0
