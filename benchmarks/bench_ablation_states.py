"""Ablation — what each part of the five-state matrix contributes.

Compares the full ten-row score against reduced designs: HPL-only
(Green500-like), EP-only, and full-memory-only.  The full matrix sits
between the HPL-only and EP-only extremes, which is the paper's argument
for combining the two programs.
"""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.hardware import XEON_E5462


def collect():
    result = evaluate_server(XEON_E5462)
    def mean_ppw(rows):
        return sum(r.ppw for r in rows) / len(rows)

    hpl_rows = [r for r in result.rows if r.label.startswith("HPL")]
    ep_rows = [r for r in result.rows if r.label.startswith("ep.")]
    mf_rows = [r for r in result.rows if r.label.endswith("Mf")]
    return {
        "full matrix (10 rows)": result.score,
        "HPL rows only": mean_ppw(hpl_rows),
        "EP rows only": mean_ppw(ep_rows),
        "full-memory rows only": mean_ppw(mf_rows),
    }


def test_state_ablation(benchmark):
    scores = benchmark(collect)
    rows = [(k, round(v, 5)) for k, v in scores.items()]
    print_series(
        "Ablation: score under reduced state matrices (Xeon-E5462)",
        rows,
        ("Design", "Mean PPW"),
    )
    assert (
        scores["EP rows only"]
        < scores["full matrix (10 rows)"]
        < scores["HPL rows only"]
    )
