"""Shared fixtures and helpers for the exhibit benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark regenerates one table or figure of the paper and prints
the reproduced rows next to the published values, so the comparison is a
visual diff (absolute watts are expected to be close because the power
model is calibrated to the paper's anchors; everything else is a model
prediction).
"""

from __future__ import annotations

import pytest

from repro.engine import Simulator
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462


@pytest.fixture(scope="session")
def sim_e5462():
    return Simulator(XEON_E5462)


@pytest.fixture(scope="session")
def sim_opteron():
    return Simulator(OPTERON_8347)


@pytest.fixture(scope="session")
def sim_4870():
    return Simulator(XEON_4870)


def print_series(title: str, rows: "list[tuple]", headers: "tuple[str, ...]"):
    """Print one exhibit as an aligned table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), max((len(f"{r[i]}") for r in rows), default=0))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(f"{v}".ljust(w) for v, w in zip(row, widths)))
