"""Table II — normalized power on the Xeon-4870, processes 1 to 40.

The paper normalises each program's average power; empty cells follow
each program's process-count rule (only EP and HPL run everywhere).
"""

from conftest import print_series

from repro.core.sweeps import table2_power_matrix

PROCESS_ROWS = (1, 2, 4, 8, 9, 16, 25, 32, 36, 39, 40)
COLUMNS = ("hpl", "bt", "ep", "ft", "is", "lu", "mg", "sp", "spec")


def test_table2_power_4870(benchmark, sim_4870):
    table = benchmark(table2_power_matrix, sim_4870, PROCESS_ROWS)
    peak = max(max(row.values()) for row in table.values())
    rows = [
        (
            n,
            *(
                f"{table[n][c] / peak:.2f}" if c in table[n] else ""
                for c in COLUMNS
            ),
        )
        for n in PROCESS_ROWS
    ]
    print_series(
        "Table II: normalized power on Xeon-4870 "
        "(paper: HPL 0.45->0.74, EP 0.44->0.60)",
        rows,
        ("Procs", *[c.upper() for c in COLUMNS]),
    )
    # Shape: only EP+HPL at 39; monotone EP series; HPL spans a wide range.
    assert set(table[39]) == {"hpl", "ep"}
    assert table[1]["hpl"] / peak < 0.65
    ep_series = [table[n]["ep"] for n in PROCESS_ROWS]
    assert ep_series == sorted(ep_series)
