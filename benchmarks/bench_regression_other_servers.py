"""Extension — the regression methodology on the other two servers.

The paper trains its power model only on the Xeon-4870.  The methodology
is machine-agnostic, so this bench runs the identical pipeline on the
Xeon-E5462 and Opteron-8347 and shows the PMU features explain those
machines' power too.
"""

from conftest import print_series

from repro.core.regression import collect_hpcc_training, train_power_model
from repro.hardware import OPTERON_8347, XEON_E5462


def collect():
    out = {}
    for server in (XEON_E5462, OPTERON_8347):
        dataset = collect_hpcc_training(server)
        model = train_power_model(dataset, server_name=server.name)
        out[server.name] = model
    return out


def test_regression_generalises(benchmark):
    models = benchmark(collect)
    rows = [
        (
            name,
            model.n_observations,
            f"{model.r_square:.3f}",
            f"{model.ols.standard_error:.3f}",
        )
        for name, model in models.items()
    ]
    print_series(
        "Section-VI pipeline on the other servers (paper: 4870 only, "
        "R^2 = 0.94)",
        rows,
        ("Server", "Obs", "R^2", "Std err"),
    )
    for model in models.values():
        assert model.r_square > 0.75
        # Cores or instructions lead the stepwise selection on every
        # machine — the paper's "b1 and b2 are more influential" claim.
        # (On the Opteron-8347, whose published power is strongly
        # sublinear in cores, the core count enters first.)
        assert model.selected[0] in (0, 1)