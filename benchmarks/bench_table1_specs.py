"""Table I — system characteristics of the three servers."""

from conftest import print_series

from repro.hardware import BUILTIN_SERVERS


def test_table1_specs(benchmark):
    def build():
        return {
            name: (
                s.processor.model,
                s.total_cores,
                s.chips,
                s.processor.frequency_mhz,
                s.memory.total_gb,
                round(s.gflops_peak, 1),
            )
            for name, s in BUILTIN_SERVERS.items()
        }

    table = benchmark(build)
    rows = [(name, *values) for name, values in table.items()]
    print_series(
        "Table I: system characteristics",
        rows,
        ("Server", "Processor", "Cores", "Chips", "MHz", "Mem GB", "Peak GF"),
    )
    assert table["Xeon-4870"][2] == 4
