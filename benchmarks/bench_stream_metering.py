"""Streaming metering gate — O(window) memory and batch bit-identity.

Drives a synthetic 1 Hz campaign stream (W program windows separated by
idle gaps) through :class:`repro.metering.stream.StreamingWindow` and
measures, with ``tracemalloc``:

* the streaming pipeline's peak memory at trace length L and at 4L —
  the peak must *not* scale with the trace (``O(window)``), so the 4L
  peak is capped at ``MEMORY_GROWTH_CEILING`` times the L peak;
* the batch pipeline's peak at 4L (it materialises the whole trace) —
  the streaming peak must stay below ``BATCH_FRACTION_CEILING`` of it.

Every run also re-asserts the bit-identity contract: the finalised
window statistics must equal the batch ``extract_window`` →
``trimmed_stats`` numbers exactly, window for window, bit for bit.

Against a baseline (``benchmarks/stream-baseline.json``) the gate
compares machine-calibrated streaming throughput and exits 3 on a
regression.  Re-baseline with ``--update-baseline`` after an
intentional change.

Run as a standalone gate::

    PYTHONPATH=src python benchmarks/bench_stream_metering.py --smoke
        [--baseline benchmarks/stream-baseline.json] [--update-baseline]

or as a benchmark exhibit::

    pytest benchmarks/bench_stream_metering.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.metering.analysis import extract_window, trimmed_stats
from repro.metering.stream import StreamingWindow, WindowSpec
from repro.obs.bench import _calibration_ops_per_s

SMOKE_WINDOWS = 16
FULL_WINDOWS = 64
WINDOW_S = 120
GAP_S = 10
CHUNK = 256
BASELINE_PATH = Path(__file__).parent / "stream-baseline.json"

#: 4x the trace may cost at most this factor in streaming peak memory.
MEMORY_GROWTH_CEILING = 1.5
#: Streaming peak must stay below this fraction of the batch peak.
BATCH_FRACTION_CEILING = 0.5
#: Tolerated calibrated throughput slowdown against the baseline.
SPEED_TOLERANCE = 0.35


def _specs(windows: int, gap_s: int = GAP_S) -> "list[WindowSpec]":
    period = WINDOW_S + gap_s
    return [
        WindowSpec(f"w{i:03d}", float(i * period), float(i * period + WINDOW_S))
        for i in range(windows)
    ]


def _stretched_gap(factor: int) -> int:
    """The gap that makes the trace ``factor`` times longer.

    The window count and size stay fixed — only the idle trace between
    programs grows — so anything the streaming pipeline retains *per
    window* (open buffers, finalised summaries) is held constant and
    the measured growth isolates what scales with the trace itself.
    """
    return factor * (WINDOW_S + GAP_S) - WINDOW_S


def _chunk_stream(windows: int, seed: int, gap_s: int = GAP_S):
    """Yield ``(times, watts)`` chunks of the synthetic campaign trace.

    The trace is generated chunk by chunk from the seed, so the
    streaming path never holds more than ``CHUNK`` samples of it.
    """
    rng = np.random.default_rng(seed)
    total = windows * (WINDOW_S + gap_s)
    start = 0
    while start < total:
        n = min(CHUNK, total - start)
        times = np.arange(start, start + n, dtype=float)
        watts = 250.0 + 20.0 * rng.standard_normal(n)
        yield times, watts
        start += n


def _run_streaming(windows: int, seed: int, gap_s: int = GAP_S):
    pipeline = StreamingWindow(trim=0.1)
    for spec in _specs(windows, gap_s):
        pipeline.add_window(spec)
    n_samples = 0
    for times, watts in _chunk_stream(windows, seed, gap_s):
        pipeline.push_many(times, watts)
        n_samples += times.size
    return pipeline.finalize(), n_samples


def _run_batch(windows: int, seed: int, gap_s: int = GAP_S):
    chunks = list(_chunk_stream(windows, seed, gap_s))
    times = np.concatenate([t for t, _ in chunks])
    watts = np.concatenate([w for _, w in chunks])
    return [
        trimmed_stats(
            extract_window(times, watts, spec.start_s, spec.end_s), 0.1
        )
        for spec in _specs(windows, gap_s)
    ]


def _peak_bytes(fn, *args) -> tuple[object, int]:
    tracemalloc.start()
    try:
        out = fn(*args)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return out, peak


def collect(windows: int, seed: int = 2015) -> dict:
    """Measure one gate pass; asserts bit-identity along the way."""
    # Throughput, untraced (tracemalloc slows allocation).
    started = time.perf_counter()
    results, n_samples = _run_streaming(windows, seed)
    elapsed = time.perf_counter() - started

    batch = _run_batch(windows, seed)
    for window, expected in zip(results, batch):
        if window.stats != expected:
            raise AssertionError(
                f"bit-identity violated on {window.spec.label}: "
                f"{window.stats} != {expected}"
            )

    gap_4x = _stretched_gap(4)
    (_, stream_peak_1x) = _peak_bytes(_run_streaming, windows, seed)
    (_, stream_peak_4x) = _peak_bytes(_run_streaming, windows, seed, gap_4x)
    (_, batch_peak_4x) = _peak_bytes(_run_batch, windows, seed, gap_4x)

    return {
        "windows": windows,
        "samples": int(n_samples),
        "throughput_samples_per_s": n_samples / elapsed,
        "stream_peak_1x_kb": stream_peak_1x / 1024,
        "stream_peak_4x_kb": stream_peak_4x / 1024,
        "batch_peak_4x_kb": batch_peak_4x / 1024,
        "memory_growth_4x": stream_peak_4x / stream_peak_1x,
        "batch_fraction_4x": stream_peak_4x / batch_peak_4x,
    }


def format_stats(stats: dict) -> str:
    return (
        f"windows={stats['windows']} samples={stats['samples']}\n"
        f"throughput: {stats['throughput_samples_per_s']:,.0f} samples/s\n"
        f"peak memory: stream {stats['stream_peak_1x_kb']:.0f} KB (1x) / "
        f"{stats['stream_peak_4x_kb']:.0f} KB (4x), "
        f"batch {stats['batch_peak_4x_kb']:.0f} KB (4x)\n"
        f"growth at 4x trace: {stats['memory_growth_4x']:.2f}x "
        f"(ceiling {MEMORY_GROWTH_CEILING}x)\n"
        f"fraction of batch peak: {stats['batch_fraction_4x']:.2f} "
        f"(ceiling {BATCH_FRACTION_CEILING})"
    )


def check_memory(stats: dict) -> "list[str]":
    """The O(window) invariants — machine-independent, always gated."""
    failures = []
    if stats["memory_growth_4x"] > MEMORY_GROWTH_CEILING:
        failures.append(
            f"streaming peak grew {stats['memory_growth_4x']:.2f}x on a "
            f"4x trace (ceiling {MEMORY_GROWTH_CEILING}x): not O(window)"
        )
    if stats["batch_fraction_4x"] > BATCH_FRACTION_CEILING:
        failures.append(
            f"streaming peak is {stats['batch_fraction_4x']:.2f} of the "
            f"batch peak (ceiling {BATCH_FRACTION_CEILING}): not O(window)"
        )
    return failures


def compare(baseline: dict, stats: dict, calibration: float) -> "list[str]":
    failures = check_memory(stats)
    mode_base = baseline.get("modes", {}).get(str(stats["windows"]))
    if mode_base is None:
        failures.append(f"baseline has no mode {stats['windows']}")
        return failures
    machine_ratio = calibration / baseline["calibration_ops_per_s"]
    calibrated = (
        stats["throughput_samples_per_s"]
        / mode_base["throughput_samples_per_s"]
        / machine_ratio
    )
    if calibrated < 1.0 - SPEED_TOLERANCE:
        failures.append(
            f"throughput regressed: {calibrated:.2f}x calibrated "
            f"(floor {1 - SPEED_TOLERANCE:.2f}x)"
        )
    return failures


def _baseline_entry(stats: dict) -> dict:
    return {
        "throughput_samples_per_s": stats["throughput_samples_per_s"],
        "stream_peak_4x_kb": stats["stream_peak_4x_kb"],
        "batch_peak_4x_kb": stats["batch_peak_4x_kb"],
    }


def test_stream_metering(benchmark):
    stats = benchmark.pedantic(
        collect, args=(SMOKE_WINDOWS,), iterations=1, rounds=1
    )
    print()
    print(format_stats(stats))
    assert check_memory(stats) == []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"{SMOKE_WINDOWS} windows instead of {FULL_WINDOWS}",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare against this baseline; exit 3 on regression",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write this run's numbers into {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="save the run's stats as JSON"
    )
    args = parser.parse_args(argv)
    windows = SMOKE_WINDOWS if args.smoke else FULL_WINDOWS

    stats = collect(windows, seed=args.seed)
    print(format_stats(stats))
    calibration = _calibration_ops_per_s()

    if args.json:
        document = dict(stats)
        document["calibration_ops_per_s"] = calibration
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.json}")

    if args.update_baseline:
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
        else:
            baseline = {
                "kind": "stream-metering-baseline",
                "schema_version": 1,
                "modes": {},
            }
        baseline["calibration_ops_per_s"] = calibration
        baseline["modes"][str(windows)] = _baseline_entry(stats)
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    failures = check_memory(stats)
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures = compare(baseline, stats, calibration)
        if failures:
            # One remeasure before failing: a noisy slice can depress
            # throughput far beyond any code change.
            retry = collect(windows, seed=args.seed)
            print("remeasured:")
            print(format_stats(retry))
            failures = compare(baseline, retry, calibration)
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 3
    print("gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
