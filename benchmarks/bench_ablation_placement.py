"""Ablation — compact vs scatter process placement.

The paper runs MPI with default (compact) binding; this ablation shows
why placement belongs in the model: scattering a half-machine job across
all four of the Opteron-8347's chips wakes every uncore and measurably
raises power, while a full-machine job is placement-invariant.
"""

from conftest import print_series

from repro.engine import Simulator
from repro.hardware import OPTERON_8347
from repro.workloads.npb import NpbWorkload


def collect():
    rows = []
    for policy in ("compact", "scatter"):
        sim = Simulator(OPTERON_8347, placement_policy=policy)
        for n in (4, 8, 16):
            run = sim.run(NpbWorkload("ep", "C", n))
            rows.append((policy, n, round(run.average_power_watts(), 1)))
    return rows


def test_placement_ablation(benchmark):
    rows = benchmark(collect)
    print_series(
        "Ablation: EP.C power under compact vs scatter placement "
        "(Opteron-8347)",
        rows,
        ("Policy", "Procs", "Power W"),
    )
    watts = {(policy, n): w for policy, n, w in rows}
    # Scatter wakes more uncores at partial occupancy...
    assert watts[("scatter", 4)] > watts[("compact", 4)]
    # ...and is indistinguishable at full occupancy.
    assert abs(watts[("scatter", 16)] - watts[("compact", 16)]) < 3.0
