"""Fig. 9 — NPB power for classes A/B/C on the Xeon-E5462.

Paper: power does not rise significantly with memory usage (class); at
equal core counts EP draws the least; power rises with core count.
"""

from conftest import print_series

from repro.core.sweeps import npb_class_sweep


def test_fig9_npb_power(benchmark, sim_e5462):
    table = benchmark(
        npb_class_sweep, sim_e5462, (1, 2, 4), ("A", "B", "C"), "power"
    )
    rows = [
        (
            label,
            *(round(v, 1) if v is not None else "OOM" for v in entry),
        )
        for label, entry in table.items()
    ]
    print_series(
        "Fig. 9: NPB power (W) for A/B/C on Xeon-E5462 "
        "(paper range ~120-230 W)",
        rows,
        ("Workload", "A", "B", "C"),
    )
    # Class moves power far less than core count does.
    for label, entry in table.items():
        watts = [w for w in entry if w is not None]
        assert max(watts) - min(watts) < 30.0, label
    # EP minimum at each core count (class C).
    for n in (1, 2, 4):
        ep = table[f"ep.{n}"][2]
        peers = [
            entry[2]
            for label, entry in table.items()
            if label.endswith(f".{n}") and entry[2] is not None
        ]
        assert ep == min(peers)
    # Power rises with core count for every program.
    for name in ("ep", "lu", "mg"):
        series = [table[f"{name}.{n}"][2] for n in (1, 2, 4)]
        assert series == sorted(series)
