"""Fig. 8 — NPB memory footprints for classes A/B/C on the Xeon-E5462.

Paper: footprint is decided by the class, not the process count; FT is
the largest and fastest-growing, EP the smallest and flattest; CG class C
exceeds the machine.
"""

from conftest import print_series

from repro.core.sweeps import npb_class_sweep


def test_fig8_npb_memory(benchmark, sim_e5462):
    table = benchmark(
        npb_class_sweep, sim_e5462, (1, 2, 4), ("A", "B", "C"), "memory"
    )
    rows = [
        (
            label,
            *(round(v, 0) if v is not None else "OOM" for v in entry),
        )
        for label, entry in table.items()
    ]
    print_series(
        "Fig. 8: NPB resident memory (MB incl. OS) on Xeon-E5462 "
        "(paper: FT largest, EP flat, CG.C OOM)",
        rows,
        ("Workload", "A", "B", "C"),
    )
    assert table["cg.1"][2] is None  # CG class C cannot run
    runnable_c = {
        label: entry[2]
        for label, entry in table.items()
        if entry[2] is not None
    }
    assert max(runnable_c, key=runnable_c.get).startswith("ft.")
    # EP's footprint is class-independent (up to sampler jitter).
    assert abs(table["ep.1"][0] - table["ep.1"][2]) < 0.02 * table["ep.1"][0]
