"""Table VIII — the regression coefficients b1..b6 and C.

Paper (normalised units): b1 +0.1216, b2 +0.8369, b3 -0.0086, b4 -0.0077,
b5 +0.0875, b6 -0.0705, C 2.37e-14.  Shape: b2 (instructions) dominates,
b1 (cores) positive, C ~ 0.
"""

from conftest import print_series

from repro.core.regression import collect_hpcc_training, train_power_model
from repro.hardware import XEON_4870
from repro.hardware.pmu import REGRESSION_FEATURES

PAPER_B = (0.121596, 0.836926, -0.008648, -0.007731, 0.087493, -0.070519)


def test_table8(benchmark):
    def train():
        dataset = collect_hpcc_training(XEON_4870)
        return train_power_model(dataset, server_name="Xeon-4870")

    model = benchmark(train)
    b = model.coefficients_full()
    rows = [
        (f"b{i + 1} [{name}]", f"{b[i]:+.6f}", f"{PAPER_B[i]:+.6f}")
        for i, name in enumerate(REGRESSION_FEATURES)
    ]
    rows.append(("C", f"{model.intercept:+.3e}", "+2.37e-14"))
    print_series(
        "Table VIII: regression coefficients on Xeon-4870 (ours vs paper)",
        rows,
        ("Index", "Value", "Paper"),
    )
    # Shape assertions the paper draws from this table.
    assert b[1] > 0 and b[1] == max(b)  # instructions dominate
    assert b[0] > 0  # core count positive
    assert abs(model.intercept) < 1e-10  # C collapses after normalisation
