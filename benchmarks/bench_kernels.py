"""Compute-kernel timing benchmarks (pytest-benchmark's timing output).

These time the executable mini-kernels; the exhibit benchmarks above
time the simulation pipelines.
"""

import numpy as np
import pytest

from repro.kernels.cg import conjugate_gradient, random_spd_matrix
from repro.kernels.ep import run_ep
from repro.kernels.ft import run_ft
from repro.kernels.is_ import run_is
from repro.kernels.linalg import blocked_dgemm, blocked_lu
from repro.kernels.mg import poisson_rhs, v_cycle_solve
from repro.kernels.random_access import run_random_access
from repro.kernels.stream import run_stream


def test_bench_ep_kernel(benchmark):
    result = benchmark(run_ep, 16)
    assert abs(result.acceptance_rate - np.pi / 4) < 0.02


def test_bench_blocked_lu(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((128, 128))
    lu, piv = benchmark(blocked_lu, a, 32)
    assert lu.shape == a.shape


def test_bench_blocked_dgemm(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((128, 128))
    b = rng.standard_normal((128, 128))
    c = benchmark(blocked_dgemm, a, b, 64)
    assert np.allclose(c, a @ b)


def test_bench_cg_solve(benchmark):
    a = random_spd_matrix(1000, seed=0)
    b = np.ones(1000)
    result = benchmark(conjugate_gradient, a, b)
    assert result.converged


def test_bench_mg_vcycle(benchmark):
    f = poisson_rhs(32)
    result = benchmark(v_cycle_solve, f, 2)
    assert result.residual_norms[-1] < result.residual_norms[0]


def test_bench_ft(benchmark):
    result = benchmark(run_ft, (32, 32, 32), 2)
    assert len(result.checksums) == 2


def test_bench_is_sort(benchmark):
    result = benchmark(run_is, 16)
    assert result.verify()


def test_bench_stream_triad(benchmark):
    result = benchmark(run_stream, 500_000, 1)
    assert result.triad_gbs > 0


def test_bench_random_access(benchmark):
    result = benchmark(run_random_access, 16)
    assert result.n_updates == 4 << 16


def test_bench_block_tridiag(benchmark):
    from repro.kernels.block_tridiag import (
        block_thomas_solve,
        random_block_tridiagonal,
    )

    lower, diag, upper = random_block_tridiagonal(64, 32, 5, seed=0)
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal((64, 32, 5))
    x = benchmark(block_thomas_solve, lower, diag, upper, rhs)
    assert x.shape == rhs.shape


def test_bench_bt_adi_step(benchmark):
    from repro.kernels.bt_solver import BtMiniProblem, bt_adi_step

    problem = BtMiniProblem(n=17, dt=0.1, coupling=np.eye(5) * 0.5)
    u = np.zeros((17, 17, 17, 5))
    f = np.zeros((17, 17, 17, 5))
    f[8, 8, 8] = 1.0
    out = benchmark(bt_adi_step, u, f, problem)
    assert out.shape == u.shape
