"""Extension — energy-to-solution across programs (Fig. 11 generalised).

The paper shows the "parallelism saves energy" effect for EP only; this
bench sweeps several NPB programs and confirms the conclusion holds
broadly on the simulated machines.
"""

from conftest import print_series

from repro.core.energy import energy_scaling
from repro.hardware import XEON_E5462


def collect():
    return {
        program: energy_scaling(XEON_E5462, program, "C")
        for program in ("ep", "lu", "mg", "bt", "ft")
    }


def test_energy_scaling(benchmark):
    scalings = benchmark(collect)
    rows = [
        (
            f"{s.program}.C",
            s.serial.energy_kj.__round__(1),
            s.optimal.energy_kj.__round__(1),
            s.optimal.nprocs,
            f"{s.max_saving:.0%}",
        )
        for s in scalings.values()
    ]
    print_series(
        "Energy-to-solution on Xeon-E5462 (Fig. 11 generalised)",
        rows,
        ("Program", "Serial KJ", "Best KJ", "Best procs", "Saving"),
    )
    for s in scalings.values():
        assert s.parallelism_saves_energy(), s.program
