"""Fleet scaling — worker-count speedup and cache warm-up.

Runs the full Tables IV-VI evaluation matrix (ten states on each of the
three servers, 30 jobs) serially, through 1/2/4-worker fleet pools with
a cold cache, and again with the cache warm.  The cold 4-worker run
should beat serial by at least 2x on a 4-core machine, and a warm run —
every job answered from the content-addressed cache — by at least 10x.
The acceptance thresholds are asserted, so a scheduling or cache
regression fails this exhibit rather than just slowing it down.  The
pool-speedup assertion needs real parallelism and is skipped on machines
without 4 CPUs (time-sharing one core makes a pool strictly slower); the
warm-cache threshold holds on any hardware.
"""

import os
import time

from conftest import print_series

from repro.fleet import FleetRunner, ResultCache, evaluation_campaign


def _timed_run(campaign, workers, cache=None):
    t0 = time.perf_counter()
    outcome = FleetRunner(workers=workers, cache=cache).run(campaign)
    wall = time.perf_counter() - t0
    assert outcome.ok
    return outcome, wall


def collect(tmp_path):
    campaign = evaluation_campaign()
    n_jobs = len(campaign.jobs())

    _, serial_wall = _timed_run(campaign, workers=1)

    rows = [("serial", 1, "-", round(serial_wall, 2), "1.0x")]
    walls = {}
    for workers in (1, 2, 4):
        cache = ResultCache(tmp_path / f"cache-{workers}")
        _, cold_wall = _timed_run(campaign, workers, cache)
        # Best of two warm runs: a single read pass on a shared/loaded
        # box can absorb GC of the cold run's results.
        warm_outcome, warm_wall = _timed_run(campaign, workers, cache)
        assert warm_outcome.cache_hits == n_jobs
        warm_wall = min(warm_wall, _timed_run(campaign, workers, cache)[1])
        walls[workers] = (cold_wall, warm_wall)
        rows.append(
            (
                f"fleet w={workers}",
                workers,
                "cold",
                round(cold_wall, 2),
                f"{serial_wall / cold_wall:.1f}x",
            )
        )
        rows.append(
            (
                f"fleet w={workers}",
                workers,
                "warm",
                round(warm_wall, 3),
                f"{serial_wall / warm_wall:.1f}x",
            )
        )
    return n_jobs, serial_wall, walls, rows


def test_fleet_scaling(benchmark, tmp_path):
    n_jobs, serial_wall, walls, rows = benchmark.pedantic(
        collect, args=(tmp_path,), iterations=1, rounds=1
    )
    print_series(
        f"Fleet scaling on the evaluation matrix ({n_jobs} jobs)",
        rows,
        ("Mode", "Workers", "Cache", "Wall s", "Speedup"),
    )
    cold_4, _ = walls[4]
    # Acceptance: cold 4-worker run >= 2x serial (given the CPUs to do
    # it), warm run >= 10x anywhere.
    if (os.cpu_count() or 1) >= 4:
        assert serial_wall / cold_4 >= 2.0
    else:
        print(
            f"(cold-pool speedup not asserted: {os.cpu_count()} CPU(s) "
            "available, need 4)"
        )
    best_warm = min(warm for _, warm in walls.values())
    assert serial_wall / best_warm >= 10.0
