"""Ablation — sensitivity of the evaluation score to meter accuracy.

Swaps the WT210 for progressively noisier meters.  The score barely
moves: each row averages hundreds of 1 Hz samples, so meter noise
integrates out — the method's robustness comes from averaging, not from
an expensive meter.
"""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.engine import Simulator
from repro.hardware import XEON_E5462
from repro.metering.meter import MeterSpec


def collect():
    scores = {}
    for sigma in (0.1, 0.5, 2.0, 8.0):
        spec = MeterSpec(
            name=f"meter-{sigma}",
            max_watts=2000.0,
            noise_sigma_watts=sigma,
            gain_error=0.001,
            quantum_watts=0.01,
        )
        sim = Simulator(XEON_E5462, meter_spec=spec)
        scores[sigma] = evaluate_server(XEON_E5462, sim).score
    return scores


def test_noise_ablation(benchmark):
    scores = benchmark(collect)
    rows = [(f"{s} W", round(score, 5)) for s, score in scores.items()]
    print_series(
        "Ablation: evaluation score vs meter noise sigma (Xeon-E5462)",
        rows,
        ("Noise", "Score"),
    )
    values = list(scores.values())
    assert max(values) - min(values) < 0.003
