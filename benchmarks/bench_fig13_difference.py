"""Fig. 13 — the measured-minus-regression differences over NPB-B.

Paper: differences scatter around zero within roughly -1.5..+3
dimensionless units; EP's and SP's are the largest (Section VI-C).
"""

import numpy as np
from conftest import print_series

from repro.core.regression import (
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)
from repro.hardware import XEON_4870


def run_verification():
    dataset = collect_hpcc_training(XEON_4870)
    model = train_power_model(dataset, server_name="Xeon-4870")
    return verify_on_npb(XEON_4870, model, "B")


def test_fig13(benchmark):
    result = benchmark(run_verification)
    diff = result.difference
    per_program = result.per_program_rms()
    rows = sorted(per_program.items(), key=lambda kv: -kv[1])
    print_series(
        f"Fig. 13: per-program RMS difference, NPB-B "
        f"(range {diff.min():+.2f}..{diff.max():+.2f}; "
        "paper highlights EP and SP as worst)",
        [(name, round(rms, 3)) for name, rms in rows],
        ("Program", "RMS diff"),
    )
    assert diff.min() > -3.0 and diff.max() < 3.5
    worst = [name for name, _ in rows[:4]]
    assert "ep" in worst and "sp" in worst
    assert abs(float(np.mean(diff))) < 0.5
