"""Fig. 11 — EP.C energy vs core count on the Xeon-E5462.

Paper: energy *decreases* with more cores (the PPW gain outruns the power
rise), the argument that parallelism saves energy.
"""

from conftest import print_series

from repro.core.sweeps import ep_profile


def test_fig11_ep_energy(benchmark, sim_e5462):
    profile = benchmark(ep_profile, sim_e5462, (1, 2, 4))
    rows = [
        (n, round(t, 1), round(watts, 1), round(energy, 2))
        for n, t, watts, _ppw, energy in profile
    ]
    print_series(
        "Fig. 11: EP.C energy on Xeon-E5462 (paper: decreasing with cores)",
        rows,
        ("Cores", "Time s", "Power W", "Energy KJ"),
    )
    energies = [r[3] for r in rows]
    assert energies[0] > energies[1] > energies[2]
    assert energies[0] / energies[2] > 2.0
