"""Table IV — the proposed evaluation on the Xeon-E5462."""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.hardware import XEON_E5462
from repro.paperdata import paper_table

PAPER = {
    row.label: (row.gflops, row.watts, row.ppw)
    for row in paper_table("Xeon-E5462")
}


def test_table4(benchmark):
    result = benchmark(evaluate_server, XEON_E5462)
    rows = [
        (
            row.label,
            round(row.gflops, 4),
            round(row.watts, 2),
            round(row.ppw, 4),
            PAPER[row.label][1],
            PAPER[row.label][2],
        )
        for row in result.rows
    ]
    print_series(
        "Table IV: PPW on Xeon-E5462 (ours vs paper)",
        rows,
        ("Program", "GFLOPS", "Power W", "PPW", "paper W", "paper PPW"),
    )
    print(
        f"Average: {result.average_gflops:.2f} GFLOPS {result.average_watts:.2f} W"
        f"  (paper 13.50 / 182.29)"
    )
    print(f"Score (mean PPW): {result.score:.4f}  (paper table prints 0.6390 "
          f"= the PPW *sum*; sum/10 = 0.0639)")
    assert abs(result.score - 0.0639) / 0.0639 < 0.05
    for row in result.rows:
        assert abs(row.watts - PAPER[row.label][1]) / PAPER[row.label][1] < 0.08
