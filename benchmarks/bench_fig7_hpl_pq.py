"""Fig. 7 — P x Q grid influence over an NB sweep at 4 processes.

Paper: the P/Q combination affects power minimally; most values fall in
a ~15 W band.
"""

from conftest import print_series

from repro.core.sweeps import hpl_pq_sweep

NBS = (50, 100, 150, 200, 250, 300, 350, 400)
GRIDS = ((1, 4), (2, 2), (4, 1))


def test_fig7_pq_grid(benchmark, sim_e5462):
    table = benchmark(hpl_pq_sweep, sim_e5462, GRIDS, NBS)
    rows = [
        (f"HPL.NB_{nb}", *(round(table[g][i], 1) for g in GRIDS))
        for i, nb in enumerate(NBS)
    ]
    print_series(
        "Fig. 7: P/Q influence on Xeon-E5462 (W; paper: minimal, "
        "~230-245 W band)",
        rows,
        ("NBs", "P=1,Q=4", "P=2,Q=2", "P=4,Q=1"),
    )
    everything = [w for series in table.values() for w in series]
    assert max(everything) - min(everything) < 20.0
