"""Observability overhead — the disabled path must cost ~nothing.

Every hook in the engine and fleet layers guards on one boolean, so a
run with ``REPRO_OBS`` unset should be indistinguishable from a build
that predates ``repro.obs``; with tracing on, each simulator run adds
one span and two registry writes.  The pair of benchmarks below puts a
number on both, and the closing test pins the real invariant: identical
bits either way.
"""

import numpy as np
from conftest import print_series

from repro import obs
from repro.engine import Simulator
from repro.hardware import XEON_E5462
from repro.workloads.npb import NpbWorkload

ITERATIONS = 20


def _run_batch():
    simulator = Simulator(XEON_E5462, seed=2015)
    workload = NpbWorkload("ep", "C", 4)
    for _ in range(ITERATIONS):
        simulator.run(workload)


def test_obs_disabled(benchmark):
    obs.disable()
    try:
        benchmark(_run_batch)
    finally:
        obs.reset()


def test_obs_enabled(benchmark):
    def run():
        with obs.capture():
            _run_batch()

    benchmark(run)
    rows = [
        ("spans per batch", ITERATIONS),
        ("registry writes per run", 4),  # count, seconds, 2 sample counters
    ]
    print_series("Observability instrumentation volume", rows, ("What", "N"))


def test_results_identical_either_way():
    workload = NpbWorkload("ep", "C", 4)
    obs.disable()
    try:
        plain = Simulator(XEON_E5462, seed=2015).run(workload)
    finally:
        obs.reset()
    with obs.capture():
        traced = Simulator(XEON_E5462, seed=2015).run(workload)
    assert np.array_equal(plain.measured_watts, traced.measured_watts)
    assert np.array_equal(plain.times_s, traced.times_s)
    assert plain.pmu_samples == traced.pmu_samples
