"""Section V-C3 — the three method rankings side by side.

Paper:

* proposed method (as printed): E5462 (0.639) > 4870 (0.0975) > Opteron (0.0251)
* Green500:                     4870 (0.307) > E5462 (0.158) > Opteron (0.0618)
* SPECpower:                    E5462 (247)  > 4870 (139)    > Opteron (22.2)

The proposed-method comparison reproduces only with the paper's mixed
scaling (Table IV prints the PPW sum, Tables V/VI print sum/10); with a
consistent score the proposed ranking matches Green500's ordering.  Both
variants are printed; EXPERIMENTS.md discusses the discrepancy.
"""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.core.green500 import green500_score
from repro.core.spec_method import specpower_score
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462

SERVERS = (XEON_E5462, OPTERON_8347, XEON_4870)


def collect():
    ours = {s.name: evaluate_server(s).score for s in SERVERS}
    g500 = {s.name: green500_score(s).ppw for s in SERVERS}
    spec = {
        s.name: specpower_score(s).overall_ssj_ops_per_watt for s in SERVERS
    }
    return ours, g500, spec


def test_rankings(benchmark):
    ours, g500, spec = benchmark(collect)
    rows = [
        (
            name,
            round(ours[name], 4),
            round(g500[name], 4),
            round(spec[name], 1),
        )
        for name in ours
    ]
    print_series(
        "Section V-C3: the three evaluation methods",
        rows,
        ("Server", "Ours (mean PPW)", "Green500 PPW", "SPEC ssj_ops/W"),
    )
    # Green500: 4870 > E5462 > Opteron (paper 0.307 / 0.158 / 0.0618).
    assert g500["Xeon-4870"] > g500["Xeon-E5462"] > g500["Opteron-8347"]
    # SPECpower: E5462 > 4870 > Opteron (paper 247 / 139 / 22.2).
    assert spec["Xeon-E5462"] > spec["Xeon-4870"] > spec["Opteron-8347"]
    # Proposed method with the paper's printed scalings (sum for Table IV).
    assert ours["Xeon-E5462"] * 10 > ours["Xeon-4870"] > ours["Opteron-8347"]
