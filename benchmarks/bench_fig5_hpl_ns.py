"""Fig. 5 — HPL Ns (memory utilisation) sweep vs power, 1/2/4 cores.

Paper: core count decides power; memory utilisation's impact is limited;
the per-core-count curves never intersect.
"""

from conftest import print_series

from repro.core.sweeps import hpl_ns_sweep

FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def test_fig5_ns_sweep(benchmark, sim_e5462):
    table = benchmark(
        hpl_ns_sweep, sim_e5462, (1, 2, 4), FRACTIONS
    )
    rows = [
        (
            f"{int(f * 100)}%",
            round(table[1][i], 1),
            round(table[2][i], 1),
            round(table[4][i], 1),
        )
        for i, f in enumerate(FRACTIONS)
    ]
    print_series(
        "Fig. 5: HPL Ns sweep on Xeon-E5462 (W; paper: flat in memory, "
        "stepped in cores)",
        rows,
        ("Workload size", "1 core", "2 cores", "4 cores"),
    )
    for n in (1, 2, 4):
        assert max(table[n]) - min(table[n]) < 12.0
    assert max(table[1]) < min(table[2]) < max(table[2]) < min(table[4])
