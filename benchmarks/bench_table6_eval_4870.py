"""Table VI — the proposed evaluation on the Xeon-4870."""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.hardware import XEON_4870
from repro.paperdata import paper_table

PAPER = {row.label: row.watts for row in paper_table("Xeon-4870")}


def test_table6(benchmark):
    result = benchmark(evaluate_server, XEON_4870)
    rows = [
        (
            row.label,
            round(row.gflops, 3),
            round(row.watts, 2),
            round(row.ppw, 4),
            PAPER[row.label],
        )
        for row in result.rows
    ]
    print_series(
        "Table VI: PPW on Xeon-4870 (ours vs paper)",
        rows,
        ("Program", "GFLOPS", "Power W", "PPW", "paper W"),
    )
    print(f"Score: {result.score:.4f} (paper 0.0975)")
    assert abs(result.score - 0.0975) / 0.0975 < 0.05
    for row in result.rows:
        assert abs(row.watts - PAPER[row.label]) / PAPER[row.label] < 0.08
