"""Fig. 2 — SPECpower per-core CPU usage vs workload size.

Paper: CPU utilisation tracks the load level downward — unlike HPC codes
that pin cores at 100 %.
"""

from conftest import print_series

from repro.core.sweeps import specpower_usage_sweep


def test_fig2_cpu_usage(benchmark, sim_e5462):
    rows = benchmark(specpower_usage_sweep, sim_e5462)
    print_series(
        "Fig. 2: SPECpower per-core CPU usage (%), Xeon-E5462 "
        "(paper: tracks load)",
        [(name, round(cpu, 1)) for name, _mem, cpu, _w in rows],
        ("Workload size", "CPU %"),
    )
    measured = [cpu for name, _mem, cpu, _w in rows if name.endswith("%")]
    assert measured == sorted(measured, reverse=True)
