"""Table VII — the regression summary block on the Xeon-4870.

Paper: Multiple R 0.9697, R Square 0.9403, Adjusted 0.9403, Standard
Error 0.2444, Observations 6056.
"""

import pytest
from conftest import print_series

from repro.core.regression import collect_hpcc_training, train_power_model
from repro.hardware import XEON_4870


@pytest.fixture(scope="session")
def trained_model():
    dataset = collect_hpcc_training(XEON_4870)
    return train_power_model(dataset, server_name="Xeon-4870"), dataset


def test_table7(benchmark, trained_model):
    _, dataset = trained_model
    model = benchmark(train_power_model, dataset, "Xeon-4870")
    rows = [
        ("Multiple R", f"{model.ols.multiple_r:.6f}", "0.969707"),
        ("R Square", f"{model.ols.r_square:.6f}", "0.940331"),
        ("Adjusted R Square", f"{model.ols.adjusted_r_square:.6f}", "0.940272"),
        ("Standard Error", f"{model.ols.standard_error:.6f}", "0.244394"),
        ("Observation", str(model.n_observations), "6056"),
    ]
    print_series(
        "Table VII: regression result on Xeon-4870 (ours vs paper)",
        rows,
        ("Name", "Value", "Paper"),
    )
    assert 0.85 <= model.r_square <= 0.97
    assert 5500 <= model.n_observations <= 6500
