"""Per-row loop vs batched model inference — same bits, fewer passes.

Times the full NPB verification feature set (classes B and C on the
Xeon-4870 training machine, tiled for a stable timing window) through
two implementations of the same prediction:

* **per-row** — ``model.predict_normalized(features[i])`` one row at a
  time, the shape of the old ``verify_on_npb`` inner loop;
* **batch** — one :meth:`repro.model.InferenceEngine.predict` pass.

The outputs are asserted ``np.array_equal`` (bit-identical — the
registry's digest comparisons depend on it) before any number is
reported, so the benchmark can never trade correctness for speed.  The
acceptance bar is a 3x batch speedup, which CI enforces by running this
file with ``--smoke --check 3.0``.

Run as a benchmark exhibit::

    pytest benchmarks/bench_model_infer.py --benchmark-only -s

or as a standalone gate::

    PYTHONPATH=src python benchmarks/bench_model_infer.py [--smoke]
        [--check MIN_SPEEDUP]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.regression import (
    collect_hpcc_training,
    collect_npb_features,
    train_power_model,
)
from repro.hardware.specs import get_server
from repro.model import InferenceEngine
from repro.obs.bench import _calibration_ops_per_s


def _verification_features(server) -> np.ndarray:
    """The full NPB verification set: every class B and C run."""
    parts = [
        collect_npb_features(server, klass)[1] for klass in ("B", "C")
    ]
    return np.concatenate(parts)


def _timed(run) -> float:
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


def collect(repeats: int = 5, tile: int = 20, server_name: str = "Xeon-4870"):
    """Time both implementations over the tiled verification set.

    Per-row and batch windows are interleaved repeat by repeat (each
    keeping its best) so frequency drift biases the ratio as little as
    possible.  Bit-identity is asserted before timing starts.
    """
    server = get_server(server_name)
    model = train_power_model(
        collect_hpcc_training(server), server_name=server.name
    )
    base = _verification_features(server)
    features = np.tile(base, (tile, 1))
    engine = InferenceEngine(model)

    def per_row() -> np.ndarray:
        return np.concatenate(
            [
                model.predict_normalized(features[i])
                for i in range(features.shape[0])
            ]
        )

    def batch() -> np.ndarray:
        return engine.predict(features).normalized

    reference = per_row()
    batched = batch()
    assert np.array_equal(reference, batched), (
        "batched inference diverged from the per-row loop — "
        "a speedup over different bits is meaningless"
    )

    walls = {"per_row": float("inf"), "batch": float("inf")}
    for _ in range(repeats):
        walls["per_row"] = min(walls["per_row"], _timed(per_row))
        walls["batch"] = min(walls["batch"], _timed(batch))
    n = features.shape[0]
    calibration = _calibration_ops_per_s()
    return {
        "rows": n,
        "base_rows": base.shape[0],
        "tile": tile,
        "per_row_wall_s": walls["per_row"],
        "batch_wall_s": walls["batch"],
        "per_row_rps": n / walls["per_row"],
        "batch_rps": n / walls["batch"],
        "speedup": walls["per_row"] / walls["batch"],
        "calibration_ops_per_s": calibration,
    }


def format_stats(stats: dict) -> str:
    calibrated = stats["batch_rps"] / stats["calibration_ops_per_s"]
    return "\n".join(
        [
            f"{'rows':>8} {'per-row s':>10} {'batch s':>9} "
            f"{'per-row r/s':>11} {'batch r/s':>11} {'calibrated':>10} "
            f"{'speedup':>8}",
            f"{stats['rows']:>8} {stats['per_row_wall_s']:>10.4f} "
            f"{stats['batch_wall_s']:>9.4f} {stats['per_row_rps']:>11.0f} "
            f"{stats['batch_rps']:>11.0f} {calibrated:>10.3f} "
            f"{stats['speedup']:>7.2f}x",
            f"({stats['base_rows']} NPB B+C runs x {stats['tile']} tiles)",
        ]
    )


def test_model_infer_speedup(benchmark):
    stats = benchmark.pedantic(collect, iterations=1, rounds=1)
    print()
    print(format_stats(stats))
    # The acceptance bar, also gated in CI via --check.
    assert stats["speedup"] >= 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats, smaller tile (what the model-smoke CI "
        "job runs)",
    )
    parser.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="MIN_SPEEDUP",
        help="exit 3 unless the batch speedup reaches this",
    )
    parser.add_argument("--server", default="Xeon-4870")
    args = parser.parse_args(argv)
    repeats, tile = (3, 5) if args.smoke else (5, 20)
    stats = collect(repeats=repeats, tile=tile, server_name=args.server)
    print(format_stats(stats))
    if args.check is not None:
        speedup = stats["speedup"]
        if speedup < args.check:
            # Remeasure once with a longer window before failing: a
            # shared CI runner can catch a noisy slice on either side.
            retry = collect(
                repeats=repeats + 3, tile=tile, server_name=args.server
            )
            print("remeasured:")
            print(format_stats(retry))
            speedup = max(speedup, retry["speedup"])
        if speedup < args.check:
            print(
                f"FAIL: batch speedup {speedup:.2f}x is below the "
                f"required {args.check:.2f}x",
                file=sys.stderr,
            )
            return 3
        print(f"ok: batch speedup {speedup:.2f}x >= {args.check:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
