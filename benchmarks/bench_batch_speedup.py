"""Serial vs batch engine — calibrated throughput per sweep.

Times the same sweep run lists through ``engine="serial"`` and
``engine="batch"`` (bit-identical results, see ``docs/engine.md``) and
prints wall time, points/s, calibrated points/s (throughput divided by
the machine-speed calibration from ``repro.obs.bench``), and the
speedup.  The mixed-power sweep carries the acceptance threshold: the
batch engine must be at least 3x faster, which CI enforces by running
this file with ``--smoke --check 3.0``.

Run as a benchmark exhibit::

    pytest benchmarks/bench_batch_speedup.py --benchmark-only -s

or as a standalone gate::

    PYTHONPATH=src python benchmarks/bench_batch_speedup.py [--smoke]
        [--check MIN_SPEEDUP]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import sweeps
from repro.engine import Simulator
from repro.hardware.specs import get_server
from repro.obs.bench import _calibration_ops_per_s

#: (name, callable(simulator, engine) -> number of points) per sweep.
SWEEPS = (
    (
        "mixed_power",
        lambda sim, engine: len(
            sweeps.mixed_power_sweep(sim, (4, 2, 1), engine=engine)
        ),
    ),
    (
        "hpl_ns",
        lambda sim, engine: sum(
            len(v) for v in sweeps.hpl_ns_sweep(sim, engine=engine).values()
        ),
    ),
    (
        "npb_class",
        lambda sim, engine: sum(
            len(v)
            for v in sweeps.npb_class_sweep(sim, engine=engine).values()
        ),
    ),
)


def _timed(run) -> float:
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0


def collect(repeats: int = 3, seed: int = 2015):
    """Time every sweep through both engines; return per-sweep stats.

    Serial and batch windows are interleaved repeat by repeat (and each
    keeps its best) so CPU-frequency drift or a noisy neighbour biases
    the ratio as little as possible.
    """
    server = get_server("Xeon-E5462")
    calibration = _calibration_ops_per_s()
    stats = {}
    for name, sweep in SWEEPS:
        walls = {"serial": float("inf"), "batch": float("inf")}
        points = 0
        for engine in walls:  # warm lazy imports and caches, untimed
            points = sweep(Simulator(server, seed=seed), engine)
        for _ in range(repeats):
            for engine in walls:
                walls[engine] = min(
                    walls[engine],
                    _timed(
                        lambda: sweep(Simulator(server, seed=seed), engine)
                    ),
                )
        stats[name] = {
            "points": points,
            "serial_wall_s": walls["serial"],
            "batch_wall_s": walls["batch"],
            "serial_pps": points / walls["serial"],
            "batch_pps": points / walls["batch"],
            "speedup": walls["serial"] / walls["batch"],
            "calibration_ops_per_s": calibration,
        }
    return stats


def format_stats(stats: dict) -> str:
    lines = [
        f"{'sweep':<14} {'points':>6} {'serial s':>9} {'batch s':>9} "
        f"{'serial pt/s':>11} {'batch pt/s':>11} {'calibrated':>10} "
        f"{'speedup':>8}"
    ]
    for name, row in stats.items():
        calibrated = row["batch_pps"] / row["calibration_ops_per_s"]
        lines.append(
            f"{name:<14} {row['points']:>6} {row['serial_wall_s']:>9.4f} "
            f"{row['batch_wall_s']:>9.4f} {row['serial_pps']:>11.1f} "
            f"{row['batch_pps']:>11.1f} {calibrated:>10.3f} "
            f"{row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def test_batch_speedup(benchmark):
    stats = benchmark.pedantic(collect, iterations=1, rounds=1)
    print()
    print(format_stats(stats))
    # The tentpole acceptance bar, also gated in CI via --check.
    assert stats["mixed_power"]["speedup"] >= 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats (what the bench-smoke CI job runs)",
    )
    parser.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="MIN_SPEEDUP",
        help="exit 3 unless the mixed-power sweep speedup reaches this",
    )
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args(argv)
    repeats = 3 if args.smoke else 5
    stats = collect(repeats=repeats, seed=args.seed)
    print(format_stats(stats))
    if args.check is not None:
        speedup = stats["mixed_power"]["speedup"]
        if speedup < args.check:
            # Remeasure once with a longer window before failing: the
            # sweeps are milliseconds long and a shared CI runner can
            # catch a noisy slice on either side of the ratio.
            retry = collect(repeats=repeats + 3, seed=args.seed)
            print("remeasured:")
            print(format_stats(retry))
            speedup = max(speedup, retry["mixed_power"]["speedup"])
        if speedup < args.check:
            print(
                f"FAIL: mixed_power speedup {speedup:.2f}x is below the "
                f"required {args.check:.2f}x",
                file=sys.stderr,
            )
            return 3
        print(f"ok: mixed_power speedup {speedup:.2f}x >= {args.check:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
