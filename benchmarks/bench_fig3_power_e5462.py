"""Fig. 3 — power test on the Xeon-E5462: SPECpower, HPL, NPB class C
at 4/2/1 processes.

Paper shape: HPL.4 is the maximum, ep.C.1 the minimum; at equal process
counts EP always draws the least; CG class C cannot run (8 GB server).
"""

from conftest import print_series

from repro.core.sweeps import mixed_power_sweep


def test_fig3_power_e5462(benchmark, sim_e5462):
    points = benchmark(mixed_power_sweep, sim_e5462, (4, 2, 1))
    rows = [
        (p.label, round(p.watts, 1) if p.runnable else "cannot run")
        for p in points
    ]
    print_series(
        "Fig. 3: power (W) on Xeon-E5462 (paper range ~140-240 W)",
        rows,
        ("Benchmark", "Power W"),
    )
    watts = {p.label: p.watts for p in points if p.runnable}
    # HPL.4 tops the chart to within the 5 % idiosyncrasy envelope (the
    # paper's own Table II shows MG slightly above HPL at one count).
    assert watts["HPL.4"] >= max(watts.values()) * 0.95
    assert watts["ep.C.1"] == min(watts.values())
    # CG class C exceeds the 8 GB server at every process count.
    assert not any(p.runnable for p in points if p.label.startswith("cg."))
    for n in (4, 2):
        peers = [
            w
            for label, w in watts.items()
            if label.endswith(f".{n}") or label == f"HPL.{n}"
        ]
        assert watts[f"ep.C.{n}"] == min(peers)
