"""Fig. 6 — HPL NBs (block size) sweep vs power, 1-4 cores.

Paper: NB variation barely moves power; the per-core-count curves do not
intersect, showing core count is the decisive factor.
"""

from conftest import print_series

from repro.core.sweeps import hpl_nb_sweep

NBS = (50, 100, 150, 200, 250, 300, 350, 400)


def test_fig6_nbs_sweep(benchmark, sim_e5462):
    table = benchmark(hpl_nb_sweep, sim_e5462, (1, 2, 3, 4), NBS)
    rows = [
        (nb, *(round(table[n][i], 1) for n in (1, 2, 3, 4)))
        for i, nb in enumerate(NBS)
    ]
    print_series(
        "Fig. 6: HPL NBs sweep on Xeon-E5462 (W; paper: curves do not "
        "intersect; NB=50 dips ~10 W)",
        rows,
        ("NBs", "1 core", "2 cores", "3 cores", "4 cores"),
    )
    for lo, hi in ((1, 2), (2, 3), (3, 4)):
        assert max(table[lo]) < min(table[hi])
    assert table[4][-1] - table[4][0] > 3.0
