"""Fig. 1 — SPECpower memory usage vs workload size on the Xeon-E5462.

Paper: memory utilisation stays below 14 % and barely varies with load.
"""

from conftest import print_series

from repro.core.sweeps import specpower_usage_sweep


def test_fig1_memory_usage(benchmark, sim_e5462):
    rows = benchmark(specpower_usage_sweep, sim_e5462)
    print_series(
        "Fig. 1: SPECpower memory usage (%), Xeon-E5462 "
        "(paper: < 14 %, flat)",
        [(name, round(mem, 2)) for name, mem, _cpu, _w in rows],
        ("Workload size", "Memory %"),
    )
    values = [mem for _name, mem, _cpu, _w in rows]
    assert max(values) < 14.0
    assert max(values) - min(values) < 3.0
