"""Table V — the proposed evaluation on the Opteron-8347.

Note: the paper's Table V lists its EP rows at 1/4/8 processes while its
HPL rows use 1/half/full (1/8/16); the method definition (Table III) says
1/half/full for both, which is what this harness runs.  The score is
insensitive to the difference (EP PPWs are ~1e-4).
"""

from conftest import print_series

from repro.core.evaluation import evaluate_server
from repro.hardware import OPTERON_8347

PAPER_SCORE = 0.0251
PAPER_AVG_W = 446.5118


def test_table5(benchmark):
    result = benchmark(evaluate_server, OPTERON_8347)
    rows = [
        (row.label, round(row.gflops, 4), round(row.watts, 2), round(row.ppw, 4))
        for row in result.rows
    ]
    print_series("Table V: PPW on Opteron-8347", rows, ("Program", "GFLOPS", "Power W", "PPW"))
    print(
        f"Average power: {result.average_watts:.2f} W (paper {PAPER_AVG_W})\n"
        f"Score: {result.score:.4f} (paper {PAPER_SCORE})"
    )
    assert abs(result.score - PAPER_SCORE) / PAPER_SCORE < 0.06
    assert abs(result.average_watts - PAPER_AVG_W) / PAPER_AVG_W < 0.04
