"""Extension — measurement-chain uncertainty of the evaluation score.

Quantifies what the paper leaves implicit: how much the final score moves
under meter noise, phase ripple, and sampler jitter.  Small spread means
the single numbers in Tables IV-VI are trustworthy at the precision they
are quoted.
"""

from conftest import print_series

from repro.core.uncertainty import score_distribution
from repro.hardware import OPTERON_8347, XEON_E5462


def collect():
    return {
        server.name: score_distribution(server, n_repeats=5)
        for server in (XEON_E5462, OPTERON_8347)
    }


def test_score_uncertainty(benchmark):
    distributions = benchmark(collect)
    rows = [
        (
            name,
            f"{d.mean:.5f}",
            f"{d.std:.5f}",
            f"{d.relative_spread:.2%}",
        )
        for name, d in distributions.items()
    ]
    print_series(
        "Evaluation-score uncertainty over 5 measurement streams",
        rows,
        ("Server", "Mean", "Std", "Spread"),
    )
    for d in distributions.values():
        assert d.relative_spread < 0.02
