"""Fig. 10 — EP.C power and PPW vs core count on the Xeon-E5462.

Paper: both power (~140->190 W band) and PPW (up to ~1 MFLOPS/W) increase
with cores.
"""

from conftest import print_series

from repro.core.sweeps import ep_profile
from repro.units import gflops_to_mflops


def test_fig10_ep_profile(benchmark, sim_e5462):
    profile = benchmark(ep_profile, sim_e5462, (1, 2, 4))
    rows = [
        (n, round(watts, 1), round(gflops_to_mflops(ppw), 3))
        for n, _t, watts, ppw, _e in profile
    ]
    print_series(
        "Fig. 10: EP.C power and PPW on Xeon-E5462 "
        "(paper: power 145->174 W, PPW 0.2->0.7 MFLOPS/W)",
        rows,
        ("Cores", "Power W", "PPW MFLOPS/W"),
    )
    watts = [r[1] for r in rows]
    ppws = [r[2] for r in rows]
    assert watts == sorted(watts)
    assert ppws == sorted(ppws)
    assert ppws[-1] > 2 * ppws[0]
