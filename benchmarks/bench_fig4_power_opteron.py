"""Fig. 4 — power test on the Opteron-8347 at 16/8/4/2/1 processes.

Paper shape: HPL.16 is the maximum; EP has the lowest power in most
cases; HPL has the fastest growth with process count, EP the slowest.
"""

from conftest import print_series

from repro.core.sweeps import mixed_power_sweep


def test_fig4_power_opteron(benchmark, sim_opteron):
    points = benchmark(mixed_power_sweep, sim_opteron, (16, 8, 4, 2, 1))
    rows = [
        (p.label, round(p.watts, 1) if p.runnable else "cannot run")
        for p in points
    ]
    print_series(
        "Fig. 4: power (W) on Opteron-8347 (paper range ~300-550 W)",
        rows,
        ("Benchmark", "Power W"),
    )
    watts = {p.label: p.watts for p in points if p.runnable}
    # The Opteron's published anchors put EP within 10 W of HPL at 8
    # cores, leaving the per-core intensity term barely identifiable, so
    # the HPL-tops-the-chart property is the weakest on this machine
    # (communication-heavy SP can edge past it within the envelope).
    assert watts["HPL.16"] >= max(watts.values()) * 0.92
    # "EP has the lowest power in most cases" (the paper's own wording
    # for this machine): strictly lowest at full cores, within a few
    # watts of the minimum elsewhere.
    for n in (16, 8, 4):
        peers = [
            w
            for label, w in watts.items()
            if label.endswith(f".{n}") and not label.startswith("SPEC")
        ]
        if n == 16:
            assert watts[f"ep.C.{n}"] == min(peers)
        else:
            assert watts[f"ep.C.{n}"] <= min(peers) + 5.0
    hpl_growth = watts["HPL.16"] - watts["HPL.1"]
    ep_growth = watts["ep.C.16"] - watts["ep.C.1"]
    assert hpl_growth > ep_growth
