"""Cluster simulation scaling — wall clock vs node count.

Times the same fixed job mix on homogeneous machines of 100, 1000, and
10,000 nodes.  Node power is content-addressed (identical (server,
workload, seed) triples share one trace), so the simulator's cost is
``O(unique workloads + job trace seconds + makespan)`` — close to flat
in the node count — while a naive per-node loop would grow 100x from
the first machine to the last.

The acceptance gate: going 100 -> 10,000 nodes (100x) may cost at most
``--check`` of proportional growth in wall time — the default 0.5 means
wall(10k)/wall(100) <= 50, i.e. at least 2x better than linear.  In
practice the ratio is a few percent of linear; the loose bar only
guards the architecture (nobody reintroduced a per-node inner loop),
not machine speed.

Run as a benchmark exhibit::

    pytest benchmarks/bench_cluster_scaling.py --benchmark-only -s

or as a standalone gate::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py [--smoke]
        [--check MAX_FRACTION_OF_LINEAR]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cluster import ClusterJob, homogeneous_cluster, simulate_cluster
from repro.demand import ResourceDemand
from repro.fleet.spec import workload_to_dict
from repro.hardware.specs import get_server

NODE_COUNTS = (100, 1_000, 10_000)
N_JOBS = 24
HORIZON_S = 100.0


def fixed_jobmix(n_nodes: int, seed: int) -> "list[ClusterJob]":
    """A deterministic mix of 24 jobs over a ~100 s horizon.

    Job widths scale with the machine so every size is meaningfully
    loaded; workload *content* (6 distinct demands) does not, so the
    unique-run count the batch engine sees is identical at every size.
    """
    jobs = []
    for i in range(N_JOBS):
        variant = i % 6
        demand = ResourceDemand(
            program=f"synthetic-{variant}",
            nprocs=4,
            duration_s=HORIZON_S * (0.2 + 0.1 * variant),
            gflops=10.0 + variant,
            memory_mb=256.0,
            fp_intensity=0.3 + 0.1 * variant,
            comm_intensity=0.1 * variant,
        )
        jobs.append(
            ClusterJob(
                name=f"job-{i:03d}",
                workload=workload_to_dict(demand),
                n_nodes=max(1, (n_nodes // N_JOBS) * (1 + variant) // 3),
                submit_s=float(4 * i),
            )
        )
    return jobs


def collect(repeats: int = 3, seed: int = 2015) -> dict:
    """Time the simulation at every node count; keep each size's best."""
    server = get_server("Xeon-E5462")
    stats = {}
    for n_nodes in NODE_COUNTS:
        cluster = homogeneous_cluster(server, n_nodes, nodes_per_rack=32)
        jobs = fixed_jobmix(n_nodes, seed)
        simulate_cluster(cluster, jobs, seed=seed)  # warm caches, untimed
        wall = float("inf")
        result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = simulate_cluster(cluster, jobs, seed=seed)
            wall = min(wall, time.perf_counter() - t0)
        stats[n_nodes] = {
            "wall_s": wall,
            "makespan_s": result.makespan_s,
            "node_seconds": result.node_seconds,
            "jobs": len(result.rows),
        }
    first, last = NODE_COUNTS[0], NODE_COUNTS[-1]
    linear = last / first
    measured = stats[last]["wall_s"] / stats[first]["wall_s"]
    stats["fraction_of_linear"] = measured / linear
    return stats


def format_stats(stats: dict) -> str:
    lines = [
        f"{'nodes':>7} {'wall s':>9} {'makespan s':>11} "
        f"{'node-seconds':>13} {'jobs':>5}"
    ]
    for n_nodes in NODE_COUNTS:
        row = stats[n_nodes]
        lines.append(
            f"{n_nodes:>7} {row['wall_s']:>9.4f} {row['makespan_s']:>11} "
            f"{row['node_seconds']:>13} {row['jobs']:>5}"
        )
    lines.append(
        f"100x nodes cost {stats['fraction_of_linear']:.3f} of linear "
        f"wall-clock growth"
    )
    return "\n".join(lines)


def test_cluster_scaling(benchmark):
    stats = benchmark.pedantic(collect, iterations=1, rounds=1)
    print()
    print(format_stats(stats))
    # The tentpole acceptance bar, also gated in CI via --check.
    assert stats["fraction_of_linear"] <= 0.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats (what the CI smoke job runs)",
    )
    parser.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="MAX_FRACTION",
        help="exit 3 unless 100x nodes cost at most this fraction of "
        "linear wall-clock growth",
    )
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else 4
    stats = collect(repeats=repeats, seed=args.seed)
    print(format_stats(stats))
    if args.check is not None:
        fraction = stats["fraction_of_linear"]
        if fraction > args.check:
            # One longer remeasure before failing: the small-machine
            # denominator is milliseconds and a noisy CI slice there
            # inflates the whole ratio.
            retry = collect(repeats=repeats + 2, seed=args.seed)
            print("remeasured:")
            print(format_stats(retry))
            fraction = min(fraction, retry["fraction_of_linear"])
        if fraction > args.check:
            print(
                f"FAIL: 100x nodes cost {fraction:.3f} of linear growth, "
                f"above the allowed {args.check:.3f}",
                file=sys.stderr,
            )
            return 3
        print(
            f"ok: 100x nodes cost {fraction:.3f} of linear growth "
            f"<= {args.check:.3f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
