"""Extension — energy proportionality of the three servers.

Context for the ranking disagreement the paper reports: all three
machines idle at 55-60 % of their peak power, so a method that includes
idle and partial-load states (the proposed one, SPECpower) penalises big
idle draws that the Green500's peak-only view never sees.
"""

from conftest import print_series

from repro.core.proportionality import proportionality_report
from repro.hardware import OPTERON_8347, XEON_4870, XEON_E5462


def collect():
    return {
        s.name: proportionality_report(s)
        for s in (XEON_E5462, OPTERON_8347, XEON_4870)
    }


def test_proportionality(benchmark):
    reports = benchmark(collect)
    rows = [
        (
            name,
            round(r.idle_watts, 1),
            round(r.peak_watts, 1),
            f"{r.dynamic_range:.2f}",
            f"{r.mean_linear_deviation:.2f}",
        )
        for name, r in reports.items()
    ]
    print_series(
        "Energy proportionality (idle fraction is what the peak-only "
        "Green500 view ignores)",
        rows,
        ("Server", "Idle W", "Peak W", "Dyn range", "Lin deviation"),
    )
    for r in reports.values():
        assert r.idle_fraction > 0.5
