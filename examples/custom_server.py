"""Score your own machine model with the paper's method.

Defines a hypothetical dual-socket server from scratch, gives it a power
model two ways — the generic heuristic, and a calibration against your
own measurements (here: scaled variants of the paper's anchors) — and
evaluates it next to the built-in machines.

Run:  python examples/custom_server.py
"""

from repro import ServerSpec, XEON_E5462, evaluate_server
from repro.core.report import format_evaluation_table
from repro.engine import Simulator
from repro.hardware import calibrate_server
from repro.hardware.calibration import (
    PAPER_IDLE_WATTS,
    PAPER_POWER_ANCHORS,
    AnchorPoint,
)
from repro.hardware.power import SystemPowerModel
from repro.hardware.specs import CacheLevelSpec, MemorySpec, ProcessorSpec


def build_server() -> ServerSpec:
    """A hypothetical dual-socket 16-core machine."""
    processor = ProcessorSpec(
        model="Hypothetical-8C",
        frequency_mhz=2600,
        cores=8,
        flops_per_cycle=8,  # AVX-era FMA width
        dcache=CacheLevelSpec(1, 32, 8, instances_per_chip=8),
        l2=CacheLevelSpec(2, 256, 8, instances_per_chip=8),
        l3=CacheLevelSpec(3, 20480, 20, instances_per_chip=1, shared=True),
    )
    return ServerSpec(
        name="Hypothetical-2S16C",
        processor=processor,
        chips=2,
        memory=MemorySpec(total_gb=64, technology="DDR3", bandwidth_gbs=42.0),
        hpl_efficiency=0.88,
    )


def measured_anchors(server: ServerSpec) -> tuple[tuple[AnchorPoint, ...], float]:
    """Stand-in for your own meter readings.

    On a real machine you would run EP.C and HPL at 1/half/full cores
    with a wall-power meter and type the watts in here.  This demo scales
    the Xeon-E5462's published numbers to the hypothetical machine's
    size, remapping the anchor core counts to 1/half/full of the new
    machine.
    """
    base = PAPER_POWER_ANCHORS["Xeon-E5462"]
    idle = PAPER_IDLE_WATTS["Xeon-E5462"] * 1.6
    count_map = {1: 1, 2: server.half_cores(), 4: server.total_cores}
    anchors = tuple(
        AnchorPoint(
            program=a.program,
            nprocs=count_map[a.nprocs],
            memory_fraction=a.memory_fraction,
            watts=idle + (a.watts - PAPER_IDLE_WATTS["Xeon-E5462"]) * 1.9,
        )
        for a in base
    )
    return anchors, idle


def main() -> None:
    server = build_server()
    print(f"custom server: {server.name}, {server.total_cores} cores, "
          f"{server.gflops_peak:.0f} GFLOPS peak\n")

    # Variant 1: generic heuristic power model (no measurements needed).
    print("--- generic power model ---")
    generic = evaluate_server(server)
    print(format_evaluation_table(generic))

    # Variant 2: calibrate against your own meter readings.
    print("\n--- calibrated against (stand-in) measurements ---")
    anchors, idle = measured_anchors(server)
    report = calibrate_server(server, anchors=anchors, idle_watts=idle)
    print(f"calibration rms residual: {report.rms_residual_watts:.1f} W")
    simulator = Simulator(
        server, power_model=SystemPowerModel(server, report.coefficients)
    )
    calibrated = evaluate_server(server, simulator)
    print(format_evaluation_table(calibrated))

    reference = evaluate_server(XEON_E5462)
    print(
        f"\nscores: {server.name} generic {generic.score:.4f}, "
        f"calibrated {calibrated.score:.4f}; "
        f"Xeon-E5462 reference {reference.score:.4f}"
    )


if __name__ == "__main__":
    main()
