"""Batch evaluation with repro.fleet: parallel, cached, fault-tolerant.

Takes the same workload list as ``campaign_pipeline.py`` (the Section
V-C2 walkthrough), writes it out as a JSON campaign spec, and runs it
twice through the fleet: a cold run that simulates every job through a
worker pool, and a warm run answered entirely from the
content-addressed result cache.  Because the simulator seeds every
random stream from ``(seed, program label)``, both runs — and any
serial run — are bit-identical.

Run:  python examples/fleet_campaign.py
"""

import tempfile
from pathlib import Path

from repro import io as repro_io
from repro.fleet import EventLog, FleetRunner, ResultCache, demo_campaign


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)

        # The campaign spec is plain JSON — write it, read it back.
        spec_path = repro_io.save_json(
            repro_io.campaign_to_dict(demo_campaign()), base / "campaign.json"
        )
        campaign = repro_io.campaign_from_dict(repro_io.load_json(spec_path))
        print(
            f"campaign {campaign.name!r}: {len(campaign.jobs())} jobs, "
            f"seed {campaign.seed}\n"
        )

        cache = ResultCache(base / "cache")
        with EventLog(base / "events.jsonl") as events:
            runner = FleetRunner(workers=2, cache=cache, events=events)

            cold = runner.run(campaign)
            print("cold run (simulated through the pool):")
            print(cold.report().format())

            warm = runner.run(campaign)
            print("\nwarm run (content-addressed cache hits):")
            print(warm.report().format())

        # Same bits either way: the cache substitutes for simulation.
        for a, b in zip(cold.records, warm.records):
            assert (a.result.measured_watts == b.result.measured_watts).all()

        print(f"\n{'Job':<24} {'Power W':>9} {'PPW':>8}")
        for record in warm.records:
            run = record.result
            watts = run.average_power_watts()
            print(
                f"{record.job.label:<24} {watts:>9.2f} "
                f"{run.demand.gflops / watts:>8.4f}"
            )


if __name__ == "__main__":
    main()
