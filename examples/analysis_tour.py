"""Analysis tour: the library's beyond-the-paper tooling in one script.

Walks through the four analyses this reproduction adds on top of the
paper's method — all answering questions the paper raises but leaves
qualitative:

1. breakdown      — where do a state's watts actually go?
2. proportionality— how idle-dominated are these servers?
3. energy scaling — does "parallelism saves energy" generalise past EP?
4. uncertainty    — how trustworthy is a single-run score?

Run:  python examples/analysis_tour.py
"""

from repro.core.breakdown import breakdown
from repro.core.energy import energy_scaling
from repro.core.proportionality import proportionality_report
from repro.core.uncertainty import score_distribution
from repro.hardware import XEON_E5462
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


def main() -> None:
    server = XEON_E5462

    print("1. Where do the watts go?  (component breakdown)\n")
    for workload in (
        NpbWorkload("ep", "C", 4),
        HplWorkload(HplConfig(4, 0.95)),
    ):
        result = breakdown(server, workload)
        print(result.format())
        print(
            f"  -> dominant dynamic component: "
            f"{result.dominant_component()}\n"
        )

    print("2. How idle-dominated is the machine?  (proportionality)\n")
    report = proportionality_report(server)
    print(
        f"  {report.server}: idle {report.idle_watts:.0f} W is "
        f"{report.idle_fraction:.0%} of the {report.peak_watts:.0f} W "
        f"peak (dynamic range {report.dynamic_range:.2f})."
    )
    print(
        "  This is why a peak-only score (Green500) and a load-inclusive\n"
        "  score (the paper's method) can rank machines differently.\n"
    )

    print("3. Does parallelism save energy beyond EP?\n")
    for program in ("ep", "lu", "mg"):
        scaling = energy_scaling(server, program, "C")
        print(
            f"  {scaling.program}.C: serial "
            f"{scaling.serial.energy_kj:.1f} KJ -> best "
            f"{scaling.optimal.energy_kj:.1f} KJ at "
            f"{scaling.optimal.nprocs} procs "
            f"({scaling.max_saving:.0%} saved)"
        )
    print()

    print("4. How stable is the score under measurement noise?\n")
    dist = score_distribution(server, n_repeats=5)
    lo, hi = dist.interval()
    print(
        f"  score {dist.mean:.5f} +/- {dist.std:.5f} over 5 independent "
        f"meter streams\n  (2-sigma interval {lo:.5f}..{hi:.5f}, spread "
        f"{dist.relative_spread:.2%}) — the single numbers in the paper's\n"
        "  tables are safe at the precision they quote."
    )


if __name__ == "__main__":
    main()
