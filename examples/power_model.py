"""Train the PMU power regression on HPCC, verify on the NPB.

Reproduces the paper's Section VI end to end:

1. sweep the seven HPCC components from 1 to 40 processes on the
   Xeon-4870, collecting the six PMU counters every 10 s alongside the
   metered power (~6000 observations);
2. z-score everything and fit by forward stepwise + OLS (Tables VII and
   VIII);
3. verify against the NPB class-B and class-C sweeps (Figs. 12-13) with
   the Eq. (6)-(8) fitting R².

Run:  python examples/power_model.py
"""

from repro import (
    XEON_4870,
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)
from repro.core.report import (
    format_coefficients,
    format_regression_summary,
    format_verification,
)


def main() -> None:
    print("collecting HPCC training sweep on Xeon-4870 ...")
    dataset = collect_hpcc_training(XEON_4870)
    print(f"  {dataset.n_observations} observations "
          "(paper: 6056)")

    model = train_power_model(dataset, server_name="Xeon-4870")
    print()
    print(format_regression_summary(model))
    print()
    print(format_coefficients(model))

    for klass, paper in (("B", 0.634), ("C", 0.543)):
        print()
        result = verify_on_npb(XEON_4870, model, klass)
        print(format_verification(result, limit=12))
        print(f"  (paper R^2 for class {klass}: {paper})")
        rms = result.per_program_rms()
        worst = sorted(rms, key=rms.get, reverse=True)[:2]
        print(f"  worst-fit programs: {', '.join(worst)} "
              "(paper: EP and SP)")


if __name__ == "__main__":
    main()
