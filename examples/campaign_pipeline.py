"""The full Section V-C2 measurement procedure, end to end.

Demonstrates the complete metering pipeline the paper describes: run the
programs in sequence while the (simulated) WT210 logs 1 Hz samples
through WTViewer-style CSV files; then merge the CSVs, correct the
meter-PC clock offset, extract each program's window by execution time,
trim 10 % at both ends, and average.

The same workload list runs as a parallel, cached batch job in
``fleet_campaign.py`` (the ``repro.fleet`` service).

Run:  python examples/campaign_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import XEON_E5462
from repro.engine import Campaign, Simulator
from repro.metering.csvlog import read_power_csv
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload


def main() -> None:
    simulator = Simulator(XEON_E5462, seed=2015)
    campaign = Campaign(
        simulator,
        gap_s=30.0,  # idle gap between programs
        clock_offset_s=0.7,  # residual meter-PC clock offset
    )
    workloads = [
        NpbWorkload("ep", "C", 1),
        NpbWorkload("ep", "C", 2),
        NpbWorkload("ep", "C", 4),
        HplWorkload(HplConfig(nprocs=4, memory_fraction=0.5)),
        HplWorkload(HplConfig(nprocs=4, memory_fraction=0.95)),
    ]

    with tempfile.TemporaryDirectory() as tmp:
        csv_dir = Path(tmp)
        result = campaign.run(workloads, csv_dir=csv_dir)

        segments = sorted(csv_dir.glob("segment_*.csv"))
        print(f"WTViewer wrote {len(segments)} CSV segments; merged into "
              f"{result.merged_csv.name}")
        times, watts = read_power_csv(result.merged_csv)
        print(f"merged trace: {times.shape[0]} samples, "
              f"{watts.min():.1f}-{watts.max():.1f} W\n")

        print(f"{'Program':<12} {'GFLOPS':>9} {'Power W':>9} {'PPW':>8} "
              f"{'Energy KJ':>10}")
        for m in result.measurements:
            print(
                f"{m.label:<12} {m.gflops:>9.4f} {m.average_watts:>9.2f} "
                f"{m.ppw:>8.4f} {m.energy_kilojoules:>10.2f}"
            )


if __name__ == "__main__":
    main()
