"""Compare the three power evaluation methods on all three servers.

Reproduces Section V-C3: the proposed HPL+EP method, the Green500 (HPL
peak PPW), and SPECpower_ssj2008 rank the same machines differently,
because each weighs idle power and partial-load behaviour differently.

Run:  python examples/compare_methods.py
"""

from repro import (
    OPTERON_8347,
    XEON_4870,
    XEON_E5462,
    evaluate_server,
    green500_score,
    specpower_score,
)

SERVERS = (XEON_E5462, OPTERON_8347, XEON_4870)


def ranking(scores: dict) -> str:
    ordered = sorted(scores, key=scores.get, reverse=True)
    return " > ".join(f"{name} ({scores[name]:.4g})" for name in ordered)


def main() -> None:
    ours = {}
    g500 = {}
    spec = {}
    for server in SERVERS:
        print(f"evaluating {server.name} ...")
        ours[server.name] = evaluate_server(server).score
        g500[server.name] = green500_score(server).ppw
        spec[server.name] = specpower_score(server).overall_ssj_ops_per_watt

    print()
    print("Proposed method (mean PPW over ten states, GFLOPS/W):")
    print("   ", ranking(ours))
    print("Green500 (HPL peak PPW, GFLOPS/W):")
    print("   ", ranking(g500))
    print("SPECpower_ssj2008 (overall ssj_ops/W):")
    print("   ", ranking(spec))
    print()
    print(
        "Paper (Section V-C3): Green500 puts the Xeon-4870 first because\n"
        "it only looks at the peak point; the proposed method includes\n"
        "idle and partial-load states where the small Xeon-E5462's low\n"
        "baseline power pays off, and SPECpower agrees with that ordering\n"
        "while measuring a datacenter (ssj_ops) workload instead."
    )


if __name__ == "__main__":
    main()
