"""Quickstart: score one server with the paper's evaluation method.

Runs the ten-state matrix (idle + EP.C x {1, half, full} cores + HPL x
{1, half, full} cores x {half, full} memory) on the simulated Xeon-E5462
and prints the Table-IV-style result.

Run:  python examples/quickstart.py
"""

from repro import XEON_E5462, evaluate_server
from repro.core.report import format_evaluation_table


def main() -> None:
    result = evaluate_server(XEON_E5462)
    print(format_evaluation_table(result))
    print()
    print(
        f"{result.server} scores {result.score:.4f} GFLOPS/W "
        "(mean PPW over the ten states; paper Table IV sums to "
        f"{result.score * 10:.3f})"
    )


if __name__ == "__main__":
    main()
