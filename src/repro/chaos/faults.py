"""Deterministic fault injectors for the chaos harness.

Every injector is a pure function of its inputs plus a seeded RNG from
:func:`fault_rng`, so a chaos campaign is exactly reproducible: the same
seed damages the same samples, rows, and bytes every run.  Injectors
cover the three layers the harness drills:

* **meter traces** — sample dropout, glitch spikes, NaN watts, clock
  skew (array in, array out);
* **CSV logs** — truncation mid-row and corrupted rows (file in place);
* **result cache** — a flipped payload bit and a torn (truncated)
  sidecar write (cache directory in place).

None of these functions is imported by any production path; they exist
to *attack* the pipeline, and the hardening they exercise lives in
:mod:`repro.metering.analysis`, :mod:`repro.metering.csvlog`,
:mod:`repro.fleet.cache`, and :mod:`repro.fleet.runner`.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "fault_rng",
    "inject_dropout",
    "inject_spikes",
    "inject_nan",
    "inject_clock_skew",
    "truncate_csv",
    "corrupt_csv_rows",
    "flip_cache_bit",
    "tear_cache_entry",
    "flip_journal_record",
]


def fault_rng(seed: int, scenario: str) -> np.random.Generator:
    """A random stream derived from ``(seed, scenario name)``.

    Mirrors the simulator's stream discipline: every scenario gets its
    own independent, reproducible stream, so adding or reordering
    scenarios never changes another scenario's damage pattern.
    """
    digest = hashlib.sha256(f"{seed}:{scenario}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def _as_pair(times_s, watts) -> "tuple[np.ndarray, np.ndarray]":
    times_s = np.asarray(times_s, dtype=float).copy()
    watts = np.asarray(watts, dtype=float).copy()
    if times_s.shape != watts.shape:
        raise ConfigurationError(
            f"times and watts must align: {times_s.shape} vs {watts.shape}"
        )
    return times_s, watts


def inject_dropout(
    times_s,
    watts,
    rng: np.random.Generator,
    fraction: float = 0.1,
) -> "tuple[np.ndarray, np.ndarray]":
    """Delete a random ``fraction`` of samples (logger dropouts)."""
    times_s, watts = _as_pair(times_s, watts)
    if not 0.0 <= fraction < 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1), got {fraction}")
    n_drop = int(times_s.size * fraction)
    if n_drop == 0:
        return times_s, watts
    victims = rng.choice(times_s.size, size=n_drop, replace=False)
    keep = np.ones(times_s.size, dtype=bool)
    keep[victims] = False
    return times_s[keep], watts[keep]


def inject_spikes(
    times_s,
    watts,
    rng: np.random.Generator,
    count: int = 5,
    magnitude: float = 20.0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Multiply ``count`` random samples by ``magnitude`` (meter glitches)."""
    times_s, watts = _as_pair(times_s, watts)
    count = min(count, watts.size)
    if count:
        victims = rng.choice(watts.size, size=count, replace=False)
        watts[victims] = watts[victims] * magnitude + magnitude
    return times_s, watts


def inject_nan(
    times_s,
    watts,
    rng: np.random.Generator,
    count: int = 5,
) -> "tuple[np.ndarray, np.ndarray]":
    """Replace ``count`` random samples with NaN (corrupt log values)."""
    times_s, watts = _as_pair(times_s, watts)
    count = min(count, watts.size)
    if count:
        victims = rng.choice(watts.size, size=count, replace=False)
        watts[victims] = np.nan
    return times_s, watts


def inject_clock_skew(
    times_s,
    watts,
    offset_s: float = 0.3,
) -> "tuple[np.ndarray, np.ndarray]":
    """Shift every timestamp by ``offset_s`` (meter-PC clock offset)."""
    times_s, watts = _as_pair(times_s, watts)
    return times_s + offset_s, watts


def truncate_csv(path: "str | Path", keep_fraction: float = 0.6) -> Path:
    """Truncate a CSV file mid-row, as a crash during logging would.

    Keeps roughly ``keep_fraction`` of the bytes and deliberately cuts
    *inside* a line, so the last surviving row is malformed.
    """
    path = Path(path)
    if not 0.0 < keep_fraction < 1.0:
        raise ConfigurationError(
            f"keep_fraction must be in (0, 1), got {keep_fraction}"
        )
    raw = path.read_bytes()
    cut = max(int(len(raw) * keep_fraction), 1)
    # Back off to just past the previous newline + 1 byte, guaranteeing
    # a torn final row rather than a clean boundary.
    newline = raw.rfind(b"\n", 0, cut)
    if newline > 0:
        cut = newline + 2
    path.write_bytes(raw[:cut])
    return path


def corrupt_csv_rows(
    path: "str | Path",
    rng: np.random.Generator,
    count: int = 5,
) -> "tuple[Path, list[int]]":
    """Garble ``count`` random data rows of a CSV in place.

    Rows become non-numeric junk (``@@corrupt@@``), the kind of damage a
    flaky disk or an interrupted append leaves.  Returns the path and
    the 1-based line numbers that were damaged (header excluded).
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    data_rows = list(range(1, len(lines)))  # 0 is the header
    if not data_rows:
        return path, []
    count = min(count, len(data_rows))
    victims = sorted(
        int(i) for i in rng.choice(data_rows, size=count, replace=False)
    )
    for i in victims:
        lines[i] = "@@corrupt@@,not-a-number"
    path.write_text("\n".join(lines) + "\n")
    return path, [i + 1 for i in victims]


def _cache_blobs(cache_root: "str | Path") -> "list[Path]":
    """Live blob files of a result cache, quarantine excluded."""
    root = Path(cache_root)
    return sorted(
        p
        for p in root.glob("*/*.bin")
        if p.parent.name != "quarantine"
    )


def flip_cache_bit(
    cache_root: "str | Path", rng: np.random.Generator
) -> Path:
    """Flip one bit in one cached blob (silent media corruption)."""
    blobs = _cache_blobs(cache_root)
    if not blobs:
        raise ConfigurationError(f"no cache blobs under {cache_root}")
    victim = blobs[int(rng.integers(len(blobs)))]
    raw = bytearray(victim.read_bytes())
    if not raw:
        raise ConfigurationError(f"cache blob {victim} is empty")
    offset = int(rng.integers(len(raw)))
    raw[offset] ^= 1 << int(rng.integers(8))
    victim.write_bytes(bytes(raw))
    return victim


def flip_journal_record(
    path: "str | Path",
    rng: np.random.Generator,
    kind: "str | None" = None,
) -> "tuple[Path, int]":
    """Corrupt one record of a JSONL journal in place (media bitflip).

    Picks a random line — optionally restricted to records of one
    ``kind`` — and flips the low bit of its opening brace, so the line
    is no longer parseable JSON but stays one line (the damage a flaky
    sector leaves, not a torn write).  Returns the path and the 0-based
    line number damaged.
    """
    import json

    path = Path(path)
    lines = path.read_bytes().split(b"\n")
    candidates: "list[int]" = []
    for i, raw in enumerate(lines):
        if not raw.strip():
            continue
        if kind is not None:
            try:
                record = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if not isinstance(record, dict) or record.get("kind") != kind:
                continue
        candidates.append(i)
    if not candidates:
        raise ConfigurationError(
            f"no record of kind {kind!r} to damage in {path}"
        )
    lineno = candidates[int(rng.integers(len(candidates)))]
    raw = bytearray(lines[lineno])
    brace = raw.index(b"{")
    raw[brace] ^= 1
    lines[lineno] = bytes(raw)
    path.write_bytes(b"\n".join(lines))
    return path, lineno


def tear_cache_entry(
    cache_root: "str | Path", rng: np.random.Generator
) -> Path:
    """Truncate one cached blob to half (a torn, pre-fsync write)."""
    blobs = _cache_blobs(cache_root)
    if not blobs:
        raise ConfigurationError(f"no cache blobs under {cache_root}")
    victim = blobs[int(rng.integers(len(blobs)))]
    raw = victim.read_bytes()
    victim.write_bytes(raw[: len(raw) // 2])
    return victim
