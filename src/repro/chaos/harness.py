"""The chaos harness: a fault matrix the pipeline must survive.

Each *scenario* injects one fault class (via :mod:`repro.chaos.faults`
or the fleet's :class:`~repro.fleet.worker.FaultInjection`) into an
otherwise ordinary workload and checks the system's response against the
recovery contract:

* **recovered** — the final numbers are correct (bit-identical digest,
  or within the repair tolerance) and the fault left an audit trail;
* **degraded** — the result is partial but *flagged* (failure report,
  ``coverage < 1``, quarantine flag): nothing silently wrong;
* **failed** — the fault produced a hang, a crash, or a silently wrong
  number.  Any ``failed`` verdict fails the whole campaign.

Run it with ``python -m repro chaos`` (CI runs this under a tight
timeout: a hang *is* a failure).  Scenarios are deterministic in the
campaign seed, so a red run reproduces exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from repro.chaos import faults
from repro.errors import InvalidSampleError, ReproError
from repro.metering.analysis import repair_trace, trimmed_mean
from repro.metering.csvlog import read_power_csv_tolerant, write_power_csv

__all__ = [
    "OUTCOMES",
    "ScenarioVerdict",
    "ChaosReport",
    "available_scenarios",
    "run_chaos",
]

#: Verdict values, best to worst.
OUTCOMES = ("recovered", "degraded", "failed")

#: Relative error on a repaired trace's trimmed mean that still counts
#: as recovery (measurement noise on the injected samples is real).
_REPAIR_TOL = 0.01

#: Worker-pool size for the fleet scenarios.
_WORKERS = 2

#: Per-job watchdog budget for the fleet scenarios, seconds.
_TIMEOUT_S = 2.0

#: How long an injected hang sleeps — far past the watchdog budget.
_HANG_S = 30.0


@dataclass(frozen=True)
class ScenarioVerdict:
    """Outcome of one chaos scenario."""

    name: str
    layer: str
    outcome: str
    detail: str
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the contract held (recovered or flagged degradation)."""
        return self.outcome != "failed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "layer": self.layer,
            "outcome": self.outcome,
            "detail": self.detail,
            "wall_s": self.wall_s,
        }


@dataclass(frozen=True)
class ChaosReport:
    """Every verdict of one chaos campaign."""

    seed: int
    verdicts: tuple[ScenarioVerdict, ...]
    wall_s: float

    @property
    def ok(self) -> bool:
        """True when no scenario produced a silent failure or hang."""
        return all(v.ok for v in self.verdicts)

    def count(self, outcome: str) -> int:
        return sum(1 for v in self.verdicts if v.outcome == outcome)

    def format(self) -> str:
        lines = [
            f"chaos campaign (seed {self.seed}): "
            f"{len(self.verdicts)} scenarios, "
            f"{self.count('recovered')} recovered, "
            f"{self.count('degraded')} degraded, "
            f"{self.count('failed')} failed  [{self.wall_s:.1f} s]",
            f"{'scenario':<22} {'layer':<9} {'outcome':<10} detail",
        ]
        for v in self.verdicts:
            lines.append(
                f"{v.name:<22} {v.layer:<9} {v.outcome:<10} {v.detail}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "kind": "chaos_report",
            "schema_version": 1,
            "seed": self.seed,
            "ok": self.ok,
            "wall_s": self.wall_s,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


# -- shared fixtures ----------------------------------------------------


def _clean_trace(seed: int) -> "tuple[np.ndarray, np.ndarray]":
    """A genuine metered trace to damage (EP.C on the paper's Xeon)."""
    from repro.engine.simulator import Simulator
    from repro.hardware.specs import get_server
    from repro.workloads.npb import NpbWorkload

    run = Simulator(get_server("Xeon-E5462"), seed=seed).run(
        NpbWorkload("ep", "C", 4)
    )
    return run.times_s, run.measured_watts


def _repair_verdict(
    name: str,
    clean_watts: np.ndarray,
    damaged: "tuple[np.ndarray, np.ndarray]",
    expect_flags: "tuple[str, ...]",
) -> ScenarioVerdict:
    """Judge a meter scenario: repaired mean vs clean mean, flags present."""
    clean_mean = trimmed_mean(clean_watts)
    repaired = repair_trace(*damaged)
    quality = repaired.quality
    if quality.quarantined:
        return ScenarioVerdict(
            name,
            "meter",
            "degraded",
            f"quarantined ({', '.join(quality.flags)})",
        )
    missing = [f for f in expect_flags if f not in quality.flags]
    if missing:
        return ScenarioVerdict(
            name,
            "meter",
            "failed",
            f"fault left no audit trail: missing flags {missing}",
        )
    mean = trimmed_mean(repaired.watts)
    error = abs(mean - clean_mean) / clean_mean
    if error > _REPAIR_TOL:
        return ScenarioVerdict(
            name,
            "meter",
            "failed",
            f"repaired mean off by {error:.2%} (> {_REPAIR_TOL:.0%})",
        )
    return ScenarioVerdict(
        name,
        "meter",
        "recovered",
        f"mean within {error:.3%}, flags: {', '.join(quality.flags)}",
    )


def _demo_campaign():
    from repro.fleet import demo_campaign

    return demo_campaign()


def _baseline_digest(seed: int) -> str:
    """Digest of the undisturbed demo campaign (serial, no cache)."""
    from repro.fleet import FleetRunner

    del seed  # the campaign spec pins its own seed
    return FleetRunner(workers=1).run(_demo_campaign()).results_digest()


def _fleet_verdict(
    name: str,
    fault,
    seed: int,
    expect_ok: bool = True,
) -> ScenarioVerdict:
    """Judge a fleet scenario: recovery, digest integrity, no hang."""
    from repro.fleet import FleetRunner, RetryPolicy

    runner = FleetRunner(
        workers=_WORKERS,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.01),
        fault=fault,
        timeout_s=_TIMEOUT_S,
        chunk_size=1,
    )
    outcome = runner.run(_demo_campaign())
    if expect_ok:
        if not outcome.ok:
            return ScenarioVerdict(
                name,
                "fleet",
                "failed",
                f"jobs failed: {[f.job_id for f in outcome.failures]}",
            )
        digest = outcome.results_digest()
        baseline = _baseline_digest(seed)
        if digest != baseline:
            return ScenarioVerdict(
                name,
                "fleet",
                "failed",
                "silently wrong numbers: digest mismatch after recovery",
            )
        return ScenarioVerdict(
            name, "fleet", "recovered", f"digest intact ({digest[:12]})"
        )
    if outcome.ok:
        return ScenarioVerdict(
            name,
            "fleet",
            "failed",
            "permanent fault was silently swallowed (no failure report)",
        )
    failures = outcome.failures
    return ScenarioVerdict(
        name,
        "fleet",
        "degraded",
        f"{len(failures)} job(s) in the failure report after "
        f"{failures[0].attempts} attempts; campaign completed",
    )


# -- scenarios ----------------------------------------------------------


def _scenario_meter_dropout(seed: int) -> ScenarioVerdict:
    times, watts = _clean_trace(seed)
    rng = faults.fault_rng(seed, "meter-dropout")
    damaged = faults.inject_dropout(times, watts, rng, fraction=0.05)
    return _repair_verdict(
        "meter-dropout", watts, damaged, ("gaps_interpolated",)
    )


def _scenario_meter_spikes(seed: int) -> ScenarioVerdict:
    times, watts = _clean_trace(seed)
    rng = faults.fault_rng(seed, "meter-spikes")
    damaged = faults.inject_spikes(times, watts, rng, count=5)
    return _repair_verdict(
        "meter-spikes", watts, damaged, ("outliers_rejected",)
    )


def _scenario_meter_nan(seed: int) -> ScenarioVerdict:
    times, watts = _clean_trace(seed)
    rng = faults.fault_rng(seed, "meter-nan")
    damaged = faults.inject_nan(times, watts, rng, count=5)
    return _repair_verdict(
        "meter-nan", watts, damaged, ("nonfinite_rejected",)
    )


def _scenario_meter_clock_skew(seed: int) -> ScenarioVerdict:
    times, watts = _clean_trace(seed)
    damaged = faults.inject_clock_skew(times, watts, offset_s=0.3)
    verdict = _repair_verdict(
        "meter-clock-skew", watts, damaged, ("clock_skew_corrected",)
    )
    if verdict.outcome != "recovered":
        return verdict
    skew = repair_trace(*damaged).quality.clock_skew_s
    if abs(skew - 0.3) > 0.05:
        return ScenarioVerdict(
            "meter-clock-skew",
            "meter",
            "failed",
            f"estimated skew {skew:.3f} s, injected 0.300 s",
        )
    return ScenarioVerdict(
        "meter-clock-skew",
        "meter",
        "recovered",
        f"skew estimated at {skew:.3f} s and removed",
    )


def _scenario_meter_guard(seed: int) -> ScenarioVerdict:
    """The meter itself must refuse NaN/negative input, naming the index."""
    from repro.metering.meter import Wt210Meter

    times, watts = _clean_trace(seed)
    rng = faults.fault_rng(seed, "meter-guard")
    index = int(rng.integers(watts.size))
    for value, reason in ((np.nan, "NaN"), (-5.0, "negative")):
        damaged = watts.copy()
        damaged[index] = value
        try:
            Wt210Meter(seed=seed).sample_series(damaged)
        except InvalidSampleError as exc:
            if exc.index != index:
                return ScenarioVerdict(
                    "meter-guard",
                    "meter",
                    "failed",
                    f"{reason}: reported index {exc.index}, not {index}",
                )
        else:
            return ScenarioVerdict(
                "meter-guard",
                "meter",
                "failed",
                f"{reason} watts accepted without error",
            )
    return ScenarioVerdict(
        "meter-guard",
        "meter",
        "recovered",
        f"NaN and negative rejected with index {index}",
    )


def _csv_from_trace(seed: int, tmp: Path) -> "tuple[Path, np.ndarray]":
    times, watts = _clean_trace(seed)
    return write_power_csv(tmp / "trace.csv", times, watts), watts


def _scenario_csv_truncated(seed: int) -> ScenarioVerdict:
    with TemporaryDirectory() as tmp:
        path, watts = _csv_from_trace(seed, Path(tmp))
        faults.truncate_csv(path, keep_fraction=0.6)
        try:
            _times, watts2, report = read_power_csv_tolerant(path)
        except ReproError as exc:
            return ScenarioVerdict(
                "csv-truncated",
                "meter",
                "failed",
                f"tolerant reader raised: {exc}",
            )
    if report.n_bad != 1:
        return ScenarioVerdict(
            "csv-truncated",
            "meter",
            "failed",
            f"expected exactly the torn row flagged, got {report.n_bad}",
        )
    if not np.array_equal(watts2, watts[: watts2.size]):
        return ScenarioVerdict(
            "csv-truncated",
            "meter",
            "failed",
            "surviving rows differ from the original prefix",
        )
    return ScenarioVerdict(
        "csv-truncated",
        "meter",
        "recovered",
        f"torn row skipped; {watts2.size}/{watts.size} samples intact",
    )


def _scenario_csv_corrupt(seed: int) -> ScenarioVerdict:
    rng = faults.fault_rng(seed, "csv-corrupt")
    with TemporaryDirectory() as tmp:
        path, watts = _csv_from_trace(seed, Path(tmp))
        _, bad_lines = faults.corrupt_csv_rows(path, rng, count=5)
        times2, watts2, report = read_power_csv_tolerant(path)
    if sorted(report.bad_lines) != sorted(bad_lines):
        return ScenarioVerdict(
            "csv-corrupt",
            "meter",
            "failed",
            f"flagged lines {report.bad_lines} != damaged {bad_lines}",
        )
    repaired = repair_trace(times2, watts2)
    clean_mean = trimmed_mean(watts)
    error = abs(trimmed_mean(repaired.watts) - clean_mean) / clean_mean
    if error > _REPAIR_TOL:
        return ScenarioVerdict(
            "csv-corrupt",
            "meter",
            "failed",
            f"repaired mean off by {error:.2%}",
        )
    return ScenarioVerdict(
        "csv-corrupt",
        "meter",
        "recovered",
        f"{len(bad_lines)} rows skipped + interpolated, "
        f"mean within {error:.3%}",
    )


def _scenario_fleet_crash(seed: int) -> ScenarioVerdict:
    from repro.fleet import FaultInjection

    return _fleet_verdict(
        "fleet-crash",
        FaultInjection("ep.C.4", fail_attempts=1, kind="crash"),
        seed,
    )


def _scenario_fleet_hang(seed: int) -> ScenarioVerdict:
    from repro.fleet import FaultInjection

    return _fleet_verdict(
        "fleet-hang",
        FaultInjection("ep.C.4", fail_attempts=1, kind="hang", delay_s=_HANG_S),
        seed,
    )


def _scenario_fleet_slow(seed: int) -> ScenarioVerdict:
    from repro.fleet import FaultInjection

    return _fleet_verdict(
        "fleet-slow",
        FaultInjection("ep.C.4", fail_attempts=1, kind="slow", delay_s=0.2),
        seed,
    )


def _scenario_fleet_permafail(seed: int) -> ScenarioVerdict:
    from repro.fleet import FaultInjection

    return _fleet_verdict(
        "fleet-permafail",
        FaultInjection("ep.C.4", fail_attempts=99),
        seed,
        expect_ok=False,
    )


def _cache_verdict(name: str, damage, seed: int) -> ScenarioVerdict:
    """Warm a cache, damage it, re-run: digest intact + quarantine."""
    from repro.fleet import FleetRunner, ResultCache

    with TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        campaign = _demo_campaign()
        cold = FleetRunner(workers=1, cache=cache).run(campaign)
        damage(cache.root, faults.fault_rng(seed, name))
        warm = FleetRunner(workers=1, cache=cache).run(campaign)
        if warm.results_digest() != cold.results_digest():
            return ScenarioVerdict(
                name,
                "cache",
                "failed",
                "silently wrong numbers: corrupted entry changed results",
            )
        if cache.stats.quarantined < 1:
            return ScenarioVerdict(
                name,
                "cache",
                "failed",
                "corruption served without quarantine",
            )
        quarantine = cache.root / "quarantine"
        n_corpses = len(list(quarantine.glob("*")))
    return ScenarioVerdict(
        name,
        "cache",
        "recovered",
        f"entry quarantined ({n_corpses} files), job recomputed, "
        "digest intact",
    )


def _scenario_cache_bitflip(seed: int) -> ScenarioVerdict:
    return _cache_verdict("cache-bitflip", faults.flip_cache_bit, seed)


def _scenario_cache_torn(seed: int) -> ScenarioVerdict:
    return _cache_verdict("cache-torn", faults.tear_cache_entry, seed)


def _scenario_campaign_resume(seed: int) -> ScenarioVerdict:
    """Kill a campaign after its first checkpoint; resume must agree."""
    from repro.fleet import (
        EventLog,
        FleetRunner,
        ResultCache,
        completed_job_ids,
        read_events,
    )

    with TemporaryDirectory() as tmp:
        campaign = _demo_campaign()
        baseline = FleetRunner(workers=1).run(campaign).results_digest()
        cache = ResultCache(Path(tmp) / "cache")
        events_path = Path(tmp) / "events.jsonl"
        with EventLog(events_path) as events:
            FleetRunner(workers=1, cache=cache, events=events).run(campaign)
        # Simulate the SIGKILL: keep the journal only up to the first
        # checkpoint record, as if the process died right after it.
        lines = events_path.read_text().splitlines(keepends=True)
        kept: list[str] = []
        for line in lines:
            kept.append(line)
            if '"kind": "checkpoint"' in line or '"checkpoint"' in line:
                break
        events_path.write_text("".join(kept))
        journaled = completed_job_ids(
            read_events(events_path), campaign=campaign.name
        )
        if not journaled:
            return ScenarioVerdict(
                "campaign-resume",
                "campaign",
                "failed",
                "no completed jobs replayable from the truncated journal",
            )
        resumed = FleetRunner(workers=1, cache=cache).run(campaign)
        if resumed.results_digest() != baseline:
            return ScenarioVerdict(
                "campaign-resume",
                "campaign",
                "failed",
                "resumed digest differs from uninterrupted run",
            )
        hits = resumed.cache_hits
    return ScenarioVerdict(
        "campaign-resume",
        "campaign",
        "recovered",
        f"{len(journaled)} job(s) journaled, {hits} served from cache, "
        "digest identical",
    )


def _scenario_partial_matrix(seed: int) -> ScenarioVerdict:
    """A dead state must degrade the evaluation, flagged — not abort it."""
    from repro.core.evaluation import evaluate_server
    from repro.fleet import FaultInjection, FleetBackend, RetryPolicy
    from repro.hardware.specs import get_server

    server = get_server("Xeon-E5462")
    backend = FleetBackend(
        workers=1,
        strict=False,
        retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        fault=FaultInjection("HPL P4", fail_attempts=99),
    )
    full = evaluate_server(server)
    partial = evaluate_server(server, backend=backend, allow_partial=True)
    if partial.complete or partial.coverage >= 1.0:
        return ScenarioVerdict(
            "partial-matrix",
            "campaign",
            "failed",
            "dead states not reflected in coverage",
        )
    full_rows = {r.label: r for r in full.rows}
    if any(r != full_rows[r.label] for r in partial.rows):
        return ScenarioVerdict(
            "partial-matrix",
            "campaign",
            "failed",
            "surviving rows differ from the complete evaluation",
        )
    return ScenarioVerdict(
        "partial-matrix",
        "campaign",
        "degraded",
        f"score over {len(partial.rows)}/10 states "
        f"(coverage {partial.coverage:.0%}), missing flagged: "
        f"{', '.join(partial.missing)}",
    )


def _scenario_disk_full(seed: int) -> ScenarioVerdict:
    """ENOSPC mid-campaign: writes shed, numbers intact, cache heals."""
    from repro.doctor import safewrite
    from repro.fleet import FleetRunner, ResultCache

    with TemporaryDirectory() as tmp:
        campaign = _demo_campaign()
        baseline = _baseline_digest(seed)
        cache = ResultCache(Path(tmp) / "cache")
        # One write token: the first cache entry lands, then the disk
        # is "full" for the rest of the campaign.
        safewrite.inject_disk_full(budget=1)
        try:
            outcome = FleetRunner(workers=1, cache=cache).run(campaign)
        finally:
            safewrite.clear_disk_fault()
        if outcome.results_digest() != baseline:
            return ScenarioVerdict(
                "disk-full",
                "cache",
                "failed",
                "digest changed under a full disk",
            )
        if cache.stats.degraded < 1:
            return ScenarioVerdict(
                "disk-full",
                "cache",
                "failed",
                "injected ENOSPC never reached a cache write",
            )
        degraded = cache.stats.degraded
        # Disk "recovers": a re-run backfills every shed entry.
        healed = FleetRunner(workers=1, cache=cache).run(campaign)
        if healed.results_digest() != baseline:
            return ScenarioVerdict(
                "disk-full",
                "cache",
                "failed",
                "re-run after recovery changed the digest",
            )
        if len(cache) < len(campaign.jobs()):
            return ScenarioVerdict(
                "disk-full",
                "cache",
                "failed",
                f"cache did not heal: {len(cache)} entries "
                f"for {len(campaign.jobs())} jobs",
            )
    return ScenarioVerdict(
        "disk-full",
        "cache",
        "recovered",
        f"{degraded} write(s) shed under ENOSPC, digest intact, "
        "cache backfilled after recovery",
    )


def _serve_submission(kind: str = "fleet") -> "object":
    from repro.fleet import campaign_to_dict
    from repro.serve.protocol import Submission

    if kind == "evaluate":
        # Deterministic document bytes (a fleet outcome embeds wall
        # times); this is the byte-identity fixture the SIGKILL chaos
        # test also uses.
        spec: dict = {"server": "Xeon-E5462", "seed": 7}
    else:
        spec = campaign_to_dict(_demo_campaign())
    return Submission(
        tenant="chaos", priority="normal", kind=kind, spec=spec
    )


def _await_status(scheduler, campaign_id: str, timeout_s: float = 60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = scheduler.status(campaign_id)
        if status and status["status"] in ("done", "failed", "degraded"):
            return status
        time.sleep(0.02)
    raise ReproError(f"campaign {campaign_id} never finished")


def _scenario_journal_bitflip(seed: int) -> ScenarioVerdict:
    """A flipped done-record: audit flags it, replay re-executes bit-
    identically (the warm cache makes the re-run nearly free)."""
    from repro.doctor import SUBMIT_JOURNAL_KINDS, JournalStore
    from repro.serve.scheduler import ServeScheduler
    from repro.serve.state import StateStore

    with TemporaryDirectory() as tmp:
        root = Path(tmp) / "state"
        scheduler = ServeScheduler(StateStore(root), slots=1)
        scheduler.start()
        outcome = scheduler.submit(_serve_submission("evaluate"))
        campaign_id = outcome.campaign.campaign_id
        status = _await_status(scheduler, campaign_id)
        scheduler.drain(timeout_s=10.0)
        if status["status"] != "done":
            return ScenarioVerdict(
                "journal-bitflip",
                "serve",
                "failed",
                f"fixture campaign ended {status['status']}",
            )
        state = StateStore(root)
        reference = state.result_path(campaign_id).read_bytes()
        state.close()
        journal = root / "journal.jsonl"
        faults.flip_journal_record(
            journal, faults.fault_rng(seed, "journal-bitflip"), kind="done"
        )
        report = JournalStore(
            journal, name="serve-journal", known_kinds=SUBMIT_JOURNAL_KINDS
        ).audit()
        flagged = [f for f in report if f.problem == "corrupt_record"]
        if not flagged:
            return ScenarioVerdict(
                "journal-bitflip",
                "serve",
                "failed",
                "doctor audit missed the corrupt record",
            )
        # Restart: the campaign has a submit but no parseable done, so
        # replay re-enqueues and re-executes it.
        scheduler = ServeScheduler(StateStore(root), slots=1)
        resumed = scheduler.start()
        status = _await_status(scheduler, campaign_id)
        replayed = StateStore(root).result_path(campaign_id).read_bytes()
        scheduler.drain(timeout_s=10.0)
        if resumed < 1:
            return ScenarioVerdict(
                "journal-bitflip",
                "serve",
                "failed",
                "corrupt done record did not re-pend the campaign",
            )
        if status["status"] != "done" or replayed != reference:
            return ScenarioVerdict(
                "journal-bitflip",
                "serve",
                "failed",
                "replayed result not byte-identical to the original",
            )
    return ScenarioVerdict(
        "journal-bitflip",
        "serve",
        "recovered",
        "audit flagged the record, replay re-executed, "
        "result byte-identical",
    )


def _scenario_evict_during_dedup(seed: int) -> ScenarioVerdict:
    """Capped eviction with a pending dedup pair: pinned entries
    survive, the resumed pair completes bit-identically from cache."""
    from repro.doctor import (
        EvictionPolicy,
        FleetCacheStore,
        evict_store,
        serve_pins,
    )
    from repro.engine.simulator import Simulator
    from repro.fleet import FleetRunner, ResultCache
    from repro.hardware.specs import get_server
    from repro.serve.scheduler import ServeScheduler
    from repro.serve.protocol import submission_content_key
    from repro.serve.state import StateStore
    from repro.workloads.npb import NpbWorkload

    with TemporaryDirectory() as tmp:
        root = Path(tmp) / "state"
        submission = _serve_submission()
        baseline = _baseline_digest(seed)
        # Journal a pending primary + follower (as a crash mid-flight
        # leaves them), with the campaign's job results already cached.
        state = StateStore(root)
        key = submission_content_key(submission)
        state.journal_submit("c-000001", submission, key)
        state.journal_submit(
            "c-000002", submission, key, dedup_of="c-000001"
        )
        state.close()
        cache = ResultCache(root / "cache")
        FleetRunner(workers=1, cache=cache).run(_demo_campaign())
        pinned_entries = len(cache)
        # Unrelated entries the cap should reclaim.
        filler = Simulator(get_server("Xeon-E5462"), seed=seed).run(
            NpbWorkload("ep", "A", 2)
        )
        for i in range(3):
            cache.put(f"{i:02d}" + "f" * 62, filler, wall_s=0.1)
        pins = serve_pins(root)
        report = evict_store(
            FleetCacheStore(root / "cache"),
            EvictionPolicy(max_entries=0),
            pins=pins.all,
        )
        if len(report.evicted) != 3 or report.pinned_kept < pinned_entries:
            return ScenarioVerdict(
                "evict-during-dedup",
                "serve",
                "failed",
                f"evicted {len(report.evicted)}/3 fillers, "
                f"kept {report.pinned_kept}/{pinned_entries} pinned",
            )
        # Resume: both campaigns must complete from the surviving
        # entries, byte-identical to each other and the baseline.
        scheduler = ServeScheduler(StateStore(root), slots=1)
        scheduler.start()
        primary = _await_status(scheduler, "c-000001")
        follower = _await_status(scheduler, "c-000002")
        state = StateStore(root)
        primary_bytes = state.result_path("c-000001").read_bytes()
        follower_bytes = state.result_path("c-000002").read_bytes()
        hits = scheduler.counters["deduped_jobs"]
        scheduler.drain(timeout_s=10.0)
        if primary["status"] != "done" or follower["status"] != "done":
            return ScenarioVerdict(
                "evict-during-dedup",
                "serve",
                "failed",
                "resumed dedup pair did not complete",
            )
        if primary_bytes != follower_bytes:
            return ScenarioVerdict(
                "evict-during-dedup",
                "serve",
                "failed",
                "follower result not byte-identical to primary",
            )
        if primary.get("digest", baseline) != baseline and hits == 0:
            return ScenarioVerdict(
                "evict-during-dedup",
                "serve",
                "failed",
                "resume recomputed from scratch: pins did not protect "
                "the in-flight entries",
            )
    return ScenarioVerdict(
        "evict-during-dedup",
        "serve",
        "recovered",
        f"3 unpinned entries reclaimed, {pinned_entries} pinned kept, "
        f"dedup pair resumed with {hits} cache hits",
    )


def _scenario_supervisor_crash_loop(seed: int) -> ScenarioVerdict:
    """The supervisor heals a flaky child and gives up on a hopeless
    one — breaker open, budget intact, all on a fake clock."""
    from repro.doctor import RestartPolicy, Supervisor

    del seed  # deterministic by construction
    policy = RestartPolicy(
        max_restarts=5,
        backoff_initial_s=0.5,
        backoff_cap_s=4.0,
        min_uptime_s=5.0,
        breaker_strikes=3,
    )
    timeline = {"now": 0.0}
    slept: "list[float]" = []

    def clock() -> float:
        return timeline["now"]

    def sleep(seconds: float) -> None:
        slept.append(seconds)
        timeline["now"] += seconds

    # Child A crashes twice quickly, then runs long and exits clean.
    exits = iter([(0.1, 1), (0.2, 1), (60.0, 0)])

    def flaky() -> int:
        uptime, code = next(exits)
        timeline["now"] += uptime
        return code

    audits: "list[int]" = []
    outcome = Supervisor(
        flaky,
        policy,
        audit=lambda: audits.append(1),
        sleep=sleep,
        clock=clock,
    ).run()
    if outcome.status != "clean" or outcome.restarts != 2:
        return ScenarioVerdict(
            "supervisor-crash-loop",
            "serve",
            "failed",
            f"flaky child: {outcome.status} after "
            f"{outcome.restarts} restarts (want clean after 2)",
        )
    if len(audits) != 2 or slept != [0.5, 1.0]:
        return ScenarioVerdict(
            "supervisor-crash-loop",
            "serve",
            "failed",
            f"expected 2 audits + backoff [0.5, 1.0], "
            f"got {len(audits)} audits, backoff {slept}",
        )

    # Child B can never boot: the breaker must open before the budget.
    def hopeless() -> int:
        timeline["now"] += 0.05
        return 1

    halted = Supervisor(hopeless, policy, sleep=sleep, clock=clock).run()
    if halted.status != "breaker_open":
        return ScenarioVerdict(
            "supervisor-crash-loop",
            "serve",
            "failed",
            f"hopeless child ended {halted.status}, breaker never opened",
        )
    if halted.restarts >= policy.max_restarts:
        return ScenarioVerdict(
            "supervisor-crash-loop",
            "serve",
            "failed",
            "breaker opened only after the restart budget burned out",
        )
    return ScenarioVerdict(
        "supervisor-crash-loop",
        "serve",
        "degraded",
        f"flaky child healed after 2 restarts (backoff {slept[:2]}); "
        f"crash loop tripped the breaker after {halted.restarts} "
        "restarts with budget to spare",
    )


#: name -> (layer, description, callable).  Order is the report order.
_SCENARIOS: "dict[str, tuple[str, str, object]]" = {
    "meter-dropout": (
        "meter",
        "logger drops 5% of samples; gaps interpolated",
        _scenario_meter_dropout,
    ),
    "meter-spikes": (
        "meter",
        "meter glitches 5 samples by 20x; outliers rejected",
        _scenario_meter_spikes,
    ),
    "meter-nan": (
        "meter",
        "5 NaN watts in the trace; rejected and refilled",
        _scenario_meter_nan,
    ),
    "meter-clock-skew": (
        "meter",
        "meter PC clock 0.3 s off; estimated and removed",
        _scenario_meter_clock_skew,
    ),
    "meter-guard": (
        "meter",
        "NaN/negative input to the meter raises a typed, indexed error",
        _scenario_meter_guard,
    ),
    "csv-truncated": (
        "meter",
        "power CSV torn mid-row; tolerant reader skips the stub",
        _scenario_csv_truncated,
    ),
    "csv-corrupt": (
        "meter",
        "5 CSV rows garbled; skipped, flagged, interpolated",
        _scenario_csv_corrupt,
    ),
    "fleet-crash": (
        "fleet",
        "worker hard-exits mid-job; pool replaced, job retried",
        _scenario_fleet_crash,
    ),
    "fleet-hang": (
        "fleet",
        "worker hangs past the watchdog; killed and retried",
        _scenario_fleet_hang,
    ),
    "fleet-slow": (
        "fleet",
        "straggler worker; completes without spurious retries",
        _scenario_fleet_slow,
    ),
    "fleet-permafail": (
        "fleet",
        "job fails every attempt; lands in the failure report",
        _scenario_fleet_permafail,
    ),
    "cache-bitflip": (
        "cache",
        "one bit flipped in a cached blob; quarantined, recomputed",
        _scenario_cache_bitflip,
    ),
    "cache-torn": (
        "cache",
        "cached blob truncated (torn write); quarantined, recomputed",
        _scenario_cache_torn,
    ),
    "campaign-resume": (
        "campaign",
        "journal truncated at first checkpoint; resume digest identical",
        _scenario_campaign_resume,
    ),
    "partial-matrix": (
        "campaign",
        "two states permanently dead; score degrades with coverage flag",
        _scenario_partial_matrix,
    ),
    "disk-full": (
        "cache",
        "ENOSPC mid-campaign; writes shed, digest intact, cache heals",
        _scenario_disk_full,
    ),
    "journal-bitflip": (
        "serve",
        "done-record bit flipped; audit flags it, replay bit-identical",
        _scenario_journal_bitflip,
    ),
    "evict-during-dedup": (
        "serve",
        "capped eviction with in-flight dedup; pins hold, resume exact",
        _scenario_evict_during_dedup,
    ),
    "supervisor-crash-loop": (
        "serve",
        "crash-looping daemon; backoff, auto-audit, breaker opens",
        _scenario_supervisor_crash_loop,
    ),
}


def available_scenarios() -> "list[tuple[str, str, str]]":
    """``(name, layer, description)`` for every registered scenario."""
    return [
        (name, layer, description)
        for name, (layer, description, _fn) in _SCENARIOS.items()
    ]


def run_chaos(
    seed: int = 2015,
    only: "list[str] | None" = None,
) -> ChaosReport:
    """Run the fault matrix and return the verdict report.

    ``only`` restricts to the named scenarios (unknown names raise).  A
    scenario that itself raises is reported as ``failed`` — the harness
    always returns a report rather than dying mid-campaign.
    """
    if only:
        unknown = [name for name in only if name not in _SCENARIOS]
        if unknown:
            raise ReproError(
                f"unknown scenario(s) {unknown}; "
                f"see 'python -m repro chaos --list'"
            )
    t0 = time.perf_counter()
    verdicts: list[ScenarioVerdict] = []
    for name, (layer, _description, fn) in _SCENARIOS.items():
        if only and name not in only:
            continue
        start = time.perf_counter()
        try:
            verdict = fn(seed)
        except Exception as exc:  # noqa: BLE001 - the harness must report
            verdict = ScenarioVerdict(
                name,
                layer,
                "failed",
                f"scenario raised {type(exc).__name__}: {exc}",
            )
        verdicts.append(
            ScenarioVerdict(
                verdict.name,
                verdict.layer,
                verdict.outcome,
                verdict.detail,
                wall_s=time.perf_counter() - start,
            )
        )
    return ChaosReport(
        seed=seed,
        verdicts=tuple(verdicts),
        wall_s=time.perf_counter() - t0,
    )
