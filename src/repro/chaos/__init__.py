"""repro.chaos — deterministic fault injection for the whole pipeline.

A chaos campaign (``python -m repro chaos``) drives every fault class
the paper's measurement procedure is exposed to — meter glitches, torn
CSV logs, crashing/hanging workers, corrupted cache entries, dead
evaluation states — through the production code and demands one of two
outcomes per scenario: *recovered* (correct numbers, audit trail) or
*degraded* (partial but flagged).  A hang or a silently wrong number is
a failure.

Everything is seeded: :func:`repro.chaos.faults.fault_rng` derives one
RNG stream per ``(seed, scenario)``, so a red run reproduces exactly.
"""

from repro.chaos.faults import (
    corrupt_csv_rows,
    fault_rng,
    flip_cache_bit,
    inject_clock_skew,
    inject_dropout,
    inject_nan,
    inject_spikes,
    tear_cache_entry,
    truncate_csv,
)
from repro.chaos.harness import (
    OUTCOMES,
    ChaosReport,
    ScenarioVerdict,
    available_scenarios,
    run_chaos,
)

__all__ = [
    "OUTCOMES",
    "ChaosReport",
    "ScenarioVerdict",
    "available_scenarios",
    "corrupt_csv_rows",
    "fault_rng",
    "flip_cache_bit",
    "inject_clock_skew",
    "inject_dropout",
    "inject_nan",
    "inject_spikes",
    "run_chaos",
    "tear_cache_entry",
    "truncate_csv",
]
