"""repro — reproduction of "HPC-Oriented Power Evaluation Method" (ICPP 2015).

The library packages the paper's three contributions on top of a
calibrated single-server simulation substrate:

1. a quantitative critique of SPECpower_ssj2008 and the Green500 as HPC
   power benchmarks (Sections III-IV),
2. a power evaluation method for single multi-core HPC servers combining
   HPL and NPB-EP over a five-state CPU/memory matrix (Section V), and
3. a PMU-feature linear regression power model trained on HPCC and
   verified on NPB (Section VI).

Quickstart::

    from repro import evaluate_server, XEON_E5462
    result = evaluate_server(XEON_E5462)
    print(result.score)           # the paper's "(GFlops/Watt)/10" row

Subsystems keep their own namespaces: ``repro.fleet`` (parallel cached
campaigns), ``repro.cluster`` (N servers composed into a scheduled,
rack-aware machine — see ``docs/cluster.md``), ``repro.model`` (the
trained-model registry), ``repro.chaos`` (fault injection), and
``repro.obs`` (tracing/metrics/bench).

See ``examples/`` for complete walkthroughs and ``benchmarks/`` for the
table/figure reproductions.
"""

from repro.demand import ResourceDemand
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    InsufficientMemoryError,
    InvalidProcessCountError,
    MeterError,
    RegressionError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.hardware import (
    BUILTIN_SERVERS,
    OPTERON_8347,
    XEON_4870,
    XEON_E5462,
    ServerSpec,
    get_server,
)
from repro.engine import Campaign, Simulator
from repro.core import (
    EvaluationResult,
    evaluate_server,
    green500_score,
    rank_servers,
    specpower_score,
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)
from repro.workloads import (
    HplConfig,
    HplWorkload,
    HpccWorkload,
    NpbWorkload,
    SpecPowerWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ResourceDemand",
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "InvalidProcessCountError",
    "InsufficientMemoryError",
    "SimulationError",
    "MeterError",
    "CalibrationError",
    "RegressionError",
    "ServerSpec",
    "BUILTIN_SERVERS",
    "XEON_E5462",
    "OPTERON_8347",
    "XEON_4870",
    "get_server",
    "Simulator",
    "Campaign",
    "EvaluationResult",
    "evaluate_server",
    "rank_servers",
    "green500_score",
    "specpower_score",
    "collect_hpcc_training",
    "train_power_model",
    "verify_on_npb",
    "HplConfig",
    "HplWorkload",
    "HpccWorkload",
    "NpbWorkload",
    "SpecPowerWorkload",
]
