"""The resource-demand interface between workloads and hardware.

A :class:`ResourceDemand` is the steady-state, per-second description of a
program *bound* to a server with a specific process count and problem size.
Workload models (:mod:`repro.workloads`) produce demands; the hardware
models (:mod:`repro.hardware`) consume them to synthesise PMU counters and
power draw.

The intensity attributes are normalized to [0, 1] against the *server's*
maxima so the same workload model drives every machine:

``ipc``
    Retired instructions per cycle relative to the machine's sustainable
    maximum.  HPL (fused multiply-add streams) defines 1.0.
``fp_intensity``
    Floating-point/SIMD functional-unit activity.  Power-hungry vector FMA
    code (HPL, DGEMM) is 1.0; integer sorting (IS) is ~0.
``mem_intensity``
    Per-core DRAM traffic relative to a single core's share of the socket
    bandwidth.  STREAM defines 1.0.
``comm_intensity``
    MPI communication pressure.  Deliberately *not* among the paper's six
    regression features; Section VI-C attributes the poor EP/SP fits to it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["ResourceDemand"]

_UNIT_FIELDS = (
    "cpu_util",
    "ipc",
    "fp_intensity",
    "mem_intensity",
    "comm_intensity",
    "l1_locality",
    "l2_locality",
    "l3_locality",
    "read_fraction",
)


@dataclass(frozen=True)
class ResourceDemand:
    """Steady-state resource demand of one bound workload.

    Attributes
    ----------
    program:
        Display name, e.g. ``"ep.C.4"`` or ``"HPL P4 Mf"``.
    nprocs:
        MPI process count (0 for the idle pseudo-workload).
    duration_s:
        Wall-clock runtime of the bound problem, seconds.
    gflops:
        Achieved performance reported by the program (GFLOPS for HPL,
        Gop/s for EP-style operation counts); 0 when idle.
    memory_mb:
        Resident memory footprint, MB.
    cpu_util:
        Utilisation of each *active* core in [0, 1].
    ipc, fp_intensity, mem_intensity, comm_intensity:
        Normalized intensity attributes (see module docstring).
    l1_locality, l2_locality, l3_locality:
        Capacity-independent reuse fractions per cache level, for
        :func:`repro.hardware.cache.analytic_hit_rate`.
    read_fraction:
        DRAM reads / (reads + writes).
    """

    program: str
    nprocs: int
    duration_s: float
    gflops: float
    memory_mb: float
    cpu_util: float = 1.0
    ipc: float = 0.5
    fp_intensity: float = 0.5
    mem_intensity: float = 0.3
    comm_intensity: float = 0.0
    l1_locality: float = 0.95
    l2_locality: float = 0.80
    l3_locality: float = 0.60
    read_fraction: float = 0.65

    def __post_init__(self) -> None:
        if self.nprocs < 0:
            raise ConfigurationError(f"nprocs must be >= 0, got {self.nprocs}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration_s}"
            )
        if self.gflops < 0:
            raise ConfigurationError(f"gflops must be >= 0, got {self.gflops}")
        if self.memory_mb < 0:
            raise ConfigurationError(
                f"memory_mb must be >= 0, got {self.memory_mb}"
            )
        for name in _UNIT_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.nprocs == 0 and self.cpu_util > 0:
            raise ConfigurationError("idle demand must have cpu_util == 0")

    @property
    def is_idle(self) -> bool:
        """True for the idle pseudo-workload (state 1 of the evaluation)."""
        return self.nprocs == 0

    def with_(self, **changes: Any) -> "ResourceDemand":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    @classmethod
    def idle(cls, duration_s: float = 60.0) -> "ResourceDemand":
        """The no-load state: zero active cores, OS-resident memory only."""
        return cls(
            program="Idle",
            nprocs=0,
            duration_s=duration_s,
            gflops=0.0,
            memory_mb=0.0,
            cpu_util=0.0,
            ipc=0.0,
            fp_intensity=0.0,
            mem_intensity=0.0,
            comm_intensity=0.0,
        )
