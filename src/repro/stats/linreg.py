"""Ordinary least squares and forward stepwise selection.

:func:`fit_ols` produces the summary block of the paper's Table VII
(Multiple R, R Square, Adjusted R Square, Standard Error, Observations);
:func:`forward_stepwise` implements the variable-selection procedure the
paper uses to pick its six indices (Section VI-A), with the partial
F-to-enter stopping rule from Bendel & Afifi (1977).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

from repro.errors import RegressionError

__all__ = ["OlsModel", "fit_ols", "forward_stepwise", "StepwiseResult"]


@dataclass(frozen=True)
class OlsModel:
    """A fitted linear model ``y ~ X @ coefficients + intercept``.

    Summary attributes mirror the paper's Table VII rows.
    """

    coefficients: np.ndarray
    intercept: float
    n_observations: int
    r_square: float
    adjusted_r_square: float
    standard_error: float

    @property
    def multiple_r(self) -> float:
        """Square root of R Square (Table VII's "Multiple R")."""
        return float(np.sqrt(max(self.r_square, 0.0)))

    @property
    def n_features(self) -> int:
        """Number of regressors."""
        return int(self.coefficients.shape[0])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix (or single row).

        The linear combination is evaluated as a fixed left-to-right
        column accumulation (``intercept + x1*b1 + x2*b2 + ...``) built
        from element-wise ufuncs rather than a BLAS matrix product.
        BLAS kernels pick different accumulation orders for different
        operand shapes, so ``A @ b`` row ``i`` need not bit-match
        ``A[i] @ b``; the explicit accumulation makes predictions
        independent of batch size and BLAS build — predicting rows one
        at a time and predicting the stacked matrix are bit-identical,
        which the model registry's digest comparisons rely on.
        """
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        if features.shape[1] != self.n_features:
            raise RegressionError(
                f"expected {self.n_features} features, got {features.shape[1]}"
            )
        out = np.full(features.shape[0], self.intercept, dtype=float)
        for j in range(self.n_features):
            out = out + features[:, j] * self.coefficients[j]
        return out[0] if single else out


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2:
        raise RegressionError(f"X must be 2-D, got shape {x.shape}")
    if x.shape[0] != y.shape[0]:
        raise RegressionError(
            f"X has {x.shape[0]} rows but y has {y.shape[0]}"
        )
    if x.shape[0] <= x.shape[1] + 1:
        raise RegressionError(
            f"need more observations ({x.shape[0]}) than parameters "
            f"({x.shape[1] + 1})"
        )
    if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
        raise RegressionError("X and y must be finite")
    return x, y


def fit_ols(x: np.ndarray, y: np.ndarray, intercept: bool = True) -> OlsModel:
    """Fit ``y ~ X`` by least squares.

    Parameters
    ----------
    x:
        (n, k) feature matrix.
    y:
        (n,) target vector.
    intercept:
        Whether to include a constant term (the paper's ``C``).
    """
    x, y = _validate_xy(x, y)
    n, k = x.shape
    design = np.hstack([x, np.ones((n, 1))]) if intercept else x
    solution, *_ = np.linalg.lstsq(design, y, rcond=None)
    if intercept:
        coefficients, c = solution[:-1], float(solution[-1])
    else:
        coefficients, c = solution, 0.0
    residuals = y - (x @ coefficients + c)
    rss = float(residuals @ residuals)
    # Through-origin fits are scored against the zero model, not the
    # mean: the centred TSS can be smaller than the RSS (pushing R²
    # negative) or zero for a constant target, neither of which
    # describes how much of ``y`` the origin-constrained fit explains.
    if intercept:
        tss = float(((y - y.mean()) ** 2).sum())
    else:
        tss = float((y**2).sum())
    r2 = 1.0 - rss / tss if tss > 0 else 0.0
    dof = n - k - (1 if intercept else 0)
    adjusted = 1.0 - (1.0 - r2) * (n - 1) / dof if dof > 0 else r2
    std_error = float(np.sqrt(rss / dof)) if dof > 0 else float("nan")
    return OlsModel(
        coefficients=coefficients,
        intercept=c,
        n_observations=n,
        r_square=r2,
        adjusted_r_square=adjusted,
        standard_error=std_error,
    )


@dataclass(frozen=True)
class StepwiseResult:
    """Outcome of forward stepwise selection."""

    selected: tuple[int, ...]
    model: OlsModel
    f_to_enter: tuple[float, ...]

    def selected_names(self, names: "list[str]") -> list[str]:
        """Map selected column indices to feature names."""
        return [names[i] for i in self.selected]


def _rss(x: np.ndarray, y: np.ndarray) -> float:
    design = np.hstack([x, np.ones((x.shape[0], 1))])
    solution, *_ = np.linalg.lstsq(design, y, rcond=None)
    residuals = y - design @ solution
    return float(residuals @ residuals)


def forward_stepwise(
    x: np.ndarray,
    y: np.ndarray,
    alpha_enter: float = 0.05,
    max_features: int | None = None,
) -> StepwiseResult:
    """Forward stepwise regression with an F-to-enter stopping rule.

    Starting from the intercept-only model, repeatedly add the candidate
    column with the largest partial F statistic; stop when no candidate's
    F exceeds the ``alpha_enter`` critical value (Bendel & Afifi compare
    such stopping rules and recommend a liberal enter-level for
    forecasting use, which suits the paper's goal).

    Returns the selected column indices (in entry order), the refitted
    model on those columns, and each entry step's F statistic.
    """
    x, y = _validate_xy(x, y)
    n, k = x.shape
    limit = k if max_features is None else min(max_features, k)
    selected: list[int] = []
    f_values: list[float] = []
    tss = float(((y - y.mean()) ** 2).sum())
    rss_current = tss
    while len(selected) < limit:
        best: tuple[float, int, float] | None = None
        for j in range(k):
            if j in selected:
                continue
            candidate = x[:, selected + [j]]
            rss_new = _rss(candidate, y)
            dof = n - len(selected) - 2  # params: selected + new + intercept
            if dof <= 0 or rss_new <= 0:
                f_stat = float("inf")
            else:
                f_stat = (rss_current - rss_new) / (rss_new / dof)
            if best is None or f_stat > best[0]:
                best = (f_stat, j, rss_new)
        if best is None:
            break
        f_stat, j, rss_new = best
        dof = n - len(selected) - 2
        critical = float(sp_stats.f.ppf(1.0 - alpha_enter, 1, max(dof, 1)))
        if f_stat < critical:
            break
        selected.append(j)
        f_values.append(f_stat)
        rss_current = rss_new
    if not selected:
        raise RegressionError(
            "forward stepwise selected no features; the features do not "
            "explain the target at the requested enter level"
        )
    model = fit_ols(x[:, selected], y)
    return StepwiseResult(
        selected=tuple(selected),
        model=model,
        f_to_enter=tuple(f_values),
    )
