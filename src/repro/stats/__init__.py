"""Statistics building blocks for the power regression model.

Implemented from scratch on numpy (no statsmodels/sklearn available):

* :mod:`repro.stats.linreg` — ordinary least squares with the summary
  statistics the paper reports (Multiple R, R Square, Adjusted R Square,
  Standard Error), plus forward stepwise selection with the F-to-enter
  stopping rule the paper cites (Bendel & Afifi 1977).
* :mod:`repro.stats.normalize` — the z-score normalisation the paper
  applies "to unify the dimensions of different variables".
"""

from repro.stats.linreg import (
    OlsModel,
    fit_ols,
    forward_stepwise,
    StepwiseResult,
)
from repro.stats.normalize import ZScoreNormalizer

__all__ = [
    "OlsModel",
    "fit_ols",
    "forward_stepwise",
    "StepwiseResult",
    "ZScoreNormalizer",
]
