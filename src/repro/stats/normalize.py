"""Z-score normalisation.

The paper integrates PMU data with power data "and perform[s]
normalization to unify the dimensions of different variables"
(Section VI-A2); with both features and target z-scored, the regression
intercept C collapses to ~0 (Table VIII reports C = 2.37e-14) and the
verification plots (Figs. 12-13) are dimensionless.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RegressionError

__all__ = ["ZScoreNormalizer"]


class ZScoreNormalizer:
    """Column-wise ``(x - mean) / std`` with stored statistics.

    Columns with zero variance normalise to zero (rather than dividing by
    zero); they carry no information for the regression either way.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None

    def fit(self, data: np.ndarray) -> "ZScoreNormalizer":
        """Learn column means and standard deviations."""
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            data = data[:, None]
        if data.shape[0] < 2:
            raise RegressionError(
                f"need at least 2 rows to normalise, got {data.shape[0]}"
            )
        self.mean_ = data.mean(axis=0)
        self.std_ = data.std(axis=0, ddof=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Apply the stored normalisation (shape-preserving)."""
        if not self.fitted:
            raise RegressionError("normalizer has not been fitted")
        data = np.asarray(data, dtype=float)
        squeeze = data.ndim == 1
        if squeeze:
            data = data[:, None]
        if data.shape[1] != self.mean_.shape[0]:
            raise RegressionError(
                f"expected {self.mean_.shape[0]} columns, got {data.shape[1]}"
            )
        std = np.where(self.std_ > 0, self.std_, 1.0)
        out = (data - self.mean_) / std
        out[:, self.std_ == 0] = 0.0
        return out[:, 0] if squeeze else out

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit, then transform the same data."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map normalised values back to the original scale."""
        if not self.fitted:
            raise RegressionError("normalizer has not been fitted")
        data = np.asarray(data, dtype=float)
        squeeze = data.ndim == 1
        if squeeze:
            data = data[:, None]
        out = data * self.std_ + self.mean_
        return out[:, 0] if squeeze else out
