"""Store adapters: one audit/repair/evict interface over four stores.

The repo accumulates four long-lived on-disk stores:

* the fleet's content-addressed **result cache** (checksummed
  ``<key>.json`` + ``<key>.bin`` pairs under shard directories);
* the serve daemon's **results store** (``results/<id>.json`` result
  documents, digest-pinned by the submit journal's ``done`` records);
* the **model registry** (versioned, digest-checksummed artifacts);
* the JSONL **journals** — the serve submit journal and the shared
  event log that fleet checkpoints and cluster per-node traces ride on.

:class:`StoreAdapter` gives ``repro doctor`` one vocabulary over all of
them: :meth:`~StoreAdapter.entries` (what is on disk), :meth:`~
StoreAdapter.audit` (read-only integrity findings — auditing never
mutates the store), :meth:`~StoreAdapter.repair` (quarantine/compact
the corrupt findings, reusing each store's own machinery), :meth:`~
StoreAdapter.evict` + :meth:`~StoreAdapter.commit` (capped eviction),
and :meth:`~StoreAdapter.gc` (sweep temp files and stale quarantine
corpses).  The eviction *policy* — TTL, caps, LRU order, pins — lives
in :mod:`repro.doctor.engine`; adapters only know how to enumerate and
remove.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.doctor import safewrite
from repro.errors import JournalBusyError
from repro.fleet.cache import CACHE_SALT, ResultCache, canonical_json
from repro.fleet.events import EVENT_KINDS

__all__ = [
    "Finding",
    "StoreEntry",
    "StoreAdapter",
    "FleetCacheStore",
    "ServeResultsStore",
    "ModelRegistryStore",
    "JournalStore",
    "SUBMIT_JOURNAL_KINDS",
    "verify_cache_entry",
    "verify_model_artifact",
]

_CACHE_ENTRY_KIND = "fleet_cache_entry"

#: Record kinds of the serve submit journal (its own schema, distinct
#: from the fleet/cluster event log's ``EVENT_KINDS``).
SUBMIT_JOURNAL_KINDS = ("submit", "done", "drain")


@dataclass(frozen=True)
class StoreEntry:
    """One evictable unit of a store (an entry, an artifact, a record)."""

    store: str
    entry_id: str
    paths: tuple[Path, ...]
    size: int
    mtime: float
    #: identifiers this entry is pinned under (checked against the
    #: engine's pin set); defaults to the entry id itself.
    pin_keys: tuple[str, ...] = ()

    def pinned_by(self, pins: "frozenset[str] | set[str]") -> bool:
        keys = self.pin_keys or (self.entry_id,)
        return any(key in pins for key in keys)


@dataclass
class Finding:
    """One integrity problem an audit surfaced."""

    store: str
    entry_id: str
    path: str
    problem: str
    #: ``corrupt`` findings fail an audit; ``warn`` findings (torn
    #: journal tails, results evicted out from under old ``done``
    #: records) are reported but expected operational residue.
    severity: str = "corrupt"
    #: filled by repair: what was done ("quarantined", "compacted").
    action: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "store": self.store,
            "entry": self.entry_id,
            "path": self.path,
            "problem": self.problem,
            "severity": self.severity,
            "action": self.action,
        }


class StoreAdapter:
    """Base interface ``repro doctor`` drives every store through."""

    name = "store"

    def entries(self) -> list[StoreEntry]:
        """Every live entry on disk (quarantine and temp files excluded)."""
        raise NotImplementedError

    def audit(self) -> list[Finding]:
        """Read-only integrity scan; never mutates the store."""
        raise NotImplementedError

    def repair(self) -> list[Finding]:
        """Audit, then quarantine/compact the corrupt findings."""
        raise NotImplementedError

    def evictable(self) -> list[StoreEntry]:
        """Entries the eviction policy may consider (default: all)."""
        return self.entries()

    def protected(self, entry: StoreEntry) -> bool:
        """Structural pins the store itself imposes (e.g. latest model)."""
        del entry
        return False

    def busy(self) -> "str | None":
        """Why the store cannot be mutated right now (``None`` = go).

        Eviction and repair check this before touching the store; a
        non-``None`` reason (e.g. a journal with a live writer) makes
        them skip the store loudly instead of mutating state a running
        daemon depends on.
        """
        return None

    def evict(self, entry: StoreEntry) -> int:
        """Remove one entry; returns bytes freed.  May defer to commit."""
        raise NotImplementedError

    def commit(self) -> None:
        """Flush deferred evictions (journal compaction); default no-op."""

    def gc(self, quarantine_ttl_s: "float | None" = None) -> list[Path]:
        """Remove temp-file debris and quarantine corpses past the TTL."""
        del quarantine_ttl_s
        return []


def _rm(path: Path) -> int:
    """Best-effort unlink; returns the bytes freed."""
    try:
        size = path.stat().st_size
    except OSError:
        return 0
    try:
        path.unlink()
    except OSError:
        return 0
    return size


def _sweep_tmp(root: Path, pattern: str) -> list[Path]:
    removed = []
    for tmp in sorted(root.glob(pattern)):
        if _rm(tmp):
            removed.append(tmp)
    return removed


def _sweep_quarantine(
    qdir: Path, ttl_s: "float | None", now: float
) -> list[Path]:
    if not qdir.is_dir():
        return []
    removed = []
    for corpse in sorted(qdir.iterdir()):
        if not corpse.is_file():
            continue
        if ttl_s is not None:
            try:
                age = now - corpse.stat().st_mtime
            except OSError:
                continue
            if age < ttl_s:
                continue
        if _rm(corpse):
            removed.append(corpse)
    return removed


# -- fleet result cache -------------------------------------------------


def verify_cache_entry(meta_path: Path) -> "str | None":
    """Integrity-check one cache entry without serving or mutating it.

    Mirrors every check :meth:`repro.fleet.cache.ResultCache.get`
    performs before trusting an entry — kind, salt, blob length, blob
    SHA-256, array offsets — but returns the problem as a string
    instead of quarantining, so an *audit* stays read-only.
    """
    try:
        data = json.loads(meta_path.read_text())
    except FileNotFoundError:
        return "missing_metadata"
    except (OSError, json.JSONDecodeError):
        return "unreadable_metadata"
    if not isinstance(data, dict):
        return "malformed_metadata"
    if data.get("kind") != _CACHE_ENTRY_KIND:
        return "wrong_kind"
    if data.get("salt") != CACHE_SALT:
        return "stale_salt"
    try:
        blob = meta_path.with_suffix(".bin").read_bytes()
    except OSError:
        return "missing_blob"
    try:
        if len(blob) != int(data["blob_len"]):
            return "blob_length_mismatch"
        if hashlib.sha256(blob).hexdigest() != data["blob_sha256"]:
            return "blob_checksum_mismatch"
        for name, (offset, count) in data["result"]["arrays"].items():
            if offset < 0 or offset + count * 8 > len(blob):
                return f"array_out_of_bounds:{name}"
    except (KeyError, TypeError, ValueError):
        return "malformed_metadata"
    return None


class FleetCacheStore(StoreAdapter):
    """Adapter over one content-addressed result-cache directory."""

    name = "fleet-cache"

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    def _metas(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.glob("*/*.json")
            if p.parent.name != "quarantine" and ".tmp" not in p.name
        )

    def entries(self) -> list[StoreEntry]:
        out = []
        for meta in self._metas():
            blob = meta.with_suffix(".bin")
            paths = tuple(p for p in (meta, blob) if p.exists())
            size = 0
            mtime = 0.0
            for p in paths:
                try:
                    stat = p.stat()
                except OSError:
                    continue
                size += stat.st_size
                mtime = max(mtime, stat.st_mtime)
            out.append(
                StoreEntry(
                    store=self.name,
                    entry_id=meta.stem,
                    paths=paths,
                    size=size,
                    mtime=mtime,
                )
            )
        return out

    def audit(self) -> list[Finding]:
        findings = []
        for meta in self._metas():
            problem = verify_cache_entry(meta)
            if problem is not None:
                findings.append(
                    Finding(self.name, meta.stem, str(meta), problem)
                )
        return findings

    def repair(self) -> list[Finding]:
        """Quarantine corrupt entries via the cache's own machinery.

        A :meth:`ResultCache.get` on a damaged key runs the full
        checksum verification and moves the corpse under
        ``quarantine/`` — exactly the path a cache hit would take, so
        repair and serving can never disagree about what is corrupt.
        """
        findings = self.audit()
        cache = ResultCache(self.root)
        for finding in findings:
            cache.get(finding.entry_id)
            if not (self.root / finding.entry_id[:2]).joinpath(
                f"{finding.entry_id}.json"
            ).exists():
                finding.action = "quarantined"
        return findings

    def evict(self, entry: StoreEntry) -> int:
        return sum(_rm(p) for p in entry.paths)

    def gc(self, quarantine_ttl_s: "float | None" = None) -> list[Path]:
        if not self.root.is_dir():
            return []
        now = time.time()
        removed = _sweep_tmp(self.root, "*/*.tmp*")
        removed += _sweep_quarantine(
            self.root / "quarantine", quarantine_ttl_s, now
        )
        return removed


# -- serve results store ------------------------------------------------


def _journal_digests(journal_path: Path) -> dict[str, str]:
    """``campaign id -> result digest`` from the journal's done records."""
    digests: dict[str, str] = {}
    if not journal_path.exists():
        return digests
    for raw in journal_path.read_bytes().split(b"\n"):
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            isinstance(record, dict)
            and record.get("kind") == "done"
            and record.get("digest")
        ):
            digests[str(record.get("id"))] = str(record["digest"])
    return digests


class ServeResultsStore(StoreAdapter):
    """Adapter over a serve state directory's ``results/`` documents.

    Result documents carry no embedded checksum; their digests live in
    the submit journal's ``done`` records (written only after the
    result is durably on disk).  The audit closes that loop: every
    result file is re-digested with the same canonical-JSON SHA-256 the
    scheduler recorded, so a flipped byte in a served result is caught
    exactly like a flipped byte in a cache blob.
    """

    name = "serve-results"

    def __init__(self, state_root: "str | Path"):
        self.root = Path(state_root)
        self.results_dir = self.root / "results"
        self.journal_path = self.root / "journal.jsonl"

    def _documents(self) -> list[Path]:
        if not self.results_dir.is_dir():
            return []
        return sorted(
            p
            for p in self.results_dir.glob("*.json")
            if ".tmp" not in p.name
        )

    def entries(self) -> list[StoreEntry]:
        out = []
        for path in self._documents():
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append(
                StoreEntry(
                    store=self.name,
                    entry_id=path.stem,
                    paths=(path,),
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        return out

    def audit(self) -> list[Finding]:
        findings = []
        digests = _journal_digests(self.journal_path)
        seen = set()
        for path in self._documents():
            campaign_id = path.stem
            seen.add(campaign_id)
            try:
                document = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                findings.append(
                    Finding(
                        self.name,
                        campaign_id,
                        str(path),
                        "unreadable_result",
                    )
                )
                continue
            recorded = digests.get(campaign_id)
            if recorded is None:
                continue
            actual = hashlib.sha256(
                canonical_json(document).encode()
            ).hexdigest()
            if actual != recorded:
                findings.append(
                    Finding(
                        self.name,
                        campaign_id,
                        str(path),
                        "digest_mismatch",
                    )
                )
        for campaign_id in sorted(set(digests) - seen):
            findings.append(
                Finding(
                    self.name,
                    campaign_id,
                    str(self.results_dir / f"{campaign_id}.json"),
                    "missing_result",
                    severity="warn",
                )
            )
        return findings

    def repair(self) -> list[Finding]:
        findings = self.audit()
        qdir = self.root / "quarantine"
        for finding in findings:
            if finding.severity != "corrupt":
                continue
            victim = Path(finding.path)
            if not victim.exists():
                continue
            try:
                qdir.mkdir(parents=True, exist_ok=True)
                os.replace(
                    victim,
                    qdir / f"results-{victim.name}.{os.getpid()}",
                )
            except OSError:
                continue
            finding.action = "quarantined"
        return findings

    def evict(self, entry: StoreEntry) -> int:
        return sum(_rm(p) for p in entry.paths)

    def gc(self, quarantine_ttl_s: "float | None" = None) -> list[Path]:
        removed = []
        if self.results_dir.is_dir():
            removed += _sweep_tmp(self.results_dir, "*.tmp*")
        removed += _sweep_quarantine(
            self.root / "quarantine", quarantine_ttl_s, time.time()
        )
        return removed


# -- model registry -----------------------------------------------------


def verify_model_artifact(path: Path) -> "str | None":
    """Read-only integrity check of one registry artifact."""
    from repro.model.registry import (
        ARTIFACT_KIND,
        ARTIFACT_SCHEMA_VERSION,
        _document_digest,
    )

    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return "unreadable_artifact"
    if not isinstance(document, dict):
        return "malformed_artifact"
    if document.get("kind") != ARTIFACT_KIND:
        return "wrong_kind"
    if document.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
        return "wrong_schema_version"
    try:
        if document.get("digest") != _document_digest(document):
            return "digest_mismatch"
    except (KeyError, TypeError, ValueError):
        return "malformed_artifact"
    return None


class ModelRegistryStore(StoreAdapter):
    """Adapter over a model registry directory."""

    name = "model-registry"

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    def _artifacts(self) -> list[Path]:
        from repro.model.registry import _VERSION_RE

        if not self.root.is_dir():
            return []
        out = []
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir() or directory.name == "quarantine":
                continue
            for path in sorted(directory.iterdir()):
                if _VERSION_RE.match(path.name):
                    out.append(path)
        return out

    @staticmethod
    def _entry_id(path: Path) -> str:
        return f"{path.parent.name}@{path.stem}"

    def entries(self) -> list[StoreEntry]:
        out = []
        latest: dict[str, Path] = {}
        for path in self._artifacts():
            latest[path.parent.name] = path  # sorted: last wins
        for path in self._artifacts():
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append(
                StoreEntry(
                    store=self.name,
                    entry_id=self._entry_id(path),
                    paths=(path,),
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        self._latest = {self._entry_id(p) for p in latest.values()}
        return out

    def protected(self, entry: StoreEntry) -> bool:
        """The newest version of every model name is never evicted."""
        latest = getattr(self, "_latest", None)
        if latest is None:
            self.entries()
            latest = self._latest
        return entry.entry_id in latest

    def audit(self) -> list[Finding]:
        findings = []
        for path in self._artifacts():
            problem = verify_model_artifact(path)
            if problem is not None:
                findings.append(
                    Finding(
                        self.name, self._entry_id(path), str(path), problem
                    )
                )
        return findings

    def repair(self) -> list[Finding]:
        """Quarantine via the registry's own verification path."""
        from repro.model.registry import ModelRegistry

        findings = self.audit()
        if findings:
            ModelRegistry(self.root).verify_all()
        for finding in findings:
            if not Path(finding.path).exists():
                finding.action = "quarantined"
        return findings

    def evict(self, entry: StoreEntry) -> int:
        return sum(_rm(p) for p in entry.paths)

    def gc(self, quarantine_ttl_s: "float | None" = None) -> list[Path]:
        if not self.root.is_dir():
            return []
        removed = _sweep_tmp(self.root, "*/*.tmp*")
        removed += _sweep_quarantine(
            self.root / "quarantine", quarantine_ttl_s, time.time()
        )
        return removed


# -- JSONL journals (serve submit journal, shared event log) -----------


class JournalStore(StoreAdapter):
    """Adapter over one JSONL journal (submit journal or event log).

    Entries are individual records (``entry_id`` is the 1-based line
    number).  Eviction is deferred: records are marked and the file is
    rewritten once, atomically, in :meth:`commit` — dropping a line in
    place would tear the very store the doctor is tending.  Records
    belonging to a campaign in the engine's pin set (pending serve
    work, unfinished fleet campaigns) expose that campaign as their pin
    key and therefore survive any cap.
    """

    name = "journal"

    def __init__(
        self,
        path: "str | Path",
        name: "str | None" = None,
        known_kinds: "tuple[str, ...] | None" = EVENT_KINDS,
    ):
        self.path = Path(path)
        if name:
            self.name = name
        self.known_kinds = known_kinds
        self._drop: set[int] = set()

    def _lines(self) -> list[bytes]:
        if not self.path.exists():
            return []
        raw = self.path.read_bytes()
        if not raw:
            return []
        return raw.split(b"\n")

    def _records(
        self,
    ) -> "list[tuple[int, bytes, dict[str, Any] | None, bool]]":
        """``(lineno, raw, record-or-None, is_tail)`` per non-empty line."""
        lines = self._lines()
        # A trailing newline leaves one empty final element; its absence
        # means the last line is a torn, in-progress append.
        tail_torn = bool(lines) and lines[-1] != b""
        out = []
        for i, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                record = json.loads(
                    raw.decode("utf-8", errors="replace")
                )
                if not isinstance(record, dict):
                    record = None
            except json.JSONDecodeError:
                record = None
            out.append(
                (i + 1, raw, record, tail_torn and i == len(lines) - 1)
            )
        return out

    def entries(self) -> list[StoreEntry]:
        file_mtime = 0.0
        try:
            file_mtime = self.path.stat().st_mtime
        except OSError:
            pass
        out = []
        for lineno, raw, record, _tail in self._records():
            if record is None:
                continue
            ts = record.get("ts")
            campaign = record.get("campaign") or record.get("id")
            out.append(
                StoreEntry(
                    store=self.name,
                    entry_id=str(lineno),
                    paths=(self.path,),
                    size=len(raw) + 1,
                    mtime=float(ts) if isinstance(ts, (int, float)) else (
                        file_mtime
                    ),
                    pin_keys=(
                        (str(lineno), str(campaign))
                        if campaign
                        else (str(lineno),)
                    ),
                )
            )
        return out

    def audit(self) -> list[Finding]:
        findings = []
        for lineno, _raw, record, tail in self._records():
            if record is None:
                findings.append(
                    Finding(
                        self.name,
                        str(lineno),
                        str(self.path),
                        "torn_tail" if tail else "corrupt_record",
                        severity="warn" if tail else "corrupt",
                    )
                )
            elif (
                self.known_kinds is not None
                and record.get("kind") not in self.known_kinds
            ):
                findings.append(
                    Finding(
                        self.name,
                        str(lineno),
                        str(self.path),
                        f"unknown_kind:{record.get('kind')!r}",
                        severity="warn",
                    )
                )
        return findings

    def busy(self) -> "str | None":
        """A journal with a live appender must never be rewritten.

        The serve daemon and every :class:`~repro.fleet.events.EventLog`
        hold an advisory writer lock on their journal; compacting the
        file behind that open handle would orphan the inode, and every
        subsequent fsynced append — submissions clients got 202s for —
        would silently vanish on restart.
        """
        if safewrite.has_live_writer(self.path):
            return "live_writer"
        return None

    def repair(self) -> list[Finding]:
        """Compact the journal: keep every parseable record byte-for-byte,
        drop corrupt interior lines and the unparseable torn tail.

        Refused (findings returned un-actioned, plus a ``live_writer``
        warning) while a live daemon holds the journal's writer lock —
        see :meth:`busy`.
        """
        findings = self.audit()
        victims = {
            int(f.entry_id)
            for f in findings
            if f.problem in ("corrupt_record", "torn_tail")
        }
        if victims:
            self._drop |= victims
            try:
                self.commit()
            except JournalBusyError:
                self._drop -= victims
                findings.append(
                    Finding(
                        self.name,
                        "-",
                        str(self.path),
                        "live_writer",
                        severity="warn",
                        action="compaction refused",
                    )
                )
                return findings
            for finding in findings:
                if int(finding.entry_id) in victims:
                    finding.action = "compacted"
        return findings

    def evict(self, entry: StoreEntry) -> int:
        self._drop.add(int(entry.entry_id))
        return entry.size

    def commit(self) -> None:
        """Atomically rewrite the journal without the dropped records.

        Every parseable surviving record is kept byte-for-byte — a
        valid final record merely missing its trailing newline (an
        append torn exactly at the newline boundary) is preserved and
        re-terminated, never discarded.  Raises
        :class:`~repro.errors.JournalBusyError` instead of rewriting
        when a live writer holds the journal (its open append handle
        would keep writing into the orphaned pre-rewrite inode).
        """
        if not self._drop or not self.path.exists():
            self._drop.clear()
            return
        with self.path.open("rb") as guard:
            # Held through the replace: blocks the has_live_writer
            # probe and pins the veto for the duration of the rewrite.
            if not safewrite.lock_writer(guard):
                raise JournalBusyError(self.path)
            kept = [
                raw
                for lineno, raw, record, _tail in self._records()
                if lineno not in self._drop and record is not None
            ]
            payload = b"".join(raw + b"\n" for raw in kept)
            safewrite.write_atomic(
                self.path.with_suffix(f".tmp.{os.getpid()}"),
                self.path,
                payload,
            )
        self._drop.clear()

    def gc(self, quarantine_ttl_s: "float | None" = None) -> list[Path]:
        del quarantine_ttl_s
        if not self.path.parent.is_dir():
            return []
        return _sweep_tmp(
            self.path.parent, f"{self.path.stem}.tmp*"
        )


def iter_stores(stores: "Iterable[StoreAdapter]") -> list[StoreAdapter]:
    """Materialise and sanity-order a store collection (stable by name)."""
    return sorted(stores, key=lambda s: s.name)
