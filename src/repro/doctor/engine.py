"""The doctor engine: audit, repair, capped eviction, and pins.

This is the policy layer over :mod:`repro.doctor.stores`.  Adapters
know how to enumerate and remove; the engine decides *what*:

* :func:`audit_stores` / :func:`repair_stores` — run every adapter and
  aggregate findings into one report (audit is read-only; repair
  quarantines or compacts the corrupt findings through each store's
  own machinery);
* :func:`evict_store` — size/TTL/LRU eviction under an
  :class:`EvictionPolicy`, refcount-aware through a *pin set*;
* :func:`serve_pins` — the pin set of a serve state directory: every
  cache key, result document, and journal record backing a campaign
  that is still pending (an in-flight primary, its dedup followers, or
  an unreplayed journal record) is pinned and survives any cap;
* :func:`gc_stores` — sweep temp-file debris and quarantine corpses.

Eviction order is deterministic: TTL expiry first, then
least-recently-used by mtime (ties broken by entry id) until the entry
and byte caps are met.  Pinned entries still *count* against the caps —
if pins alone exceed a cap the report says ``satisfied=False`` rather
than evicting live state to make a number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro import obs
from repro.doctor.stores import Finding, StoreAdapter, StoreEntry

__all__ = [
    "AuditReport",
    "EvictionPolicy",
    "EvictionReport",
    "ServePins",
    "audit_stores",
    "evict_store",
    "gc_stores",
    "repair_stores",
    "serve_pins",
    "submission_cache_keys",
]


@dataclass
class AuditReport:
    """Aggregated findings of one audit/repair pass."""

    findings: list[Finding] = field(default_factory=list)
    scanned: dict[str, int] = field(default_factory=dict)
    repaired: bool = False

    @property
    def corrupt(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "corrupt"]

    @property
    def ok(self) -> bool:
        """Clean when nothing corrupt was found (warnings tolerated)."""
        return not self.corrupt

    def format(self) -> str:
        verb = "repair" if self.repaired else "audit"
        total = sum(self.scanned.values())
        lines = [
            f"doctor {verb}: {total} entries across "
            f"{len(self.scanned)} store(s), "
            f"{len(self.corrupt)} corrupt, "
            f"{len(self.findings) - len(self.corrupt)} warning(s)"
        ]
        for name in sorted(self.scanned):
            lines.append(f"  {name}: {self.scanned[name]} entries")
        for finding in self.findings:
            action = f" -> {finding.action}" if finding.action else ""
            lines.append(
                f"  [{finding.severity}] {finding.store} "
                f"{finding.entry_id}: {finding.problem}{action}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "doctor_report",
            "mode": "repair" if self.repaired else "audit",
            "ok": self.ok,
            "scanned": dict(self.scanned),
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass(frozen=True)
class EvictionPolicy:
    """Caps for one eviction pass; ``None`` disables that axis."""

    max_bytes: "int | None" = None
    max_entries: "int | None" = None
    ttl_s: "float | None" = None

    @property
    def bounded(self) -> bool:
        return any(
            cap is not None
            for cap in (self.max_bytes, self.max_entries, self.ttl_s)
        )


@dataclass
class EvictionReport:
    """What one eviction pass did (or would do, under ``dry_run``)."""

    store: str
    examined: int = 0
    evicted: list[str] = field(default_factory=list)
    freed_bytes: int = 0
    pinned_kept: int = 0
    satisfied: bool = True
    dry_run: bool = False
    #: non-empty when the store refused mutation (e.g. a journal with a
    #: live writer): nothing was evicted, and the caps were not applied.
    skipped: str = ""

    def format(self) -> str:
        if self.skipped:
            return (
                f"doctor evict [{self.store}]: SKIPPED ({self.skipped}); "
                f"{self.examined} entries untouched"
            )
        verb = "would evict" if self.dry_run else "evicted"
        line = (
            f"doctor evict [{self.store}]: {verb} "
            f"{len(self.evicted)}/{self.examined} entries "
            f"({self.freed_bytes} bytes), {self.pinned_kept} pinned kept"
        )
        if not self.satisfied:
            line += "  [caps NOT met: pinned entries exceed them]"
        return line

    def to_dict(self) -> dict[str, Any]:
        return {
            "store": self.store,
            "examined": self.examined,
            "evicted": sorted(self.evicted),
            "freed_bytes": self.freed_bytes,
            "pinned_kept": self.pinned_kept,
            "satisfied": self.satisfied,
            "dry_run": self.dry_run,
            "skipped": self.skipped,
        }


def audit_stores(stores: "Iterable[StoreAdapter]") -> AuditReport:
    """Read-only integrity scan across every adapter."""
    report = AuditReport()
    for store in stores:
        report.scanned[store.name] = len(store.entries())
        findings = store.audit()
        report.findings.extend(findings)
        obs.inc("doctor.audit.scanned", report.scanned[store.name])
        if findings:
            obs.inc("doctor.audit.findings", len(findings))
    return report


def repair_stores(stores: "Iterable[StoreAdapter]") -> AuditReport:
    """Audit + quarantine/compact corrupt findings, store by store."""
    report = AuditReport(repaired=True)
    for store in stores:
        report.scanned[store.name] = len(store.entries())
        findings = store.repair()
        report.findings.extend(findings)
        repaired = sum(1 for f in findings if f.action)
        if repaired:
            obs.inc("doctor.repaired", repaired)
    return report


def evict_store(
    store: StoreAdapter,
    policy: EvictionPolicy,
    pins: "frozenset[str] | set[str]" = frozenset(),
    now: "float | None" = None,
    dry_run: bool = False,
) -> EvictionReport:
    """Apply one eviction policy to one store, honouring pins.

    An entry is *pinned* when any of its pin keys is in ``pins`` or the
    store itself protects it (e.g. the latest version of a model).
    Pinned entries are never evicted — not for TTL, not for caps — so
    an entry backing an in-flight campaign or an unreplayed journal
    record survives even a ``max_entries=0`` sweep.
    """
    pins = frozenset(pins)
    entries = sorted(
        store.evictable(), key=lambda e: (e.mtime, e.entry_id)
    )
    report = EvictionReport(
        store=store.name, examined=len(entries), dry_run=dry_run
    )
    if not dry_run:
        reason = store.busy()
        if reason is not None:
            # The store vetoed mutation (a live daemon holds its
            # journal): skip it loudly rather than orphan live state.
            report.skipped = reason
            report.satisfied = not (
                policy.max_entries is not None
                and len(entries) > policy.max_entries
                or policy.max_bytes is not None
                and sum(e.size for e in entries) > policy.max_bytes
            )
            obs.inc("doctor.evict_skipped")
            return report
    now = time.time() if now is None else now

    def pinned(entry: StoreEntry) -> bool:
        return entry.pinned_by(pins) or store.protected(entry)

    victims: list[StoreEntry] = []
    survivors: list[StoreEntry] = []
    for entry in entries:
        expired = (
            policy.ttl_s is not None and now - entry.mtime > policy.ttl_s
        )
        if expired and not pinned(entry):
            victims.append(entry)
        else:
            survivors.append(entry)

    # LRU pass: oldest unpinned survivors go until both caps are met.
    def over_caps(items: "list[StoreEntry]") -> bool:
        if (
            policy.max_entries is not None
            and len(items) > policy.max_entries
        ):
            return True
        if (
            policy.max_bytes is not None
            and sum(e.size for e in items) > policy.max_bytes
        ):
            return True
        return False

    kept: list[StoreEntry] = []
    pool = list(survivors)
    while pool and over_caps(pool + []):
        candidate = None
        for entry in pool:  # mtime-ordered: first unpinned is the LRU
            if not pinned(entry):
                candidate = entry
                break
        if candidate is None:
            break  # only pinned entries remain above the caps
        pool.remove(candidate)
        victims.append(candidate)
    kept = pool
    report.satisfied = not over_caps(kept)
    report.pinned_kept = sum(1 for e in kept if pinned(e))

    for entry in victims:
        report.evicted.append(entry.entry_id)
        if dry_run:
            report.freed_bytes += entry.size
        else:
            report.freed_bytes += store.evict(entry)
    if not dry_run:
        store.commit()
        obs.inc("doctor.evicted", len(report.evicted))
        obs.inc("doctor.evicted_bytes", report.freed_bytes)
    return report


def gc_stores(
    stores: "Iterable[StoreAdapter]",
    quarantine_ttl_s: "float | None" = None,
) -> "dict[str, list[str]]":
    """Sweep temp files and stale quarantine corpses; returns removals."""
    removed: dict[str, list[str]] = {}
    for store in stores:
        paths = store.gc(quarantine_ttl_s=quarantine_ttl_s)
        removed[store.name] = [str(p) for p in paths]
        if paths:
            obs.inc("doctor.gc_removed", len(paths))
    return removed


# -- pins ---------------------------------------------------------------


@dataclass(frozen=True)
class ServePins:
    """Everything an in-flight serve state directory pins.

    ``cache_keys`` pin fleet-cache entries (the jobs a pending campaign
    will look up on resume), ``campaign_ids`` pin result documents and
    journal records.  Computed from the submit journal, which by the
    fsync-before-202 contract is a superset of the scheduler's
    in-memory queued/running set — so an out-of-process ``repro doctor
    evict`` sees every in-flight campaign and dedup follower a live
    daemon is holding.
    """

    cache_keys: frozenset[str] = frozenset()
    campaign_ids: frozenset[str] = frozenset()

    @property
    def all(self) -> frozenset[str]:
        return self.cache_keys | self.campaign_ids


def submission_cache_keys(
    kind: str, spec: "dict[str, Any]"
) -> "set[str]":
    """The fleet-cache keys one submission's execution will touch.

    Mirrors exactly how the scheduler turns a submission into jobs —
    ``evaluate`` expands to the ten-state matrix on the default compact
    placement, ``fleet`` to the campaign's own job list — so a pin
    computed here names precisely the entries a resumed campaign will
    ask the cache for.
    """
    from repro.core.evaluation import _state_runnable
    from repro.core.states import evaluation_states
    from repro.engine.simulator import DEFAULT_PLACEMENT_POLICY
    from repro.errors import WorkloadError
    from repro.fleet.cache import job_cache_key
    from repro.fleet.spec import campaign_from_dict, make_job
    from repro.hardware.zoo import resolve_server
    from repro.workloads.base import Workload

    keys: set[str] = set()
    if kind == "fleet":
        campaign = campaign_from_dict(spec)
        for job in campaign.jobs():
            keys.add(job_cache_key(job))
        return keys
    if kind != "evaluate":
        return keys
    server = resolve_server(spec["server"])
    seed = int(spec.get("seed", 0))
    # The scheduler builds its evaluate simulator with the default
    # placement (`Simulator(server, seed=seed)`), so the same public
    # default names exactly the cache keys the resumed campaign will
    # look up.
    placement = DEFAULT_PLACEMENT_POLICY
    for state in evaluation_states(server):
        runnable = _state_runnable(state)
        if isinstance(runnable, Workload):
            try:
                runnable.bind(server)
            except WorkloadError:
                continue
        job = make_job(server, runnable, seed, placement)
        keys.add(job_cache_key(job))
    return keys


def serve_pins(state_root: "str | Path") -> ServePins:
    """Pin set of one serve state directory (journal-derived)."""
    from repro.errors import ReproError
    from repro.serve.state import StateStore

    root = Path(state_root)
    if not (root / "journal.jsonl").exists():
        return ServePins()
    store = StateStore(root)
    try:
        pending, _next_id = store.replay()
    finally:
        store.close()
    cache_keys: set[str] = set()
    campaign_ids: set[str] = set()
    for item in pending:
        campaign_ids.add(item.campaign_id)
        if item.dedup_of:
            campaign_ids.add(item.dedup_of)
        try:
            cache_keys |= submission_cache_keys(
                item.submission.kind, item.submission.spec
            )
        except (ReproError, KeyError, TypeError, ValueError):
            # A malformed spec cannot name cache keys — its campaign id
            # still pins the journal record and result document.  Any
            # *other* exception is a pin-derivation regression and must
            # fail loudly: swallowing it would silently turn pins into
            # no-ops and let evict delete in-flight cache entries.
            continue
    return ServePins(
        cache_keys=frozenset(cache_keys),
        campaign_ids=frozenset(campaign_ids),
    )
