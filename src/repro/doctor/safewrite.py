"""Disk-fault-aware durable writes, shared by every on-disk store.

Every fsync/atomic-write path in the repo — the fleet's result cache,
the serve daemon's submit journal and results store, the model
registry, and the shared event journal the cluster layer traces into —
funnels through these two helpers.  That gives them one contract:

* a successful write is durable (temp file + ``fsync`` + ``os.replace``
  for documents, ``write`` + ``flush`` [+ ``fsync``] for journals);
* a write that fails for *capacity or media* reasons (``ENOSPC``,
  ``EDQUOT``, ``EIO``) raises :class:`~repro.errors.StorageDegradedError`
  with any temp file cleaned up, so callers degrade deliberately —
  shed load, skip the cache, leave the campaign journaled — instead of
  dying mid-write with half an entry on disk;
* any other ``OSError`` (permissions, bad path) propagates untouched.

The module doubles as the chaos harness's *disk-full injector*: a
write-token budget, settable in-process (:func:`inject_disk_full`) or
via the ``REPRO_FAULT_ENOSPC`` environment variable (read once at
import, so a spawned serve daemon can be booted onto a "full" disk),
allows that many guarded writes and then fails every subsequent one
with a synthetic ``ENOSPC``.  Deterministic by construction: the Nth
write fails, not a random one.
"""

from __future__ import annotations

import errno
import os
import threading
from pathlib import Path
from typing import IO

from repro.errors import StorageDegradedError

__all__ = [
    "DEGRADE_ERRNOS",
    "ENV_FAULT_BUDGET",
    "append_line",
    "clear_disk_fault",
    "discard_and_reopen",
    "fault_active",
    "has_live_writer",
    "inject_disk_full",
    "is_degrading",
    "lock_writer",
    "same_file",
    "write_atomic",
]

#: errno values that mean "the disk, not the program, is the problem".
DEGRADE_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT, errno.EIO})

#: Environment variable carrying an injected write-token budget: that
#: many guarded writes succeed, then every one fails with ``ENOSPC``.
ENV_FAULT_BUDGET = "REPRO_FAULT_ENOSPC"

_lock = threading.Lock()
_budget: "int | None" = None  # None: no fault injected


def _load_env_budget() -> "int | None":
    raw = os.environ.get(ENV_FAULT_BUDGET, "").strip()
    if not raw:
        return None
    try:
        return max(0, int(raw))
    except ValueError:
        return None


_budget = _load_env_budget()


def inject_disk_full(budget: int = 0) -> None:
    """Arm the injector: ``budget`` guarded writes succeed, then ENOSPC."""
    global _budget
    with _lock:
        _budget = max(0, int(budget))


def clear_disk_fault() -> None:
    """Disarm the injector; subsequent writes hit the real disk only."""
    global _budget
    with _lock:
        _budget = None


def fault_active() -> bool:
    """Whether an injected disk-full fault is currently armed."""
    with _lock:
        return _budget is not None


def _consume_token() -> None:
    """Spend one write token; raise a synthetic ENOSPC when exhausted."""
    global _budget
    with _lock:
        if _budget is None:
            return
        if _budget <= 0:
            raise OSError(
                errno.ENOSPC, "injected fault: no space left on device"
            )
        _budget -= 1


def is_degrading(exc: BaseException) -> bool:
    """Whether an exception means "degrade", not "bug"."""
    if isinstance(exc, StorageDegradedError):
        return True
    return (
        isinstance(exc, OSError) and exc.errno in DEGRADE_ERRNOS
    )


def write_atomic(tmp: Path, dest: Path, payload: bytes) -> None:
    """Durable atomic write: temp file, flush to disk, rename.

    On a capacity/media failure the temp file is removed (a dying write
    must not leak half-entries for readers to trip over) and
    :class:`StorageDegradedError` raised; ``dest`` is either the old
    complete content or the new complete content, never a mix.
    """
    tmp = Path(tmp)
    dest = Path(dest)
    try:
        _consume_token()
        with tmp.open("wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(dest)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        if is_degrading(exc):
            raise StorageDegradedError(dest, exc) from exc
        raise


def lock_writer(fh: "IO[str] | IO[bytes]") -> bool:
    """Mark ``fh``'s file as having a live writer (advisory ``flock``).

    Every long-lived journal appender (the serve daemon's submit
    journal, any :class:`~repro.fleet.events.EventLog`) takes this
    exclusive, non-blocking lock on its append handle.  The lock is the
    signal :func:`has_live_writer` checks before a journal compaction:
    rewriting a file behind an open append handle orphans the inode and
    silently swallows every subsequent fsynced append.

    Best-effort: returns ``False`` when the lock is already held (a
    second opener of the same file is a reader, not the writer) or the
    platform has no ``flock``.  Released automatically when the handle
    is closed or the process exits.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return False
    try:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        return False
    return True


def has_live_writer(path: "Path | str") -> bool:
    """Whether some open handle holds the writer lock on ``path``.

    Probes with a non-blocking *shared* lock: acquiring it proves no
    writer holds the exclusive lock (the probe lock is dropped
    immediately).  Advisory — a writer that never called
    :func:`lock_writer` is invisible — but every journal writer in this
    repo does.  ``False`` when the file is missing or ``flock`` is
    unavailable.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return False
    try:
        fh = open(path, "rb")
    except OSError:
        return False
    with fh:
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_SH | fcntl.LOCK_NB)
        except OSError:
            return True
        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        return False


def same_file(fh: "IO[str] | IO[bytes]", path: "Path | str") -> bool:
    """Whether ``fh`` is still an open handle to what ``path`` names.

    ``False`` when the file was replaced, rotated, or removed beneath
    the handle — the appender must reopen before writing, or its bytes
    land in an orphaned inode no reader will ever see.
    """
    try:
        ours = os.fstat(fh.fileno())
        theirs = os.stat(path)
    except OSError:
        return False
    return (ours.st_ino, ours.st_dev) == (theirs.st_ino, theirs.st_dev)


def discard_and_reopen(fh: "IO[str]", path: "Path | str") -> "IO[str]":
    """Drop ``fh``'s unflushed buffer and return a fresh append handle.

    After a failed flush/fsync, a ``TextIOWrapper`` can retain the
    rejected bytes in its buffer; the next *successful* append would
    flush them too, journaling a record whose caller was told it was
    rejected.  Closing normally would retry that flush — so the handle's
    descriptor is first redirected to ``os.devnull`` (race-free: no
    descriptor number is ever closed while the wrapper still owns it),
    letting the poisoned buffer drain harmlessly before the reopen.
    """
    try:
        sink = os.open(os.devnull, os.O_WRONLY)
        try:
            os.dup2(sink, fh.fileno())
        finally:
            os.close(sink)
    except (OSError, ValueError):
        pass
    try:
        fh.close()
    except (OSError, ValueError):
        pass
    return open(path, "a")


def append_line(
    fh: "IO[str]",
    line: str,
    fsync: bool = False,
    target: "Path | str | None" = None,
) -> None:
    """Guarded journal append: write + flush (+ ``fsync``).

    Raises :class:`StorageDegradedError` on capacity/media failure so
    the journal owner decides the degradation (refuse the submission,
    drop the event, leave the campaign pending) instead of crashing the
    thread that happened to hold the pen.
    """
    try:
        _consume_token()
        fh.write(line)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    except OSError as exc:
        if is_degrading(exc):
            raise StorageDegradedError(
                target if target is not None else getattr(fh, "name", "?"),
                exc,
            ) from exc
        raise
