"""Self-healing storage: audit, repair, eviction, and supervision.

The doctor subsystem keeps the repo's four on-disk stores — fleet
result cache, serve journal + results, model registry, event journals
— bounded, verified, and recoverable:

* :mod:`repro.doctor.safewrite` — the ENOSPC/EIO-aware durable-write
  layer every store writes through (plus the chaos harness's
  deterministic disk-full injector);
* :mod:`repro.doctor.stores` — one :class:`StoreAdapter` interface
  over all four stores (audit / repair / evict / gc);
* :mod:`repro.doctor.engine` — policy: aggregated audits, capped
  TTL/LRU eviction with refcount-aware pins, garbage collection;
* :mod:`repro.doctor.supervisor` — the serve crash supervisor (restart
  budget, exponential backoff, circuit breaker, post-crash auto-audit).

CLI: ``python -m repro doctor audit|repair|evict|gc`` and
``python -m repro serve --supervise``.  See ``docs/robustness.md``.

Attribute access is lazy (PEP 562): the stores the adapters wrap
(fleet cache, event log, serve state, model registry) themselves
import :mod:`repro.doctor.safewrite`, so this package must be
importable without touching them.
"""

from typing import Any

__all__ = [
    "AuditReport",
    "EvictionPolicy",
    "EvictionReport",
    "Finding",
    "FleetCacheStore",
    "JournalStore",
    "ModelRegistryStore",
    "RestartPolicy",
    "SUBMIT_JOURNAL_KINDS",
    "ServePins",
    "ServeResultsStore",
    "StoreAdapter",
    "StoreEntry",
    "Supervisor",
    "SupervisorOutcome",
    "audit_stores",
    "evict_store",
    "gc_stores",
    "repair_stores",
    "serve_pins",
    "submission_cache_keys",
    "verify_cache_entry",
    "verify_model_artifact",
]

_ENGINE = {
    "AuditReport",
    "EvictionPolicy",
    "EvictionReport",
    "ServePins",
    "audit_stores",
    "evict_store",
    "gc_stores",
    "repair_stores",
    "serve_pins",
    "submission_cache_keys",
}
_STORES = {
    "Finding",
    "FleetCacheStore",
    "JournalStore",
    "ModelRegistryStore",
    "SUBMIT_JOURNAL_KINDS",
    "ServeResultsStore",
    "StoreAdapter",
    "StoreEntry",
    "verify_cache_entry",
    "verify_model_artifact",
}
_SUPERVISOR = {"RestartPolicy", "Supervisor", "SupervisorOutcome"}


def __getattr__(name: str) -> Any:
    if name in _ENGINE:
        from repro.doctor import engine

        return getattr(engine, name)
    if name in _STORES:
        from repro.doctor import stores

        return getattr(stores, name)
    if name in _SUPERVISOR:
        from repro.doctor import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(__all__)
