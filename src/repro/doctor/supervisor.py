"""Crash supervision for the serve daemon (``repro serve --supervise``).

A long-lived daemon on a degrading disk will crash; what matters is
what happens next.  The supervisor wraps one child (a spawned ``repro
serve`` process, or any callable in tests) with the standard
production trio:

* **restart budget** — at most ``max_restarts`` restarts, ever;
* **exponential backoff** — ``backoff_initial_s * 2**n`` between
  restarts, capped at ``backoff_cap_s``, deterministic (no jitter —
  a supervisor's behaviour must be replayable in tests and chaos);
* **crash-loop circuit breaker** — a crash after less than
  ``min_uptime_s`` of life is a *strike*; ``breaker_strikes``
  consecutive strikes open the breaker and stop the restart loop,
  because a child that cannot even boot will not be fixed by booting
  it again.

Between a crash and the restart an optional **audit hook** runs —
``repro serve --supervise`` points it at ``doctor repair`` over the
state directory, so a child that died mid-write resumes its journal
only after torn records and corrupt entries have been swept.

Exit contract: child exits 0 → supervisor exits 0 (a graceful drain is
not a crash).  Budget exhausted → 2.  Breaker open → 3.  Every
transition is visible through the optional ``on_event`` callback (the
CLI wires it to the state directory's event journal as
``supervisor_restart`` / ``supervisor_halt`` records).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs

__all__ = ["RestartPolicy", "Supervisor", "SupervisorOutcome"]


@dataclass(frozen=True)
class RestartPolicy:
    """Knobs of the restart loop."""

    max_restarts: int = 5
    backoff_initial_s: float = 0.5
    backoff_cap_s: float = 30.0
    min_uptime_s: float = 5.0
    breaker_strikes: int = 3

    def backoff_s(self, restarts: int) -> float:
        """Deterministic exponential backoff before restart ``restarts``."""
        if restarts <= 1:
            return self.backoff_initial_s
        return min(
            self.backoff_cap_s,
            self.backoff_initial_s * 2 ** (restarts - 1),
        )


@dataclass(frozen=True)
class SupervisorOutcome:
    """How one supervision run ended."""

    status: str  # clean | budget_exhausted | breaker_open
    restarts: int
    strikes: int
    audits: int
    last_exit_code: int

    _EXIT = {"clean": 0, "budget_exhausted": 2, "breaker_open": 3}

    @property
    def exit_code(self) -> int:
        return self._EXIT.get(self.status, 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "restarts": self.restarts,
            "strikes": self.strikes,
            "audits": self.audits,
            "last_exit_code": self.last_exit_code,
            "exit_code": self.exit_code,
        }


class Supervisor:
    """Run a child to completion, restarting per :class:`RestartPolicy`.

    ``run_child`` blocks until the child exits and returns its exit
    code; ``audit`` (optional) runs after every crash, before the
    restart; ``sleep``/``clock`` are injectable for tests and the chaos
    harness, which drive the whole loop on a fake timeline.
    """

    def __init__(
        self,
        run_child: "Callable[[], int]",
        policy: "RestartPolicy | None" = None,
        audit: "Callable[[], Any] | None" = None,
        sleep: "Callable[[float], None]" = time.sleep,
        clock: "Callable[[], float]" = time.monotonic,
        on_event: "Callable[[str, dict[str, Any]], None] | None" = None,
    ):
        self.run_child = run_child
        self.policy = policy or RestartPolicy()
        self.audit = audit
        self.sleep = sleep
        self.clock = clock
        self.on_event = on_event

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.on_event is not None:
            try:
                self.on_event(kind, fields)
            except Exception:  # noqa: BLE001 - telemetry must not kill us
                pass

    def run(self) -> SupervisorOutcome:
        policy = self.policy
        restarts = strikes = audits = 0
        while True:
            started = self.clock()
            code = self.run_child()
            uptime = self.clock() - started
            if code == 0:
                self._emit("clean_exit", restarts=restarts)
                return SupervisorOutcome(
                    "clean", restarts, strikes, audits, code
                )
            obs.inc("supervisor.crashes")
            if uptime < policy.min_uptime_s:
                strikes += 1
            else:
                strikes = 0
            if strikes >= policy.breaker_strikes:
                self._emit(
                    "halt",
                    reason="breaker_open",
                    strikes=strikes,
                    restarts=restarts,
                    exit_code=code,
                )
                obs.inc("supervisor.breaker_open")
                return SupervisorOutcome(
                    "breaker_open", restarts, strikes, audits, code
                )
            if restarts >= policy.max_restarts:
                self._emit(
                    "halt",
                    reason="budget_exhausted",
                    restarts=restarts,
                    exit_code=code,
                )
                return SupervisorOutcome(
                    "budget_exhausted", restarts, strikes, audits, code
                )
            restarts += 1
            if self.audit is not None:
                try:
                    self.audit()
                    audits += 1
                except Exception:  # noqa: BLE001 - audit is best-effort
                    pass
            delay = policy.backoff_s(restarts)
            self._emit(
                "restart",
                restarts=restarts,
                strikes=strikes,
                backoff_s=delay,
                exit_code=code,
                uptime_s=round(uptime, 3),
            )
            obs.inc("supervisor.restarts")
            self.sleep(delay)
