"""WTViewer-style CSV logging.

The paper's procedure (Section V-C2) shares a directory from the metering
PC, copies the WTViewer CSV files to the server after the run, and merges
them into one file before extracting per-program windows.  These helpers
reproduce that file format and the merge step.

Format: a header line, then ``timestamp_s,watts`` rows.  Timestamps are
seconds relative to the campaign epoch (the paper synchronises server and
PC clocks first; :mod:`repro.engine.experiment` models the residual
offset).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import MeterError

__all__ = [
    "write_power_csv",
    "read_power_csv",
    "read_power_csv_tolerant",
    "merge_power_csvs",
    "CsvReadReport",
    "HEADER",
]

HEADER: tuple[str, str] = ("time_s", "power_w")


def write_power_csv(
    path: "str | Path", times_s: np.ndarray, watts: np.ndarray
) -> Path:
    """Write one WTViewer-style CSV; returns the path."""
    times_s = np.asarray(times_s, dtype=float)
    watts = np.asarray(watts, dtype=float)
    if times_s.shape != watts.shape:
        raise MeterError(
            f"times and watts must align: {times_s.shape} vs {watts.shape}"
        )
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(HEADER)
        for t, w in zip(times_s, watts):
            writer.writerow([f"{t:.3f}", f"{w:.2f}"])
    return path


def read_power_csv(path: "str | Path") -> tuple[np.ndarray, np.ndarray]:
    """Read one CSV; returns (times_s, watts) arrays."""
    path = Path(path)
    times: list[float] = []
    watts: list[float] = []
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or tuple(header) != HEADER:
                raise MeterError(
                    f"{path}: not a power CSV (header {header!r})"
                )
            for lineno, row in enumerate(reader, start=2):
                if len(row) != 2:
                    raise MeterError(f"{path}:{lineno}: expected 2 columns")
                try:
                    times.append(float(row[0]))
                    watts.append(float(row[1]))
                except ValueError as exc:
                    raise MeterError(f"{path}:{lineno}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise MeterError(f"{path}: not a text CSV file ({exc})") from exc
    return np.asarray(times), np.asarray(watts)


@dataclass(frozen=True)
class CsvReadReport:
    """What the tolerant reader skipped in one file."""

    n_rows: int
    n_bad: int
    bad_lines: tuple[int, ...]

    @property
    def ok(self) -> bool:
        """Whether every row parsed cleanly."""
        return self.n_bad == 0


def read_power_csv_tolerant(
    path: "str | Path",
) -> tuple[np.ndarray, np.ndarray, CsvReadReport]:
    """Read a possibly damaged CSV, salvaging every parseable row.

    Truncated files (a logger killed mid-write) and corrupt rows (disk
    or transfer damage) are the two failure modes the paper's shared-
    directory copy step can produce.  Unlike :func:`read_power_csv`,
    which fails fast, this reader skips malformed rows and reports their
    line numbers so the repair stage (:func:`repro.metering.analysis.
    repair_trace`) can treat them as dropouts.  A missing or wrong
    header still raises — that is a different file, not a damaged one.
    """
    path = Path(path)
    times: list[float] = []
    watts: list[float] = []
    bad: list[int] = []
    n_rows = 0
    with path.open(newline="", errors="replace") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or tuple(header) != HEADER:
            raise MeterError(f"{path}: not a power CSV (header {header!r})")
        for lineno, row in enumerate(reader, start=2):
            n_rows += 1
            if len(row) != 2:
                bad.append(lineno)
                continue
            try:
                t, w = float(row[0]), float(row[1])
            except ValueError:
                bad.append(lineno)
                continue
            times.append(t)
            watts.append(w)
    return (
        np.asarray(times),
        np.asarray(watts),
        CsvReadReport(n_rows=n_rows, n_bad=len(bad), bad_lines=tuple(bad)),
    )


def merge_power_csvs(
    paths: "list[str | Path]", out_path: "str | Path"
) -> Path:
    """Merge several CSVs into one, sorted by timestamp.

    Duplicate timestamps (overlapping logger files) keep the first
    occurrence, matching WTViewer's merge behaviour.
    """
    if not paths:
        raise MeterError("no CSV files to merge")
    all_times: list[np.ndarray] = []
    all_watts: list[np.ndarray] = []
    for path in paths:
        t, w = read_power_csv(path)
        all_times.append(t)
        all_watts.append(w)
    times = np.concatenate(all_times)
    watts = np.concatenate(all_watts)
    order = np.argsort(times, kind="stable")
    times, watts = times[order], watts[order]
    keep = np.ones(times.shape[0], dtype=bool)
    keep[1:] = np.diff(times) > 0
    return write_power_csv(out_path, times[keep], watts[keep])
