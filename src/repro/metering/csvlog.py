"""WTViewer-style CSV logging.

The paper's procedure (Section V-C2) shares a directory from the metering
PC, copies the WTViewer CSV files to the server after the run, and merges
them into one file before extracting per-program windows.  These helpers
reproduce that file format and the merge step.

Format: a header line, then ``timestamp_s,watts`` rows.  Timestamps are
seconds relative to the campaign epoch (the paper synchronises server and
PC clocks first; :mod:`repro.engine.experiment` models the residual
offset).
"""

from __future__ import annotations

import csv
import heapq
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import MeterError

__all__ = [
    "write_power_csv",
    "read_power_csv",
    "read_power_csv_tolerant",
    "iter_power_csv",
    "merge_power_csvs",
    "roundtrip_sample",
    "CsvReadReport",
    "PowerCsvWriter",
    "HEADER",
    "DEFAULT_CHUNK_SIZE",
]

HEADER: tuple[str, str] = ("time_s", "power_w")

#: Format specs every row goes through.  Public because the streaming
#: campaign path must reproduce the *written-then-parsed* values without
#: a file in between (see :func:`roundtrip_sample`) — keeping the specs
#: in one place keeps the two paths from drifting.
TIME_FORMAT = ".3f"
POWER_FORMAT = ".2f"

#: Rows per chunk :func:`iter_power_csv` yields.
DEFAULT_CHUNK_SIZE = 4096


def roundtrip_sample(t: float, w: float) -> tuple[float, float]:
    """The value a sample has after one CSV write+read round trip.

    The batch pipeline logs ``f"{t:.3f}", f"{w:.2f}"`` and parses the
    strings back; the streaming campaign path feeds samples to the
    pipeline *as generated*, so it applies the identical format/parse
    here — that float quantisation is part of the measurement, and
    skipping it would break bit-identity with the batch analysis.
    """
    return float(f"{t:{TIME_FORMAT}}"), float(f"{w:{POWER_FORMAT}}")


class PowerCsvWriter:
    """Incremental WTViewer-style CSV writer (context manager).

    Writes the header on open and rows on :meth:`write`, producing
    byte-identical files to :func:`write_power_csv` without ever holding
    the trace — the streaming merge and campaign paths append one
    chunk at a time.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(HEADER)

    def write(self, t: float, w: float) -> None:
        """Append one row."""
        self._writer.writerow([f"{t:{TIME_FORMAT}}", f"{w:{POWER_FORMAT}}"])

    def write_many(self, times_s: np.ndarray, watts: np.ndarray) -> None:
        """Append a chunk of rows."""
        times_s = np.asarray(times_s, dtype=float)
        watts = np.asarray(watts, dtype=float)
        if times_s.shape != watts.shape:
            raise MeterError(
                f"times and watts must align: {times_s.shape} vs "
                f"{watts.shape}"
            )
        for t, w in zip(times_s, watts):
            self.write(t, w)

    def close(self) -> Path:
        """Flush and close; returns the path."""
        if not self._fh.closed:
            self._fh.close()
        return self.path

    def __enter__(self) -> "PowerCsvWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_power_csv(
    path: "str | Path", times_s: np.ndarray, watts: np.ndarray
) -> Path:
    """Write one WTViewer-style CSV; returns the path."""
    times_s = np.asarray(times_s, dtype=float)
    watts = np.asarray(watts, dtype=float)
    if times_s.shape != watts.shape:
        raise MeterError(
            f"times and watts must align: {times_s.shape} vs {watts.shape}"
        )
    with PowerCsvWriter(path) as writer:
        writer.write_many(times_s, watts)
    return writer.path


def read_power_csv(path: "str | Path") -> tuple[np.ndarray, np.ndarray]:
    """Read one CSV; returns (times_s, watts) arrays."""
    path = Path(path)
    times: list[float] = []
    watts: list[float] = []
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or tuple(header) != HEADER:
                raise MeterError(
                    f"{path}: not a power CSV (header {header!r})"
                )
            for lineno, row in enumerate(reader, start=2):
                if len(row) != 2:
                    raise MeterError(f"{path}:{lineno}: expected 2 columns")
                try:
                    times.append(float(row[0]))
                    watts.append(float(row[1]))
                except ValueError as exc:
                    raise MeterError(f"{path}:{lineno}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise MeterError(f"{path}: not a text CSV file ({exc})") from exc
    return np.asarray(times), np.asarray(watts)


@dataclass(frozen=True)
class CsvReadReport:
    """What the tolerant reader skipped in one file."""

    n_rows: int
    n_bad: int
    bad_lines: tuple[int, ...]

    @property
    def ok(self) -> bool:
        """Whether every row parsed cleanly."""
        return self.n_bad == 0


def read_power_csv_tolerant(
    path: "str | Path",
) -> tuple[np.ndarray, np.ndarray, CsvReadReport]:
    """Read a possibly damaged CSV, salvaging every parseable row.

    Truncated files (a logger killed mid-write) and corrupt rows (disk
    or transfer damage) are the two failure modes the paper's shared-
    directory copy step can produce.  Unlike :func:`read_power_csv`,
    which fails fast, this reader skips malformed rows and reports their
    line numbers so the repair stage (:func:`repro.metering.analysis.
    repair_trace`) can treat them as dropouts.  A missing or wrong
    header still raises — that is a different file, not a damaged one.
    """
    path = Path(path)
    times: list[float] = []
    watts: list[float] = []
    bad: list[int] = []
    n_rows = 0
    with path.open(newline="", errors="replace") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or tuple(header) != HEADER:
            raise MeterError(f"{path}: not a power CSV (header {header!r})")
        for lineno, row in enumerate(reader, start=2):
            n_rows += 1
            if len(row) != 2:
                bad.append(lineno)
                continue
            try:
                t, w = float(row[0]), float(row[1])
            except ValueError:
                bad.append(lineno)
                continue
            times.append(t)
            watts.append(w)
    return (
        np.asarray(times),
        np.asarray(watts),
        CsvReadReport(n_rows=n_rows, n_bad=len(bad), bad_lines=tuple(bad)),
    )


def iter_power_csv(
    path: "str | Path", chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Read one CSV in bounded chunks of ``(times_s, watts)`` arrays.

    The streaming counterpart of :func:`read_power_csv`: identical
    header/row validation and identical parsed values, but peak memory
    is O(``chunk_size``) instead of O(file).  Concatenating every chunk
    reproduces the batch reader's arrays exactly.
    """
    if chunk_size < 1:
        raise MeterError(f"chunk_size must be >= 1, got {chunk_size}")
    path = Path(path)
    times: list[float] = []
    watts: list[float] = []
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or tuple(header) != HEADER:
                raise MeterError(
                    f"{path}: not a power CSV (header {header!r})"
                )
            for lineno, row in enumerate(reader, start=2):
                if len(row) != 2:
                    raise MeterError(f"{path}:{lineno}: expected 2 columns")
                try:
                    times.append(float(row[0]))
                    watts.append(float(row[1]))
                except ValueError as exc:
                    raise MeterError(f"{path}:{lineno}: {exc}") from exc
                if len(times) >= chunk_size:
                    yield np.asarray(times), np.asarray(watts)
                    times, watts = [], []
    except UnicodeDecodeError as exc:
        raise MeterError(f"{path}: not a text CSV file ({exc})") from exc
    if times:
        yield np.asarray(times), np.asarray(watts)


class _UnsortedFile(Exception):
    """Internal: a file fed to the streaming merge was out of order."""


def _sorted_rows(
    path: Path, chunk_size: int
) -> Iterator[tuple[float, float]]:
    """Yield one file's rows, proving non-decreasing order as we go."""
    last = float("-inf")
    for times, watts in iter_power_csv(path, chunk_size):
        for t, w in zip(times, watts):
            t = float(t)
            if t < last:
                raise _UnsortedFile(str(path))
            last = t
            yield t, float(w)


def merge_power_csvs(
    paths: "list[str | Path]",
    out_path: "str | Path",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Path:
    """Merge several CSVs into one, sorted by timestamp.

    Duplicate timestamps (overlapping logger files) keep the first
    occurrence — first in *argument order* for cross-file ties, first in
    file order within a file — matching WTViewer's merge behaviour.

    Sorted inputs (every file a campaign writes) are merged as a k-way
    stream: peak memory is O(files x chunk), not O(trace), and the
    output is byte-identical to the old concatenate-and-stable-sort
    implementation, whose tie-breaking a stable k-way merge reproduces
    exactly.  A file discovered out of order mid-stream falls back to
    materialising everything, preserving the historical behaviour for
    arbitrary inputs.  The merge lands via a temp file + rename, so a
    bad input never leaves a partial merge behind.
    """
    if not paths:
        raise MeterError("no CSV files to merge")
    out_path = Path(out_path)
    tmp_path = out_path.with_name(out_path.name + ".merge-tmp")
    try:
        streams = [_sorted_rows(Path(p), chunk_size) for p in paths]
        with PowerCsvWriter(tmp_path) as writer:
            last: "float | None" = None
            # heapq.merge is stable across its input iterables, so ties
            # resolve to the earliest file — the same winner the stable
            # argsort of the concatenation picked.
            for t, w in heapq.merge(*streams, key=lambda row: row[0]):
                if last is not None and t <= last:
                    continue  # duplicate timestamp: keep the first
                writer.write(t, w)
                last = t
    except _UnsortedFile:
        tmp_path.unlink(missing_ok=True)
        return _merge_materialized(paths, out_path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    tmp_path.replace(out_path)
    return out_path


def _merge_materialized(
    paths: "list[str | Path]", out_path: "str | Path"
) -> Path:
    """The historical O(trace) merge, kept for unsorted inputs."""
    all_times: list[np.ndarray] = []
    all_watts: list[np.ndarray] = []
    for path in paths:
        t, w = read_power_csv(path)
        all_times.append(t)
        all_watts.append(w)
    times = np.concatenate(all_times)
    watts = np.concatenate(all_watts)
    order = np.argsort(times, kind="stable")
    times, watts = times[order], watts[order]
    keep = np.ones(times.shape[0], dtype=bool)
    keep[1:] = np.diff(times) > 0
    return write_power_csv(out_path, times[keep], watts[keep])
