"""Simulated power metering and the paper's data-analysis pipeline.

The paper measures with a Yokogawa WT210 external meter logging 1 Hz
samples through the WTViewer PC client, then post-processes CSVs: merge,
extract per-program windows by timestamp, drop the first and last 10 % of
samples, and average (Section V-C2).  This package reproduces that chain:

* :mod:`repro.metering.meter` — the WT210 model: 1 Hz sampling, range
  handling, gaussian + quantisation noise.
* :mod:`repro.metering.csvlog` — WTViewer-style CSV writing/reading and
  multi-file merge (chunked reader + streaming k-way merge).
* :mod:`repro.metering.sampler` — the 1 s memory-usage sampler.
* :mod:`repro.metering.analysis` — window extraction, 10 % trimming,
  averages, and PPW assembly.
* :mod:`repro.metering.stream` — the same analysis chain folded over a
  live sample stream: O(window) memory, finalised results bit-identical
  to the batch pipeline (see docs/metering.md).
"""

from repro.metering.meter import MeterSpec, Wt210Meter, WT210
from repro.metering.csvlog import (
    iter_power_csv,
    read_power_csv,
    write_power_csv,
    merge_power_csvs,
)
from repro.metering.sampler import MemorySampler
from repro.metering.analysis import (
    TrimmedStats,
    extract_window,
    trimmed_mean,
    trimmed_stats,
)
from repro.metering.stream import (
    StreamingFeatures,
    StreamingStats,
    StreamingTrim,
    StreamingWindow,
    WindowResult,
    WindowSpec,
)

__all__ = [
    "MeterSpec",
    "Wt210Meter",
    "WT210",
    "iter_power_csv",
    "read_power_csv",
    "write_power_csv",
    "merge_power_csvs",
    "MemorySampler",
    "TrimmedStats",
    "extract_window",
    "trimmed_mean",
    "trimmed_stats",
    "StreamingFeatures",
    "StreamingStats",
    "StreamingTrim",
    "StreamingWindow",
    "WindowResult",
    "WindowSpec",
]
