"""The 1 s memory-usage sampler.

Step 7 of the paper's test procedure acquires memory information at 1 s
intervals during the run.  The sampler reads the resident footprint the
memory subsystem reports, plus small fluctuation from allocator and page
cache churn.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.hardware.specs import ServerSpec

__all__ = ["MemorySampler"]


class MemorySampler:
    """Samples resident memory (MB) once per second."""

    def __init__(
        self,
        server: ServerSpec,
        jitter_mb: float = 8.0,
        seed: int = 0,
    ):
        if jitter_mb < 0:
            raise ConfigurationError("jitter must be non-negative")
        self.server = server
        self.jitter_mb = jitter_mb
        self._rng = np.random.default_rng(seed)

    def sample_series(self, resident_mb: np.ndarray) -> np.ndarray:
        """Observe a per-second series of true resident footprints."""
        resident_mb = np.asarray(resident_mb, dtype=float)
        observed = resident_mb + self.jitter_mb * self._rng.standard_normal(
            resident_mb.shape
        )
        obs.inc("meter.memory_samples", float(resident_mb.size))
        return np.clip(observed, 0.0, self.server.memory_mb)

    def usage_percent(self, resident_mb: np.ndarray) -> np.ndarray:
        """Observed usage as a percentage of installed DRAM."""
        return 100.0 * self.sample_series(resident_mb) / self.server.memory_mb
