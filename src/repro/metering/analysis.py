"""Post-processing of metered traces (Section V-C2, analysis steps 2-5).

After a campaign the paper extracts each program's samples by its
execution window, discards the initial 10 % and final 10 % (program
start-up and tear-down transients, meter/clock misalignment), and takes
the arithmetic mean.  The same trimming appears in the Green500 run rules
("the first and last few samples can be ignored").

Real traces are not clean: loggers drop samples, meters glitch, and the
meter PC's clock drifts off the server's (Sirbu & Babaoglu report exactly
this class of missing/corrupt trace data at supercomputer scale).
:func:`repair_trace` is the validation/quarantine/repair stage for such
traces — it rejects non-finite and outlier samples, corrects a uniform
clock offset, interpolates gaps up to a budget, and reports everything it
did in a :class:`TraceQuality` record so a repaired number is never
silently mistaken for a pristine one.  The default analysis pipeline does
not route through it; callers opt in (``Campaign(repair=True)``, the
chaos harness), so untouched traces stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError

__all__ = [
    "extract_window",
    "trimmed_mean",
    "trimmed_stats",
    "TrimmedStats",
    "TraceQuality",
    "RepairedTrace",
    "validate_trace",
    "repair_trace",
]

#: Default trim: drop this fraction of samples at each end.
DEFAULT_TRIM: float = 0.10

#: Default gap-interpolation budget: fill holes up to this long, seconds.
DEFAULT_MAX_GAP_S: float = 5.0

#: Default robust-z threshold for outlier rejection.
DEFAULT_OUTLIER_Z: float = 8.0

#: Below this surviving-sample coverage a trace is quarantined.
DEFAULT_MIN_COVERAGE: float = 0.5

#: Absolute edge tolerance of :func:`extract_window`, seconds.  Far
#: below any meter's sample period, far above float64 rounding noise at
#: campaign time scales (the spacing of float64 at 1e5 s is ~1.5e-11 s).
EDGE_TOLERANCE_S: float = 1e-9


def extract_window(
    times_s: np.ndarray,
    values: np.ndarray,
    start_s: float,
    end_s: float,
    edge_tolerance_s: float = EDGE_TOLERANCE_S,
) -> np.ndarray:
    """Samples whose timestamps fall in the half-open ``[start_s, end_s)``.

    The window is *half-open by decision*, matched to the simulated
    meter's grid: a run of duration ``d`` starting at ``t0`` is sampled
    at ``t0, t0+1, ..., t0+ceil(d)-1`` — all strictly before
    ``t0 + d`` — while with ``gap_s=0`` the *next* run's first sample
    lands exactly on this run's ``t_end_s``.  Including the end edge
    would double-count that boundary sample into both programs'
    windows; excluding it attributes every sample to exactly one run.

    Both edges are snapped with ``edge_tolerance_s``: timestamps that
    round-trip through the CSV log and the clock-offset correction
    (``(t + offset) - offset``) pick up ~1e-14 s of float noise, and
    the previous exact comparison silently dropped a start-edge sample
    that drifted infinitesimally below ``start_s`` (losing it from
    *every* window) and misattributed an end-edge sample that drifted
    below ``end_s``.  A sample within the tolerance of an edge is
    treated as *on* it: included at the start edge, excluded at the end
    edge.  On clean grids the mask is unchanged, so all paper-band
    numbers are bit-identical.
    """
    times_s = np.asarray(times_s)
    values = np.asarray(values)
    if times_s.shape != values.shape:
        raise ConfigurationError(
            f"times and values must align: {times_s.shape} vs {values.shape}"
        )
    if end_s <= start_s:
        raise ConfigurationError(
            f"window must be non-empty: [{start_s}, {end_s})"
        )
    tol = float(edge_tolerance_s)
    mask = (times_s >= start_s - tol) & (times_s < end_s - tol)
    return values[mask]


def trimmed_mean(values: np.ndarray, trim: float = DEFAULT_TRIM) -> float:
    """Arithmetic mean after dropping ``trim`` of samples at each end.

    Trimming is positional (first/last samples in time), not magnitude
    based — the paper removes the *initial* and *final* 10 % of the data.
    At least one sample always survives.
    """
    return trimmed_stats(values, trim).mean


@dataclass(frozen=True)
class TrimmedStats:
    """Summary of a trimmed window.

    ``ddof`` records the delta-degrees-of-freedom the ``std`` was
    computed with; ``fallback`` is ``True`` when the trim could not be
    applied as requested and the statistics describe a degenerate
    window instead (see :func:`trimmed_stats`) — a consumer must not
    mistake such a number for a cleanly trimmed one.
    """

    mean: float
    std: float
    n_total: int
    n_used: int
    ddof: int = 0
    fallback: bool = False

    @property
    def n_trimmed(self) -> int:
        """Samples dropped by the trim."""
        return self.n_total - self.n_used


def trimmed_stats(
    values: np.ndarray, trim: float = DEFAULT_TRIM, ddof: int = 0
) -> TrimmedStats:
    """Positional-trim statistics of a sample window.

    ``std`` is the **population** standard deviation (``ddof=0``,
    numpy's default) unless a different ``ddof`` is requested.  The
    choice is deliberate and part of the measurement contract: the trim
    keeps the steady-state plateau of a run, which is treated as the
    complete population of steady samples, not a random draw from a
    larger one — and ``ddof=0`` keeps every historical number
    bit-identical.  Callers estimating meter noise from small windows
    should pass ``ddof=1`` explicitly.

    Degenerate windows are *flagged*, never silent:

    * ``n == 1`` — the mean is the sample and ``std`` is 0.0 by
      construction; ``fallback=True`` because no spread was measurable.
    * a trim that would empty the window (only possible for
      ``trim >= 0.5``, which is rejected, so this is a defensive guard)
      falls back to the single middle sample with ``fallback=True``.

    Windows merely too short for the trim to drop anything
    (``n < ceil(1/trim)``, so ``cut == 0``) are **not** fallbacks: the
    untrimmed statistics are exact, just untrimmed (``n_used ==
    n_total`` says so).
    """
    if not 0.0 <= trim < 0.5:
        raise ConfigurationError(f"trim must be in [0, 0.5), got {trim}")
    if ddof < 0:
        raise ConfigurationError(f"ddof must be >= 0, got {ddof}")
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot summarise an empty window")
    cut = int(values.size * trim)
    kept = values[cut : values.size - cut] if cut else values
    fallback = False
    if kept.size == 0:
        kept = values[values.size // 2 : values.size // 2 + 1]
        fallback = True
    if kept.size <= ddof:
        raise ConfigurationError(
            f"ddof={ddof} needs more than {ddof} surviving samples, "
            f"got {kept.size}"
        )
    if kept.size == 1:
        fallback = True
    return TrimmedStats(
        mean=float(kept.mean()),
        std=float(kept.std(ddof=ddof)),
        n_total=int(values.size),
        n_used=int(kept.size),
        ddof=int(ddof),
        fallback=fallback,
    )


@dataclass(frozen=True)
class TraceQuality:
    """What the repair stage found and did to one metered trace.

    ``flags`` name every deviation from a pristine trace; an empty tuple
    means the trace needed nothing.  ``quarantined`` traces carry too
    little signal to trust — callers must either discard them or mark
    any derived number as degraded.
    """

    n_samples: int
    n_expected: int
    n_nan: int
    n_duplicates: int
    n_outliers: int
    n_interpolated: int
    n_unfilled: int
    clock_skew_s: float
    flags: tuple[str, ...] = ()

    @property
    def n_valid(self) -> int:
        """Samples in the repaired trace (observed + interpolated)."""
        return self.n_expected - self.n_unfilled

    @property
    def coverage(self) -> float:
        """Fraction of the expected sample grid the repaired trace covers."""
        if self.n_expected <= 0:
            return 0.0
        return self.n_valid / self.n_expected

    @property
    def quarantined(self) -> bool:
        """Whether the trace was rejected as unanalysable."""
        return "quarantined" in self.flags

    @property
    def ok(self) -> bool:
        """True only for a trace that needed no repair at all."""
        return not self.flags

    def to_dict(self) -> dict:
        """JSON-ready representation (attached to reports)."""
        return {
            "n_samples": self.n_samples,
            "n_expected": self.n_expected,
            "n_nan": self.n_nan,
            "n_duplicates": self.n_duplicates,
            "n_outliers": self.n_outliers,
            "n_interpolated": self.n_interpolated,
            "n_unfilled": self.n_unfilled,
            "clock_skew_s": self.clock_skew_s,
            "coverage": self.coverage,
            "flags": list(self.flags),
        }


@dataclass(frozen=True)
class RepairedTrace:
    """Output of :func:`repair_trace`: clean arrays plus their audit."""

    times_s: np.ndarray
    watts: np.ndarray
    quality: TraceQuality


def validate_trace(
    times_s: np.ndarray,
    watts: np.ndarray,
    sample_hz: float = 1.0,
    max_gap_s: float = DEFAULT_MAX_GAP_S,
    outlier_z: float = DEFAULT_OUTLIER_Z,
    min_coverage: float = DEFAULT_MIN_COVERAGE,
    expected_start_s: "float | None" = None,
    expected_end_s: "float | None" = None,
) -> TraceQuality:
    """Assess a trace without touching it (a dry-run of the repair)."""
    return repair_trace(
        times_s,
        watts,
        sample_hz=sample_hz,
        max_gap_s=max_gap_s,
        outlier_z=outlier_z,
        min_coverage=min_coverage,
        expected_start_s=expected_start_s,
        expected_end_s=expected_end_s,
    ).quality


def _quarantined(n_samples: int, n_nan: int, *flags: str) -> RepairedTrace:
    obs.inc("meter.trace.quarantined")
    return RepairedTrace(
        times_s=np.array([]),
        watts=np.array([]),
        quality=TraceQuality(
            n_samples=n_samples,
            n_expected=n_samples,
            n_nan=n_nan,
            n_duplicates=0,
            n_outliers=0,
            n_interpolated=0,
            n_unfilled=n_samples,
            clock_skew_s=0.0,
            flags=tuple(flags) + ("quarantined",),
        ),
    )


def repair_trace(
    times_s: np.ndarray,
    watts: np.ndarray,
    sample_hz: float = 1.0,
    max_gap_s: float = DEFAULT_MAX_GAP_S,
    outlier_z: float = DEFAULT_OUTLIER_Z,
    min_coverage: float = DEFAULT_MIN_COVERAGE,
    expected_start_s: "float | None" = None,
    expected_end_s: "float | None" = None,
) -> RepairedTrace:
    """Validate and repair one metered trace.

    The stages, in order (each recorded in the returned
    :class:`TraceQuality`):

    1. **Non-finite rejection** — NaN/inf watts are dropped (a meter
       never reports them; they come from corrupt log rows).
    2. **Duplicate collapse** — repeated timestamps keep the first
       sample, as WTViewer's merge does.
    3. **Clock-skew correction** — a uniform offset of every timestamp
       from the nominal ``sample_hz`` grid (meter-PC clock ahead or
       behind the server's) is estimated and subtracted.
    4. **Outlier rejection** — samples whose robust z-score (median/MAD)
       exceeds ``outlier_z`` are treated as glitches and removed.
    5. **Gap interpolation** — missing grid slots inside runs no longer
       than ``max_gap_s`` are filled linearly; longer holes stay missing
       and cap the coverage.

    A trace whose surviving coverage falls below ``min_coverage`` (or
    that has no finite samples at all) is *quarantined*: empty arrays
    come back and the quality record carries the ``"quarantined"`` flag.
    The function never raises on bad data — only on inconsistent inputs.

    ``expected_start_s``/``expected_end_s`` declare the window the trace
    was *supposed* to cover, on the nominal (skew-corrected) timeline.
    Without them the grid is anchored at the first surviving sample, so
    a trace that lost its opening or closing seconds reports inflated
    coverage — there is nothing to anchor the loss against.  With them,
    the grid spans the declared half-open window: samples outside it are
    dropped (flag ``"outside_expected_window"``) and leading/trailing
    missing slots count as unfilled, exactly like interior holes over
    the gap budget.
    """
    if sample_hz <= 0:
        raise ConfigurationError(f"sample_hz must be positive, got {sample_hz}")
    if max_gap_s < 0:
        raise ConfigurationError(f"max_gap_s must be >= 0, got {max_gap_s}")
    if (
        expected_start_s is not None
        and expected_end_s is not None
        and not float(expected_end_s) > float(expected_start_s)
    ):
        raise ConfigurationError(
            "expected window must be non-empty: "
            f"[{expected_start_s}, {expected_end_s})"
        )
    times_s = np.asarray(times_s, dtype=float).ravel()
    watts = np.asarray(watts, dtype=float).ravel()
    if times_s.shape != watts.shape:
        raise ConfigurationError(
            f"times and watts must align: {times_s.shape} vs {watts.shape}"
        )
    n_samples = int(times_s.size)
    if n_samples == 0:
        return _quarantined(0, 0, "empty")

    flags: list[str] = []
    finite = np.isfinite(watts) & np.isfinite(times_s)
    n_nan = int(n_samples - finite.sum())
    if n_nan:
        flags.append("nonfinite_rejected")
    if not finite.any():
        return _quarantined(n_samples, n_nan, "all_nan")
    times_s, watts = times_s[finite], watts[finite]

    order = np.argsort(times_s, kind="stable")
    times_s, watts = times_s[order], watts[order]
    keep = np.ones(times_s.size, dtype=bool)
    keep[1:] = np.diff(times_s) > 0
    n_duplicates = int(times_s.size - keep.sum())
    if n_duplicates:
        flags.append("duplicate_timestamps")
        times_s, watts = times_s[keep], watts[keep]

    # Clock skew: the residual of every timestamp against the nominal
    # sample grid.  A consistent residual (small spread) is a uniform
    # meter-PC clock offset and is subtracted; an inconsistent one is
    # jitter and is only reported.
    period = 1.0 / sample_hz
    residual = times_s - np.round(times_s / period) * period
    clock_skew_s = float(np.median(residual))
    if abs(clock_skew_s) > period * 1e-6:
        spread = float(np.median(np.abs(residual - clock_skew_s)))
        if spread <= period * 0.1:
            times_s = times_s - clock_skew_s
            flags.append("clock_skew_corrected")
        else:
            flags.append("timestamp_jitter")

    # Outliers: robust z via median/MAD.  MAD of a quantised flat trace
    # can be 0; the fallback scale must then come from the *inlier* core
    # — the old ``watts.std()`` fallback included the glitch itself, so
    # a single large spike inflated its own rejection threshold and
    # survived with ``n_outliers=0``.
    n_outliers = 0
    if watts.size >= 4:
        med = float(np.median(watts))
        dev = np.abs(watts - med)
        mad = float(np.median(dev))
        if mad > 0:
            z = dev / (mad / 0.6745)
        else:
            core = np.argsort(dev, kind="stable")
            core = core[: dev.size - max(dev.size // 10, 1)]
            scale = float(watts[core].std())
            if scale > 0:
                z = dev / scale
            else:
                # Even the lowest-deviation 90 % is perfectly flat:
                # against a bit-flat plateau, any deviation from the
                # median is a glitch, not noise.
                z = np.where(dev > 0, np.inf, 0.0)
        inliers = z <= outlier_z
        n_outliers = int(watts.size - inliers.sum())
        if n_outliers:
            flags.append("outliers_rejected")
            times_s, watts = times_s[inliers], watts[inliers]
    if times_s.size == 0:
        return _quarantined(n_samples, n_nan, "all_rejected")

    # Regrid: place surviving samples on the nominal grid, fill gaps up
    # to the budget by linear interpolation, leave longer holes out.
    # The grid anchors at the declared window start when one is given;
    # otherwise at the first surviving sample (which cannot see leading
    # dropouts).
    anchor = (
        float(expected_start_s)
        if expected_start_s is not None
        else float(times_s[0])
    )
    idx = np.round((times_s - anchor) / period).astype(int)
    n_window: "int | None" = None
    if expected_end_s is not None:
        n_window = int(
            np.ceil((float(expected_end_s) - anchor) / period - EDGE_TOLERANCE_S)
        )
        if n_window < 1:
            raise ConfigurationError(
                "expected window ends before its grid anchor: "
                f"[{anchor}, {expected_end_s})"
            )
    inside = np.ones(idx.size, dtype=bool)
    if expected_start_s is not None:
        inside &= idx >= 0
    if n_window is not None:
        inside &= idx < n_window
    n_dropped = int(idx.size - inside.sum())
    if n_dropped:
        flags.append("outside_expected_window")
        idx, times_s, watts = idx[inside], times_s[inside], watts[inside]
        if idx.size == 0:
            return _quarantined(
                n_samples, n_nan, "outside_expected_window", "all_rejected"
            )
    # Collisions after regridding (sub-period spacing) keep the first.
    keep = np.ones(idx.size, dtype=bool)
    keep[1:] = np.diff(idx) > 0
    idx, times_kept, watts_kept = idx[keep], times_s[keep], watts[keep]
    n_expected = n_window if n_window is not None else int(idx[-1]) + 1
    grid_watts = np.full(n_expected, np.nan)
    grid_watts[idx] = watts_kept
    grid_times = anchor + np.arange(n_expected) * period
    missing = np.isnan(grid_watts)
    n_interpolated = 0
    n_unfilled = 0
    if missing.any():
        max_run = max(int(round(max_gap_s * sample_hz)), 0)
        # Walk the runs of missing slots; interior runs within budget are
        # linearly interpolated between their finite neighbours.
        holes = np.flatnonzero(missing)
        run_start = holes[0]
        runs: list[tuple[int, int]] = []
        for a, b in zip(holes, holes[1:]):
            if b != a + 1:
                runs.append((run_start, a))
                run_start = b
        runs.append((run_start, holes[-1]))
        for lo, hi in runs:
            length = hi - lo + 1
            if lo == 0 or hi == n_expected - 1 or length > max_run:
                n_unfilled += length
                continue
            left, right = grid_watts[lo - 1], grid_watts[hi + 1]
            steps = np.arange(1, length + 1) / (length + 1)
            grid_watts[lo : hi + 1] = left + (right - left) * steps
            n_interpolated += length
        if n_interpolated:
            flags.append("gaps_interpolated")
        if n_unfilled:
            flags.append("gap_budget_exceeded")
    filled = ~np.isnan(grid_watts)
    out_times, out_watts = grid_times[filled], grid_watts[filled]

    coverage = float(filled.sum()) / n_expected if n_expected else 0.0
    if coverage < min_coverage:
        flags.append("quarantined")
        obs.inc("meter.trace.quarantined")
        out_times, out_watts = np.array([]), np.array([])
        n_unfilled = n_expected
    elif flags:
        obs.inc("meter.trace.repaired")
    if n_interpolated:
        obs.inc("meter.trace.interpolated", float(n_interpolated))

    return RepairedTrace(
        times_s=out_times,
        watts=out_watts,
        quality=TraceQuality(
            n_samples=n_samples,
            n_expected=n_expected,
            n_nan=n_nan,
            n_duplicates=n_duplicates,
            n_outliers=n_outliers,
            n_interpolated=n_interpolated,
            n_unfilled=n_unfilled,
            clock_skew_s=clock_skew_s,
            flags=tuple(flags),
        ),
    )
