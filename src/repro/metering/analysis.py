"""Post-processing of metered traces (Section V-C2, analysis steps 2-5).

After a campaign the paper extracts each program's samples by its
execution window, discards the initial 10 % and final 10 % (program
start-up and tear-down transients, meter/clock misalignment), and takes
the arithmetic mean.  The same trimming appears in the Green500 run rules
("the first and last few samples can be ignored").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["extract_window", "trimmed_mean", "trimmed_stats", "TrimmedStats"]

#: Default trim: drop this fraction of samples at each end.
DEFAULT_TRIM: float = 0.10


def extract_window(
    times_s: np.ndarray,
    values: np.ndarray,
    start_s: float,
    end_s: float,
) -> np.ndarray:
    """Samples whose timestamps fall in ``[start_s, end_s)``."""
    times_s = np.asarray(times_s)
    values = np.asarray(values)
    if times_s.shape != values.shape:
        raise ConfigurationError(
            f"times and values must align: {times_s.shape} vs {values.shape}"
        )
    if end_s <= start_s:
        raise ConfigurationError(
            f"window must be non-empty: [{start_s}, {end_s})"
        )
    mask = (times_s >= start_s) & (times_s < end_s)
    return values[mask]


def trimmed_mean(values: np.ndarray, trim: float = DEFAULT_TRIM) -> float:
    """Arithmetic mean after dropping ``trim`` of samples at each end.

    Trimming is positional (first/last samples in time), not magnitude
    based — the paper removes the *initial* and *final* 10 % of the data.
    At least one sample always survives.
    """
    return trimmed_stats(values, trim).mean


@dataclass(frozen=True)
class TrimmedStats:
    """Summary of a trimmed window."""

    mean: float
    std: float
    n_total: int
    n_used: int

    @property
    def n_trimmed(self) -> int:
        """Samples dropped by the trim."""
        return self.n_total - self.n_used


def trimmed_stats(values: np.ndarray, trim: float = DEFAULT_TRIM) -> TrimmedStats:
    """Positional-trim statistics of a sample window."""
    if not 0.0 <= trim < 0.5:
        raise ConfigurationError(f"trim must be in [0, 0.5), got {trim}")
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot summarise an empty window")
    cut = int(values.size * trim)
    kept = values[cut : values.size - cut] if cut else values
    if kept.size == 0:
        kept = values[values.size // 2 : values.size // 2 + 1]
    return TrimmedStats(
        mean=float(kept.mean()),
        std=float(kept.std()),
        n_total=int(values.size),
        n_used=int(kept.size),
    )
