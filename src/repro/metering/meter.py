"""Simulated Yokogawa WT210 power meter.

The WT210 is the meter the paper uses (Section V-C2).  The model covers
the behaviours that matter to the evaluation pipeline:

* 1 Hz sample logging (WTViewer's data logger),
* a measurement range with over-range errors,
* gaussian measurement noise plus 0.1 % gain error and display
  quantisation, and
* deterministic output given a seed, so every experiment is repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, InvalidSampleError, MeterError

__all__ = ["MeterSpec", "WT210", "Wt210Meter"]


@dataclass(frozen=True)
class MeterSpec:
    """Accuracy and range description of a power meter."""

    name: str
    max_watts: float
    noise_sigma_watts: float
    gain_error: float
    quantum_watts: float
    sample_hz: float = 1.0

    def __post_init__(self) -> None:
        if self.max_watts <= 0:
            raise ConfigurationError("max_watts must be positive")
        if self.noise_sigma_watts < 0:
            raise ConfigurationError("noise sigma must be non-negative")
        if not 0.0 <= self.gain_error < 0.1:
            raise ConfigurationError("gain error must be a small fraction")
        if self.quantum_watts <= 0:
            raise ConfigurationError("quantum must be positive")
        if self.sample_hz <= 0:
            raise ConfigurationError("sample rate must be positive")


#: The paper's meter: 2 kW range covers all three servers (peak 1119.6 W).
WT210 = MeterSpec(
    name="WT210",
    max_watts=2000.0,
    noise_sigma_watts=0.5,
    gain_error=0.001,
    quantum_watts=0.01,
    sample_hz=1.0,
)


class Wt210Meter:
    """A seeded instance of a :class:`MeterSpec`.

    The per-instance gain error is drawn once (a real meter's calibration
    is fixed), while the additive noise varies per sample.
    """

    def __init__(self, spec: MeterSpec = WT210, seed: int = 0):
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._gain = 1.0 + spec.gain_error * float(
            self._rng.standard_normal()
        )

    def sample_series(self, true_watts: np.ndarray) -> np.ndarray:
        """Measure a 1 Hz series of true power values.

        Raises
        ------
        InvalidSampleError
            If any value is NaN, infinite, or negative — with the index
            of the first offender, so a corrupt trace can be located.
        MeterError
            If any value exceeds the configured range (over-range).
        """
        true_watts = np.asarray(true_watts, dtype=float)
        nonfinite = ~np.isfinite(true_watts)
        if nonfinite.any():
            index = int(np.argmax(nonfinite))
            raise InvalidSampleError(
                float(true_watts[index]), index, "power must be finite"
            )
        negative = true_watts < 0
        if negative.any():
            index = int(np.argmax(negative))
            raise InvalidSampleError(
                float(true_watts[index]),
                index,
                "negative power cannot be measured",
            )
        if true_watts.size and float(true_watts.max()) > self.spec.max_watts:
            raise MeterError(
                f"{self.spec.name}: {true_watts.max():.0f} W exceeds the "
                f"{self.spec.max_watts:.0f} W range"
            )
        noisy = true_watts * self._gain + self.spec.noise_sigma_watts * (
            self._rng.standard_normal(true_watts.shape)
        )
        quantised = np.round(noisy / self.spec.quantum_watts) * (
            self.spec.quantum_watts
        )
        obs.inc("meter.samples", float(true_watts.size))
        return np.maximum(quantised, 0.0)

    def sample(self, true_watts: float) -> float:
        """Measure a single value."""
        return float(self.sample_series(np.array([true_watts]))[0])
