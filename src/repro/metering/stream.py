"""Online (streaming) metering: window routing, trim, stats, features.

The batch analysis chain (Section V-C2) — :func:`extract_window` →
:func:`trimmed_stats` → regression-feature collection — needs the whole
trace in memory.  This module is the same chain folded over a live
1 Hz sample stream, the substrate ROADMAP item 5(a) names: samples are
consumed incrementally, closed windows are summarised and released, and
peak memory is O(window), not O(trace) (``bench_stream_metering.py``
gates this with ``tracemalloc``).

Bit-identity contract
---------------------
Finalised results are **bit-identical** to the batch pipeline, which is
only possible because the accumulators are *positional*, like the batch
trim:

* :class:`StreamingTrim` drops head samples as soon as they are
  guaranteed trimmed (``position < int(n_seen * trim)`` can only grow),
  retains the undecided middle+tail, and at close assembles exactly the
  samples ``trimmed_stats`` would have kept — then applies the very same
  numpy reduction.  numpy's pairwise summation means a running
  Welford/Kahan mean can *never* bit-match ``ndarray.mean()``; retaining
  the kept window (which is O(window)) and reducing it once is what
  makes the contract exact rather than approximate.
* :class:`StreamingWindow` uses the same half-open
  ``[start - tol, end - tol)`` edge snapping as :func:`extract_window`,
  so a sample lands in exactly the windows the batch mask would pick.
* :class:`StreamingStats` (Kahan-compensated Welford) is the O(1)/sample
  *live estimate* — exact under any chunking of the same sample order
  (the property suite pins this), but only approximately equal to the
  batch mean; use the finalised :class:`TrimmedStats` for reported
  numbers.

The differential suite (``tests/metering/test_stream_differential.py``)
proves the finalised results bit-identical on clean grids, repaired
traces, and degenerate/fallback windows.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.metering.analysis import (
    DEFAULT_TRIM,
    EDGE_TOLERANCE_S,
    TrimmedStats,
)

__all__ = [
    "StreamingStats",
    "StreamingTrim",
    "StreamingWindow",
    "StreamingFeatures",
    "WindowSpec",
    "WindowResult",
]


class StreamingStats:
    """O(1)-per-sample running mean/std (Welford with Kahan compensation).

    The live-estimate half of the pipeline: its ``mean``/``std`` agree
    with numpy to ~1 ulp-scale error but are **not** bit-identical to
    ``ndarray.mean()`` (numpy sums pairwise; no running accumulator can
    reproduce that association order one sample at a time).  What *is*
    exact: folding the same samples in the same order through any
    chunking yields bit-identical accumulator state — ``push_many`` is
    defined as per-sample ``push``, so chunk boundaries cannot matter.
    """

    __slots__ = ("n", "_mean", "_mean_c", "_m2", "_m2_c")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._mean_c = 0.0  # Kahan compensation for the mean
        self._m2 = 0.0
        self._m2_c = 0.0  # Kahan compensation for M2

    def push(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        value = float(value)
        self.n += 1
        delta = value - self._mean
        # Kahan-compensated `mean += delta / n`.
        term = delta / self.n - self._mean_c
        total = self._mean + term
        self._mean_c = (total - self._mean) - term
        self._mean = total
        # Kahan-compensated `m2 += delta * (value - mean_new)`.
        term = delta * (value - self._mean) - self._m2_c
        total = self._m2 + term
        self._m2_c = (total - self._m2) - term
        self._m2 = total

    def push_many(self, values: np.ndarray) -> None:
        """Fold a chunk; defined as per-sample pushes (chunk-invariant)."""
        for value in np.asarray(values, dtype=float).ravel():
            self.push(value)

    @property
    def mean(self) -> float:
        """Running mean (0.0 before any sample)."""
        return self._mean if self.n else 0.0

    def std(self, ddof: int = 0) -> float:
        """Running standard deviation (NaN when ``n <= ddof``)."""
        if ddof < 0:
            raise ConfigurationError(f"ddof must be >= 0, got {ddof}")
        if self.n <= ddof:
            return float("nan")
        return math.sqrt(max(self._m2, 0.0) / (self.n - ddof))


class StreamingTrim:
    """Positional head/tail trim over a stream, exact at close.

    Mirrors :func:`trimmed_stats`: after ``n`` samples the batch path
    keeps ``values[cut : n - cut]`` with ``cut = int(n * trim)``.  Since
    ``int(n * trim)`` is non-decreasing in ``n``, a head sample at
    position ``p`` is *guaranteed* trimmed once ``p < int(n_seen *
    trim)`` — it is dropped from the deque the moment that holds, so the
    buffer holds only the undecided middle plus the (ring-buffer-sized,
    ``<= ceil(n*trim) + 1``) tail that the close will cut.

    :meth:`finalize` assembles the kept samples into a float64 array and
    applies the identical numpy reductions ``trimmed_stats`` uses —
    same values, same order, same pairwise summation — so the returned
    :class:`TrimmedStats` is bit-identical to the batch result,
    degenerate/fallback windows included.  ``live`` carries the
    :class:`StreamingStats` running estimate over *all* samples.
    """

    __slots__ = ("trim", "ddof", "live", "_buffer", "_n", "_head_dropped")

    def __init__(self, trim: float = DEFAULT_TRIM, ddof: int = 0) -> None:
        if not 0.0 <= trim < 0.5:
            raise ConfigurationError(f"trim must be in [0, 0.5), got {trim}")
        if ddof < 0:
            raise ConfigurationError(f"ddof must be >= 0, got {ddof}")
        self.trim = float(trim)
        self.ddof = int(ddof)
        self.live = StreamingStats()
        self._buffer: deque[float] = deque()
        self._n = 0
        self._head_dropped = 0

    @property
    def n_seen(self) -> int:
        """Samples pushed so far."""
        return self._n

    @property
    def n_buffered(self) -> int:
        """Samples currently retained (the O(window) footprint)."""
        return len(self._buffer)

    def push(self, value: float) -> None:
        """Accept one sample in stream order."""
        value = float(value)
        self._n += 1
        self._buffer.append(value)
        self.live.push(value)
        # Head samples the final cut can no longer keep are released
        # immediately: cut = int(n * trim) only grows with n.
        guaranteed = int(self._n * self.trim)
        while self._head_dropped < guaranteed:
            self._buffer.popleft()
            self._head_dropped += 1

    def push_many(self, values: np.ndarray) -> None:
        """Accept a chunk of samples in stream order."""
        for value in np.asarray(values, dtype=float).ravel():
            self.push(value)

    def finalize(self) -> TrimmedStats:
        """Close the window: the batch ``trimmed_stats``, bit for bit."""
        n = self._n
        if n == 0:
            raise ConfigurationError("cannot summarise an empty window")
        cut = int(n * self.trim)
        # Invariant: push() already dropped exactly `cut` head samples.
        assert self._head_dropped == cut
        kept = list(self._buffer)
        if cut:
            kept = kept[: len(kept) - cut]
        fallback = False
        if not kept:  # defensive: unreachable for trim < 0.5, like batch
            middle = n // 2 - cut
            kept = [list(self._buffer)[middle]]
            fallback = True
        values = np.asarray(kept, dtype=float)
        if values.size <= self.ddof:
            raise ConfigurationError(
                f"ddof={self.ddof} needs more than {self.ddof} surviving "
                f"samples, got {values.size}"
            )
        if values.size == 1:
            fallback = True
        return TrimmedStats(
            mean=float(values.mean()),
            std=float(values.std(ddof=self.ddof)),
            n_total=int(n),
            n_used=int(values.size),
            ddof=int(self.ddof),
            fallback=fallback,
        )


@dataclass(frozen=True)
class WindowSpec:
    """One half-open program window ``[start_s, end_s)`` to meter."""

    label: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if not self.end_s > self.start_s:
            raise ConfigurationError(
                f"window must be non-empty: [{self.start_s}, {self.end_s})"
            )


@dataclass(frozen=True)
class WindowResult:
    """A finalised window: its spec and the batch-identical statistics."""

    spec: WindowSpec
    stats: TrimmedStats


class StreamingWindow:
    """Routes a live sample stream into per-program trimmed windows.

    Membership uses the identical edge snapping as
    :func:`extract_window`: a sample at ``t`` belongs to window ``w``
    iff ``t >= w.start_s - tol and t < w.end_s - tol`` — order- and
    chunk-independent, so any interleaving of pushes yields the same
    window contents as the batch mask over the full trace.

    Windows must be registered in non-decreasing ``start_s`` order
    (:meth:`add_window`), matching how a campaign schedules runs.  A
    window is finalised eagerly once the stream's high-water mark passes
    ``end_s + tol`` — beyond that point a sample within the reorder
    tolerance can no longer fall inside it — or at :meth:`finalize`.
    Samples arriving for already-finalised windows are counted
    (``late_samples``), never raised.
    """

    def __init__(
        self,
        trim: float = DEFAULT_TRIM,
        ddof: int = 0,
        edge_tolerance_s: float = EDGE_TOLERANCE_S,
        on_finalize=None,
    ) -> None:
        if not 0.0 <= trim < 0.5:
            raise ConfigurationError(f"trim must be in [0, 0.5), got {trim}")
        self.trim = float(trim)
        self.ddof = int(ddof)
        self.tol = float(edge_tolerance_s)
        self.on_finalize = on_finalize
        self._windows: list[tuple[WindowSpec, StreamingTrim]] = []
        self._first_open = 0
        self._results: list[WindowResult] = []
        self._watermark = -math.inf
        self._finalized_horizon = -math.inf
        self.late_samples = 0

    def add_window(self, spec: WindowSpec) -> None:
        """Register the next window; ``start_s`` must not decrease."""
        if self._windows and spec.start_s < self._windows[-1][0].start_s:
            raise ConfigurationError(
                "windows must be registered in non-decreasing start order: "
                f"{spec.start_s} after {self._windows[-1][0].start_s}"
            )
        self._windows.append(
            (spec, StreamingTrim(trim=self.trim, ddof=self.ddof))
        )

    @property
    def n_open(self) -> int:
        """Windows registered but not yet finalised."""
        return len(self._windows) - self._first_open

    @property
    def n_buffered(self) -> int:
        """Samples retained across all open windows (memory footprint)."""
        return sum(
            acc.n_buffered for _, acc in self._windows[self._first_open :]
        )

    def push(self, t: float, value: float) -> None:
        """Route one timestamped sample."""
        t = float(t)
        routed = False
        windows = self._windows
        i = self._first_open
        while i < len(windows):
            spec, acc = windows[i]
            if t < spec.start_s - self.tol:
                break  # starts are sorted; later windows begin later
            if t < spec.end_s - self.tol:
                acc.push(value)
                routed = True
            i += 1
        if not routed and t < self._finalized_horizon - self.tol:
            self.late_samples += 1
            obs.inc("stream.late_samples")
        if t > self._watermark:
            self._watermark = t
            self._close_passed()

    def push_many(self, times_s: np.ndarray, values: np.ndarray) -> None:
        """Route a chunk of timestamped samples in stream order."""
        times_s = np.asarray(times_s, dtype=float).ravel()
        values = np.asarray(values, dtype=float).ravel()
        if times_s.shape != values.shape:
            raise ConfigurationError(
                f"times and values must align: {times_s.shape} vs "
                f"{values.shape}"
            )
        for t, value in zip(times_s, values):
            self.push(t, value)
        obs.inc("stream.samples", float(times_s.size))
        obs.set_gauge("stream.depth", float(self.n_buffered))

    def _close_passed(self) -> None:
        """Finalise every leading window the watermark has passed."""
        while self._first_open < len(self._windows):
            spec, _ = self._windows[self._first_open]
            if self._watermark < spec.end_s + self.tol:
                break
            self._finalize_first()

    def _finalize_first(self) -> None:
        spec, acc = self._windows[self._first_open]
        started = time.perf_counter()
        try:
            stats = acc.finalize()
        except ConfigurationError:
            # An empty window is the batch ConfigurationError; streaming
            # reports it as a result-less window instead of aborting the
            # stream mid-flight.
            stats = None
        self._windows[self._first_open] = (spec, None)  # release buffer
        self._first_open += 1
        self._finalized_horizon = max(self._finalized_horizon, spec.end_s)
        if stats is None:
            raise ConfigurationError(
                f"window {spec.label!r} [{spec.start_s}, {spec.end_s}) "
                "closed with no samples"
            )
        result = WindowResult(spec=spec, stats=stats)
        self._results.append(result)
        obs.observe(
            "stream.finalize_seconds", time.perf_counter() - started
        )
        obs.inc("stream.windows_finalized")
        if self.on_finalize is not None:
            self.on_finalize(result)

    @property
    def results(self) -> list[WindowResult]:
        """Windows finalised so far, in registration order."""
        return list(self._results)

    def finalize(self) -> list[WindowResult]:
        """Close all remaining windows and return every result in order."""
        while self._first_open < len(self._windows):
            self._finalize_first()
        obs.set_gauge("stream.depth", 0.0)
        return self.results

    def stats_by_label(self) -> dict[str, TrimmedStats]:
        """Finalised stats keyed by window label (last wins on repeats)."""
        return {r.spec.label: r.stats for r in self._results}


class StreamingFeatures:
    """Accumulates the regression features without holding the trace.

    Batch equivalents (and the bit-identity targets):

    * ``collect_hpcc_training`` pairs PMU sample ``k`` with
      ``measured_watts[k*interval : (k+1)*interval].mean()`` — here the
      power stream fills one ``interval``-sized buffer at a time, each
      reduced (by the same ``ndarray.mean()``) and released when its
      interval completes, so at most one interval of samples is ever
      held.
    * ``collect_npb_features`` uses ``run.pmu_matrix().mean(axis=0)`` —
      :meth:`pmu_mean` stacks the pushed PMU vectors identically.

    PMU rows are tiny (six floats per 10 s); they are retained.
    """

    def __init__(self, interval: int = 10) -> None:
        if interval < 1:
            raise ConfigurationError(
                f"interval must be >= 1 sample, got {interval}"
            )
        self.interval = int(interval)
        self._pmu_rows: list[np.ndarray] = []
        self._power_means: list[float] = []
        self._current: list[float] = []
        self._n_power = 0

    @property
    def n_power(self) -> int:
        """Power samples pushed so far."""
        return self._n_power

    @property
    def n_pmu(self) -> int:
        """PMU vectors pushed so far."""
        return len(self._pmu_rows)

    def push_power(self, value: float) -> None:
        """Accept one 1 Hz power sample in stream order."""
        if self._n_power and self._n_power % self.interval == 0:
            self._close_interval()
        self._current.append(float(value))
        self._n_power += 1

    def push_power_many(self, values: np.ndarray) -> None:
        """Accept a chunk of power samples in stream order."""
        for value in np.asarray(values, dtype=float).ravel():
            self.push_power(value)

    def _close_interval(self) -> None:
        window = np.asarray(self._current, dtype=float)
        self._power_means.append(float(window.mean()))
        self._current = []

    def push_pmu(self, sample) -> None:
        """Accept one PMU sample (object with ``as_vector()``) or vector."""
        vector = (
            sample.as_vector()
            if hasattr(sample, "as_vector")
            else np.asarray(sample, dtype=float)
        )
        self._pmu_rows.append(np.asarray(vector, dtype=float))

    def push_pmu_many(self, samples) -> None:
        """Accept a sequence of PMU samples/vectors."""
        for sample in samples:
            self.push_pmu(sample)

    def pmu_mean(self) -> np.ndarray:
        """Column means of the stacked PMU rows (npb feature row)."""
        if not self._pmu_rows:
            raise ConfigurationError("no PMU samples accumulated")
        return np.vstack(self._pmu_rows).mean(axis=0)

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Pair PMU rows with their interval power means (hpcc rows).

        Returns ``(features, power)`` exactly as the batch inner loop of
        ``collect_hpcc_training`` builds them: PMU sample ``k`` pairs
        with interval ``k``'s mean, intervals with no power samples are
        skipped, and surplus power beyond the PMU rows is ignored.
        """
        if self._current:
            self._close_interval()
        rows: list[np.ndarray] = []
        power: list[float] = []
        for k, row in enumerate(self._pmu_rows):
            if k >= len(self._power_means):
                continue
            rows.append(row)
            power.append(self._power_means[k])
        if not rows:
            raise ConfigurationError(
                "no PMU/power interval pairs accumulated"
            )
        return np.vstack(rows), np.asarray(power, dtype=float)
