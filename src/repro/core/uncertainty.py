"""Measurement-uncertainty quantification for the evaluation score.

The paper notes that short runs make "stability and accuracy ... difficult
to maintain" (Section V-B1) but reports single numbers.  This module
quantifies the run-to-run spread the metering chain introduces: repeat the
evaluation under different random streams (meter noise, phase ripple,
sampler jitter) and report the score's distribution.

Because every random effect is seeded, the result is itself
deterministic for a given seed list — suitable for regression testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import EvaluationResult, evaluate_server
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.specs import ServerSpec

__all__ = ["ScoreDistribution", "score_distribution"]


@dataclass(frozen=True)
class ScoreDistribution:
    """Evaluation-score spread across independent measurement streams."""

    server: str
    scores: tuple[float, ...]
    results: tuple[EvaluationResult, ...]

    @property
    def mean(self) -> float:
        """Mean score."""
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        """Score standard deviation across streams."""
        return float(np.std(self.scores))

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean — the headline stability figure."""
        return (max(self.scores) - min(self.scores)) / self.mean

    def interval(self, k: float = 2.0) -> tuple[float, float]:
        """A mean +/- k sigma interval."""
        return (self.mean - k * self.std, self.mean + k * self.std)


def score_distribution(
    server: ServerSpec,
    n_repeats: int = 5,
    base_seed: int = 0,
    trim: float = 0.10,
) -> ScoreDistribution:
    """Repeat the full evaluation under ``n_repeats`` measurement streams.

    Each repeat reruns the whole ten-state campaign with a different
    simulator seed; workload idiosyncrasy (a property of the *programs*)
    stays fixed, so the spread isolates the measurement chain.
    """
    if n_repeats < 2:
        raise ConfigurationError(
            f"need at least 2 repeats, got {n_repeats}"
        )
    results = []
    for k in range(n_repeats):
        simulator = Simulator(server, seed=base_seed + k)
        results.append(evaluate_server(server, simulator, trim=trim))
    return ScoreDistribution(
        server=server.name,
        scores=tuple(r.score for r in results),
        results=tuple(results),
    )
