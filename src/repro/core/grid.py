"""State grids: the 5-state matrix generalised over operating points.

The paper measures each server in one configuration — nominal frequency,
cores at (1, half, full), memory at (half, full).  A :class:`StateGrid`
spans the full operating-point space DVFS support unlocks (Silva et
al.'s (cores x frequency) grids): **P-state x active cores x memory
fraction**.  Each P-state is one *cell* — the server pinned to that
operating point via :meth:`~repro.hardware.specs.ServerSpec.at_pstate`,
evaluated over the (cores x memory) matrix with the paper's own method —
so a four-P-state ladder multiplies the scenario count by four without
touching the evaluation semantics.

The degenerate grid (one P-state, default axes) *is* the paper's matrix:
:func:`evaluate_grid` on a builtin server produces a single cell whose
rows are bit-identical to :func:`~repro.core.evaluation.evaluate_server`,
a property the differential suite pins via :func:`evaluation_digest`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.evaluation import EvaluationResult, evaluate_server
from repro.core.states import core_levels, evaluation_states
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.calibration import (
    FULL_MEMORY_FRACTION,
    HALF_MEMORY_FRACTION,
)
from repro.hardware.specs import ServerSpec
from repro.io import evaluation_to_dict
from repro.metering.analysis import DEFAULT_TRIM

__all__ = [
    "StateGrid",
    "GridCell",
    "GridEvaluation",
    "evaluate_grid",
    "evaluation_digest",
    "grid_to_dict",
]


def _canonical_digest(document: Any) -> str:
    from repro.fleet.cache import canonical_json

    return hashlib.sha256(canonical_json(document).encode()).hexdigest()


def evaluation_digest(result: EvaluationResult) -> str:
    """SHA-256 over the canonical JSON form of an evaluation result.

    This is the quantity the differential tests pin: two evaluations are
    *digest-identical* iff every row (label, gflops, watts, memory, and
    duration) matches bit for bit.
    """
    return _canonical_digest(evaluation_to_dict(result))


@dataclass(frozen=True)
class StateGrid:
    """The operating-point axes to evaluate a server over.

    Attributes
    ----------
    server:
        The machine; its ``pstate`` pin is ignored — the grid's
        ``pstates`` axis decides the operating points.
    pstates:
        P-state indices to sweep (default: the processor's full ladder).
    core_counts:
        Active-core levels per cell (default: the paper's 1/half/full).
    memory_fractions:
        HPL memory fractions per cell (default: Mh = 0.50, Mf = 0.95).
    """

    server: ServerSpec
    pstates: tuple[int, ...] = ()
    core_counts: tuple[int, ...] = ()
    memory_fractions: tuple[float, ...] = (
        HALF_MEMORY_FRACTION,
        FULL_MEMORY_FRACTION,
    )

    def __post_init__(self) -> None:
        if not self.pstates:
            object.__setattr__(
                self, "pstates", tuple(range(self.server.n_pstates))
            )
        if not self.core_counts:
            object.__setattr__(self, "core_counts", core_levels(self.server))
        if not self.memory_fractions:
            raise ConfigurationError("memory_fractions must not be empty")
        if len(set(self.pstates)) != len(self.pstates):
            raise ConfigurationError(f"duplicate P-states in {self.pstates}")
        for p in self.pstates:
            self.server.processor.frequency_ratio_at(p)
        for n in self.core_counts:
            self.server.validate_core_count(n)
        for fraction in self.memory_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"memory fraction must be in (0, 1], got {fraction}"
                )

    @property
    def n_cells(self) -> int:
        """Number of grid cells (one per P-state)."""
        return len(self.pstates)

    @property
    def states_per_cell(self) -> int:
        """Rows per cell: idle + EP x cores + HPL x cores x fractions."""
        n = len(self.core_counts)
        return 1 + n + n * len(self.memory_fractions)

    @property
    def n_states(self) -> int:
        """Total measurement states across the whole grid."""
        return self.n_cells * self.states_per_cell


@dataclass(frozen=True)
class GridCell:
    """One evaluated operating point of a grid."""

    pstate: int
    frequency_ratio: float
    frequency_mhz: float
    evaluation: EvaluationResult
    digest: str

    @property
    def score(self) -> float:
        """Mean PPW of the cell's evaluation."""
        return self.evaluation.score


@dataclass(frozen=True)
class GridEvaluation:
    """A server evaluated over a full :class:`StateGrid`."""

    server: str
    grid: StateGrid
    cells: tuple[GridCell, ...] = field(default_factory=tuple)

    @property
    def n_states(self) -> int:
        """Measurement states actually evaluated."""
        return sum(
            len(c.evaluation.rows) + len(c.evaluation.missing)
            for c in self.cells
        )

    @property
    def best_cell(self) -> GridCell:
        """The operating point with the highest mean PPW."""
        return max(self.cells, key=lambda c: c.score)

    @property
    def digest(self) -> str:
        """SHA-256 over every cell digest, in P-state order."""
        return _canonical_digest([c.digest for c in self.cells])

    def cell(self, pstate: int) -> GridCell:
        """Look up the cell for one P-state."""
        for c in self.cells:
            if c.pstate == pstate:
                return c
        raise ConfigurationError(f"no cell for P-state {pstate}")


def grid_to_dict(result: GridEvaluation) -> dict[str, Any]:
    """Serialise a :class:`GridEvaluation` (the zoo report schema)."""
    grid = result.grid
    return {
        "kind": "grid_evaluation",
        "schema_version": 1,
        "server": result.server,
        "axes": {
            "pstates": list(grid.pstates),
            "core_counts": list(grid.core_counts),
            "memory_fractions": list(grid.memory_fractions),
        },
        "n_states": result.n_states,
        "digest": result.digest,
        "cells": [
            {
                "pstate": cell.pstate,
                "frequency_ratio": cell.frequency_ratio,
                "frequency_mhz": cell.frequency_mhz,
                "score": cell.score,
                "average_watts": cell.evaluation.average_watts,
                "average_gflops": cell.evaluation.average_gflops,
                "digest": cell.digest,
                "evaluation": evaluation_to_dict(cell.evaluation),
            }
            for cell in result.cells
        ],
    }


def evaluate_grid(
    grid: StateGrid,
    seed: int = 0,
    trim: float = DEFAULT_TRIM,
    backend=None,
    engine: "str | None" = None,
) -> GridEvaluation:
    """Evaluate every cell of ``grid`` with the paper's method.

    Each P-state pins the server via ``at_pstate`` and rebuilds the
    simulator from the pinned spec, exactly as a fleet worker would —
    power coefficients, achieved performance, and runtimes all follow
    the operating point.  ``backend``/``engine`` route each cell's runs
    like :func:`~repro.core.evaluation.evaluate_server` does.
    """
    cells = []
    for p in grid.pstates:
        pinned = grid.server.at_pstate(p)
        states = evaluation_states(
            pinned, grid.core_counts, grid.memory_fractions
        )
        evaluation = evaluate_server(
            pinned,
            simulator=Simulator(pinned, seed=seed),
            trim=trim,
            backend=backend,
            engine=engine,
            states=states,
        )
        cells.append(
            GridCell(
                pstate=p,
                frequency_ratio=pinned.frequency_ratio,
                frequency_mhz=pinned.effective_frequency_mhz,
                evaluation=evaluation,
                digest=evaluation_digest(evaluation),
            )
        )
    return GridEvaluation(
        server=grid.server.name, grid=grid, cells=tuple(cells)
    )
