"""Energy proportionality analysis.

The paper's related work cites Ryckbosch et al., *Trends in server energy
proportionality* — a server is energy-proportional when its power tracks
its utilisation, so an idle machine costs nothing.  None of the paper's
three servers comes close (their idle draw is 57-87 % of peak), which is
exactly why the proposed method's idle state matters so much for the
final score.

This module computes the standard proportionality metrics from the same
measurement machinery the evaluation uses:

* **dynamic range** — ``(P_peak - P_idle) / P_peak``; 1.0 is perfectly
  proportional, 0.0 is a constant-power brick.
* **linear-deviation proportionality** — sweep utilisation (via
  SPECpower's graduated load, the only utilisation-controllable workload
  in the suite) and measure how far the power curve sits above the ideal
  straight line from idle-share to peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.demand import ResourceDemand
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.specs import ServerSpec
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.specpower import SpecPowerLevel, SpecPowerWorkload

__all__ = ["ProportionalityReport", "proportionality_report"]


@dataclass(frozen=True)
class ProportionalityReport:
    """Energy-proportionality metrics for one server."""

    server: str
    idle_watts: float
    peak_watts: float
    loads: tuple[float, ...]
    watts_at_load: tuple[float, ...]

    @property
    def dynamic_range(self) -> float:
        """``(peak - idle) / peak`` — 1.0 is perfectly proportional."""
        return (self.peak_watts - self.idle_watts) / self.peak_watts

    @property
    def idle_fraction(self) -> float:
        """Idle power as a fraction of peak."""
        return self.idle_watts / self.peak_watts

    @property
    def mean_linear_deviation(self) -> float:
        """Mean excess of measured power over the ideal proportional line.

        The ideal line runs from (0, 0) to (1, peak); the deviation is
        normalised by peak, so 0.0 is perfect proportionality and the
        idle fraction is the deviation's floor at zero load.
        """
        loads = np.asarray(self.loads)
        watts = np.asarray(self.watts_at_load)
        ideal = loads * self.peak_watts
        return float(np.mean((watts - ideal) / self.peak_watts))


def proportionality_report(
    server: ServerSpec,
    simulator: Simulator | None = None,
    loads: "tuple[float, ...]" = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> ProportionalityReport:
    """Measure a server's energy proportionality.

    Peak is the HPL full-cores/full-memory point (the machine's realistic
    power ceiling); the load curve comes from SPECpower's graduated
    levels, the suite's only workload with a controllable utilisation.
    """
    if not loads or any(not 0.0 < l <= 1.0 for l in loads):
        raise ConfigurationError("loads must be fractions in (0, 1]")
    simulator = simulator or Simulator(server)
    idle = simulator.run(ResourceDemand.idle(120.0)).average_power_watts()
    peak = simulator.run(
        HplWorkload(HplConfig(server.total_cores, 0.95))
    ).average_power_watts()
    watts = tuple(
        simulator.run(
            SpecPowerWorkload(SpecPowerLevel(f"{int(l * 100)}%", l))
        ).average_power_watts()
        for l in loads
    )
    return ProportionalityReport(
        server=server.name,
        idle_watts=idle,
        peak_watts=peak,
        loads=tuple(loads),
        watts_at_load=watts,
    )
