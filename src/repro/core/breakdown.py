"""Component-level power breakdown of an operating point.

Decomposes a workload's watts into the terms of Eq. (4)'s refined form —
idle baseline, chip uncore, shared (sqrt) term, per-core activity,
per-core compute intensity, DRAM traffic, and communication — answering
"where do the watts go" for any state of the evaluation matrix.  The
paper argues informally that core count dominates and memory barely
matters; the breakdown makes that quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.demand import ResourceDemand
from repro.errors import ConfigurationError
from repro.hardware.calibration import calibrated_power_model
from repro.hardware.cpu import CpuSubsystem
from repro.hardware.memory import MemorySubsystem
from repro.hardware.power import DELTA_FEATURES, dynamic_feature_vector
from repro.hardware.specs import ServerSpec
from repro.workloads.base import Workload

__all__ = ["PowerBreakdown", "breakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts per component for one operating point."""

    program: str
    idle_watts: float
    components: dict[str, float]

    @property
    def dynamic_watts(self) -> float:
        """Total above-idle power."""
        return sum(self.components.values())

    @property
    def total_watts(self) -> float:
        """Idle plus dynamic."""
        return self.idle_watts + self.dynamic_watts

    def fractions(self) -> dict[str, float]:
        """Each component (plus idle) as a fraction of total power."""
        total = self.total_watts
        out = {"idle": self.idle_watts / total}
        out.update(
            {name: watts / total for name, watts in self.components.items()}
        )
        return out

    def dominant_component(self) -> str:
        """The largest dynamic component (idle excluded)."""
        if not self.components:
            raise ConfigurationError("idle point has no dynamic components")
        return max(self.components, key=self.components.get)

    def format(self) -> str:
        """Aligned text rendering."""
        lines = [f"power breakdown: {self.program}"]
        lines.append(f"  {'idle':<16} {self.idle_watts:>8.2f} W")
        for name, watts in self.components.items():
            lines.append(f"  {name:<16} {watts:>8.2f} W")
        lines.append(f"  {'total':<16} {self.total_watts:>8.2f} W")
        return "\n".join(lines)


def breakdown(
    server: ServerSpec,
    workload: "Workload | ResourceDemand",
    placement_policy: str = "compact",
) -> PowerBreakdown:
    """Decompose one workload's steady-state power on ``server``.

    The decomposition reports the component model's terms *before* the
    idiosyncrasy factor and meter noise — the structural answer, matching
    what calibration fit.
    """
    demand = (
        workload
        if isinstance(workload, ResourceDemand)
        else workload.bind(server)
    )
    model = calibrated_power_model(server)
    if demand.is_idle:
        return PowerBreakdown(
            program=demand.program,
            idle_watts=model.coefficients.p_idle,
            components={},
        )
    cpu = CpuSubsystem(server, placement_policy)
    cpu.bind(demand)
    traffic = MemorySubsystem(server).traffic(demand, cpu.placement)
    features = dynamic_feature_vector(demand, cpu.activity(), traffic)
    coefficients = model.coefficients.as_delta_vector()
    parts = features * coefficients
    components = {
        name: float(watts)
        for name, watts in zip(DELTA_FEATURES, parts)
    }
    return PowerBreakdown(
        program=demand.program,
        idle_watts=model.coefficients.p_idle,
        components=components,
    )
