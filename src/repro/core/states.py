"""The five-state test matrix (Table III / Section V-C1).

The proposed method measures the system in five states:

1. Idle (no load),
2. full CPU + full memory,
3. half CPU + full memory,
4. full CPU + half memory,
5. half CPU + half memory,

realised with NPB-EP class C (cores swept 1/half/full, tiny fixed memory)
and HPL (cores 1/half/full at 50 % and 90-100 % memory).  The evaluation
tables list ten rows: idle, three EP rows, and six HPL rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.calibration import (
    FULL_MEMORY_FRACTION,
    HALF_MEMORY_FRACTION,
)
from repro.hardware.specs import ServerSpec
from repro.workloads.base import Workload
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload

__all__ = ["EvaluationState", "evaluation_states", "core_levels"]


@dataclass(frozen=True)
class EvaluationState:
    """One row of the test matrix."""

    label: str
    workload: Workload | None
    #: Core level as a fraction of the machine (0 for idle, 1/cores for
    #: the single-core rows, 0.5 and 1.0 for half/full).
    core_level: float
    #: Memory level ("C scale" for EP is represented as 0).
    memory_level: float

    @property
    def is_idle(self) -> bool:
        """True for the no-load state."""
        return self.workload is None


def core_levels(server: ServerSpec) -> tuple[int, int, int]:
    """The (1, half, full) core counts for a server."""
    full = server.total_cores
    half = server.half_cores()
    if full < 2:
        raise ConfigurationError(
            f"{server.name}: the method needs at least 2 cores"
        )
    return (1, half, full)


def _memory_suffix(fraction: float) -> str:
    """Table label suffix for an HPL memory fraction."""
    if fraction == HALF_MEMORY_FRACTION:
        return "Mh"
    if fraction == FULL_MEMORY_FRACTION:
        return "Mf"
    return f"M{fraction:.2f}"


def evaluation_states(
    server: ServerSpec,
    core_counts: "tuple[int, ...] | None" = None,
    memory_fractions: "tuple[float, ...] | None" = None,
) -> list[EvaluationState]:
    """The measurement rows of Tables IV-VI, in table order.

    With the defaults this is exactly the paper's ten-row matrix: idle,
    EP at (1, half, full) cores, and HPL at the same core levels for the
    half- and full-memory fractions.  ``core_counts`` and
    ``memory_fractions`` generalise the axes for state-grid evaluation
    (see :mod:`repro.core.grid`); non-canonical memory fractions get an
    ``M<fraction>`` label suffix.
    """
    full = server.total_cores
    if core_counts is None:
        core_counts = core_levels(server)
    else:
        if not core_counts:
            raise ConfigurationError("core_counts must not be empty")
        for n in core_counts:
            server.validate_core_count(n)
    if memory_fractions is None:
        memory_fractions = (HALF_MEMORY_FRACTION, FULL_MEMORY_FRACTION)
    elif not memory_fractions:
        raise ConfigurationError("memory_fractions must not be empty")
    states: list[EvaluationState] = [
        EvaluationState("Idle", None, 0.0, 0.0)
    ]
    for n in core_counts:
        states.append(
            EvaluationState(
                f"ep.C.{n}",
                NpbWorkload("ep", "C", n),
                n / full,
                0.0,
            )
        )
    for fraction in memory_fractions:
        suffix = _memory_suffix(fraction)
        for n in core_counts:
            states.append(
                EvaluationState(
                    f"HPL P{n} {suffix}",
                    HplWorkload(HplConfig(nprocs=n, memory_fraction=fraction)),
                    n / full,
                    fraction,
                )
            )
    return states
