"""The five-state test matrix (Table III / Section V-C1).

The proposed method measures the system in five states:

1. Idle (no load),
2. full CPU + full memory,
3. half CPU + full memory,
4. full CPU + half memory,
5. half CPU + half memory,

realised with NPB-EP class C (cores swept 1/half/full, tiny fixed memory)
and HPL (cores 1/half/full at 50 % and 90-100 % memory).  The evaluation
tables list ten rows: idle, three EP rows, and six HPL rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.calibration import (
    FULL_MEMORY_FRACTION,
    HALF_MEMORY_FRACTION,
)
from repro.hardware.specs import ServerSpec
from repro.workloads.base import Workload
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NpbWorkload

__all__ = ["EvaluationState", "evaluation_states", "core_levels"]


@dataclass(frozen=True)
class EvaluationState:
    """One row of the test matrix."""

    label: str
    workload: Workload | None
    #: Core level as a fraction of the machine (0 for idle, 1/cores for
    #: the single-core rows, 0.5 and 1.0 for half/full).
    core_level: float
    #: Memory level ("C scale" for EP is represented as 0).
    memory_level: float

    @property
    def is_idle(self) -> bool:
        """True for the no-load state."""
        return self.workload is None


def core_levels(server: ServerSpec) -> tuple[int, int, int]:
    """The (1, half, full) core counts for a server."""
    full = server.total_cores
    half = server.half_cores()
    if full < 2:
        raise ConfigurationError(
            f"{server.name}: the method needs at least 2 cores"
        )
    return (1, half, full)


def evaluation_states(server: ServerSpec) -> list[EvaluationState]:
    """The ten measurement rows of Tables IV-VI, in table order."""
    one, half, full = core_levels(server)
    states: list[EvaluationState] = [
        EvaluationState("Idle", None, 0.0, 0.0)
    ]
    for n in (one, half, full):
        states.append(
            EvaluationState(
                f"ep.C.{n}",
                NpbWorkload("ep", "C", n),
                n / full,
                0.0,
            )
        )
    for fraction, suffix in (
        (HALF_MEMORY_FRACTION, "Mh"),
        (FULL_MEMORY_FRACTION, "Mf"),
    ):
        for n in (one, half, full):
            states.append(
                EvaluationState(
                    f"HPL P{n} {suffix}",
                    HplWorkload(HplConfig(nprocs=n, memory_fraction=fraction)),
                    n / full,
                    fraction,
                )
            )
    return states
