"""The power regression model (Section VI).

Pipeline, exactly as the paper describes:

1. **Collect** — run the seven HPCC components "from single core to full
   cores", sampling the six PMU counters every 10 s and pairing each
   sample with the average metered power over the same interval
   (:func:`collect_hpcc_training`).
2. **Normalise** — z-score features and power "to unify the dimensions of
   different variables"; the intercept C then collapses to ~0
   (Table VIII: C = 2.37e-14).
3. **Fit** — forward stepwise selection over the six indices, then OLS
   (:func:`train_power_model`), giving the Table VII summary block and the
   Table VIII coefficients.
4. **Verify** — run the NPB programs (class B or C) over their allowed
   process counts, predict each run's normalised power from its mean PMU
   features, and compare against the measurement with the Eq. (6)-(8)
   fitting R² (:func:`verify_on_npb`, Figs. 12-13).

The verification R² is expected in the paper's band (≈0.63 for class B,
≈0.54 for class C) rather than near the 0.94 training value: the true
simulated power contains communication power and per-program
idiosyncrasies the six counters cannot see — the paper's own explanation
for why EP (no communication) and SP (most communication) fit worst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import r_squared
from repro.engine.simulator import PMU_INTERVAL_S, Simulator
from repro.errors import InsufficientMemoryError, RegressionError
from repro.hardware.pmu import REGRESSION_FEATURES
from repro.metering.analysis import DEFAULT_TRIM
from repro.metering.stream import StreamingFeatures, StreamingTrim
from repro.hardware.specs import ServerSpec
from repro.stats.linreg import OlsModel, StepwiseResult, fit_ols, forward_stepwise
from repro.stats.normalize import ZScoreNormalizer
from repro.workloads.hpcc import HPCC_COMPONENTS, HpccWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbClass, NpbWorkload

__all__ = [
    "RegressionDataset",
    "PowerRegressionModel",
    "VerificationResult",
    "collect_hpcc_training",
    "collect_npb_features",
    "train_power_model",
    "verify_on_npb",
    "verification_runs",
]


def _iter_runs(simulator: Simulator, workloads: list, backend=None):
    """Yield ``(workload, run-or-error)`` pairs in campaign order.

    ``backend=None`` executes inline on ``simulator`` exactly as the
    historical loops did, but yields each run as it completes and
    retains none of them — a collector that reduces runs to features on
    the fly holds at most one run's traces at a time.  A backend (e.g.
    :class:`repro.fleet.backend.FleetBackend`) still receives the whole
    list at once via ``map_runs`` and may parallelise, cache, and
    retry; the simulator's seeding contract keeps the results
    bit-identical either way.  Workloads that cannot run (memory fit,
    process rules) come back as the raised
    :class:`~repro.errors.WorkloadError` so the caller can skip them
    positionally.
    """
    from repro.errors import WorkloadError

    if backend is not None:
        yield from zip(workloads, backend.map_runs(simulator, list(workloads)))
        return
    for workload in workloads:
        try:
            yield workload, simulator.run(workload)
        except WorkloadError as exc:
            yield workload, exc


@dataclass(frozen=True)
class RegressionDataset:
    """Paired (PMU features, power) observations.

    ``features`` is (n, 6) in :data:`REGRESSION_FEATURES` order; ``power``
    is metered watts averaged per 10 s interval; ``labels`` names the run
    each observation came from.
    """

    features: np.ndarray
    power: np.ndarray
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.features.ndim != 2 or self.features.shape[1] != len(
            REGRESSION_FEATURES
        ):
            raise RegressionError(
                f"features must be (n, {len(REGRESSION_FEATURES)}), "
                f"got {self.features.shape}"
            )
        if self.features.shape[0] != self.power.shape[0]:
            raise RegressionError("features and power row counts differ")
        if len(self.labels) != self.features.shape[0]:
            raise RegressionError("labels and rows differ")

    @property
    def n_observations(self) -> int:
        """Number of (features, power) pairs."""
        return int(self.features.shape[0])


def collect_hpcc_training(
    server: ServerSpec,
    simulator: Simulator | None = None,
    proc_counts: "list[int] | None" = None,
    backend=None,
) -> RegressionDataset:
    """Run the HPCC campaign and collect per-10 s training observations.

    ``proc_counts`` defaults to every count from 1 to the server's full
    core count, matching the paper's "single core to full cores" scripts.
    ``backend`` optionally routes the campaign's runs through a batch
    executor (see :class:`repro.fleet.backend.FleetBackend`); results
    are bit-identical to the inline path.
    """
    from repro.errors import WorkloadError

    simulator = simulator or Simulator(server)
    if proc_counts is None:
        proc_counts = list(range(1, server.total_cores + 1))
    workloads = [
        HpccWorkload(component, nprocs)
        for component in HPCC_COMPONENTS
        for nprocs in proc_counts
    ]
    rows: list[np.ndarray] = []
    power: list[float] = []
    labels: list[str] = []
    for workload, run in _iter_runs(simulator, workloads, backend):
        if isinstance(run, WorkloadError):
            raise run
        # Stream the run's trace through the interval accumulator: the
        # per-10 s pairing is bit-identical to slicing the materialised
        # trace, and the inline path never holds more than one run.
        acc = StreamingFeatures(interval=int(PMU_INTERVAL_S))
        acc.push_pmu_many(run.pmu_samples)
        acc.push_power_many(run.measured_watts)
        features_k, power_k = acc.finalize()
        for row, watts_k in zip(features_k, power_k):
            rows.append(row)
            power.append(float(watts_k))
            labels.append(workload.label)
    if not rows:
        raise RegressionError("HPCC campaign produced no observations")
    return RegressionDataset(
        features=np.vstack(rows),
        power=np.asarray(power),
        labels=tuple(labels),
    )


@dataclass(frozen=True)
class PowerRegressionModel:
    """The trained model plus its normalisers and selection detail."""

    server: str
    feature_normalizer: ZScoreNormalizer
    power_normalizer: ZScoreNormalizer
    ols: OlsModel
    selected: tuple[int, ...]
    stepwise: StepwiseResult | None

    @property
    def n_observations(self) -> int:
        """Training observations (Table VII's "Observation")."""
        return self.ols.n_observations

    @property
    def r_square(self) -> float:
        """Training R² (Table VII)."""
        return self.ols.r_square

    def coefficients_full(self) -> np.ndarray:
        """b1..b6 in :data:`REGRESSION_FEATURES` order (0 if unselected)."""
        full = np.zeros(len(REGRESSION_FEATURES))
        full[list(self.selected)] = self.ols.coefficients
        return full

    @property
    def intercept(self) -> float:
        """The constant C of Eq. (5) (≈0 after normalisation)."""
        return self.ols.intercept

    def predict_normalized(self, features: np.ndarray) -> np.ndarray:
        """Predict normalised power from raw PMU feature rows."""
        normalized = self.feature_normalizer.transform(
            np.atleast_2d(np.asarray(features, dtype=float))
        )
        return self.ols.predict(normalized[:, list(self.selected)])

    def predict_watts(self, features: np.ndarray) -> np.ndarray:
        """Predict absolute watts from raw PMU feature rows."""
        return self.power_normalizer.inverse_transform(
            self.predict_normalized(features)
        )

    def normalize_power(self, watts: np.ndarray) -> np.ndarray:
        """Express measured watts on the training's normalised scale."""
        return self.power_normalizer.transform(np.asarray(watts, dtype=float))


def train_power_model(
    dataset: RegressionDataset,
    server_name: str = "",
    use_stepwise: bool = True,
    alpha_enter: float = 0.05,
) -> PowerRegressionModel:
    """Normalise and fit the regression model on a training dataset."""
    if float(np.std(dataset.power)) == 0.0:
        raise RegressionError(
            "training power has zero variance; nothing to regress on"
        )
    feature_norm = ZScoreNormalizer()
    power_norm = ZScoreNormalizer()
    x = feature_norm.fit_transform(dataset.features)
    y = power_norm.fit_transform(dataset.power)
    if use_stepwise:
        stepwise = forward_stepwise(x, y, alpha_enter=alpha_enter)
        selected = stepwise.selected
        ols = stepwise.model
    else:
        stepwise = None
        selected = tuple(range(x.shape[1]))
        ols = fit_ols(x, y)
    return PowerRegressionModel(
        server=server_name,
        feature_normalizer=feature_norm,
        power_normalizer=power_norm,
        ols=ols,
        selected=selected,
        stepwise=stepwise,
    )


@dataclass(frozen=True)
class VerificationResult:
    """Per-run verification series (the data behind Figs. 12-13)."""

    server: str
    npb_class: str
    labels: tuple[str, ...]
    measured: np.ndarray
    predicted: np.ndarray

    @property
    def difference(self) -> np.ndarray:
        """Measured minus regression value (Fig. 13)."""
        return self.measured - self.predicted

    @property
    def r_squared(self) -> float:
        """Fitting R² per Eqs. (6)-(8)."""
        return r_squared(self.measured, self.predicted)

    def per_program_rms(self) -> dict[str, float]:
        """RMS difference per program — identifies the worst fits."""
        by_program: dict[str, list[float]] = {}
        for label, diff in zip(self.labels, self.difference):
            by_program.setdefault(label.split(".")[0], []).append(diff)
        return {
            name: float(np.sqrt(np.mean(np.square(values))))
            for name, values in sorted(by_program.items())
        }


def verification_runs(
    server: ServerSpec, klass: "NpbClass | str"
) -> list[NpbWorkload]:
    """The NPB runs of one verification sweep, in Fig. 12's label order.

    Every program is swept over its allowed process counts up to the core
    count (EP over *all* counts — 40 of the Fig. 12 x-axis points);
    configurations that do not fit in memory are skipped, mirroring the
    holes in the paper's figures.
    """
    klass = NpbClass.parse(klass)
    workloads: list[NpbWorkload] = []
    for name, program in NPB_PROGRAMS.items():
        for nprocs in range(1, server.total_cores + 1):
            if not program.proc_rule.allows(nprocs):
                continue
            workloads.append(NpbWorkload(program, klass, nprocs))
    # The paper's figures order bars lexicographically (ep.B.1, ep.B.10,
    # ep.B.11, ..., ep.B.2, ep.B.20, ...).
    workloads.sort(key=lambda w: w.label)
    return workloads


def collect_npb_features(
    server: ServerSpec,
    klass: "NpbClass | str" = "B",
    simulator: Simulator | None = None,
    backend=None,
) -> "tuple[tuple[str, ...], np.ndarray, np.ndarray]":
    """Per-run mean PMU features and measured watts of one NPB sweep.

    Returns ``(labels, features, watts)`` where ``features`` is (n, 6)
    in :data:`~repro.hardware.pmu.REGRESSION_FEATURES` order and
    ``watts`` is the trimmed-mean metered power of each run.  Runs that
    do not fit in memory are skipped (the paper's figure holes).  This
    is the collection half of :func:`verify_on_npb`, exposed so the
    model-serving layer (:mod:`repro.model`) can gather verification
    batches — optionally through a fleet ``backend`` — and feed them to
    a persisted model without retraining.
    """
    simulator = simulator or Simulator(server)
    workloads = verification_runs(server, klass)
    labels: list[str] = []
    rows: list[np.ndarray] = []
    watts: list[float] = []
    for workload, run in _iter_runs(simulator, workloads, backend):
        if isinstance(run, InsufficientMemoryError):
            continue
        if isinstance(run, Exception):
            raise run
        # Reduce each run to its feature row and trimmed power through
        # the streaming accumulators — bit-identical to
        # ``pmu_matrix().mean(axis=0)`` / ``average_power_watts()`` on
        # the materialised trace, which is therefore never retained.
        acc = StreamingFeatures(interval=int(PMU_INTERVAL_S))
        acc.push_pmu_many(run.pmu_samples)
        trim_acc = StreamingTrim(DEFAULT_TRIM)
        trim_acc.push_many(run.measured_watts)
        labels.append(workload.label)
        rows.append(acc.pmu_mean())
        watts.append(trim_acc.finalize().mean)
    if not rows:
        raise RegressionError(f"NPB class {klass} produced no runs")
    return tuple(labels), np.vstack(rows), np.asarray(watts)


def verify_on_npb(
    server: ServerSpec,
    model: PowerRegressionModel,
    klass: "NpbClass | str" = "B",
    simulator: Simulator | None = None,
    backend=None,
) -> VerificationResult:
    """Verify a trained model against NPB class B or C runs.

    Predictions are made in one vectorised call over the stacked
    feature matrix; :meth:`OlsModel.predict`'s fixed accumulation order
    makes this bit-identical to the historical one-run-at-a-time loop.
    """
    labels, features, watts = collect_npb_features(
        server, klass, simulator, backend
    )
    if len(labels) < 3:
        raise RegressionError(
            f"verification produced only {len(labels)} runs"
        )
    return VerificationResult(
        server=server.name,
        npb_class=NpbClass.parse(klass).value,
        labels=labels,
        measured=model.normalize_power(watts),
        predicted=model.predict_normalized(features),
    )
