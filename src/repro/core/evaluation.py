"""The proposed HPC power evaluation method (Section V-C).

Runs the ten-state matrix (idle + EP.C x {1, half, full} + HPL x
{1, half, full} x {Mh, Mf}), measures each state with the metering
pipeline, computes PPW per state (Eq. 1), and scores the server with the
arithmetic mean of the ten PPW values — the row the paper prints as
"(GFlops/Watt)/10".

Note on the paper's Table IV: the Xeon-E5462 score is printed as 0.6390,
which is the *sum* of its PPW column; the other two servers print the
sum/10.  The mean (sum/10) is used consistently here — it changes no
ordering, and the paper's own ranking text juxtaposes 0.639 with the
other servers' sum/10 values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ppw
from repro.core.states import EvaluationState, evaluation_states
from repro.demand import ResourceDemand
from repro.engine.batch import resolve_engine, run_batch
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.specs import ServerSpec
from repro.metering.analysis import DEFAULT_TRIM

__all__ = ["EvaluationRow", "EvaluationResult", "evaluate_server", "rank_servers"]

#: Duration of the idle measurement window, seconds.
IDLE_WINDOW_S: float = 120.0


@dataclass(frozen=True)
class EvaluationRow:
    """One measured row of Tables IV-VI."""

    label: str
    gflops: float
    watts: float
    memory_mb: float
    duration_s: float

    @property
    def ppw(self) -> float:
        """Performance per watt for this row (0 for idle)."""
        return ppw(self.gflops, self.watts)


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of the proposed method on one server.

    Normally all ten states are present.  A *partial* result — produced
    by ``evaluate_server(..., allow_partial=True)`` when some states
    failed — lists the failed state labels in ``missing``; the score is
    then the mean over the states that were measured, and ``coverage``
    says how much of the matrix backs it.
    """

    server: str
    rows: tuple[EvaluationRow, ...]
    missing: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every state of the matrix was measured."""
        return not self.missing

    @property
    def coverage(self) -> float:
        """Fraction of the state matrix backing the score."""
        return len(self.rows) / (len(self.rows) + len(self.missing))

    @property
    def average_gflops(self) -> float:
        """The tables' "Average" performance row."""
        return sum(r.gflops for r in self.rows) / len(self.rows)

    @property
    def average_watts(self) -> float:
        """The tables' "Average" power row."""
        return sum(r.watts for r in self.rows) / len(self.rows)

    @property
    def score(self) -> float:
        """Mean PPW over the measured states — "(GFlops/Watt)/10"."""
        return sum(r.ppw for r in self.rows) / len(self.rows)

    def row(self, label: str) -> EvaluationRow:
        """Look up a row by its table label."""
        for r in self.rows:
            if r.label == label:
                return r
        raise ConfigurationError(f"no row labelled {label!r}")


def _state_runnable(state: EvaluationState):
    """The object the simulator executes for one state."""
    if state.is_idle:
        return ResourceDemand.idle(IDLE_WINDOW_S)
    return state.workload


def _row_from_run(state: EvaluationState, result, trim: float) -> EvaluationRow:
    gflops = 0.0 if state.is_idle else result.demand.gflops
    return EvaluationRow(
        label=state.label,
        gflops=gflops,
        watts=result.average_power_watts(trim),
        memory_mb=result.average_memory_mb(trim),
        duration_s=result.duration_s,
    )


def evaluate_server(
    server: ServerSpec,
    simulator: Simulator | None = None,
    trim: float = DEFAULT_TRIM,
    backend=None,
    engine: "str | None" = None,
    allow_partial: bool = False,
    states: "list[EvaluationState] | None" = None,
    on_run=None,
) -> EvaluationResult:
    """Run the full proposed method on ``server``.

    ``states`` optionally substitutes a custom state matrix (e.g. one
    cell of a :class:`repro.core.grid.StateGrid`); the default is the
    paper's ten-row matrix from :func:`evaluation_states`.

    ``backend`` optionally routes the ten runs through a batch executor
    such as :class:`repro.fleet.FleetBackend` (parallel and/or cached);
    locally the vectorized batch engine is the default, with
    ``engine="serial"`` (or ``REPRO_ENGINE=serial``) selecting the
    one-run-at-a-time simulator.  Every path yields bit-identical rows —
    the simulator seeds each run from ``(seed, program label)``, never
    from execution order.

    With ``allow_partial=True`` a state whose run failed (a dead worker,
    a quarantined trace) is dropped into :attr:`EvaluationResult.missing`
    instead of aborting the evaluation: the score degrades to the mean
    over the measured states, flagged by ``coverage < 1``.  At least one
    state must survive — an empty matrix still raises.  The successful
    rows are bit-identical to a complete run's.

    ``on_run`` is an optional observer called as ``on_run(state, run)``
    for every state that produced a run, in state order, before its row
    is built.  The serve daemon uses it to feed each run's trace to the
    streaming metering pipeline and publish live window statistics; the
    hook cannot change what is evaluated, and exceptions it raises
    propagate.

    >>> from repro.hardware import XEON_E5462
    >>> result = evaluate_server(XEON_E5462)
    >>> len(result.rows)
    10
    """
    simulator = simulator or Simulator(server)
    if simulator.server != server:
        raise ConfigurationError("simulator is bound to a different server")
    if states is None:
        states = evaluation_states(server)
    items = [_state_runnable(state) for state in states]
    if backend is not None:
        runs = backend.map_runs(simulator, items)
    elif resolve_engine(engine) == "batch":
        runs = run_batch(simulator, items)
    else:
        runs = [simulator.run(item) for item in items]
    rows = []
    missing: list[str] = []
    last_error: "Exception | None" = None
    for state, run in zip(states, runs):
        if isinstance(run, Exception):
            if not allow_partial:
                raise run
            missing.append(state.label)
            last_error = run
            continue
        if on_run is not None:
            on_run(state, run)
        rows.append(_row_from_run(state, run, trim))
    if not rows:
        raise ConfigurationError(
            f"every evaluation state failed on {server.name}"
        ) from last_error
    return EvaluationResult(
        server=server.name, rows=tuple(rows), missing=tuple(missing)
    )


def rank_servers(
    results: "list[EvaluationResult]",
) -> list[EvaluationResult]:
    """Order evaluation results best-first (highest score wins)."""
    if not results:
        raise ConfigurationError("nothing to rank")
    return sorted(results, key=lambda r: r.score, reverse=True)
