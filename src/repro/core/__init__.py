"""The paper's contributions: the evaluation method and the power model.

* :mod:`repro.core.metrics` — PPW (Eq. 1), energy (Eq. 2), and the
  R²/RSS/TSS fit formulas (Eqs. 6-8).
* :mod:`repro.core.states` — the five-state test matrix of Table III.
* :mod:`repro.core.evaluation` — the proposed HPL+EP evaluation method
  (Tables IV-VI and the Section V-C3 ranking).
* :mod:`repro.core.green500` — the Green500 comparison method (HPL peak
  PPW).
* :mod:`repro.core.spec_method` — the SPECpower_ssj2008 comparison method
  (overall ssj_ops/watt).
* :mod:`repro.core.regression` — the HPCC-trained, NPB-verified power
  regression model (Section VI, Tables VII-VIII, Figs. 12-13).
* :mod:`repro.core.report` — plain-text table rendering for the benches
  and examples.
* :mod:`repro.core.sweeps` — the canonical experiment sweeps behind each
  figure.
* :mod:`repro.core.breakdown` — component-level power decomposition.
* :mod:`repro.core.uncertainty` — score spread across measurement streams.
* :mod:`repro.core.energy` — energy-to-solution scaling (Fig. 11
  generalised).
* :mod:`repro.core.proportionality` — energy-proportionality metrics.
"""

from repro.core.metrics import ppw, r_squared, rss, tss
from repro.core.states import EvaluationState, evaluation_states
from repro.core.evaluation import (
    EvaluationResult,
    EvaluationRow,
    evaluate_server,
    rank_servers,
)
from repro.core.green500 import Green500Result, green500_score
from repro.core.spec_method import SpecPowerResult, specpower_score
from repro.core.breakdown import PowerBreakdown, breakdown
from repro.core.energy import EnergyScaling, energy_scaling
from repro.core.uncertainty import ScoreDistribution, score_distribution
from repro.core.proportionality import (
    ProportionalityReport,
    proportionality_report,
)
from repro.core.regression import (
    PowerRegressionModel,
    RegressionDataset,
    VerificationResult,
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)

__all__ = [
    "ppw",
    "r_squared",
    "rss",
    "tss",
    "EvaluationState",
    "evaluation_states",
    "EvaluationResult",
    "EvaluationRow",
    "evaluate_server",
    "rank_servers",
    "Green500Result",
    "green500_score",
    "SpecPowerResult",
    "specpower_score",
    "PowerBreakdown",
    "breakdown",
    "EnergyScaling",
    "energy_scaling",
    "ScoreDistribution",
    "score_distribution",
    "ProportionalityReport",
    "proportionality_report",
    "PowerRegressionModel",
    "RegressionDataset",
    "VerificationResult",
    "collect_hpcc_training",
    "train_power_model",
    "verify_on_npb",
]
