"""Energy-to-solution analysis (generalising Fig. 11).

The paper shows for EP that adding cores *reduces* total energy because
runtime shrinks faster than power grows, and concludes that "improving
the parallelism can not only improve the computing performance, but also
reduce energy consumption".  This module tests that claim for any
program: sweep a program over its allowed core counts and report time,
power, and energy per point, plus the energy-optimal count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError, InsufficientMemoryError
from repro.hardware.specs import ServerSpec
from repro.workloads.npb import NpbClass, NpbWorkload, get_npb_program

__all__ = ["EnergyPoint", "EnergyScaling", "energy_scaling"]


@dataclass(frozen=True)
class EnergyPoint:
    """One (core count) sample of the energy sweep."""

    nprocs: int
    duration_s: float
    watts: float
    energy_kj: float


@dataclass(frozen=True)
class EnergyScaling:
    """Energy-to-solution across core counts for one program."""

    server: str
    program: str
    npb_class: str
    points: tuple[EnergyPoint, ...]

    @property
    def optimal(self) -> EnergyPoint:
        """The energy-minimal operating point."""
        return min(self.points, key=lambda p: p.energy_kj)

    @property
    def serial(self) -> EnergyPoint:
        """The single-process point."""
        for point in self.points:
            if point.nprocs == 1:
                return point
        raise ConfigurationError("sweep did not include 1 process")

    @property
    def max_saving(self) -> float:
        """Fractional energy saved at the optimum vs. serial."""
        return 1.0 - self.optimal.energy_kj / self.serial.energy_kj

    def parallelism_saves_energy(self) -> bool:
        """The paper's Fig.-11 claim, for this program."""
        return self.optimal.nprocs > 1 and self.max_saving > 0.0


def energy_scaling(
    server: ServerSpec,
    program: str,
    npb_class: "NpbClass | str" = "C",
    simulator: Simulator | None = None,
    counts: "tuple[int, ...] | None" = None,
) -> EnergyScaling:
    """Sweep one NPB program's energy over its allowed core counts."""
    simulator = simulator or Simulator(server)
    prog = get_npb_program(program)
    klass = NpbClass.parse(npb_class)
    if counts is None:
        counts = tuple(
            n
            for n in range(1, server.total_cores + 1)
            if prog.proc_rule.allows(n)
        )
    points = []
    for n in counts:
        prog.validate_nprocs(n)
        try:
            run = simulator.run(NpbWorkload(prog, klass, n))
        except InsufficientMemoryError:
            continue
        points.append(
            EnergyPoint(
                nprocs=n,
                duration_s=run.duration_s,
                watts=run.average_power_watts(),
                energy_kj=run.energy_kilojoules(),
            )
        )
    if not points:
        raise ConfigurationError(
            f"{program}.{klass.value} could not run at any requested count"
        )
    return EnergyScaling(
        server=server.name,
        program=prog.name,
        npb_class=klass.value,
        points=tuple(points),
    )
