"""The SPECpower_ssj2008 comparison method (Section III-A).

The benchmark's overall metric divides the sum of delivered ssj_ops over
the ten graduated target loads by the sum of average power over those
loads *plus active idle*.  The three calibration phases precede the
measured levels but do not enter the metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.specs import ServerSpec
from repro.metering.analysis import DEFAULT_TRIM
from repro.workloads.specpower import (
    SpecPowerLevel,
    SpecPowerWorkload,
    full_run_levels,
)

__all__ = ["SpecPowerLevelResult", "SpecPowerResult", "specpower_score"]


@dataclass(frozen=True)
class SpecPowerLevelResult:
    """One measured load level."""

    level: str
    load: float
    ssj_ops: float
    watts: float
    memory_mb: float
    cpu_util: float


@dataclass(frozen=True)
class SpecPowerResult:
    """Complete graduated-load measurement."""

    server: str
    levels: tuple[SpecPowerLevelResult, ...]

    @property
    def measured_levels(self) -> tuple[SpecPowerLevelResult, ...]:
        """The ten target loads (excludes calibration phases and idle)."""
        return tuple(
            lv
            for lv in self.levels
            if not lv.level.startswith("Cal") and lv.load > 0
        )

    @property
    def active_idle(self) -> SpecPowerLevelResult:
        """The active-idle level."""
        for lv in self.levels:
            if lv.load == 0:
                return lv
        raise ConfigurationError("campaign did not include active idle")

    @property
    def overall_ssj_ops_per_watt(self) -> float:
        """The benchmark's headline metric."""
        ops = sum(lv.ssj_ops for lv in self.measured_levels)
        watts = sum(lv.watts for lv in self.measured_levels)
        watts += self.active_idle.watts
        return ops / watts


def specpower_score(
    server: ServerSpec,
    simulator: Simulator | None = None,
    trim: float = DEFAULT_TRIM,
) -> SpecPowerResult:
    """Run the full SPECpower_ssj2008 sequence on ``server``.

    >>> from repro.hardware import XEON_E5462
    >>> result = specpower_score(XEON_E5462)
    >>> 200 < result.overall_ssj_ops_per_watt < 300
    True
    """
    simulator = simulator or Simulator(server)
    if simulator.server != server:
        raise ConfigurationError("simulator is bound to a different server")
    levels = full_run_levels() + [SpecPowerLevel("ActiveIdle", 0.0)]
    results = []
    for level in levels:
        workload = SpecPowerWorkload(level)
        run = simulator.run(workload)
        results.append(
            SpecPowerLevelResult(
                level=level.name,
                load=level.load,
                ssj_ops=workload.ssj_ops(server),
                watts=run.average_power_watts(trim),
                memory_mb=run.average_memory_mb(trim),
                cpu_util=run.demand.cpu_util,
            )
        )
    return SpecPowerResult(server=server.name, levels=tuple(results))
