"""Plain-text rendering of the paper's tables.

Used by the benchmark harness and the examples to print rows in the same
layout as the paper, so paper-vs-measured comparison is a visual diff.
"""

from __future__ import annotations

from repro.core.evaluation import EvaluationResult
from repro.core.regression import PowerRegressionModel, VerificationResult
from repro.hardware.pmu import REGRESSION_FEATURES

__all__ = [
    "format_evaluation_table",
    "format_regression_summary",
    "format_coefficients",
    "format_verification",
]


def format_evaluation_table(result: EvaluationResult) -> str:
    """Render an :class:`EvaluationResult` like Tables IV-VI."""
    lines = [
        f"PPW on server {result.server}",
        f"{'Program':<14} {'Performance':>12} {'Power':>10} {'PPW':>14}",
        f"{'':<14} {'(GFLOPS)':>12} {'(Watt)':>10} {'(GFLOPS/Watt)':>14}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.label:<14} {row.gflops:>12.4f} {row.watts:>10.4f} "
            f"{row.ppw:>14.4f}"
        )
    lines.append(
        f"{'Average':<14} {result.average_gflops:>12.4f} "
        f"{result.average_watts:>10.4f}"
    )
    lines.append(f"{'(GFlops/Watt)/10':<27} {result.score:>10.4f}")
    return "\n".join(lines)


def format_regression_summary(model: PowerRegressionModel) -> str:
    """Render the Table VII summary block."""
    lines = [
        f"Regression result on server {model.server or '(unnamed)'}",
        f"{'Multiple R':<22} {model.ols.multiple_r:.9f}",
        f"{'R Square':<22} {model.ols.r_square:.9f}",
        f"{'Adjusted R Square':<22} {model.ols.adjusted_r_square:.9f}",
        f"{'Standard Error':<22} {model.ols.standard_error:.9f}",
        f"{'Observation':<22} {model.n_observations}",
    ]
    return "\n".join(lines)


def format_coefficients(model: PowerRegressionModel) -> str:
    """Render the Table VIII coefficient row."""
    coefficients = model.coefficients_full()
    parts = [
        f"b{i + 1}[{name}]={value:+.6f}"
        for i, (name, value) in enumerate(
            zip(REGRESSION_FEATURES, coefficients)
        )
    ]
    parts.append(f"C={model.intercept:+.3e}")
    return "\n".join(parts)


def format_verification(result: VerificationResult, limit: int = 0) -> str:
    """Render the Fig. 12/13 series as rows (optionally truncated)."""
    lines = [
        f"Verification on {result.server}, NPB class {result.npb_class}: "
        f"R^2 = {result.r_squared:.3f}",
        f"{'Program':<12} {'Measured':>10} {'Regression':>11} {'Diff':>8}",
    ]
    rows = zip(result.labels, result.measured, result.predicted)
    for i, (label, measured, predicted) in enumerate(rows):
        if limit and i >= limit:
            lines.append(f"... ({len(result.labels) - limit} more rows)")
            break
        lines.append(
            f"{label:<12} {measured:>10.3f} {predicted:>11.3f} "
            f"{measured - predicted:>8.3f}"
        )
    return "\n".join(lines)
