"""The Green500 comparison method (Section III-B).

Green500 ranks by PPW at peak: ``Rmax / Pavg(Rmax)`` where Rmax is the
best HPL result and Pavg the average system power during that run, with
the first and last few samples ignored.  On a single server that means
HPL at full cores and full memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ppw
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.hardware.calibration import FULL_MEMORY_FRACTION
from repro.hardware.specs import ServerSpec
from repro.workloads.hpl import HplConfig, HplWorkload

__all__ = ["Green500Result", "green500_score"]

#: Samples ignored at each end of the power log ("the first and last few
#: samples can be ignored ... to prevent inaccurate records").
EDGE_TRIM_FRACTION: float = 0.05


@dataclass(frozen=True)
class Green500Result:
    """Outcome of the Green500 method on one server."""

    server: str
    rmax_gflops: float
    average_watts: float

    @property
    def ppw(self) -> float:
        """GFLOPS per watt, Eq. (1)."""
        return ppw(self.rmax_gflops, self.average_watts)


def green500_score(
    server: ServerSpec,
    simulator: Simulator | None = None,
    memory_fraction: float = FULL_MEMORY_FRACTION,
) -> Green500Result:
    """Measure a server the Green500 way: peak HPL, average power.

    >>> from repro.hardware import XEON_4870
    >>> 0.28 < green500_score(XEON_4870).ppw < 0.32  # paper: 0.307
    True
    """
    simulator = simulator or Simulator(server)
    if simulator.server != server:
        raise ConfigurationError("simulator is bound to a different server")
    workload = HplWorkload(
        HplConfig(nprocs=server.total_cores, memory_fraction=memory_fraction)
    )
    result = simulator.run(workload)
    return Green500Result(
        server=server.name,
        rmax_gflops=result.demand.gflops,
        average_watts=result.average_power_watts(EDGE_TRIM_FRACTION),
    )
