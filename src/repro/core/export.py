"""Export every reproduced exhibit as data files.

Writes one artifact per table/figure of the paper into a directory —
tables as CSV, figure series as JSON — so downstream plotting or
spreadsheet comparison needs no Python.  The CLI front end is
``python -m repro export <dir>``.

Artifacts (all deterministic for a given seed):

========================  ====================================================
``table1_specs.csv``      server characteristics
``table4..6_*.csv``       the evaluation tables per server
``table2_normalized.csv`` the Xeon-4870 power matrix
``fig1_2_specpower.csv``  memory %, CPU %, watts per load level
``fig3_e5462.csv`` /      the mixed power charts
``fig4_opteron.csv``
``fig5_ns.json`` ...      the HPL parameter sweeps
``fig8_9_npb.csv``        NPB footprints and power per class
``fig10_11_ep.csv``       the EP profile
``rankings.json``         the three method scores per server
``table7_8_regression.json`` / ``fig12_13_verification.csv``
                          the regression study (with ``regression=True``)
========================  ====================================================
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core import sweeps
from repro.core.evaluation import evaluate_server
from repro.core.green500 import green500_score
from repro.core.regression import (
    collect_hpcc_training,
    train_power_model,
    verify_on_npb,
)
from repro.core.spec_method import specpower_score
from repro.engine.simulator import Simulator
from repro.hardware.pmu import REGRESSION_FEATURES
from repro.hardware.specs import BUILTIN_SERVERS, get_server

__all__ = ["export_exhibits"]


def _write_csv(path: Path, header: "list[str]", rows: "list[tuple]") -> None:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def _export_specs(out: Path) -> None:
    rows = [
        (
            s.name,
            s.processor.model,
            s.total_cores,
            s.chips,
            s.processor.frequency_mhz,
            s.memory.total_gb,
            round(s.gflops_peak, 1),
        )
        for s in BUILTIN_SERVERS.values()
    ]
    _write_csv(
        out / "table1_specs.csv",
        ["server", "processor", "cores", "chips", "mhz", "memory_gb", "peak_gflops"],
        rows,
    )


def _export_evaluations(out: Path, seed: int) -> None:
    table_names = {
        "Xeon-E5462": "table4_e5462.csv",
        "Opteron-8347": "table5_opteron.csv",
        "Xeon-4870": "table6_4870.csv",
    }
    rankings = {}
    for name, filename in table_names.items():
        server = get_server(name)
        result = evaluate_server(server, Simulator(server, seed=seed))
        _write_csv(
            out / filename,
            ["program", "gflops", "watts", "ppw"],
            [
                (r.label, round(r.gflops, 4), round(r.watts, 4), round(r.ppw, 6))
                for r in result.rows
            ],
        )
        rankings[name] = {
            "ours_mean_ppw": result.score,
            "green500_ppw": green500_score(
                server, Simulator(server, seed=seed)
            ).ppw,
            "specpower_ssj_ops_per_watt": specpower_score(
                server, Simulator(server, seed=seed)
            ).overall_ssj_ops_per_watt,
        }
    (out / "rankings.json").write_text(
        json.dumps(rankings, indent=2, sort_keys=True) + "\n"
    )


def _export_motivation(out: Path, seed: int) -> None:
    sim_small = Simulator(get_server("Xeon-E5462"), seed=seed)
    sim_opteron = Simulator(get_server("Opteron-8347"), seed=seed)
    sim_big = Simulator(get_server("Xeon-4870"), seed=seed)

    usage = sweeps.specpower_usage_sweep(sim_small)
    _write_csv(
        out / "fig1_2_specpower.csv",
        ["level", "memory_pct", "cpu_pct", "watts"],
        [(n, round(m, 3), round(c, 1), round(w, 2)) for n, m, c, w in usage],
    )

    for sim, counts, filename in (
        (sim_small, (4, 2, 1), "fig3_e5462.csv"),
        (sim_opteron, (16, 8, 4, 2, 1), "fig4_opteron.csv"),
    ):
        points = sweeps.mixed_power_sweep(sim, counts)
        _write_csv(
            out / filename,
            ["benchmark", "watts"],
            [
                (p.label, round(p.watts, 2) if p.runnable else "cannot_run")
                for p in points
            ],
        )

    matrix = sweeps.table2_power_matrix(sim_big)
    peak = max(max(row.values()) for row in matrix.values())
    programs = sorted({k for row in matrix.values() for k in row})
    _write_csv(
        out / "table2_normalized.csv",
        ["procs"] + programs,
        [
            (
                n,
                *(
                    round(row[p] / peak, 3) if p in row else ""
                    for p in programs
                ),
            )
            for n, row in matrix.items()
        ],
    )


def _export_hpl_sweeps(out: Path, seed: int) -> None:
    sim = Simulator(get_server("Xeon-E5462"), seed=seed)
    (out / "fig5_ns.json").write_text(
        json.dumps(
            {str(k): v for k, v in sweeps.hpl_ns_sweep(sim).items()},
            indent=2,
        )
        + "\n"
    )
    (out / "fig6_nbs.json").write_text(
        json.dumps(
            {str(k): v for k, v in sweeps.hpl_nb_sweep(sim).items()},
            indent=2,
        )
        + "\n"
    )
    (out / "fig7_pq.json").write_text(
        json.dumps(
            {f"{p}x{q}": v for (p, q), v in sweeps.hpl_pq_sweep(sim).items()},
            indent=2,
        )
        + "\n"
    )


def _export_npb(out: Path, seed: int) -> None:
    sim = Simulator(get_server("Xeon-E5462"), seed=seed)
    power = sweeps.npb_class_sweep(sim, quantity="power")
    memory = sweeps.npb_class_sweep(sim, quantity="memory")
    _write_csv(
        out / "fig8_9_npb.csv",
        ["workload", "mem_A", "mem_B", "mem_C", "watts_A", "watts_B", "watts_C"],
        [
            (
                label,
                *(round(v, 1) if v is not None else "oom" for v in memory[label]),
                *(round(v, 1) if v is not None else "oom" for v in power[label]),
            )
            for label in power
        ],
    )
    _write_csv(
        out / "fig10_11_ep.csv",
        ["cores", "time_s", "watts", "ppw", "energy_kj"],
        [
            (n, round(t, 2), round(w, 2), round(p, 6), round(e, 3))
            for n, t, w, p, e in sweeps.ep_profile(sim)
        ],
    )


def _export_regression(out: Path, seed: int) -> None:
    server = get_server("Xeon-4870")
    simulator = Simulator(server, seed=seed)
    dataset = collect_hpcc_training(server, simulator)
    model = train_power_model(dataset, server_name=server.name)
    summary = {
        "multiple_r": model.ols.multiple_r,
        "r_square": model.r_square,
        "adjusted_r_square": model.ols.adjusted_r_square,
        "standard_error": model.ols.standard_error,
        "observations": model.n_observations,
        "coefficients": dict(
            zip(REGRESSION_FEATURES, model.coefficients_full().tolist())
        ),
        "intercept": model.intercept,
    }
    (out / "table7_8_regression.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    rows = []
    for klass in ("B", "C"):
        result = verify_on_npb(server, model, klass, simulator)
        summary[f"npb_{klass}_r_squared"] = result.r_squared
        rows.extend(
            (klass, label, round(m, 4), round(p, 4), round(m - p, 4))
            for label, m, p in zip(
                result.labels, result.measured, result.predicted
            )
        )
    _write_csv(
        out / "fig12_13_verification.csv",
        ["npb_class", "program", "measured", "regression", "difference"],
        rows,
    )
    (out / "table7_8_regression.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )


def export_exhibits(
    out_dir: "str | Path", seed: int = 0, regression: bool = False
) -> list[Path]:
    """Write every exhibit's data into ``out_dir``; returns the paths.

    ``regression=True`` additionally runs the Section-VI study (the
    slowest part, a few seconds).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    _export_specs(out)
    _export_evaluations(out, seed)
    _export_motivation(out, seed)
    _export_hpl_sweeps(out, seed)
    _export_npb(out, seed)
    if regression:
        _export_regression(out, seed)
    return sorted(out.iterdir())
