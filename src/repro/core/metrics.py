"""The paper's numbered formulas.

* Eq. (1): ``PPW = Rmax (GFLOPS) / Pavg (W)`` — performance per watt.
* Eq. (2): ``Energy (KJ) = Power (KW) * Time (s)`` — see
  :func:`repro.units.energy_kj`.
* Eqs. (6)-(8): the fitting coefficient of determination used for
  regression verification: ``R² = 1 - RSS/TSS`` with RSS the residual sum
  of squares against the *regression* values and TSS the total variation
  of the *measured* values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ppw", "rss", "tss", "r_squared"]


def ppw(gflops: float, watts: float) -> float:
    """Performance per watt, Eq. (1).

    >>> round(ppw(344.0, 1119.6), 4)  # Xeon-4870, HPL P40 Mf
    0.3073
    """
    if watts <= 0:
        raise ConfigurationError(f"power must be positive, got {watts}")
    if gflops < 0:
        raise ConfigurationError(f"performance must be >= 0, got {gflops}")
    return gflops / watts


def rss(measured: np.ndarray, regression: np.ndarray) -> float:
    """Residual sum of squares, Eq. (7)."""
    measured = np.asarray(measured, dtype=float).ravel()
    regression = np.asarray(regression, dtype=float).ravel()
    if measured.shape != regression.shape:
        raise ConfigurationError(
            f"shapes differ: {measured.shape} vs {regression.shape}"
        )
    if measured.size == 0:
        raise ConfigurationError("cannot compute RSS of empty series")
    diff = measured - regression
    return float(diff @ diff)


def tss(measured: np.ndarray) -> float:
    """Total variation of the measured series, Eq. (8)."""
    measured = np.asarray(measured, dtype=float).ravel()
    if measured.size == 0:
        raise ConfigurationError("cannot compute TSS of empty series")
    centred = measured - measured.mean()
    return float(centred @ centred)


def r_squared(measured: np.ndarray, regression: np.ndarray) -> float:
    """Fitting coefficient of determination, Eq. (6).

    Unlike an in-sample OLS R², this can be negative when the regression
    values fit worse than the measured mean — which is informative for
    out-of-sample verification.
    """
    total = tss(measured)
    if total <= 0:
        raise ConfigurationError(
            "measured series has zero variation; R^2 undefined"
        )
    return 1.0 - rss(measured, regression) / total
