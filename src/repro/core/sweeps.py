"""Canonical experiment sweeps behind the paper's figures.

Each function runs one figure's or table's sweep on a simulator and
returns plain data (labels + values) that the benchmark harness, the CLI,
and the examples all render.  Keeping the sweep definitions here — rather
than duplicated in each consumer — makes "which runs make up Fig. X" a
single-sourced, testable fact.

Every sweep is structured as *build the run list, execute, assemble*, and
takes an optional ``backend`` implementing::

    map_runs(simulator, workloads) -> list[RunResult | WorkloadError]

(positionally aligned with the input; unrunnable configurations come
back as the error instance).  ``backend=None`` executes locally in this
process — through the vectorized batch engine by default, or the serial
simulator when ``engine="serial"`` (or ``REPRO_ENGINE=serial``) asks for
it.  :class:`repro.fleet.FleetBackend` provides the parallel/cached
implementation; results are bit-identical on every path because the
simulator seeds runs from ``(seed, program label)``, not from execution
order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.batch import resolve_engine, run_batch
from repro.engine.simulator import Simulator
from repro.errors import InsufficientMemoryError, WorkloadError
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbClass, NpbWorkload
from repro.workloads.specpower import (
    SpecPowerLevel,
    SpecPowerWorkload,
    full_run_levels,
)

__all__ = [
    "PowerPoint",
    "specpower_usage_sweep",
    "mixed_power_sweep",
    "table2_power_matrix",
    "hpl_ns_sweep",
    "hpl_nb_sweep",
    "hpl_pq_sweep",
    "npb_class_sweep",
    "ep_profile",
]

#: Default HPL memory fraction for the power charts (full memory).
_FULL = 0.95


@dataclass(frozen=True)
class PowerPoint:
    """One bar of a power chart."""

    label: str
    watts: float | None  # None = could not run (memory or proc rule)

    @property
    def runnable(self) -> bool:
        """Whether the configuration could execute."""
        return self.watts is not None


def _map_runs(
    simulator: Simulator, workloads: list, backend=None, engine=None
) -> list:
    """Execute ``workloads`` in order, locally or through ``backend``.

    The local path uses the batch engine unless ``engine="serial"`` (or
    ``REPRO_ENGINE=serial``) selects the one-run-at-a-time simulator;
    both are bit-identical.  Workload errors (memory fit, process-count
    rules) are returned in place of the run so callers decide whether a
    point is skippable.
    """
    if backend is not None:
        return backend.map_runs(simulator, workloads)
    if resolve_engine(engine) == "batch":
        return run_batch(simulator, workloads)
    out = []
    for workload in workloads:
        try:
            out.append(simulator.run(workload))
        except WorkloadError as exc:
            out.append(exc)
    return out


def _unwrap(run):
    """A run that must have succeeded; re-raises captured errors."""
    if isinstance(run, Exception):
        raise run
    return run


def specpower_usage_sweep(
    simulator: Simulator, backend=None, engine: "str | None" = None
) -> list[tuple[str, float, float, float]]:
    """Figs. 1-2 data: (level, memory %, cpu %, watts) per load level."""
    levels = full_run_levels()
    runs = _map_runs(
        simulator,
        [SpecPowerWorkload(level) for level in levels],
        backend,
        engine,
    )
    rows = []
    for level, run in zip(levels, runs):
        run = _unwrap(run)
        memory_pct = (
            100.0 * run.average_memory_mb() / simulator.server.memory_mb
        )
        rows.append(
            (
                level.name,
                memory_pct,
                100.0 * run.demand.cpu_util,
                run.average_power_watts(),
            )
        )
    return rows


def mixed_power_sweep(
    simulator: Simulator,
    counts: "tuple[int, ...]",
    npb_class: "NpbClass | str" = "C",
    include_specpower: bool = True,
    backend=None,
    engine: "str | None" = None,
) -> list[PowerPoint]:
    """Figs. 3-4 data: SPECpower, HPL, and every runnable NPB program.

    Labels follow the paper's x-axes (``HPL.4``, ``ep.C.4``...); counts
    are listed in the order given (the paper descends).
    """
    klass = NpbClass.parse(npb_class)
    plan: list[tuple[str, object]] = []
    if include_specpower:
        plan.append(
            (
                f"SPECPower.{simulator.server.total_cores}",
                SpecPowerWorkload(SpecPowerLevel("100%", 1.0)),
            )
        )
    for n in counts:
        plan.append((f"HPL.{n}", HplWorkload(HplConfig(n, _FULL))))
        for name, program in sorted(NPB_PROGRAMS.items()):
            if not program.proc_rule.allows(n):
                continue
            plan.append(
                (f"{name}.{klass.value}.{n}", NpbWorkload(program, klass, n))
            )
    runs = _map_runs(simulator, [w for _, w in plan], backend, engine)
    points: list[PowerPoint] = []
    for (label, _), run in zip(plan, runs):
        if isinstance(run, InsufficientMemoryError):
            points.append(PowerPoint(label, None))
            continue
        points.append(PowerPoint(label, _unwrap(run).average_power_watts()))
    return points


def table2_power_matrix(
    simulator: Simulator,
    counts: "tuple[int, ...]" = (1, 2, 4, 8, 9, 16, 25, 32, 36, 39, 40),
    backend=None,
    engine: "str | None" = None,
) -> dict[int, dict[str, float]]:
    """Table II data: program -> watts per process count (CG omitted,
    as in the paper's table)."""
    plan: list[tuple[int, str, object]] = []
    for n in counts:
        plan.append((n, "hpl", HplWorkload(HplConfig(n, _FULL))))
        for name, program in NPB_PROGRAMS.items():
            if name == "cg" or not program.proc_rule.allows(n):
                continue
            plan.append((n, name, NpbWorkload(program, "C", n)))
        if n == simulator.server.total_cores:
            plan.append(
                (n, "spec", SpecPowerWorkload(SpecPowerLevel("100%", 1.0)))
            )
    runs = _map_runs(simulator, [w for *_, w in plan], backend, engine)
    table: dict[int, dict[str, float]] = {n: {} for n in counts}
    for (n, name, _), run in zip(plan, runs):
        table[n][name] = _unwrap(run).average_power_watts()
    return table


def hpl_ns_sweep(
    simulator: Simulator,
    core_counts: "tuple[int, ...]" = (1, 2, 4),
    fractions: "tuple[float, ...]" = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
    ),
    backend=None,
    engine: "str | None" = None,
) -> dict[int, list[float]]:
    """Fig. 5 data: watts per memory fraction, one series per core count."""
    plan = [
        (n, HplWorkload(HplConfig(n, fraction)))
        for n in core_counts
        for fraction in fractions
    ]
    runs = _map_runs(simulator, [w for _, w in plan], backend, engine)
    series: dict[int, list[float]] = {n: [] for n in core_counts}
    for (n, _), run in zip(plan, runs):
        series[n].append(_unwrap(run).average_power_watts())
    return series


def hpl_nb_sweep(
    simulator: Simulator,
    core_counts: "tuple[int, ...]" = (1, 2, 3, 4),
    nbs: "tuple[int, ...]" = (50, 100, 150, 200, 250, 300, 350, 400),
    backend=None,
    engine: "str | None" = None,
) -> dict[int, list[float]]:
    """Fig. 6 data: watts per NB, one series per core count."""
    plan = [
        (n, HplWorkload(HplConfig(n, 0.5, nb=nb)))
        for n in core_counts
        for nb in nbs
    ]
    runs = _map_runs(simulator, [w for _, w in plan], backend, engine)
    series: dict[int, list[float]] = {n: [] for n in core_counts}
    for (n, _), run in zip(plan, runs):
        series[n].append(_unwrap(run).average_power_watts())
    return series


def hpl_pq_sweep(
    simulator: Simulator,
    grids: "tuple[tuple[int, int], ...]" = ((1, 4), (2, 2), (4, 1)),
    nbs: "tuple[int, ...]" = (50, 100, 150, 200, 250, 300, 350, 400),
    backend=None,
    engine: "str | None" = None,
) -> dict[tuple[int, int], list[float]]:
    """Fig. 7 data: watts per NB, one series per P x Q grid."""
    plan = [
        ((p, q), HplWorkload(HplConfig(p * q, 0.5, nb=nb, p=p, q=q)))
        for p, q in grids
        for nb in nbs
    ]
    runs = _map_runs(simulator, [w for _, w in plan], backend, engine)
    series: dict[tuple[int, int], list[float]] = {grid: [] for grid in grids}
    for (grid, _), run in zip(plan, runs):
        series[grid].append(_unwrap(run).average_power_watts())
    return series


def npb_class_sweep(
    simulator: Simulator,
    counts: "tuple[int, ...]" = (1, 2, 4),
    classes: "tuple[str, ...]" = ("A", "B", "C"),
    quantity: str = "power",
    backend=None,
    engine: "str | None" = None,
) -> dict[str, list[float | None]]:
    """Figs. 8-9 data: per (program, count) row, one value per class.

    ``quantity`` is ``"power"`` (W) or ``"memory"`` (MB); unrunnable
    configurations yield None.
    """
    if quantity not in ("power", "memory"):
        raise ValueError(f"quantity must be power|memory, got {quantity!r}")
    plan: list[tuple[str, object]] = []
    keys: list[str] = []
    for name, program in sorted(NPB_PROGRAMS.items()):
        for n in counts:
            if not program.proc_rule.allows(n):
                continue
            keys.append(f"{name}.{n}")
            for klass in classes:
                plan.append(
                    (f"{name}.{n}", NpbWorkload(program, klass, n))
                )
    runs = _map_runs(simulator, [w for _, w in plan], backend, engine)
    table: dict[str, list[float | None]] = {key: [] for key in keys}
    for (key, _), run in zip(plan, runs):
        if isinstance(run, InsufficientMemoryError):
            table[key].append(None)
            continue
        run = _unwrap(run)
        table[key].append(
            run.average_power_watts()
            if quantity == "power"
            else run.average_memory_mb()
        )
    return table


def ep_profile(
    simulator: Simulator,
    counts: "tuple[int, ...] | None" = None,
    backend=None,
    engine: "str | None" = None,
) -> list[tuple[int, float, float, float, float]]:
    """Figs. 10-11 data: (cores, time s, watts, PPW, energy KJ) for EP.C."""
    if counts is None:
        server = simulator.server
        counts = (1, server.half_cores(), server.total_cores)
    runs = _map_runs(
        simulator,
        [NpbWorkload("ep", "C", n) for n in counts],
        backend,
        engine,
    )
    rows = []
    for n, run in zip(counts, runs):
        run = _unwrap(run)
        rows.append(
            (
                n,
                run.duration_s,
                run.average_power_watts(),
                run.ppw(),
                run.energy_kilojoules(),
            )
        )
    return rows
