"""Canonical experiment sweeps behind the paper's figures.

Each function runs one figure's or table's sweep on a simulator and
returns plain data (labels + values) that the benchmark harness, the CLI,
and the examples all render.  Keeping the sweep definitions here — rather
than duplicated in each consumer — makes "which runs make up Fig. X" a
single-sourced, testable fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.errors import InsufficientMemoryError
from repro.workloads.hpl import HplConfig, HplWorkload
from repro.workloads.npb import NPB_PROGRAMS, NpbClass, NpbWorkload
from repro.workloads.specpower import (
    SpecPowerLevel,
    SpecPowerWorkload,
    full_run_levels,
)

__all__ = [
    "PowerPoint",
    "specpower_usage_sweep",
    "mixed_power_sweep",
    "table2_power_matrix",
    "hpl_ns_sweep",
    "hpl_nb_sweep",
    "hpl_pq_sweep",
    "npb_class_sweep",
    "ep_profile",
]

#: Default HPL memory fraction for the power charts (full memory).
_FULL = 0.95


@dataclass(frozen=True)
class PowerPoint:
    """One bar of a power chart."""

    label: str
    watts: float | None  # None = could not run (memory or proc rule)

    @property
    def runnable(self) -> bool:
        """Whether the configuration could execute."""
        return self.watts is not None


def specpower_usage_sweep(
    simulator: Simulator,
) -> list[tuple[str, float, float, float]]:
    """Figs. 1-2 data: (level, memory %, cpu %, watts) per load level."""
    rows = []
    for level in full_run_levels():
        run = simulator.run(SpecPowerWorkload(level))
        memory_pct = (
            100.0 * run.average_memory_mb() / simulator.server.memory_mb
        )
        rows.append(
            (
                level.name,
                memory_pct,
                100.0 * run.demand.cpu_util,
                run.average_power_watts(),
            )
        )
    return rows


def mixed_power_sweep(
    simulator: Simulator,
    counts: "tuple[int, ...]",
    npb_class: "NpbClass | str" = "C",
    include_specpower: bool = True,
) -> list[PowerPoint]:
    """Figs. 3-4 data: SPECpower, HPL, and every runnable NPB program.

    Labels follow the paper's x-axes (``HPL.4``, ``ep.C.4``...); counts
    are listed in the order given (the paper descends).
    """
    klass = NpbClass.parse(npb_class)
    points: list[PowerPoint] = []
    if include_specpower:
        run = simulator.run(SpecPowerWorkload(SpecPowerLevel("100%", 1.0)))
        points.append(
            PowerPoint(
                f"SPECPower.{simulator.server.total_cores}",
                run.average_power_watts(),
            )
        )
    for n in counts:
        run = simulator.run(HplWorkload(HplConfig(n, _FULL)))
        points.append(PowerPoint(f"HPL.{n}", run.average_power_watts()))
        for name, program in sorted(NPB_PROGRAMS.items()):
            if not program.proc_rule.allows(n):
                continue
            label = f"{name}.{klass.value}.{n}"
            try:
                run = simulator.run(NpbWorkload(program, klass, n))
            except InsufficientMemoryError:
                points.append(PowerPoint(label, None))
                continue
            points.append(PowerPoint(label, run.average_power_watts()))
    return points


def table2_power_matrix(
    simulator: Simulator,
    counts: "tuple[int, ...]" = (1, 2, 4, 8, 9, 16, 25, 32, 36, 39, 40),
) -> dict[int, dict[str, float]]:
    """Table II data: program -> watts per process count (CG omitted,
    as in the paper's table)."""
    table: dict[int, dict[str, float]] = {}
    for n in counts:
        row: dict[str, float] = {}
        run = simulator.run(HplWorkload(HplConfig(n, _FULL)))
        row["hpl"] = run.average_power_watts()
        for name, program in NPB_PROGRAMS.items():
            if name == "cg" or not program.proc_rule.allows(n):
                continue
            row[name] = simulator.run(
                NpbWorkload(program, "C", n)
            ).average_power_watts()
        if n == simulator.server.total_cores:
            row["spec"] = simulator.run(
                SpecPowerWorkload(SpecPowerLevel("100%", 1.0))
            ).average_power_watts()
        table[n] = row
    return table


def hpl_ns_sweep(
    simulator: Simulator,
    core_counts: "tuple[int, ...]" = (1, 2, 4),
    fractions: "tuple[float, ...]" = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
    ),
) -> dict[int, list[float]]:
    """Fig. 5 data: watts per memory fraction, one series per core count."""
    return {
        n: [
            simulator.run(
                HplWorkload(HplConfig(n, fraction))
            ).average_power_watts()
            for fraction in fractions
        ]
        for n in core_counts
    }


def hpl_nb_sweep(
    simulator: Simulator,
    core_counts: "tuple[int, ...]" = (1, 2, 3, 4),
    nbs: "tuple[int, ...]" = (50, 100, 150, 200, 250, 300, 350, 400),
) -> dict[int, list[float]]:
    """Fig. 6 data: watts per NB, one series per core count."""
    return {
        n: [
            simulator.run(
                HplWorkload(HplConfig(n, 0.5, nb=nb))
            ).average_power_watts()
            for nb in nbs
        ]
        for n in core_counts
    }


def hpl_pq_sweep(
    simulator: Simulator,
    grids: "tuple[tuple[int, int], ...]" = ((1, 4), (2, 2), (4, 1)),
    nbs: "tuple[int, ...]" = (50, 100, 150, 200, 250, 300, 350, 400),
) -> dict[tuple[int, int], list[float]]:
    """Fig. 7 data: watts per NB, one series per P x Q grid."""
    return {
        (p, q): [
            simulator.run(
                HplWorkload(HplConfig(p * q, 0.5, nb=nb, p=p, q=q))
            ).average_power_watts()
            for nb in nbs
        ]
        for p, q in grids
    }


def npb_class_sweep(
    simulator: Simulator,
    counts: "tuple[int, ...]" = (1, 2, 4),
    classes: "tuple[str, ...]" = ("A", "B", "C"),
    quantity: str = "power",
) -> dict[str, list[float | None]]:
    """Figs. 8-9 data: per (program, count) row, one value per class.

    ``quantity`` is ``"power"`` (W) or ``"memory"`` (MB); unrunnable
    configurations yield None.
    """
    if quantity not in ("power", "memory"):
        raise ValueError(f"quantity must be power|memory, got {quantity!r}")
    table: dict[str, list[float | None]] = {}
    for name, program in sorted(NPB_PROGRAMS.items()):
        for n in counts:
            if not program.proc_rule.allows(n):
                continue
            entry: list[float | None] = []
            for klass in classes:
                try:
                    run = simulator.run(NpbWorkload(program, klass, n))
                except InsufficientMemoryError:
                    entry.append(None)
                    continue
                entry.append(
                    run.average_power_watts()
                    if quantity == "power"
                    else run.average_memory_mb()
                )
            table[f"{name}.{n}"] = entry
    return table


def ep_profile(
    simulator: Simulator,
    counts: "tuple[int, ...] | None" = None,
) -> list[tuple[int, float, float, float, float]]:
    """Figs. 10-11 data: (cores, time s, watts, PPW, energy KJ) for EP.C."""
    if counts is None:
        server = simulator.server
        counts = (1, server.half_cores(), server.total_cores)
    rows = []
    for n in counts:
        run = simulator.run(NpbWorkload("ep", "C", n))
        rows.append(
            (
                n,
                run.duration_s,
                run.average_power_watts(),
                run.ppw(),
                run.energy_kilojoules(),
            )
        )
    return rows
