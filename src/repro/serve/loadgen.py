"""Deterministic submission traffic for the serve load bench.

The load gate replays a fixed mix of small campaigns against a live
daemon: many tenants, three priorities, and — crucially — a *bounded
pool of distinct campaign contents*, so the stream exercises both
dedup layers the way real multi-tenant traffic would (the same
evaluation requested over and over by different teams).  Everything is
derived from an explicit seed via :mod:`random.Random`; two runs of the
generator produce the identical submission sequence.
"""

from __future__ import annotations

import random
from typing import Any

from repro.fleet.spec import (
    CampaignSpec,
    NpbWorkload,
    campaign_to_dict,
    workload_to_dict,
)
from repro.hardware.specs import BUILTIN_SERVERS, get_server

__all__ = ["distinct_contents", "submission_stream"]

_TENANTS = ("acme", "blue", "cray-lab", "deneb", "eiger", "fugaku")
_PRIORITY_MIX = ("high",) + ("normal",) * 6 + ("low",) * 3


def distinct_contents(n: int = 12, seed: int = 2015) -> "list[dict[str, Any]]":
    """``n`` distinct submission bodies (without tenant/priority).

    A mix of single-server ``evaluate`` requests and tiny one-workload
    fleet campaigns — each cheap enough that a load run completes in
    seconds once the shared cache is warm.
    """
    rng = random.Random(seed)
    servers = list(BUILTIN_SERVERS)
    contents: "list[dict[str, Any]]" = []
    for i in range(n):
        if i % 3 == 0:
            contents.append(
                {
                    "kind": "evaluate",
                    "server": servers[i % len(servers)],
                    "seed": rng.randrange(4),
                }
            )
        else:
            program = ("ep", "cg", "ft")[i % 3]
            spec = CampaignSpec(
                name=f"load-{i:02d}",
                servers=(get_server(servers[i % len(servers)]),),
                workloads=(
                    workload_to_dict(
                        NpbWorkload(program, "A", 1 << (i % 3))
                    ),
                ),
                seed=rng.randrange(4),
            )
            contents.append(
                {"kind": "fleet", "campaign": campaign_to_dict(spec)}
            )
    return contents


def submission_stream(
    count: int,
    distinct: int = 12,
    seed: int = 2015,
) -> "list[tuple[str, dict[str, Any]]]":
    """``count`` submissions as ``(tenant, body)`` pairs, deterministic.

    Tenants and priorities cycle through fixed mixes; contents are drawn
    from :func:`distinct_contents`, so with ``count >> distinct`` the
    stream is dominated by repeats — the dedup path under test.
    """
    contents = distinct_contents(distinct, seed)
    rng = random.Random(seed + 1)
    out: "list[tuple[str, dict[str, Any]]]" = []
    for i in range(count):
        tenant = _TENANTS[i % len(_TENANTS)]
        body = dict(contents[rng.randrange(len(contents))])
        body["priority"] = _PRIORITY_MIX[i % len(_PRIORITY_MIX)]
        out.append((tenant, body))
    return out
