"""Durable server state: the submission journal and the results store.

The daemon keeps everything it needs to survive a restart under one
state directory::

    <state_dir>/
      journal.jsonl     # fsynced submission/done/drain records
      events.jsonl      # the shared fleet EventLog (jobs, checkpoints)
      cache/            # the shared content-addressed ResultCache
      results/<id>.json # one result document per finished campaign

The journal is the serve-level analogue of the fleet's checkpoint
records: every accepted submission is fsynced *before* the client gets
its 202, and a ``done`` record is fsynced when its result document is
safely on disk.  Replaying the journal therefore yields exactly the
set of campaigns a restarted server must resume — and because job
results live in the content-addressed cache and the fleet journal, the
resumed execution is bit-identical to an uninterrupted one (the chaos
suite SIGKILLs a live daemon to prove it).

Records::

    {"kind": "submit", "id": "c-000001", "submission": {...},
     "content_key": "...", "dedup_of": null, "ts": ...}
    {"kind": "done", "id": "c-000001", "status": "done",
     "digest": "...", "partial": false, "ts": ...}
    {"kind": "drain", "pending": ["c-000002"], "ts": ...}
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

from repro.doctor import safewrite
from repro.errors import StorageDegradedError
from repro.serve.protocol import Submission

__all__ = ["PendingCampaign", "StateStore"]


class PendingCampaign:
    """One journaled submission a restarted server must resume."""

    def __init__(
        self,
        campaign_id: str,
        submission: Submission,
        content_key: str,
        dedup_of: "str | None",
    ):
        self.campaign_id = campaign_id
        self.submission = submission
        self.content_key = content_key
        self.dedup_of = dedup_of


class StateStore:
    """Owns the state directory: journal writes, result documents."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "results").mkdir(exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.events_path = self.root / "events.jsonl"
        self.cache_dir = self.root / "cache"
        self._lock = threading.Lock()
        self._fh = self.journal_path.open("a")
        # Advisory writer lock: marks this journal as live so a
        # concurrent `repro doctor evict/repair` refuses to compact it
        # (a rewrite behind this handle would orphan the inode and
        # silently swallow every subsequent fsynced append).
        self._writer_locked = safewrite.lock_writer(self._fh)

    # -- journal --------------------------------------------------------

    def _append(self, record: "dict[str, Any]") -> None:
        # Raises StorageDegradedError on ENOSPC/EIO: the journal is the
        # daemon's source of truth, so a failed append must surface to
        # the caller (which rejects the submission / skips the done
        # record) rather than silently losing durability.
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if not safewrite.same_file(self._fh, self.journal_path):
                # Replaced/rotated beneath us (a doctor compaction the
                # writer lock could not veto, e.g. a lockless platform):
                # reopen so the append lands where replay will read it.
                self._reopen_journal()
            # fstat, not tell(): tell() on a text handle flushes, which
            # would push a previous failure's poisoned buffer to disk
            # before the offset is measured.
            offset = os.fstat(self._fh.fileno()).st_size
            try:
                safewrite.append_line(
                    self._fh, line, fsync=True, target=self.journal_path
                )
            except StorageDegradedError:
                # The caller will reject/retry this record, so no trace
                # of it may survive: a flush failure can leave the bytes
                # in the handle's buffer (a later successful append
                # would journal the rejected record), and an fsync
                # failure can leave them in the file.  Discard the
                # buffer via a fresh handle and truncate back to the
                # pre-append offset.
                self._reopen_journal()
                try:
                    os.ftruncate(self._fh.fileno(), offset)
                except OSError:
                    pass
                raise

    def _reopen_journal(self) -> None:
        """Replace ``_fh`` with a clean append handle (lock held)."""
        self._fh = safewrite.discard_and_reopen(
            self._fh, self.journal_path
        )
        self._writer_locked = safewrite.lock_writer(self._fh)

    def journal_submit(
        self,
        campaign_id: str,
        submission: Submission,
        content_key: str,
        dedup_of: "str | None" = None,
    ) -> None:
        """Durably record an accepted submission (before the 202)."""
        self._append(
            {
                "kind": "submit",
                "id": campaign_id,
                "submission": submission.to_dict(),
                "content_key": content_key,
                "dedup_of": dedup_of,
                "ts": time.time(),
            }
        )

    def journal_done(
        self,
        campaign_id: str,
        status: str,
        digest: "str | None" = None,
        partial: bool = False,
        error: "str | None" = None,
    ) -> None:
        """Durably record a terminal state (after the result is saved)."""
        record: dict[str, Any] = {
            "kind": "done",
            "id": campaign_id,
            "status": status,
            "partial": partial,
            "ts": time.time(),
        }
        if digest:
            record["digest"] = digest
        if error:
            record["error"] = error
        self._append(record)

    def journal_drain(self, pending: "list[str]") -> None:
        """Record a graceful drain and the ids left for the next boot."""
        self._append(
            {"kind": "drain", "pending": sorted(pending), "ts": time.time()}
        )

    def replay(self) -> "tuple[list[PendingCampaign], int]":
        """Load the journal: pending campaigns and the next id counter.

        A campaign is *pending* when a ``submit`` record has no
        matching ``done`` — exactly the work a graceful drain left
        behind or a crash interrupted.  Torn trailing lines are
        tolerated (same discipline as the fleet journal readers).
        """
        pending: "dict[str, PendingCampaign]" = {}
        max_counter = 0
        if not self.journal_path.exists():
            return [], 1
        for raw in self.journal_path.read_bytes().split(b"\n"):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            campaign_id = record.get("id", "")
            if isinstance(campaign_id, str) and campaign_id.startswith("c-"):
                try:
                    max_counter = max(max_counter, int(campaign_id[2:]))
                except ValueError:
                    pass
            if kind == "submit":
                try:
                    pending[campaign_id] = PendingCampaign(
                        campaign_id=campaign_id,
                        submission=Submission.from_dict(
                            record["submission"]
                        ),
                        content_key=record.get("content_key", ""),
                        dedup_of=record.get("dedup_of"),
                    )
                except (KeyError, TypeError):
                    continue
            elif kind == "done":
                pending.pop(campaign_id, None)
        ordered = sorted(pending.values(), key=lambda p: p.campaign_id)
        return ordered, max_counter + 1

    # -- results --------------------------------------------------------

    def result_path(self, campaign_id: str) -> Path:
        return self.root / "results" / f"{campaign_id}.json"

    def save_result(
        self, campaign_id: str, document: "dict[str, Any]"
    ) -> Path:
        """Persist a result document (atomic: temp + fsync + rename).

        Raises :class:`~repro.errors.StorageDegradedError` when the
        disk is full — the scheduler then leaves the campaign without a
        ``done`` record so a restart re-derives the identical document
        from the cache instead of serving a missing file.
        """
        path = self.result_path(campaign_id)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        ).encode()
        safewrite.write_atomic(tmp, path, payload)
        return path

    def load_result(self, campaign_id: str) -> "dict[str, Any] | None":
        path = self.result_path(campaign_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()
