"""Per-tenant campaign queues: admission, fairness, backpressure.

Three concerns live here, all synchronous and lock-free (the scheduler
holds its own lock around every call), which keeps them unit-testable
without a running server:

* **Bounded FIFO queues per tenant** — each tenant owns three
  priority-classed FIFOs (``high``/``normal``/``low``); within a tenant
  higher classes drain first, FIFO within a class.
* **Weighted fair scheduling** — stride scheduling across tenants: each
  tenant carries a *pass* value advanced by ``STRIDE_K / weight`` per
  dequeue, and the non-empty tenant with the lowest pass goes next.  A
  weight-2 tenant therefore drains twice as fast as a weight-1 tenant
  under contention, and a newly active tenant joins at the current
  minimum pass (no banking idle time to starve others later).  Ties
  break by tenant name — scheduling is deterministic.
* **Priority-aware admission control** — hard bounds per tenant
  (``max_depth``) and globally (``max_pending``), plus soft shedding
  thresholds below the hard caps at which ``low`` (then ``normal``)
  submissions are refused while ``high`` still gets in.  A refusal
  carries a ``Retry-After`` estimate derived from the current backlog
  and observed service rate, so clients back off proportionally rather
  than hammering.

The queues never drop an admitted entry; everything admitted is either
executed or journaled for a restart.  Overload is handled at the edges:
refusal at admission (HTTP 429) and degraded *partial* execution at
dispatch (see :mod:`repro.serve.scheduler`).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.serve.protocol import PRIORITIES

__all__ = ["STRIDE_K", "QueuePolicy", "Admission", "TenantQueues"]

#: Stride numerator; pass advances by ``STRIDE_K / weight`` per dequeue.
STRIDE_K = 1 << 16


@dataclass(frozen=True)
class QueuePolicy:
    """Bounds and weights for admission control.

    ``shed_fraction`` positions the soft thresholds: with the default
    0.5, ``low`` submissions are refused once a tenant queue (or the
    global backlog) is half full, and ``normal`` once it is full — only
    ``high`` may use the final headroom up to the hard caps.
    """

    max_depth: int = 8
    max_pending: int = 64
    shed_fraction: float = 0.5
    default_weight: int = 1
    weights: "dict[str, int]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_depth < 1 or self.max_pending < 1:
            raise ConfigurationError(
                "queue bounds must be >= 1 "
                f"(max_depth={self.max_depth}, max_pending={self.max_pending})"
            )
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ConfigurationError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction}"
            )
        for tenant, weight in {
            **self.weights, "default": self.default_weight
        }.items():
            if not isinstance(weight, int) or weight < 1:
                raise ConfigurationError(
                    f"tenant weight must be an int >= 1 "
                    f"({tenant!r} has {weight!r})"
                )

    def weight(self, tenant: str) -> int:
        return self.weights.get(tenant, self.default_weight)


@dataclass(frozen=True)
class Admission:
    """The outcome of one admission decision."""

    admitted: bool
    reason: str = ""
    retry_after_s: int = 0


class TenantQueues:
    """The queue fabric: admission in, weighted-fair dequeue out."""

    def __init__(self, policy: "QueuePolicy | None" = None):
        self.policy = policy or QueuePolicy()
        self._queues: "dict[str, dict[str, deque]]" = {}
        self._pass: "dict[str, float]" = {}
        self._pending = 0
        self.max_pending_seen = 0
        #: EWMA of campaign service seconds; seeds the Retry-After
        #: estimate before any campaign has completed.
        self._service_s = 1.0

    # -- depth accounting ----------------------------------------------

    def depth(self, tenant: str) -> int:
        """Queued campaigns for one tenant."""
        lanes = self._queues.get(tenant)
        if not lanes:
            return 0
        return sum(len(q) for q in lanes.values())

    @property
    def pending(self) -> int:
        """Queued campaigns across every tenant."""
        return self._pending

    def depths(self) -> dict[str, int]:
        """Per-tenant queue depths (non-empty tenants only)."""
        return {
            tenant: depth
            for tenant in sorted(self._queues)
            if (depth := self.depth(tenant))
        }

    def record_service_s(self, seconds: float) -> None:
        """Fold one completed campaign's wall time into the EWMA."""
        if seconds > 0:
            self._service_s = 0.8 * self._service_s + 0.2 * seconds

    def retry_after_s(self, slots: int = 1) -> int:
        """Seconds a refused client should wait before retrying.

        The backlog's estimated drain time through ``slots`` concurrent
        executors, clamped to [1, 60] so the header is always actionable.
        """
        backlog = max(self._pending, 1)
        estimate = backlog * self._service_s / max(slots, 1)
        return max(1, min(60, math.ceil(estimate)))

    # -- admission ------------------------------------------------------

    def admit(self, tenant: str, priority: str, slots: int = 1) -> Admission:
        """Decide whether a submission may enter the queues.

        Does **not** enqueue — call :meth:`push` after a positive
        decision (the scheduler needs the gap to assign an id and
        journal the submission first).
        """
        if priority not in PRIORITIES:
            raise ConfigurationError(f"unknown priority {priority!r}")
        policy = self.policy
        depth = self.depth(tenant)
        soft_depth = max(1, int(policy.max_depth * policy.shed_fraction))
        soft_pending = max(1, int(policy.max_pending * policy.shed_fraction))
        retry = self.retry_after_s(slots)
        if self._pending >= policy.max_pending:
            return Admission(False, "server_backlog_full", retry)
        if depth >= policy.max_depth:
            return Admission(False, "tenant_queue_full", retry)
        if priority == "low" and (
            depth >= soft_depth or self._pending >= soft_pending
        ):
            return Admission(False, "shedding_low_priority", retry)
        if priority == "normal" and (
            depth >= policy.max_depth - 1
            or self._pending >= policy.max_pending - 1
        ):
            # The last queue slot is reserved for high priority.
            return Admission(False, "shedding_normal_priority", retry)
        return Admission(True)

    # -- queue + fair dequeue ------------------------------------------

    def push(self, tenant: str, priority: str, item: Any) -> None:
        """Enqueue an admitted item under its tenant and priority."""
        lanes = self._queues.get(tenant)
        if lanes is None:
            lanes = {p: deque() for p in PRIORITIES}
            self._queues[tenant] = lanes
        if tenant not in self._pass:
            # Join at the current minimum pass so an idle tenant cannot
            # bank credit and later monopolise the scheduler.
            active = [
                self._pass[t]
                for t in self._pass
                if self.depth(t) > 0 and t != tenant
            ]
            self._pass[tenant] = min(active) if active else 0.0
        lanes[priority].append(item)
        self._pending += 1
        self.max_pending_seen = max(self.max_pending_seen, self._pending)

    def pop(self) -> "tuple[str, Any] | None":
        """Dequeue the next ``(tenant, item)`` under weighted fairness."""
        candidates = [
            tenant for tenant in self._queues if self.depth(tenant) > 0
        ]
        if not candidates:
            return None
        tenant = min(candidates, key=lambda t: (self._pass[t], t))
        lanes = self._queues[tenant]
        for priority in PRIORITIES:
            if lanes[priority]:
                item = lanes[priority].popleft()
                break
        else:  # pragma: no cover - guarded by depth() above
            return None
        self._pass[tenant] += STRIDE_K / self.policy.weight(tenant)
        self._pending -= 1
        return tenant, item

    def drain_all(self) -> "list[tuple[str, Any]]":
        """Empty every queue in fair order (used at shutdown)."""
        out = []
        while True:
            entry = self.pop()
            if entry is None:
                return out
            out.append(entry)
