"""repro.serve — evaluation-as-a-service on top of the fleet.

A stdlib-only asyncio HTTP/JSON daemon (``python -m repro serve``) that
accepts concurrent campaign submissions from many tenants and
multiplexes them onto a shared fleet worker pool:

* **per-tenant FIFO queues** with stride-based weighted fair
  scheduling and three priority classes,
* **bounded admission** — 429 + ``Retry-After`` backpressure, soft
  shedding of low/normal priorities before the hard caps,
* **cross-tenant dedup** — identical in-flight submissions share one
  execution; distinct campaigns share individual jobs through the
  content-addressed result cache,
* **graceful degradation** — under sustained overload a dispatched
  campaign runs its cached jobs plus a bounded budget of new ones and
  returns a result flagged ``partial``,
* **durability** — submissions are journaled (fsynced) before the 202;
  SIGTERM drains cleanly and a restarted daemon resumes the journaled
  backlog bit-identically (the chaos suite SIGKILLs it to prove it).

Quickstart::

    # terminal 1
    python -m repro serve --state-dir serve-state --port 8787

    # terminal 2
    from repro.serve import ServeClient
    client = ServeClient(port=8787)
    sub = client.submit_evaluate("Xeon-E5462", tenant="alice")
    client.wait(sub["id"])
    result = client.result(sub["id"])

See ``docs/serve.md`` for the full API reference, error codes, and the
overload contract.
"""

from repro.serve.app import BackgroundServer, ServeApp
from repro.serve.client import ServeClient, ServeError, ServeRejected
from repro.serve.protocol import (
    PRIORITIES,
    HttpError,
    Submission,
    parse_submission,
    submission_content_key,
)
from repro.serve.queues import Admission, QueuePolicy, TenantQueues
from repro.serve.scheduler import CampaignState, ServeScheduler
from repro.serve.state import StateStore

__all__ = [
    "PRIORITIES",
    "Admission",
    "BackgroundServer",
    "CampaignState",
    "HttpError",
    "QueuePolicy",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeRejected",
    "ServeScheduler",
    "StateStore",
    "Submission",
    "TenantQueues",
    "parse_submission",
    "submission_content_key",
]
